//! Minimal offline shim for the `criterion` benchmarking crate.
//!
//! Implements the surface this workspace's benches use: benchmark groups
//! with `sample_size`/`measurement_time`/`throughput`, `bench_function`
//! with a [`Bencher`] whose `iter` times the closure, and the
//! `criterion_group!`/`criterion_main!` macros. Reporting is a mean/min
//! line per benchmark; set `CRITERION_JSON=<path>` to also append one
//! JSON object per benchmark (machine-readable baselines).

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: scales the per-iteration time into a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration (reported as elem/s).
    Elements(u64),
    /// Bytes processed per iteration (reported as B/s).
    Bytes(u64),
}

/// Top-level benchmark driver (shim: only carries defaults).
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10, default_measurement_time: Duration::from_secs(5) }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark; sampling stops early when spent.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new() };
        // Warm-up (also the only execution under `--test`-style dry runs).
        f(&mut b);
        b.samples.clear();
        let budget = Instant::now();
        while b.samples.len() < self.sample_size && budget.elapsed() < self.measurement_time {
            f(&mut b);
        }
        report(&self.name, &id, &b.samples, self.throughput);
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times one routine per sample.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` as one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let t0 = Instant::now();
        let out = routine();
        self.samples.push(t0.elapsed());
        drop(black_box(out));
    }
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("non-empty");
    let rate = |elems: u64, d: Duration| elems as f64 / d.as_secs_f64();
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => format!(" thrpt: {:.3} Melem/s", rate(n, mean) / 1e6),
        Some(Throughput::Bytes(n)) => {
            format!(" thrpt: {:.3} MiB/s", rate(n, mean) / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{group}/{id}: mean {:.3} ms, min {:.3} ms, {} samples{thrpt}",
        mean.as_secs_f64() * 1e3,
        min.as_secs_f64() * 1e3,
        samples.len(),
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let (tp_kind, tp_n) = match throughput {
                Some(Throughput::Elements(n)) => ("elements", n),
                Some(Throughput::Bytes(n)) => ("bytes", n),
                None => ("none", 0),
            };
            // Both rate estimators are recorded: the mean (legacy field)
            // and the best sample (`per_sec_best`, from min_ns), which is
            // robust to scheduler-preemption outliers and what regression
            // gates should compare.
            let _ = writeln!(
                file,
                "{{\"group\":\"{group}\",\"bench\":\"{id}\",\"mean_ns\":{},\"min_ns\":{},\
                 \"samples\":{},\"throughput\":\"{tp_kind}\",\"throughput_per_iter\":{tp_n},\
                 \"per_sec_mean\":{:.1},\"per_sec_best\":{:.1}}}",
                mean.as_nanos(),
                min.as_nanos(),
                samples.len(),
                if tp_n > 0 { tp_n as f64 / mean.as_secs_f64() } else { 0.0 },
                if tp_n > 0 { tp_n as f64 / min.as_secs_f64() } else { 0.0 },
            );
        }
    }
}

/// Groups benchmark functions into one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
