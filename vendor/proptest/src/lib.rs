//! Minimal offline shim for the `proptest` crate.
//!
//! Implements exactly the surface this workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert*!`, [`prop_oneof!`], [`Just`],
//! [`any`], [`Strategy`] with `prop_map`/`boxed`, integer range and tuple
//! strategies, and [`collection::vec`]. Generation is deterministic per
//! test function (seeded from the function name); there is **no
//! shrinking** — a failure reports the case index and message.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test-function name, deterministically.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed workspace constant so
        // different functions explore different sequences.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at these bound sizes for testing.
        ((u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())) % bound
    }
}

/// A failed test case (produced by the `prop_assert*!` macros).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Test-runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy facade behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Picks one of the boxed alternatives uniformly ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len() as u128) as usize;
        self.options[k].generate(rng)
    }
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (`any::<u32>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                (lo + rng.below((hi - lo) as u128) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below((hi - lo + 1) as u128) as i128) as $t
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11, M 12)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11, M 12, N 13)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11, M 12, N 13, O 14)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11, M 12, N 13, O 14, P 15)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds for [`fn@vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.hi_exclusive - self.len.lo).max(1) as u128;
            let n = self.len.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `vec(element_strategy, length_range)`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, len: len.into() }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) {...} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(<$crate::ProptestConfig as ::std::default::Default>::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strat = ($($strat,)+);
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($pat,)+) = $crate::Strategy::generate(&__strat, &mut __rng);
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), l, r
        );
    }};
}

/// Uniformly picks one of the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}
