//! The Tomasulo-style reservation-station model (the paper's Section 3.2
//! extension), showing out-of-order issue from a multi-capacity stage.
//!
//! ```text
//! cargo run --release --example tomasulo_demo
//! ```

use processors::tomasulo::{build, FuOp, RsInstr};
use rcpn::ids::RegId;

fn main() {
    // Program order:        issue order (observed):
    //   mul r3 <- r1 * r2     mul first (3-cycle multiplier)
    //   add r4 <- r3 + r1     waits on r3
    //   add r5 <- r1 + r2     overtakes — out-of-order issue
    //   mul r6 <- r5 + r5     waits on r5, then uses the idle multiplier
    let program = vec![
        RsInstr { op: FuOp::Mul, d: 3, s1: 1, s2: 2 },
        RsInstr { op: FuOp::Add, d: 4, s1: 3, s2: 1 },
        RsInstr { op: FuOp::Add, d: 5, s1: 1, s2: 2 },
        RsInstr { op: FuOp::Mul, d: 6, s1: 5, s2: 5 },
    ];
    let mut engine = build(program, 8, 4);
    engine.machine_mut().regs.poke(RegId::from_index(1), 10);
    engine.machine_mut().regs.poke(RegId::from_index(2), 20);

    println!("cycle-by-cycle register file (blank = not yet written):");
    println!("{:>5} {:>8} {:>8} {:>8} {:>8}", "cycle", "r3", "r4", "r5", "r6");
    let mut idle = 0;
    let mut shown = [false; 8];
    while engine.cycle() < 100 && idle < 3 {
        engine.step();
        let m = engine.machine();
        let vals: Vec<u32> = (3..7).map(|i| m.regs.value_of(RegId::from_index(i))).collect();
        let newly: Vec<usize> = (0..4).filter(|&k| vals[k] != 0 && !shown[k]).collect();
        if !newly.is_empty() {
            for k in newly {
                shown[k] = true;
            }
            let cell = |v: u32| if v == 0 { String::new() } else { v.to_string() };
            println!(
                "{:>5} {:>8} {:>8} {:>8} {:>8}",
                engine.cycle(),
                cell(vals[0]),
                cell(vals[1]),
                cell(vals[2]),
                cell(vals[3])
            );
        }
        if engine.live_tokens() == 0 {
            idle += 1;
        } else {
            idle = 0;
        }
    }

    let reg = |i: usize| engine.machine().regs.value_of(RegId::from_index(i));
    assert_eq!(reg(3), 200);
    assert_eq!(reg(4), 210);
    assert_eq!(reg(5), 30);
    assert_eq!(reg(6), 900);
    println!("\nall results correct; stalls observed in the station: {}", engine.stats().stalls);
    println!("note r5 (program-order third) completes before r4 (second): out-of-order issue.");
}
