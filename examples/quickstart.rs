//! Quickstart: model the paper's Figure 2 pipeline in a few lines, run
//! tokens through it, and print the statistics a cycle-accurate simulator
//! exists for.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rcpn::prelude::*;

/// The token payload: just an operation class (Short takes the U4 path,
/// Long goes through U2 → U3).
#[derive(Debug)]
struct Tok(OpClassId);

impl InstrData for Tok {
    fn op_class(&self) -> OpClassId {
        self.0
    }
}

fn main() -> Result<(), BuildError> {
    // Describe the pipeline exactly as its block diagram reads:
    // two latches, a fetch unit, and three functional units.
    let mut b = ModelBuilder::<Tok, u64>::new();
    let l1 = b.stage("L1", 1);
    let l2 = b.stage("L2", 1);
    let p1 = b.place("P1", l1);
    let p2 = b.place("P2", l2);
    let end = b.end_place();
    let (short, _) = b.class_net("Short");
    let (long, _) = b.class_net("Long");

    b.transition(short, "U4").from(p1).to(end).done();
    b.transition(long, "U2").from(p1).to(p2).done();
    b.transition(long, "U3").from(p2).to(end).done();
    // The instruction-independent sub-net: U1 fetches alternating classes.
    b.source("U1")
        .to(p1)
        .produce(move |m, _fx| {
            m.res += 1;
            Some(Tok(if m.res % 3 == 0 { short } else { long }))
        })
        .done();

    let model = b.build()?;
    println!(
        "model: {} places, {} transitions, {} sub-nets (two-list places: {})",
        model.place_count(),
        model.transition_count(),
        model.subnet_count(),
        model.analysis().two_list_count(),
    );

    let mut engine = Engine::new(model, Machine::new(RegisterFile::new(), 0u64));
    engine.run(1_000_000);

    let stats = engine.stats();
    println!("cycles:   {}", stats.cycles);
    println!("retired:  {}", stats.retired);
    println!("ipc:      {:.3}", stats.ipc().unwrap_or(0.0));
    println!("stalls:   {}", stats.stalls);
    Ok(())
}
