//! Run a paper benchmark on the generated StrongARM cycle-accurate
//! simulator and report the performance metrics of Section 5.
//!
//! ```text
//! cargo run --release --example strongarm_run [kernel] [size]
//! ```

use processors::sim::CaSim;
use workloads::{Kernel, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kernel = args
        .first()
        .map(|n| {
            Kernel::ALL
                .into_iter()
                .find(|k| k.name() == n)
                .unwrap_or_else(|| panic!("unknown kernel {n:?}"))
        })
        .unwrap_or(Kernel::Crc);
    let size = args
        .get(1)
        .map(|s| s.parse().expect("size must be a number"))
        .unwrap_or_else(|| kernel.bench_size() / 10);

    println!("assembling {kernel} (size {size})...");
    let w = Workload::build(kernel, size);
    println!("program: {} words, expected checksum {:#010x}", w.program.words.len(), w.expected);

    let mut sim = CaSim::strongarm(&w.program);
    let t0 = std::time::Instant::now();
    let r = sim.run(4_000_000_000);
    let dt = t0.elapsed().as_secs_f64();

    assert_eq!(r.exit, Some(w.expected), "checksum mismatch — simulator bug");
    let res = sim.res();
    println!("exit code:     {:#010x} (matches gold model)", r.exit.unwrap());
    println!("cycles:        {}", r.cycles);
    println!("instructions:  {}", r.instrs);
    println!("CPI:           {:.3}", r.cpi());
    println!("icache:        {:.2}% hits", 100.0 * res.icache.stats().hit_ratio());
    println!("dcache:        {:.2}% hits", 100.0 * res.dcache.stats().hit_ratio());
    println!("redirects:     {} (squashes {})", res.redirects, res.squashes);
    println!("decode cache:  {} hits / {} misses", res.dec_cache.hits, res.dec_cache.misses);
    println!("sim speed:     {:.2} Mcycles/s", r.cycles as f64 / dt / 1e6);
}
