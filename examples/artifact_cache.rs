//! Compile a generated ARM simulator once, persist it as an artifact,
//! and reload it from the content-addressed cache — no recompilation.
//!
//! ```text
//! cargo run --release --example artifact_cache [cache-dir]
//! ```
//!
//! The first run compiles all three ARM models and stores them (three
//! cache misses); every later run reloads them from disk (three hits).
//! Inspect the stored entries with `cargo run -p rcpn-bench --bin
//! rcpn-cache -- ls <cache-dir>`.

use processors::sim::{CompiledSim, ProcModel};
use rcpn::artifact::{inspect, ArtifactCache};
use workloads::{Kernel, Workload};

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".rcpn-cache".to_string());
    let cache = ArtifactCache::open(&dir).expect("open artifact cache");
    let w = Workload::build(Kernel::Crc, Kernel::Crc.test_size());

    for model in ProcModel::ALL {
        let config = model.default_config();
        let t0 = std::time::Instant::now();
        let sim = CompiledSim::load_or_compile(model, &config, &cache)
            .expect("compile or reload the model artifact");
        let acquired = t0.elapsed();
        let r = sim.instantiate(&w.program).run(1_000_000);
        assert_eq!(r.exit, Some(w.expected), "checksum mismatch — simulator bug");
        println!(
            "{:<12} acquired in {:>9.3?}  ({} cycles on {}, CPI {:.3})",
            model.figure_name(),
            acquired,
            r.cycles,
            w.kernel,
            r.cpi(),
        );
    }
    // Counter names match the `BENCH_sweep.json` summary fields
    // (`cache_hits`/`cache_misses`/`cache_bypasses`) so greps written
    // against the bench record also match the example output.
    println!(
        "cache {dir}: cache_hits={} cache_misses={} cache_bypasses={}",
        cache.hits(),
        cache.misses(),
        cache.bypasses()
    );
    for path in cache.entries().expect("list cache") {
        let info = inspect(&std::fs::read(&path).expect("read entry")).expect("entry parses");
        println!(
            "  {} — v{}, spec {:016x}, {} bytes, checksum {}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
            info.format_version,
            info.spec_hash,
            info.total_len,
            if info.checksum_ok { "ok" } else { "BAD" },
        );
    }
}
