//! The paper's Figure 4/5 walk-through, executable: the representative
//! out-of-order-completion processor running a small program that
//! exercises every mechanism the figure shows — the `s1` feedback path,
//! the data-dependent memory delay, and the branch reservation token.
//!
//! ```text
//! cargo run --release --example example_processor
//! ```

use processors::example::{build, AluOp, ToyInstr, ToySrc};
use rcpn::ids::RegId;

fn main() {
    // r1 = r0 + 5 ; r2 = r1 * 3 (s1 forwarded from L3) ;
    // mem[20] = r2 (slow store) ; r3 = mem[20] (slow load) ;
    // branch +1 (skip poison) ; r4 = r3 + 100
    let program = vec![
        ToyInstr::Alu { op: AluOp::Add, d: 1, s1: 0, s2: ToySrc::Const(5) },
        ToyInstr::Alu { op: AluOp::Mul, d: 2, s1: 1, s2: ToySrc::Const(3) },
        ToyInstr::LoadStore { l: false, r: 2, addr: ToySrc::Const(20) },
        ToyInstr::LoadStore { l: true, r: 3, addr: ToySrc::Const(20) },
        ToyInstr::Branch { offset: 1 },
        ToyInstr::Alu { op: AluOp::Add, d: 5, s1: 0, s2: ToySrc::Const(999) }, // skipped
        ToyInstr::Alu { op: AluOp::Add, d: 4, s1: 3, s2: ToySrc::Const(100) },
    ];
    let mut engine = build(program, 8, vec![0; 64]);

    {
        let model = engine.model();
        println!("Figure 4/5 model:");
        println!(
            "  {} sub-nets ({}), {} transitions, {} source",
            model.subnet_count(),
            (0..model.subnet_count())
                .map(|i| model.subnet(rcpn::ids::SubnetId::from_index(i)).name().to_string())
                .collect::<Vec<_>>()
                .join("/"),
            model.transition_count(),
            model.source_count()
        );
        println!(
            "  two-list places: {} (the paper: only L3 needs the two-list algorithm)",
            model.analysis().two_list_count()
        );
    }

    let mut idle = 0;
    while engine.cycle() < 200 && idle < 3 {
        engine.step();
        if engine.live_tokens() == 0 {
            idle += 1;
        } else {
            idle = 0;
        }
    }

    let reg = |i: usize| engine.machine().regs.value_of(RegId::from_index(i));
    println!("\nafter {} cycles:", engine.cycle());
    println!("  r1 = {:>3}  (r0 + 5)", reg(1));
    println!("  r2 = {:>3}  (r1 * 3, s1 via the L3 feedback path)", reg(2));
    println!("  r3 = {:>3}  (loaded back from mem[20], slow access)", reg(3));
    println!("  r4 = {:>3}  (r3 + 100)", reg(4));
    println!("  r5 = {:>3}  (branch-skipped poison — must be 0)", reg(5));
    assert_eq!(reg(2), 15);
    assert_eq!(reg(4), 115);
    assert_eq!(reg(5), 0);

    let model = engine.model();
    let fwd = model.find_transition("D_alu_fwd").unwrap();
    println!("\nforwarding transition fired {} time(s)", engine.stats().fires_of(fwd));
    println!("reservation tokens issued: {}", engine.stats().reservations);
    println!("slow memory accesses: {}", engine.machine().res.slow_accesses);
}
