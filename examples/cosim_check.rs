//! Co-simulation harness: run every benchmark on the gold-model ISS, both
//! RCPN cycle-accurate simulators and the SimpleScalar-style baseline, and
//! cross-check all architectural results.
//!
//! ```text
//! cargo run --release --example cosim_check [size-scale]
//! ```

use arm_isa::iss::Iss;
use baseline_sim::SsArm;
use processors::sim::CaSim;
use workloads::{Kernel, Workload};

fn main() {
    let scale: f64 =
        std::env::args().nth(1).map(|s| s.parse().expect("scale must be a number")).unwrap_or(0.05);

    println!(
        "{:<10} {:>10} {:>12} {:>8} {:>8} {:>8}  verdict",
        "kernel", "checksum", "instrs", "SA cpi", "XS cpi", "SS cpi"
    );
    let mut all_ok = true;
    for kernel in Kernel::ALL {
        let size = ((kernel.bench_size() as f64 * scale) as usize).max(kernel.test_size());
        let w = Workload::build(kernel, size);

        let mut iss = Iss::from_program(&w.program);
        iss.run(u64::MAX).expect("gold run clean");

        let mut sa = CaSim::strongarm(&w.program);
        let sa_r = sa.run(4_000_000_000);
        let mut xs = CaSim::xscale(&w.program);
        let xs_r = xs.run(4_000_000_000);
        let mut ss = SsArm::new(&w.program);
        let ss_r = ss.run(4_000_000_000);

        let ok = iss.exit_code() == w.expected
            && sa_r.exit == Some(w.expected)
            && xs_r.exit == Some(w.expected)
            && ss_r.exit == Some(w.expected)
            && sa_r.instrs == iss.instr_count()
            && xs_r.instrs == iss.instr_count();
        all_ok &= ok;
        println!(
            "{:<10} {:>#10x} {:>12} {:>8.2} {:>8.2} {:>8.2}  {}",
            kernel.name(),
            w.expected,
            iss.instr_count(),
            sa_r.cpi(),
            xs_r.cpi(),
            ss_r.cpi(),
            if ok { "agree" } else { "MISMATCH" }
        );
    }
    assert!(all_ok, "at least one simulator disagreed with the gold model");
    println!("\nall simulators agree with the gold model on every kernel.");
}
