//! Co-simulation harness: run every benchmark on the gold-model ISS, every
//! registered RCPN cycle-accurate simulator and the SimpleScalar-style
//! baseline, and cross-check all architectural results.
//!
//! ```text
//! cargo run --release --example cosim_check [size-scale]
//! ```

use arm_isa::iss::Iss;
use baseline_sim::SsArm;
use processors::sim::{CaSim, ProcModel};
use workloads::{Kernel, Workload};

fn main() {
    let scale: f64 =
        std::env::args().nth(1).map(|s| s.parse().expect("scale must be a number")).unwrap_or(0.05);

    print!("{:<10} {:>10} {:>12}", "kernel", "checksum", "instrs");
    for proc in ProcModel::ALL {
        print!(" {:>9}", format!("{} cpi", proc.label()));
    }
    println!(" {:>8}  verdict", "SS cpi");
    let mut all_ok = true;
    for kernel in Kernel::ALL {
        let size = ((kernel.bench_size() as f64 * scale) as usize).max(kernel.test_size());
        let w = Workload::build(kernel, size);

        let mut iss = Iss::from_program(&w.program);
        iss.run(u64::MAX).expect("gold run clean");

        let mut ss = SsArm::new(&w.program);
        let ss_r = ss.run(4_000_000_000);
        let mut ok = iss.exit_code() == w.expected && ss_r.exit == Some(w.expected);

        print!("{:<10} {:>#10x} {:>12}", kernel.name(), w.expected, iss.instr_count());
        for proc in ProcModel::ALL {
            let mut ca = CaSim::with_config(proc, &w.program, &proc.default_config());
            let r = ca.run(4_000_000_000);
            ok &= r.exit == Some(w.expected) && r.instrs == iss.instr_count();
            print!(" {:>9.2}", r.cpi());
        }
        all_ok &= ok;
        println!(" {:>8.2}  {}", ss_r.cpi(), if ok { "agree" } else { "MISMATCH" });
    }
    assert!(all_ok, "at least one simulator disagreed with the gold model");
    println!("\nall simulators agree with the gold model on every kernel.");
}
