//! Inspect the XScale model (paper, Figure 9): its three back-end pipes,
//! the static analysis the simulator generation relies on, and the
//! per-place behavior of a short run.
//!
//! ```text
//! cargo run --release --example xscale_pipeline
//! ```

use processors::res::SimConfig;
use processors::sim::CaSim;
use rcpn::engine::EngineConfig;
use workloads::{Kernel, Workload};

fn main() {
    let w = Workload::build(Kernel::G721, 2_000);
    let config = SimConfig {
        engine: EngineConfig { collect_occupancy: true, ..Default::default() },
        ..SimConfig::xscale()
    };
    let mut sim = CaSim::with_config(processors::ProcModel::XScale, &w.program, &config);

    {
        let model = sim.engine.model();
        let a = model.analysis();
        println!("XScale model (Figure 9):");
        println!(
            "  {} stages, {} places, {} transitions, {} sub-nets",
            model.stage_count(),
            model.place_count(),
            model.transition_count(),
            model.subnet_count()
        );
        print!("  evaluation order (reverse topological): ");
        let names: Vec<&str> = a.order().iter().map(|&p| model.place(p).name()).collect();
        println!("{}", names.join(" "));
        print!("  two-list places (feedback): ");
        let tl: Vec<&str> = model
            .place_ids()
            .filter(|&p| a.is_two_list(p))
            .map(|p| model.place(p).name())
            .collect();
        println!("{}", tl.join(" "));
    }

    let r = sim.run(4_000_000_000);
    assert_eq!(r.exit, Some(w.expected), "checksum mismatch");
    println!(
        "\nran {} ({} instrs) in {} cycles — CPI {:.3}",
        w.kernel,
        r.instrs,
        r.cycles,
        r.cpi()
    );
    println!("BTB accuracy: {:.1}%", {
        let s = sim.res().btb.as_ref().expect("xscale has a btb").stats();
        100.0 * s.accuracy()
    });

    println!("\nmean pipeline occupancy (tokens per cycle):");
    let model = sim.engine.model();
    for p in model.place_ids() {
        if model.is_end_place(p) {
            continue;
        }
        let occ = sim.engine.stats().mean_occupancy(p);
        let bar = "#".repeat((occ * 40.0) as usize);
        println!("  {:>4}: {occ:>5.2} {bar}", model.place(p).name());
    }
}
