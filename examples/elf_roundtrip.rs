//! Real-binary round trip: assemble a kernel, write it out as a real
//! ELF32/ARM executable, load it back with the ELF loader, and prove the
//! loaded image simulates **bit-identically** to the in-process program
//! on every registry model.
//!
//! ```text
//! cargo run --release --example elf_roundtrip
//! ```
//!
//! This is the contract `rcpn-run` relies on: a binary on disk is exactly
//! as good as a program assembled in memory.

use processors::sim::{CompiledSim, ProcModel};
use rcpn_loader::{load_elf, ProgramToElf};
use workloads::{Kernel, Workload};

fn main() {
    let kernel = Kernel::Crc;
    let w = Workload::build(kernel, kernel.test_size());

    // Program → ELF bytes → loaded image.
    let bytes = w.program.to_elf_bytes();
    let image = load_elf(&bytes).expect("writer output loads");
    assert_eq!(image.program, w.program, "the program survives the round trip");
    println!(
        "{kernel}: {} image bytes → {} ELF bytes → {} segments, {} labels, {} KiB memory",
        w.program.size_bytes(),
        bytes.len(),
        image.segments.len(),
        image.program.labels.len(),
        image.layout.mem_bytes / 1024,
    );

    // ISS: the loaded image reproduces the gold checksum.
    let mut iss = image.iss();
    iss.run(50_000_000).expect("runs clean");
    assert_eq!(iss.exit_code(), w.expected, "gold checksum through the ELF path");
    println!(
        "iss: exit {:#010x} after {} instrs (gold checksum ok)",
        iss.exit_code(),
        iss.instr_count()
    );

    // Every cycle-accurate registry model: identical trace + stats + result.
    for model in ProcModel::ALL {
        let mut config = model.default_config();
        config.engine.trace = true;
        let sim = CompiledSim::new(model, &config);

        let mut direct = sim.instantiate(&w.program);
        let r1 = direct.run(50_000_000);
        let mut via_elf = sim.instantiate_image(&image);
        let r2 = via_elf.run(50_000_000);

        assert_eq!(r1.exit, Some(w.expected), "{}: gold checksum", model.label());
        assert_eq!(r1, r2, "{}: SimResult differs through the ELF path", model.label());
        assert_eq!(
            direct.engine.take_trace(),
            via_elf.engine.take_trace(),
            "{}: cycle-level trace differs through the ELF path",
            model.label()
        );
        assert_eq!(direct.engine.stats(), via_elf.engine.stats(), "{}: Stats", model.label());
        assert_eq!(direct.sched(), via_elf.sched(), "{}: SchedStats", model.label());
        println!(
            "{}: exit {:#010x}  cycles {}  cpi {:.3}  — ELF path bit-identical",
            model.figure_name(),
            r2.exit.unwrap(),
            r2.cycles,
            r2.cpi()
        );
    }
    println!("round trip: assemble → to_elf_bytes → load_elf → run is bit-identical everywhere");
}
