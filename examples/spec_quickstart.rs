//! Build a pipelined processor in ~20 lines with the declarative spec API.
//!
//! ```text
//! cargo run --release --example spec_quickstart
//! ```
//!
//! The spec names three stages, a forwarding latch, and two operation
//! classes with their paths; `lower()` *generates* the RCPN model — the
//! guards and actions of the read steps are synthesized from the operand
//! policy, which is the paper's "describe the pipeline, generate the
//! simulator" flow in miniature.

use rcpn::prelude::*;
use rcpn::spec::{Forward, OperandPolicy, PipelineSpec};

/// Token payload: an operation class plus a sequence number.
#[derive(Debug)]
struct Tok {
    class: OpClassId,
    seq: u64,
}

impl InstrData for Tok {
    fn op_class(&self) -> OpClassId {
        self.class
    }
}

/// Every third instruction "depends" on the previous one: with a
/// forwarding path it is always ready, without one it waits for an even
/// cycle — a toy stand-in for a register scoreboard, so the demo shows
/// synthesized stall behavior (the `Short` class below reads with
/// `Forward::None` and really does stall).
struct EveryThirdStalls;
impl OperandPolicy<Tok, u64> for EveryThirdStalls {
    fn ready(&self, m: &Machine<u64>, t: &Tok, fwd: &[PlaceId]) -> bool {
        t.seq % 3 != 0 || !fwd.is_empty() || m.cycle % 2 == 0
    }
    fn acquire(&self, _m: &mut Machine<u64>, _t: &mut Tok, _fx: &mut Fx<Tok>, _f: &[PlaceId]) {}
}

fn main() {
    // The 20-line pipeline: fetch -> decode -> execute, short ops skip
    // execute, results forwarded from E.
    let mut s = PipelineSpec::<Tok, u64>::new("quickstart");
    s.pipe("F", 1).pipe("D", 1).pipe("E", 1);
    s.forwards(&["E"]);
    s.operand_policy(EveryThirdStalls);
    s.class("Short").step("D").read(Forward::None).step("end").act(|m, _t, _fx| m.res += 1);
    s.class("Long").step("D").read(Forward::All).step("E").step("end").act(|m, _t, _fx| m.res += 1);
    s.source("fetch").to("F").produce(|m: &mut Machine<u64>, _fx| {
        let seq = m.cycle;
        Some(Tok { class: OpClassId::from_index((seq % 2) as usize), seq })
    });

    let model = s.lower().expect("quickstart spec lowers");
    println!(
        "generated model: {} stages, {} places, {} transitions, {} sub-nets",
        model.stage_count(),
        model.place_count(),
        model.transition_count(),
        model.subnet_count()
    );

    let mut engine = Engine::new(model, Machine::new(RegisterFile::new(), 0u64));
    let cycles = 10_000;
    engine.run(cycles);
    let stats = engine.stats();
    println!(
        "ran {cycles} cycles: {} retired ({} counted by the model), {} fires, {} stalls",
        stats.retired,
        engine.machine().res,
        stats.fires.iter().sum::<u64>(),
        stats.stalls
    );
    assert_eq!(stats.retired, engine.machine().res, "every retirement ran the retire action");
    assert!(stats.retired > 0);
    assert!(stats.stalls > 0, "the un-forwarded Short class must hit the synthesized stall");
}
