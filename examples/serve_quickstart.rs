//! Simulation-as-a-service in one process: start an `rcpn-serve` server
//! on an ephemeral port, submit jobs with the client library, and stream
//! the results back.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```
//!
//! The same flow works across processes with the bins:
//! `rcpn-serve serve --cache DIR` in one terminal,
//! `rcpn-client drive ADDR --check` in another.

use rcpn_serve::client::{Admission, Client};
use rcpn_serve::server::{ServeConfig, Server};
use workloads::Workload;

fn main() {
    // Bind on an ephemeral port; this compiles (warms) every registry
    // model exactly once. Pass `cache_dir: Some(..)` to warm from an
    // artifact cache instead — a restart then reloads rather than
    // recompiles.
    let server =
        Server::bind(ServeConfig { workers: 2, ..ServeConfig::default() }).expect("bind server");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run().expect("serve"));

    let mut client = Client::connect(addr).expect("connect");
    let info = client.hello().expect("hello");
    println!(
        "connected to {addr}: models [{}], {} workers, queue {}",
        info.models.join(", "),
        info.workers,
        info.queue_capacity
    );

    // Submit the whole fig10 suite against every served model, then
    // collect. The server streams completions as they finish; the client
    // pairs them back up by job id.
    let workloads = Workload::suite(0.0);
    let mut jobs = Vec::new();
    for model in &info.models {
        for w in &workloads {
            let (job_id, admission) =
                client.submit(model, &w.program, 4_000_000_000).expect("submit");
            assert_eq!(admission, Admission::Accepted, "queue covers the suite");
            jobs.push((job_id, model.clone(), w));
        }
    }
    for (job_id, model, w) in jobs {
        let outcome = client.collect(job_id).expect("collect");
        assert_eq!(outcome.result.exit, Some(w.expected), "gold checksum");
        println!(
            "{model}/{}: {} cycles, {} instrs, CPI {:.3}",
            w.kernel,
            outcome.result.cycles,
            outcome.result.instrs,
            outcome.result.cpi()
        );
    }

    client.shutdown().expect("shutdown");
    server_thread.join().expect("clean server exit");
    println!("server shut down cleanly");
}
