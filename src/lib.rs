//! Umbrella crate for the RCPN reproduction workspace.
//!
//! Re-exports every workspace crate so examples and integration tests can
//! use a single dependency. See `README.md` for the repository overview and
//! `DESIGN.md` for the system inventory.

pub use arm_isa;
pub use baseline_sim;
pub use memsys;
pub use processors;
pub use rcpn;
pub use rcpn_serve;
pub use workloads;
