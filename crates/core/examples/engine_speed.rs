//! Engine-core speed probe at several pipeline depths.
use rcpn::prelude::*;
use std::time::Instant;

#[derive(Debug)]
struct Tok(OpClassId);
impl InstrData for Tok {
    fn op_class(&self) -> OpClassId {
        self.0
    }
}

fn build(depth: usize) -> Engine<Tok, u64> {
    let mut b = ModelBuilder::<Tok, u64>::new();
    let stages: Vec<_> = (0..depth).map(|i| b.stage(&format!("S{i}"), 1)).collect();
    let places: Vec<_> =
        stages.iter().enumerate().map(|(i, &s)| b.place(&format!("P{i}"), s)).collect();
    let end = b.end_place();
    let (c, _) = b.class_net("C");
    for i in 0..depth - 1 {
        b.transition(c, &format!("t{i}")).from(places[i]).to(places[i + 1]).done();
    }
    b.transition(c, "tend").from(places[depth - 1]).to(end).done();
    let p0 = places[0];
    b.source("src")
        .to(p0)
        .produce(move |m, _fx| {
            m.res += 1;
            Some(Tok(c))
        })
        .done();
    Engine::new(b.build().unwrap(), Machine::new(RegisterFile::new(), 0u64))
}

fn main() {
    let n = 3_000_000u64;
    for depth in [1usize, 2, 4, 8] {
        let mut e = build(depth);
        let t0 = Instant::now();
        e.run(n);
        let dt = t0.elapsed().as_secs_f64();
        eprintln!(
            "depth {depth}: {:.1} Mcyc/s ({:.0} ns/cycle, {:.1} ns/move)",
            n as f64 / dt / 1e6,
            dt / n as f64 * 1e9,
            dt / n as f64 * 1e9 / (depth as f64 + 1.0)
        );
    }
}
