//! The three-level register model used by RCPN to capture data hazards
//! (paper, Section 3.1).
//!
//! RCPN deliberately keeps data hazards *out* of the token game. Instead it
//! models registers at three levels:
//!
//! 1. [`RegisterFile`] — the actual storage cells, plus the *writers*
//!    scoreboard: for every cell, which in-flight instruction (if any) has
//!    reserved it for writing, what state (place) that instruction is
//!    currently in, and — once computed — the value it will write.
//! 2. **Register** — a named index that maps onto one or more storage cells.
//!    Multiple registers may point at the same cells to model overlapping
//!    storage (ARM banked registers, SPARC register windows).
//! 3. [`RegRef`] — a per-instruction reference to a register with an
//!    internal value slot; the pipeline-latch copy of the operand. Decode
//!    replaces each register symbol of an operation class with a `RegRef`.
//!
//! The fixed `RegRef` interface from the paper maps onto this module as:
//!
//! | paper            | here                      |
//! |------------------|---------------------------|
//! | `canRead()`      | [`RegRef::can_read`]      |
//! | `read()`         | [`RegRef::read`]          |
//! | `canWrite()`     | [`RegRef::can_write`]     |
//! | `reserveWrite()` | [`RegRef::reserve_write`] |
//! | `writeback()`    | [`RegRef::writeback`]     |
//! | `canRead(s)`     | [`RegRef::can_read_in`]   |
//! | `read(s)`        | [`RegRef::read_fwd`]      |
//!
//! One substitution relative to the paper (recorded in `DESIGN.md`): the
//! paper's `read(s)` reaches into the internal storage of the *writer's*
//! RegRef. Here, a writer publishes its computed value into the scoreboard
//! entry ([`RegRef::set`]), and `read_fwd` reads it from there. The value
//! observed is the same — it *is* the writer's internal value — but no
//! aliased access into another live token is needed.

use std::fmt;

use crate::ids::{PlaceId, RegId, TokenId};

/// Scoreboard entry: the in-flight instruction that has reserved a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writer {
    /// Token of the writing instruction.
    pub token: TokenId,
    /// The state (place) the writer currently resides in. Updated by the
    /// engine as the token moves through the pipeline.
    pub place: PlaceId,
    /// The value the writer will write, once it has been computed.
    pub value: Option<u32>,
}

#[derive(Debug, Clone)]
struct RegDef {
    name: String,
    cells: Vec<u16>,
}

/// Register storage plus the writers scoreboard.
///
/// # Examples
///
/// ```
/// use rcpn::reg::RegisterFile;
///
/// let mut rf = RegisterFile::new();
/// let r0 = rf.add_register("r0");
/// rf.poke(r0, 42);
/// assert_eq!(rf.value_of(r0), 42);
/// ```
#[derive(Debug, Clone)]
pub struct RegisterFile {
    cells: Vec<u32>,
    writers: Vec<Option<Writer>>,
    regs: Vec<RegDef>,
}

impl RegisterFile {
    /// Creates an empty register file.
    pub fn new() -> Self {
        RegisterFile { cells: Vec::new(), writers: Vec::new(), regs: Vec::new() }
    }

    /// Declares a register backed by one fresh storage cell.
    pub fn add_register(&mut self, name: &str) -> RegId {
        let cell = self.cells.len() as u16;
        self.cells.push(0);
        self.writers.push(None);
        self.regs.push(RegDef { name: name.to_string(), cells: vec![cell] });
        RegId::from_index(self.regs.len() - 1)
    }

    /// Declares `n` registers named `prefix0..prefix{n-1}`, returning their ids.
    pub fn add_bank(&mut self, prefix: &str, n: usize) -> Vec<RegId> {
        (0..n).map(|i| self.add_register(&format!("{prefix}{i}"))).collect()
    }

    /// Declares a register that overlaps the storage of existing registers.
    ///
    /// Reading the new register reads the first cell of the first overlapped
    /// register; writing it writes (and reserving it reserves) every
    /// overlapped cell. This models ARM-style banked registers or SPARC
    /// register windows, where modifying one register affects others.
    ///
    /// # Panics
    ///
    /// Panics if `over` is empty.
    pub fn add_overlapping(&mut self, name: &str, over: &[RegId]) -> RegId {
        assert!(!over.is_empty(), "overlapping register must cover at least one register");
        let mut cells = Vec::new();
        for r in over {
            for &c in &self.regs[r.index()].cells {
                if !cells.contains(&c) {
                    cells.push(c);
                }
            }
        }
        self.regs.push(RegDef { name: name.to_string(), cells });
        RegId::from_index(self.regs.len() - 1)
    }

    /// Number of declared registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether no registers have been declared.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// The name a register was declared with.
    pub fn name(&self, reg: RegId) -> &str {
        &self.regs[reg.index()].name
    }

    /// Looks up a register by name.
    pub fn find(&self, name: &str) -> Option<RegId> {
        self.regs.iter().position(|r| r.name == name).map(RegId::from_index)
    }

    /// Architectural value of a register (its primary cell).
    #[inline]
    pub fn value_of(&self, reg: RegId) -> u32 {
        self.cells[self.regs[reg.index()].cells[0] as usize]
    }

    /// Directly sets the architectural value, bypassing hazard tracking.
    /// Intended for initialization and for functional-simulator use.
    #[inline]
    pub fn poke(&mut self, reg: RegId, value: u32) {
        for &c in &self.regs[reg.index()].cells {
            self.cells[c as usize] = value;
        }
    }

    /// The scoreboard entry covering a register, if any cell is reserved.
    #[inline]
    pub fn writer_of(&self, reg: RegId) -> Option<&Writer> {
        self.regs[reg.index()].cells.iter().find_map(|&c| self.writers[c as usize].as_ref())
    }

    /// True if no in-flight instruction has reserved any cell of `reg`.
    #[inline]
    pub fn readable(&self, reg: RegId) -> bool {
        self.regs[reg.index()].cells.iter().all(|&c| self.writers[c as usize].is_none())
    }

    /// True if `reg` can be reserved for writing (no outstanding writer on
    /// any of its cells). Guards write-after-write and write-after-read
    /// hazards as described in the paper.
    #[inline]
    pub fn writable(&self, reg: RegId) -> bool {
        self.readable(reg)
    }

    /// Reserves every cell of `reg` for `token`, currently in state `place`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a cell is already reserved by a different
    /// token; models must check [`RegisterFile::writable`] in the guard.
    pub fn reserve_write(&mut self, reg: RegId, token: TokenId, place: PlaceId) {
        for &c in &self.regs[reg.index()].cells {
            debug_assert!(
                self.writers[c as usize].is_none_or(|w| w.token == token),
                "reserve_write on already-reserved cell of {}",
                self.regs[reg.index()].name
            );
            self.writers[c as usize] = Some(Writer { token, place, value: None });
        }
    }

    /// Publishes the computed value of an in-flight write, making it
    /// available to forwarding reads ([`RegRef::read_fwd`]).
    pub fn publish(&mut self, reg: RegId, token: TokenId, value: u32) {
        for &c in &self.regs[reg.index()].cells {
            if let Some(w) = &mut self.writers[c as usize] {
                if w.token == token {
                    w.value = Some(value);
                }
            }
        }
    }

    /// Commits `value` to the storage of `reg` and clears the reservation
    /// held by `token` (other tokens' reservations are left untouched).
    pub fn writeback(&mut self, reg: RegId, token: TokenId, value: u32) {
        for &c in &self.regs[reg.index()].cells {
            self.cells[c as usize] = value;
            if let Some(w) = &self.writers[c as usize] {
                if w.token == token {
                    self.writers[c as usize] = None;
                }
            }
        }
    }

    /// True if the writer of `reg` is in state `place` and its value has
    /// been computed — the paper's `canRead(s)`.
    #[inline]
    pub fn can_read_in(&self, reg: RegId, place: PlaceId) -> bool {
        match self.writer_of(reg) {
            Some(w) => w.place == place && w.value.is_some(),
            None => false,
        }
    }

    /// The forwarded (published) value of the in-flight writer of `reg`.
    #[inline]
    pub fn forwarded(&self, reg: RegId) -> Option<u32> {
        self.writer_of(reg).and_then(|w| w.value)
    }

    /// The bitmask form of `canRead(s)` over a whole forwarding set: true
    /// if the in-flight writer of `reg` has published its value *and*
    /// resides in a place whose index bit is set in `mask`.
    ///
    /// Because a register has at most one in-flight writer, testing the
    /// writer's place against the mask is exactly equivalent to probing
    /// each forwarding place in turn with [`RegisterFile::can_read_in`] —
    /// which place matches never changes the value read (the writer's
    /// published value). This is the flat test the micro-op IR
    /// ([`crate::ir`]) compiles forwarding-set membership down to.
    #[inline]
    pub fn can_read_masked(&self, reg: RegId, mask: u64) -> bool {
        match self.writer_of(reg) {
            Some(w) => {
                w.value.is_some() && w.place.index() < 64 && (mask >> w.place.index()) & 1 == 1
            }
            None => false,
        }
    }

    /// Records that `token` has moved to `place`; updates every scoreboard
    /// entry the token holds. Called by the engine on every token move.
    pub fn note_move(&mut self, token: TokenId, place: PlaceId) {
        for w in self.writers.iter_mut().flatten() {
            if w.token == token {
                w.place = place;
            }
        }
    }

    /// Releases every reservation held by `token` (squash/flush path).
    /// Returns the number of cells released.
    pub fn release(&mut self, token: TokenId) -> usize {
        let mut n = 0;
        for w in self.writers.iter_mut() {
            if w.is_some_and(|x| x.token == token) {
                *w = None;
                n += 1;
            }
        }
        n
    }

    /// Number of cells currently reserved by any token.
    pub fn reserved_cells(&self) -> usize {
        self.writers.iter().filter(|w| w.is_some()).count()
    }

    /// Clears all reservations and zeroes all storage.
    pub fn reset(&mut self) {
        for c in &mut self.cells {
            *c = 0;
        }
        for w in &mut self.writers {
            *w = None;
        }
    }
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

/// A per-instruction reference to a register, with internal value storage —
/// the pipeline-latch copy of an operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegRef {
    reg: RegId,
    val: u32,
}

impl RegRef {
    /// Creates a reference to `reg` with internal value 0.
    pub fn new(reg: RegId) -> Self {
        RegRef { reg, val: 0 }
    }

    /// The referenced register.
    #[inline]
    pub fn reg(&self) -> RegId {
        self.reg
    }

    /// The internal (latched) value.
    #[inline]
    pub fn value(&self) -> u32 {
        self.val
    }

    /// `canRead()` — true if the register has no pending writer.
    #[inline]
    pub fn can_read(&self, rf: &RegisterFile) -> bool {
        rf.readable(self.reg)
    }

    /// `read()` — latches the architectural register value internally.
    #[inline]
    pub fn read(&mut self, rf: &RegisterFile) {
        self.val = rf.value_of(self.reg);
    }

    /// `canWrite()` — true if the register can be reserved for writing.
    #[inline]
    pub fn can_write(&self, rf: &RegisterFile) -> bool {
        rf.writable(self.reg)
    }

    /// `reserveWrite()` — reserves the register for the containing
    /// instruction (`token`, currently in `place`).
    #[inline]
    pub fn reserve_write(&self, rf: &mut RegisterFile, token: TokenId, place: PlaceId) {
        rf.reserve_write(self.reg, token, place);
    }

    /// Stores the computed result internally and publishes it for
    /// forwarding. The paper stores into the RegRef only; publication is the
    /// mechanism by which other instructions' `read(s)` observe it.
    #[inline]
    pub fn set(&mut self, rf: &mut RegisterFile, token: TokenId, value: u32) {
        self.val = value;
        rf.publish(self.reg, token, value);
    }

    /// Stores a value internally without publishing it — the latch half of
    /// [`RegRef::set`]. Pair with [`RegRef::publish`] when the publication
    /// point is a separate pipeline step (the IR `Publish` micro-op).
    #[inline]
    pub fn set_value(&mut self, value: u32) {
        self.val = value;
    }

    /// Publishes the internally latched value for forwarding — the
    /// publication half of [`RegRef::set`].
    #[inline]
    pub fn publish(&self, rf: &mut RegisterFile, token: TokenId) {
        rf.publish(self.reg, token, self.val);
    }

    /// `writeback()` — commits the internal value to the register file and
    /// clears this instruction's reservation.
    #[inline]
    pub fn writeback(&self, rf: &mut RegisterFile, token: TokenId) {
        rf.writeback(self.reg, token, self.val);
    }

    /// `canRead(s)` — true if the in-flight writer of the register is in
    /// state `place` and has published its value (the feedback/bypass path).
    #[inline]
    pub fn can_read_in(&self, rf: &RegisterFile, place: PlaceId) -> bool {
        rf.can_read_in(self.reg, place)
    }

    /// `read(s)` — latches the forwarded value from the in-flight writer.
    ///
    /// # Panics
    ///
    /// Panics if no forwarded value is available; models must check
    /// [`RegRef::can_read_in`] in the guard first, mirroring the paper's
    /// pairing rule for the interfaces.
    #[inline]
    pub fn read_fwd(&mut self, rf: &RegisterFile) {
        self.val = rf
            .forwarded(self.reg)
            .expect("read_fwd without a published forwarding value; check can_read_in in guard");
    }
}

/// A uniform operand: either a register reference or a constant.
///
/// Decode replaces each symbol of an operation class with an `Operand`; a
/// symbol pointing at a register becomes [`Operand::Reg`], one pointing at a
/// constant becomes [`Operand::Imm`]. The `Imm` variant implements the same
/// interface with constant semantics (always readable, `writeback` is a
/// no-op), exactly as the paper's `Const` object, so guards and transitions
/// can treat all operands uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A register operand.
    Reg(RegRef),
    /// A constant operand.
    Imm(u32),
    /// An unused operand slot (always readable, value 0, writes ignored).
    Absent,
}

impl Operand {
    /// Creates a register operand.
    pub fn reg(reg: RegId) -> Self {
        Operand::Reg(RegRef::new(reg))
    }

    /// Creates a constant operand.
    pub fn imm(value: u32) -> Self {
        Operand::Imm(value)
    }

    /// The latched value of the operand.
    #[inline]
    pub fn value(&self) -> u32 {
        match self {
            Operand::Reg(r) => r.value(),
            Operand::Imm(v) => *v,
            Operand::Absent => 0,
        }
    }

    /// The register id, if this is a register operand.
    #[inline]
    pub fn reg_id(&self) -> Option<RegId> {
        match self {
            Operand::Reg(r) => Some(r.reg()),
            _ => None,
        }
    }

    /// `canRead()`.
    #[inline]
    pub fn can_read(&self, rf: &RegisterFile) -> bool {
        match self {
            Operand::Reg(r) => r.can_read(rf),
            Operand::Imm(_) | Operand::Absent => true,
        }
    }

    /// `read()`.
    #[inline]
    pub fn read(&mut self, rf: &RegisterFile) {
        if let Operand::Reg(r) = self {
            r.read(rf);
        }
    }

    /// `canWrite()`.
    #[inline]
    pub fn can_write(&self, rf: &RegisterFile) -> bool {
        match self {
            Operand::Reg(r) => r.can_write(rf),
            Operand::Imm(_) | Operand::Absent => true,
        }
    }

    /// `reserveWrite()`.
    #[inline]
    pub fn reserve_write(&self, rf: &mut RegisterFile, token: TokenId, place: PlaceId) {
        if let Operand::Reg(r) = self {
            r.reserve_write(rf, token, place);
        }
    }

    /// Stores a computed value (and publishes it if a register operand).
    #[inline]
    pub fn set(&mut self, rf: &mut RegisterFile, token: TokenId, value: u32) {
        match self {
            Operand::Reg(r) => r.set(rf, token, value),
            Operand::Imm(v) => *v = value,
            Operand::Absent => {}
        }
    }

    /// Stores a computed value without publishing it (latch half of
    /// [`Operand::set`]; see [`RegRef::set_value`]).
    #[inline]
    pub fn set_value(&mut self, value: u32) {
        match self {
            Operand::Reg(r) => r.set_value(value),
            Operand::Imm(v) => *v = value,
            Operand::Absent => {}
        }
    }

    /// Publishes the latched value for forwarding — no-op for constants
    /// (they are never supplied by a forwarding path). The IR `Publish`
    /// micro-op calls this on every destination operand.
    #[inline]
    pub fn publish(&self, rf: &mut RegisterFile, token: TokenId) {
        if let Operand::Reg(r) = self {
            r.publish(rf, token);
        }
    }

    /// `writeback()` — no-op for constants, as in the paper.
    #[inline]
    pub fn writeback(&self, rf: &mut RegisterFile, token: TokenId) {
        if let Operand::Reg(r) = self {
            r.writeback(rf, token);
        }
    }

    /// `canRead(s)` — constants are never supplied by a forwarding path.
    #[inline]
    pub fn can_read_in(&self, rf: &RegisterFile, place: PlaceId) -> bool {
        match self {
            Operand::Reg(r) => r.can_read_in(rf, place),
            Operand::Imm(_) | Operand::Absent => false,
        }
    }

    /// Masked `canRead(s)`: the writer of the operand's register has
    /// published and sits in a place covered by `mask`
    /// ([`RegisterFile::can_read_masked`]).
    #[inline]
    pub fn can_read_fwd_masked(&self, rf: &RegisterFile, mask: u64) -> bool {
        match self {
            Operand::Reg(r) => rf.can_read_masked(r.reg(), mask),
            Operand::Imm(_) | Operand::Absent => false,
        }
    }

    /// True if the operand can be supplied now: from the register file, or
    /// forwarded from a writer in a place covered by `mask` — the bitmask
    /// twin of the spec layer's list-based obtainability probe.
    #[inline]
    pub fn obtainable_masked(&self, rf: &RegisterFile, mask: u64) -> bool {
        self.can_read(rf) || self.can_read_fwd_masked(rf, mask)
    }

    /// Latches the operand from its best available source (register file
    /// first, then the masked forwarding scoreboard). Must be guarded by
    /// [`Operand::obtainable_masked`].
    #[inline]
    pub fn obtain_masked(&mut self, rf: &RegisterFile, mask: u64) {
        if self.can_read(rf) {
            self.read(rf);
        } else if self.can_read_fwd_masked(rf, mask) {
            self.read_fwd(rf);
        } else {
            debug_assert!(false, "obtain_masked() without obtainable_masked() guard");
        }
    }

    /// `read(s)`.
    ///
    /// # Panics
    ///
    /// Panics for register operands without a published forwarding value;
    /// see [`RegRef::read_fwd`].
    #[inline]
    pub fn read_fwd(&mut self, rf: &RegisterFile) {
        if let Operand::Reg(r) = self {
            r.read_fwd(rf);
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{}", r.reg()),
            Operand::Imm(v) => write!(f, "#{v}"),
            Operand::Absent => write!(f, "-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u32) -> TokenId {
        TokenId { slot: n, gen: 0 }
    }
    fn pid(n: usize) -> PlaceId {
        PlaceId::from_index(n)
    }

    fn rf_with(n: usize) -> (RegisterFile, Vec<RegId>) {
        let mut rf = RegisterFile::new();
        let regs = rf.add_bank("r", n);
        (rf, regs)
    }

    #[test]
    fn plain_read_write_cycle() {
        let (mut rf, regs) = rf_with(2);
        rf.poke(regs[0], 10);
        let mut src = RegRef::new(regs[0]);
        let mut dst = RegRef::new(regs[1]);
        let t = tid(1);

        assert!(src.can_read(&rf));
        assert!(dst.can_write(&rf));
        src.read(&rf);
        dst.reserve_write(&mut rf, t, pid(0));
        assert!(!rf.readable(regs[1]), "reserved register must not be readable");
        assert!(!rf.writable(regs[1]), "reserved register must not be writable");

        dst.set(&mut rf, t, src.value() + 5);
        dst.writeback(&mut rf, t);
        assert_eq!(rf.value_of(regs[1]), 15);
        assert!(rf.readable(regs[1]), "writeback must clear the reservation");
    }

    #[test]
    fn waw_hazard_blocks_second_writer() {
        let (mut rf, regs) = rf_with(1);
        let a = RegRef::new(regs[0]);
        a.reserve_write(&mut rf, tid(1), pid(0));
        let b = RegRef::new(regs[0]);
        assert!(!b.can_write(&rf), "WAW: second writer must stall");
    }

    #[test]
    fn raw_hazard_blocks_reader_until_writeback() {
        let (mut rf, regs) = rf_with(1);
        let mut w = RegRef::new(regs[0]);
        w.reserve_write(&mut rf, tid(1), pid(0));
        let r = RegRef::new(regs[0]);
        assert!(!r.can_read(&rf), "RAW: reader must stall on pending write");
        w.set(&mut rf, tid(1), 99);
        assert!(!r.can_read(&rf), "publishing is not writeback");
        w.writeback(&mut rf, tid(1));
        assert!(r.can_read(&rf));
        assert_eq!(rf.value_of(regs[0]), 99);
    }

    #[test]
    fn forwarding_requires_state_and_value() {
        let (mut rf, regs) = rf_with(1);
        let mut w = RegRef::new(regs[0]);
        let t = tid(4);
        w.reserve_write(&mut rf, t, pid(2));

        let mut r = RegRef::new(regs[0]);
        // Writer in the right state but value not yet published.
        assert!(!r.can_read_in(&rf, pid(2)));
        w.set(&mut rf, t, 7);
        assert!(r.can_read_in(&rf, pid(2)), "value published, state matches");
        assert!(!r.can_read_in(&rf, pid(3)), "state mismatch");
        r.read_fwd(&rf);
        assert_eq!(r.value(), 7);
    }

    #[test]
    fn note_move_updates_writer_state() {
        let (mut rf, regs) = rf_with(1);
        let w = RegRef::new(regs[0]);
        let t = tid(4);
        w.reserve_write(&mut rf, t, pid(1));
        rf.note_move(t, pid(2));
        assert_eq!(rf.writer_of(regs[0]).unwrap().place, pid(2));
    }

    #[test]
    fn release_clears_squashed_reservations() {
        let (mut rf, regs) = rf_with(3);
        RegRef::new(regs[0]).reserve_write(&mut rf, tid(1), pid(0));
        RegRef::new(regs[1]).reserve_write(&mut rf, tid(1), pid(0));
        RegRef::new(regs[2]).reserve_write(&mut rf, tid(2), pid(0));
        assert_eq!(rf.release(tid(1)), 2);
        assert!(rf.readable(regs[0]));
        assert!(rf.readable(regs[1]));
        assert!(!rf.readable(regs[2]), "other token's reservation survives");
    }

    #[test]
    fn overlapping_registers_conflict() {
        let mut rf = RegisterFile::new();
        let lo = rf.add_register("lo");
        let hi = rf.add_register("hi");
        let pair = rf.add_overlapping("pair", &[lo, hi]);

        RegRef::new(pair).reserve_write(&mut rf, tid(1), pid(0));
        assert!(!rf.readable(lo), "overlapped register must see the hazard");
        assert!(!rf.readable(hi));

        let mut p = RegRef::new(pair);
        p.set(&mut rf, tid(1), 0xABCD);
        p.writeback(&mut rf, tid(1));
        assert_eq!(rf.value_of(lo), 0xABCD, "writing pair writes all overlapped cells");
        assert_eq!(rf.value_of(hi), 0xABCD);
        assert!(rf.readable(lo));
    }

    #[test]
    fn const_operand_has_const_semantics() {
        let (mut rf, _) = rf_with(1);
        let mut c = Operand::imm(12);
        assert!(c.can_read(&rf), "const canRead is always true");
        assert!(c.can_write(&rf));
        assert!(!c.can_read_in(&rf, pid(0)));
        c.read(&rf);
        assert_eq!(c.value(), 12);
        c.writeback(&mut rf, tid(0)); // must be a no-op
        assert_eq!(rf.reserved_cells(), 0);
    }

    #[test]
    fn absent_operand_is_inert() {
        let (mut rf, _) = rf_with(1);
        let mut a = Operand::Absent;
        assert!(a.can_read(&rf));
        a.read(&rf);
        assert_eq!(a.value(), 0);
        a.set(&mut rf, tid(0), 5);
        assert_eq!(a.value(), 0);
        assert!(a.reg_id().is_none());
    }

    #[test]
    fn find_by_name() {
        let (rf, regs) = rf_with(4);
        assert_eq!(rf.find("r2"), Some(regs[2]));
        assert_eq!(rf.find("nope"), None);
        assert_eq!(rf.name(regs[3]), "r3");
    }

    #[test]
    fn masked_forwarding_matches_the_list_probe() {
        let (mut rf, regs) = rf_with(2);
        let mut w = RegRef::new(regs[0]);
        let t = tid(4);
        w.reserve_write(&mut rf, t, pid(2));
        let op = Operand::reg(regs[0]);

        // Unpublished: neither form forwards.
        assert!(!rf.can_read_masked(regs[0], u64::MAX));
        assert!(!op.obtainable_masked(&rf, u64::MAX));

        w.set(&mut rf, t, 7);
        for place in 0..8usize {
            let mask = 1u64 << place;
            assert_eq!(
                op.can_read_fwd_masked(&rf, mask),
                op.can_read_in(&rf, pid(place)),
                "mask bit {place} must agree with the per-place probe"
            );
        }
        let mut fwd = Operand::reg(regs[0]);
        assert!(fwd.obtainable_masked(&rf, 1 << 2));
        fwd.obtain_masked(&rf, 1 << 2);
        assert_eq!(fwd.value(), 7, "masked obtain latches the forwarded value");

        // A free register obtains from the file regardless of the mask.
        rf.poke(regs[1], 9);
        let mut free = Operand::reg(regs[1]);
        assert!(free.obtainable_masked(&rf, 0));
        free.obtain_masked(&rf, 0);
        assert_eq!(free.value(), 9);
        assert!(Operand::imm(3).obtainable_masked(&rf, 0), "constants are always obtainable");
    }

    #[test]
    fn set_value_then_publish_matches_set() {
        let (mut rf, regs) = rf_with(1);
        let mut w = RegRef::new(regs[0]);
        let t = tid(4);
        w.reserve_write(&mut rf, t, pid(2));
        w.set_value(7);
        assert_eq!(w.value(), 7, "value latched internally");
        assert!(!rf.can_read_masked(regs[0], u64::MAX), "not yet published");
        w.publish(&mut rf, t);
        assert!(rf.can_read_masked(regs[0], 1 << 2), "published for forwarding");
        assert_eq!(rf.forwarded(regs[0]), Some(7));

        // Operand forms: Imm::set_value mutates the constant (like set),
        // publish is a no-op on non-register operands.
        let mut c = Operand::imm(1);
        c.set_value(9);
        assert_eq!(c.value(), 9);
        c.publish(&mut rf, t);
        let a = Operand::Absent;
        a.publish(&mut rf, t);
    }

    #[test]
    fn reset_clears_everything() {
        let (mut rf, regs) = rf_with(2);
        rf.poke(regs[0], 5);
        RegRef::new(regs[1]).reserve_write(&mut rf, tid(1), pid(0));
        rf.reset();
        assert_eq!(rf.value_of(regs[0]), 0);
        assert_eq!(rf.reserved_cells(), 0);
    }
}
