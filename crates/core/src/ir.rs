//! The typed micro-op IR for guards and actions (the compile-target of
//! the spec layer's synthesized behavior).
//!
//! The paper's claim is that an RCPN model is *compiled into* a
//! high-performance simulator. Opaque `Box<dyn Fn>` guards and actions
//! resist that compilation: the engine can only call them. Most of the
//! per-cycle guard/action work, however, is not custom at all — it is the
//! standard operand discipline [`crate::spec::PipelineSpec`] synthesizes
//! from an [`crate::spec::OperandPolicy`] (check sources obtainable,
//! latch them, reserve destinations) plus squash lists and delays that
//! are pure *data*. This module turns that majority into data too: a
//! [`Program`] is a short sequence of [`MicroOp`]s that the engine
//! interprets inline over flat state, with [`MicroOp::CallHook`] as the
//! escape hatch into a per-model hook table for genuinely custom
//! semantics (e.g. the ARM block-transfer micro-op issue).
//!
//! The payoff over closures:
//!
//! * **no indirect calls** on the hot path for synthesized steps — the
//!   interpreter is a small `match` the optimizer sees through;
//! * **forwarding as a bitmask** — `CheckReady`/`AcquireOperands` carry
//!   the resolved forwarding set as a place-index bitmask, so membership
//!   is one mask test against the scoreboard entry
//!   ([`crate::reg::RegisterFile::can_read_masked`]) instead of a loop
//!   over captured `PlaceId`s;
//! * **optimizable programs** — [`Program::fold`] constant-folds, and the
//!   compile step ([`crate::compiled`]) fuses a `[CheckReady]` guard with
//!   the `AcquireOperands` head of its action so the fire path latches
//!   operands from the sources the guard already probed.
//!
//! Micro-ops that touch operands (`CheckReady`, `AcquireOperands`,
//! `WriteBack`) see the token through the operand views of
//! [`crate::token::InstrData`] (`src_operands`, `dst_operand`); payload
//! types that keep the default empty views simply make those ops no-ops.
//!
//! Programs are validated by [`crate::builder::ModelBuilder::build`]:
//! guard programs may contain only pure ops ([`MicroOp::is_guard_op`]),
//! hook indices must resolve in the model's [`crate::model::Hooks`]
//! table, and every referenced place must exist.

use crate::ids::{PlaceId, TokenId};
use crate::model::{Fx, Hooks, Machine};
use crate::token::InstrData;

/// Width of the forwarding bitmask: place indices `0..64` are maskable.
/// Specs whose forwarding set reaches places beyond this fall back to
/// closure lowering (see [`place_mask`]).
pub const MASK_BITS: usize = 64;

/// One IR instruction. See the [module documentation](self) for the
/// overall design; per-op semantics are documented on each variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicroOp {
    /// Guard op: passes iff every source operand of the token is
    /// obtainable — readable from the register file, or forwardable from
    /// an in-flight writer residing in a place whose index bit is set in
    /// `fwd_mask` — and every destination operand is reservable.
    CheckReady {
        /// Place-index bitmask of the resolved forwarding set.
        fwd_mask: u64,
    },
    /// Action op: latches every source operand from its best source
    /// (register file first, then the forwarding scoreboard under
    /// `fwd_mask`) and reserves every destination operand for the firing
    /// token. Must be guarded by a matching [`MicroOp::CheckReady`] —
    /// enforced at build time: the transition's guard program must
    /// contain a `CheckReady` with the same mask.
    AcquireOperands {
        /// Place-index bitmask of the resolved forwarding set.
        fwd_mask: u64,
    },
    /// Action op: writes every destination operand back to the register
    /// file and clears the firing token's reservations on them, highest
    /// destination index first (so a model exposing `(dst, dst2)` commits
    /// the secondary destination before the primary — the ARM "load
    /// wins" base-writeback order).
    WriteBack,
    /// Action op: deposits a dataless reservation token into `place`,
    /// occupying its stage for `expire` cycles — the program-controlled
    /// form of a [`crate::model::ResArc`] output arc.
    ReserveRes {
        /// The place whose stage the reservation occupies.
        place: PlaceId,
        /// Cycles until the reservation expires.
        expire: u32,
    },
    /// Action op: releases every register reservation held by the firing
    /// token (the annul/squash bookkeeping made expressible as data).
    ReleaseRes,
    /// Action op: issues the flushes of a resolved redirect — every place
    /// in `flush` is squashed, in order. The squash list is the lowered
    /// form of a spec redirect rule's resolved places.
    EmitRedirect {
        /// The ordered squash list.
        flush: Box<[PlaceId]>,
    },
    /// Action op: publishes every destination operand's latched value to
    /// the forwarding scoreboard ([`crate::reg::Operand::publish`])
    /// without committing it to the register file — the synthesized form
    /// of a simple execute stage's "make the result bypassable" step,
    /// which previously needed a `CallHook`.
    Publish,
    /// Guard op: passes iff the token's pre-resolved condition
    /// ([`crate::token::InstrData::cond_passes`]) equals `expect`.
    /// `expect: false` guards annul paths. Only usable by payloads that
    /// resolve their condition into the token; conditions that read
    /// machine state outside the token stay closure guards (the hook
    /// boundary, see DESIGN.md §2d).
    CheckCond {
        /// The condition value that lets the guard pass.
        expect: bool,
    },
    /// Action op: annuls the firing token — marks the payload annulled
    /// ([`crate::token::InstrData::set_annulled`]) and releases every
    /// register reservation it holds. The data form of the condition-
    /// failed bubble conversion.
    Annul,
    /// Action op: overrides the token's delay in its destination place
    /// ([`Fx::set_token_delay`]).
    SetDelay(u32),
    /// Escape hatch: calls entry `n` of the model's hook table — the
    /// guard table when interpreted in a guard program, the action table
    /// in an action program. This is where genuinely custom semantics
    /// (user-supplied `read_then` steps, model-specific issue logic)
    /// live; everything else in a program is data.
    CallHook(u32),
}

impl MicroOp {
    /// Whether the op is legal in a guard program (pure: inspects the
    /// machine and token, mutates nothing).
    pub fn is_guard_op(&self) -> bool {
        matches!(
            self,
            MicroOp::CheckReady { .. } | MicroOp::CheckCond { .. } | MicroOp::CallHook(_)
        )
    }

    /// Whether the op is legal in an action program. Every op except the
    /// pure checks (whose only meaning is gating a firing, which an
    /// action can no longer do) may appear in an action.
    pub fn is_action_op(&self) -> bool {
        !matches!(self, MicroOp::CheckReady { .. } | MicroOp::CheckCond { .. })
    }

    /// Whether the op needs no [`Fx`] handle and no hook table: its only
    /// side effects are on the machine and the token, keyed by the firing
    /// token's id. Superblock formation ([`crate::compiled`]) admits
    /// exactly these ops — the direct-threaded fast path interprets them
    /// without materializing an effect collector.
    pub fn is_superblock_op(&self) -> bool {
        matches!(
            self,
            MicroOp::CheckReady { .. }
                | MicroOp::CheckCond { .. }
                | MicroOp::AcquireOperands { .. }
                | MicroOp::WriteBack
                | MicroOp::Publish
                | MicroOp::Annul
                | MicroOp::SetDelay(_)
        )
    }
}

/// A sequence of [`MicroOp`]s — the IR form of one guard or one action.
///
/// Guard programs pass iff every op passes (all ops must be
/// [`MicroOp::is_guard_op`]); action programs execute their ops in order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    ops: Vec<MicroOp>,
}

impl Program {
    /// Creates a program from an op sequence.
    pub fn new(ops: impl Into<Vec<MicroOp>>) -> Self {
        Program { ops: ops.into() }
    }

    /// The op sequence.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Whether the program contains no ops. The compile step drops empty
    /// programs entirely, so `has_guard`/`has_action` stay honest.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Constant-folds the program:
    ///
    /// * [`MicroOp::EmitRedirect`] with an empty squash list is dropped
    ///   (a redirect rule that resolved to nothing flushes nothing);
    /// * runs of [`MicroOp::SetDelay`] collapse to the last one (the
    ///   token-delay override is last-writer-wins).
    ///
    /// Folding never changes observable behavior; the fusion pass in
    /// [`crate::compiled`] builds on folded programs.
    pub fn fold(mut self) -> Program {
        self.ops.retain(|op| !matches!(op, MicroOp::EmitRedirect { flush } if flush.is_empty()));
        let mut folded: Vec<MicroOp> = Vec::with_capacity(self.ops.len());
        for op in self.ops {
            if matches!(op, MicroOp::SetDelay(_))
                && matches!(folded.last(), Some(MicroOp::SetDelay(_)))
            {
                *folded.last_mut().expect("just matched") = op;
            } else {
                folded.push(op);
            }
        }
        Program { ops: folded }
    }
}

/// Builds the place-index bitmask of a forwarding set; `None` when any
/// place index is outside the [`MASK_BITS`] mask width (callers fall
/// back to closure lowering — correctness never depends on the mask).
pub fn place_mask(places: &[PlaceId]) -> Option<u64> {
    let mut mask = 0u64;
    for p in places {
        if p.index() >= MASK_BITS {
            return None;
        }
        mask |= 1u64 << p.index();
    }
    Some(mask)
}

/// [`MicroOp::CheckReady`]: every source operand obtainable under
/// `fwd_mask`, every destination operand reservable.
pub fn check_ready<D: InstrData, R>(m: &Machine<R>, t: &D, fwd_mask: u64) -> bool {
    t.src_operands().iter().all(|s| s.obtainable_masked(&m.regs, fwd_mask))
        && (0..t.dst_count()).all(|i| t.dst_operand(i).can_write(&m.regs))
}

/// [`MicroOp::AcquireOperands`]: latch every source operand, reserve
/// every destination for the firing token. Must be guarded by a passing
/// [`check_ready`] in the same cycle.
pub fn acquire_operands<D: InstrData, R>(
    m: &mut Machine<R>,
    t: &mut D,
    fx: &mut Fx<D>,
    fwd_mask: u64,
) {
    acquire_operands_tok(m, t, fx.token(), fwd_mask);
}

/// [`acquire_operands`] keyed by the firing token's id directly (the
/// superblock interpreter carries no `Fx`).
pub(crate) fn acquire_operands_tok<D: InstrData, R>(
    m: &mut Machine<R>,
    t: &mut D,
    tok: TokenId,
    fwd_mask: u64,
) {
    for s in t.src_operands_mut() {
        s.obtain_masked(&m.regs, fwd_mask);
    }
    // The engine re-points the writer state to the destination place right
    // after the action; the initial place is a placeholder.
    let here = PlaceId::from_index(0);
    for i in 0..t.dst_count() {
        t.dst_operand_mut(i).reserve_write(&mut m.regs, tok, here);
    }
}

/// [`MicroOp::WriteBack`]: commit every destination operand, highest
/// index first.
pub fn write_back<D: InstrData, R>(m: &mut Machine<R>, t: &mut D, fx: &mut Fx<D>) {
    write_back_tok(m, t, fx.token());
}

/// [`write_back`] keyed by the firing token's id directly.
pub(crate) fn write_back_tok<D: InstrData, R>(m: &mut Machine<R>, t: &mut D, tok: TokenId) {
    for i in (0..t.dst_count()).rev() {
        t.dst_operand(i).writeback(&mut m.regs, tok);
    }
}

/// [`MicroOp::Publish`]: publish every destination operand's latched
/// value to the forwarding scoreboard (no register-file commit).
pub(crate) fn publish_results<D: InstrData, R>(m: &mut Machine<R>, t: &D, tok: TokenId) {
    for i in 0..t.dst_count() {
        t.dst_operand(i).publish(&mut m.regs, tok);
    }
}

/// [`MicroOp::Annul`]: mark the payload annulled and release every
/// register reservation the firing token holds.
pub(crate) fn annul_token<D: InstrData, R>(m: &mut Machine<R>, t: &mut D, tok: TokenId) {
    t.set_annulled();
    m.regs.release(tok);
}

/// Interprets a guard program: every op must pass.
///
/// Programs reaching the engine were validated at build time, so a
/// non-guard op here is a compiler bug, not a model error.
pub(crate) fn eval_guard<D: InstrData, R>(
    prog: &Program,
    m: &Machine<R>,
    t: &D,
    hooks: &Hooks<D, R>,
) -> bool {
    prog.ops.iter().all(|op| match op {
        MicroOp::CheckReady { fwd_mask } => check_ready(m, t, *fwd_mask),
        MicroOp::CheckCond { expect } => t.cond_passes() == *expect,
        MicroOp::CallHook(i) => (hooks.guards[*i as usize])(m, t),
        other => unreachable!("non-guard op {other:?} in guard program (validated at build)"),
    })
}

/// Interprets an action program in order.
pub(crate) fn run_action<D: InstrData, R>(
    ops: &[MicroOp],
    m: &mut Machine<R>,
    t: &mut D,
    fx: &mut Fx<D>,
    hooks: &Hooks<D, R>,
) {
    for op in ops {
        match op {
            MicroOp::AcquireOperands { fwd_mask } => acquire_operands(m, t, fx, *fwd_mask),
            MicroOp::WriteBack => write_back(m, t, fx),
            MicroOp::Publish => publish_results(m, t, fx.token()),
            MicroOp::Annul => annul_token(m, t, fx.token()),
            MicroOp::ReserveRes { place, expire } => fx.reserve(*place, *expire),
            MicroOp::ReleaseRes => {
                m.regs.release(fx.token());
            }
            MicroOp::EmitRedirect { flush } => {
                for &p in flush.iter() {
                    fx.flush(p);
                }
            }
            MicroOp::SetDelay(d) => fx.set_token_delay(*d),
            MicroOp::CallHook(i) => (hooks.actions[*i as usize])(m, t, fx),
            MicroOp::CheckReady { .. } | MicroOp::CheckCond { .. } => {
                unreachable!("pure check op in action program (validated at build)")
            }
        }
    }
}

/// Fused-guard phase of a `CheckReady`+`AcquireOperands` pair: checks
/// readiness while memoizing, per source operand, whether it will latch
/// from the forwarding scoreboard (`true`) or the register file
/// (`false`). The memo is only meaningful when this returns `true`, and
/// only until the machine state next changes — the engine fires the
/// transition immediately on a pass.
pub(crate) fn fused_check<D: InstrData, R>(
    m: &Machine<R>,
    t: &D,
    fwd_mask: u64,
    memo: &mut Vec<bool>,
) -> bool {
    memo.clear();
    for s in t.src_operands() {
        if s.can_read(&m.regs) {
            memo.push(false);
        } else if s.can_read_fwd_masked(&m.regs, fwd_mask) {
            memo.push(true);
        } else {
            return false;
        }
    }
    (0..t.dst_count()).all(|i| t.dst_operand(i).can_write(&m.regs))
}

/// Fused-acquire phase: latches each source from the memoized source
/// decided by [`fused_check`] (no re-probing) and reserves the
/// destinations — the whole point of the fusion.
pub(crate) fn fused_acquire<D: InstrData, R>(
    m: &mut Machine<R>,
    t: &mut D,
    fx: &mut Fx<D>,
    memo: &[bool],
) {
    fused_acquire_tok(m, t, fx.token(), memo);
}

/// [`fused_acquire`] keyed by the firing token's id directly.
pub(crate) fn fused_acquire_tok<D: InstrData, R>(
    m: &mut Machine<R>,
    t: &mut D,
    tok: TokenId,
    memo: &[bool],
) {
    for (s, &from_fwd) in t.src_operands_mut().iter_mut().zip(memo) {
        if from_fwd {
            s.read_fwd(&m.regs);
        } else {
            s.read(&m.regs);
        }
    }
    let here = PlaceId::from_index(0);
    for i in 0..t.dst_count() {
        t.dst_operand_mut(i).reserve_write(&mut m.regs, tok, here);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{OpClassId, RegId, TokenId};
    use crate::reg::{Operand, RegisterFile};

    /// A token exposing two sources and one destination.
    #[derive(Debug)]
    struct Tok {
        srcs: [Operand; 2],
        dst: Operand,
    }
    impl InstrData for Tok {
        fn op_class(&self) -> OpClassId {
            OpClassId::from_index(0)
        }
        fn src_operands(&self) -> &[Operand] {
            &self.srcs
        }
        fn src_operands_mut(&mut self) -> &mut [Operand] {
            &mut self.srcs
        }
        fn dst_count(&self) -> usize {
            1
        }
        fn dst_operand(&self, i: usize) -> &Operand {
            assert_eq!(i, 0);
            &self.dst
        }
        fn dst_operand_mut(&mut self, i: usize) -> &mut Operand {
            assert_eq!(i, 0);
            &mut self.dst
        }
    }

    fn machine(n: usize) -> (Machine<()>, Vec<RegId>) {
        let mut rf = RegisterFile::new();
        let regs = rf.add_bank("r", n);
        (Machine::new(rf, ()), regs)
    }

    fn tid(n: u32) -> TokenId {
        TokenId { slot: n, gen: 0 }
    }

    #[test]
    fn place_mask_builds_and_rejects_wide_sets() {
        let ps = [PlaceId::from_index(1), PlaceId::from_index(3)];
        assert_eq!(place_mask(&ps), Some(0b1010));
        assert_eq!(place_mask(&[]), Some(0));
        assert_eq!(place_mask(&[PlaceId::from_index(MASK_BITS)]), None);
    }

    #[test]
    fn guard_op_classification() {
        assert!(MicroOp::CheckReady { fwd_mask: 0 }.is_guard_op());
        assert!(MicroOp::CallHook(0).is_guard_op());
        assert!(!MicroOp::AcquireOperands { fwd_mask: 0 }.is_guard_op());
        assert!(!MicroOp::WriteBack.is_guard_op());
        assert!(!MicroOp::CheckReady { fwd_mask: 0 }.is_action_op());
        assert!(MicroOp::SetDelay(1).is_action_op());
    }

    #[test]
    fn fold_drops_empty_redirects_and_merges_delays() {
        let p = Program::new(vec![
            MicroOp::EmitRedirect { flush: Box::from([]) },
            MicroOp::SetDelay(1),
            MicroOp::SetDelay(7),
            MicroOp::CallHook(0),
            MicroOp::SetDelay(2),
        ])
        .fold();
        assert_eq!(
            p.ops(),
            &[MicroOp::SetDelay(7), MicroOp::CallHook(0), MicroOp::SetDelay(2)],
            "last delay of a run wins; hooks break the run"
        );
        let kept = Program::new(vec![MicroOp::EmitRedirect {
            flush: Box::from([PlaceId::from_index(1)]),
        }])
        .fold();
        assert_eq!(kept.len(), 1, "non-empty redirects survive folding");
    }

    #[test]
    fn check_ready_matches_scoreboard_state() {
        let (mut m, regs) = machine(3);
        let t = Tok { srcs: [Operand::reg(regs[0]), Operand::imm(5)], dst: Operand::reg(regs[1]) };
        assert!(check_ready(&m, &t, 0), "clean scoreboard: ready");

        // A writer on the source blocks readiness from the register file…
        m.regs.reserve_write(regs[0], tid(9), PlaceId::from_index(2));
        assert!(!check_ready(&m, &t, 0));
        // …until it publishes in a masked forwarding place.
        m.regs.publish(regs[0], tid(9), 42);
        assert!(check_ready(&m, &t, 1 << 2), "writer in masked place forwards");
        assert!(!check_ready(&m, &t, 1 << 3), "writer outside the mask does not");

        // A writer on the destination blocks reservation regardless.
        m.regs.release(tid(9));
        m.regs.reserve_write(regs[1], tid(8), PlaceId::from_index(2));
        assert!(!check_ready(&m, &t, u64::MAX));
    }

    #[test]
    fn acquire_latches_and_reserves_like_the_closure_discipline() {
        let (mut m, regs) = machine(3);
        m.regs.poke(regs[0], 11);
        let mut t = Tok {
            srcs: [Operand::reg(regs[0]), Operand::reg(regs[2])],
            dst: Operand::reg(regs[1]),
        };
        // r2 is forwarded from a writer in place 4.
        m.regs.reserve_write(regs[2], tid(7), PlaceId::from_index(4));
        m.regs.publish(regs[2], tid(7), 33);
        let mask = 1u64 << 4;
        assert!(check_ready(&m, &t, mask));

        let mut fx = Fx::new(Some(tid(1)));
        acquire_operands(&mut m, &mut t, &mut fx, mask);
        assert_eq!(t.srcs[0].value(), 11, "register-file source latched");
        assert_eq!(t.srcs[1].value(), 33, "forwarded source latched");
        assert!(!m.regs.writable(regs[1]), "destination reserved");

        // Fused check+acquire produces the exact same outcome.
        let (mut m2, regs2) = machine(3);
        m2.regs.poke(regs2[0], 11);
        let mut t2 = Tok {
            srcs: [Operand::reg(regs2[0]), Operand::reg(regs2[2])],
            dst: Operand::reg(regs2[1]),
        };
        m2.regs.reserve_write(regs2[2], tid(7), PlaceId::from_index(4));
        m2.regs.publish(regs2[2], tid(7), 33);
        let mut memo = Vec::new();
        assert!(fused_check(&m2, &t2, mask, &mut memo));
        assert_eq!(memo, vec![false, true]);
        let mut fx2 = Fx::new(Some(tid(1)));
        fused_acquire(&mut m2, &mut t2, &mut fx2, &memo);
        assert_eq!((t2.srcs[0].value(), t2.srcs[1].value()), (11, 33));
        assert!(!m2.regs.writable(regs2[1]));
    }

    #[test]
    fn write_back_commits_reverse_index_order() {
        let (mut m, regs) = machine(2);
        let mut t = Tok { srcs: [Operand::Absent, Operand::Absent], dst: Operand::reg(regs[0]) };
        let id = tid(3);
        let mut fx = Fx::new(Some(id));
        t.dst.reserve_write(&mut m.regs, id, PlaceId::from_index(0));
        t.dst.set(&mut m.regs, id, 99);
        write_back(&mut m, &mut t, &mut fx);
        assert_eq!(m.regs.value_of(regs[0]), 99);
        assert!(m.regs.writable(regs[0]), "reservation cleared by writeback");
    }

    /// A token with a destination, a pre-resolved condition and an annul
    /// flag (for the `Publish`/`CheckCond`/`Annul` ops).
    #[derive(Debug)]
    struct CondTok {
        dst: Operand,
        cond: bool,
        annulled: bool,
    }
    impl InstrData for CondTok {
        fn op_class(&self) -> OpClassId {
            OpClassId::from_index(0)
        }
        fn dst_count(&self) -> usize {
            1
        }
        fn dst_operand(&self, i: usize) -> &Operand {
            assert_eq!(i, 0);
            &self.dst
        }
        fn dst_operand_mut(&mut self, i: usize) -> &mut Operand {
            assert_eq!(i, 0);
            &mut self.dst
        }
        fn annulled(&self) -> bool {
            self.annulled
        }
        fn set_annulled(&mut self) {
            self.annulled = true;
        }
        fn cond_passes(&self) -> bool {
            self.cond
        }
    }

    #[test]
    fn new_op_classification() {
        assert!(MicroOp::CheckCond { expect: false }.is_guard_op());
        assert!(!MicroOp::CheckCond { expect: true }.is_action_op());
        assert!(MicroOp::Publish.is_action_op());
        assert!(!MicroOp::Publish.is_guard_op());
        assert!(MicroOp::Annul.is_action_op());
        assert!(!MicroOp::Annul.is_guard_op());
        for op in [
            MicroOp::CheckReady { fwd_mask: 0 },
            MicroOp::CheckCond { expect: true },
            MicroOp::AcquireOperands { fwd_mask: 0 },
            MicroOp::WriteBack,
            MicroOp::Publish,
            MicroOp::Annul,
            MicroOp::SetDelay(1),
        ] {
            assert!(op.is_superblock_op(), "{op:?} must be superblockable");
        }
        for op in [
            MicroOp::CallHook(0),
            MicroOp::ReserveRes { place: PlaceId::from_index(0), expire: 1 },
            MicroOp::ReleaseRes,
            MicroOp::EmitRedirect { flush: Box::from([PlaceId::from_index(0)]) },
        ] {
            assert!(!op.is_superblock_op(), "{op:?} must bail out of superblocks");
        }
    }

    #[test]
    fn publish_makes_result_forwardable_without_committing() {
        let (mut m, regs) = machine(2);
        m.regs.poke(regs[0], 5);
        let mut t = CondTok { dst: Operand::reg(regs[0]), cond: true, annulled: false };
        let id = tid(4);
        t.dst.reserve_write(&mut m.regs, id, PlaceId::from_index(3));
        t.dst.set_value(77);
        publish_results(&mut m, &t, id);
        assert!(m.regs.can_read_masked(regs[0], 1 << 3), "published value forwards");
        assert_eq!(m.regs.value_of(regs[0]), 5, "register file not committed");
        assert_eq!(m.regs.forwarded(regs[0]), Some(77));
    }

    #[test]
    fn annul_sets_flag_and_releases_reservations() {
        let (mut m, regs) = machine(2);
        let mut t = CondTok { dst: Operand::reg(regs[0]), cond: false, annulled: false };
        let id = tid(6);
        t.dst.reserve_write(&mut m.regs, id, PlaceId::from_index(0));
        assert!(!m.regs.writable(regs[0]));
        annul_token(&mut m, &mut t, id);
        assert!(t.annulled());
        assert!(m.regs.writable(regs[0]), "reservation released by annul");
    }

    #[test]
    fn check_cond_matches_token_view() {
        let (m, regs) = machine(1);
        let hooks: Hooks<CondTok, ()> = Hooks::new();
        let taken = CondTok { dst: Operand::reg(regs[0]), cond: true, annulled: false };
        let failed = CondTok { dst: Operand::reg(regs[0]), cond: false, annulled: false };
        let wants_pass = Program::new(vec![MicroOp::CheckCond { expect: true }]);
        let wants_fail = Program::new(vec![MicroOp::CheckCond { expect: false }]);
        assert!(eval_guard(&wants_pass, &m, &taken, &hooks));
        assert!(!eval_guard(&wants_pass, &m, &failed, &hooks));
        assert!(eval_guard(&wants_fail, &m, &failed, &hooks));
        assert!(!eval_guard(&wants_fail, &m, &taken, &hooks));
    }

    #[test]
    fn default_operand_views_make_operand_ops_trivial() {
        /// A payload that keeps the default (empty) operand views.
        #[derive(Debug)]
        struct Plain;
        impl InstrData for Plain {
            fn op_class(&self) -> OpClassId {
                OpClassId::from_index(0)
            }
        }
        let (mut m, _) = machine(1);
        assert!(check_ready(&m, &Plain, 0), "no operands: trivially ready");
        let mut fx = Fx::new(Some(tid(0)));
        acquire_operands(&mut m, &mut Plain, &mut fx, 0);
        assert_eq!(m.regs.reserved_cells(), 0);
    }
}
