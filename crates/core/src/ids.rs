//! Dense, copyable identifiers for every entity in an RCPN model.
//!
//! All model entities (stages, places, transitions, sub-nets, operation
//! classes) are stored in flat vectors inside [`crate::model::Model`]; the id
//! types below are newtyped indices into those vectors. Tokens additionally
//! carry a generation counter so that a stale [`TokenId`] (e.g. one recorded
//! in the register scoreboard before its instruction was squashed) can never
//! be confused with a recycled pool slot.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Returns the raw index of this id.
            ///
            /// Useful for indexing user-side side tables that parallel the
            /// model's own storage (e.g. per-place counters).
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            ///
            /// The index is not validated here; passing an index that does
            /// not belong to the model that produced it will cause a panic
            /// later, when the id is used.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $name(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a pipeline stage (latch, reservation station, or other
    /// storage element an instruction can reside in).
    StageId,
    "S"
);
define_id!(
    /// Identifies a place: the state of an instruction, bound to a stage.
    PlaceId,
    "P"
);
define_id!(
    /// Identifies a transition: the functionality executed when an
    /// instruction changes state.
    TransitionId,
    "T"
);
define_id!(
    /// Identifies a source transition: a transition with no input place that
    /// belongs to the instruction-independent sub-net (e.g. fetch).
    SourceId,
    "F"
);
define_id!(
    /// Identifies a sub-net. Every operation class owns one sub-net; the
    /// instruction-independent portion of the model is a sub-net too.
    SubnetId,
    "N"
);
define_id!(
    /// Identifies an operation class: a group of instructions that flow
    /// through the same pipeline path and share a binary format.
    OpClassId,
    "C"
);
define_id!(
    /// Identifies a register in a [`crate::reg::RegisterFile`].
    RegId,
    "R"
);

/// Identifies an in-flight token. Combines a pool slot with a generation
/// counter so recycled slots do not alias old tokens.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId {
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

impl TokenId {
    /// Returns the pool slot of the token.
    #[inline]
    pub fn slot(self) -> usize {
        self.slot as usize
    }

    /// Returns the generation counter of the token.
    #[inline]
    pub fn generation(self) -> u32 {
        self.gen
    }
}

impl fmt::Debug for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tok{}.{}", self.slot, self.gen)
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let p = PlaceId::from_index(7);
        assert_eq!(p.index(), 7);
        assert_eq!(format!("{p}"), "P7");
        assert_eq!(format!("{p:?}"), "P7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = StageId::from_index(1);
        let b = StageId::from_index(2);
        assert!(a < b);
        let mut set = HashSet::new();
        set.insert(a);
        set.insert(b);
        set.insert(a);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn token_id_distinguishes_generations() {
        let t1 = TokenId { slot: 3, gen: 0 };
        let t2 = TokenId { slot: 3, gen: 1 };
        assert_ne!(t1, t2);
        assert_eq!(t1.slot(), t2.slot());
        assert_eq!(format!("{t2}"), "tok3.1");
    }
}
