//! Tokens and the token pool.
//!
//! RCPN distinguishes two groups of tokens (paper, Section 3):
//!
//! * **Instruction tokens** carry the decoded data of one instruction being
//!   executed in the pipeline. Each instruction token flows through the
//!   sub-net of its operation class.
//! * **Reservation tokens** carry no data; their presence in a place marks
//!   the corresponding pipeline stage as occupied (e.g. a branch stalling
//!   the fetch latch).
//!
//! Tokens live in a generational pool so that ids recorded elsewhere (the
//! register scoreboard, traces) can detect when a token has retired or been
//! squashed and its slot recycled.

use crate::ids::{OpClassId, PlaceId, TokenId};
use crate::reg::Operand;

/// Payload carried by instruction tokens.
///
/// Implemented by the ISA-specific decoded-instruction type. The engine only
/// needs to know the operation class of the payload; everything else is
/// interpreted by the model's guards and actions.
///
/// The **operand views** (`src_operands`, `dst_operand`, …) expose the
/// payload's resolved [`Operand`]s to the micro-op IR ([`crate::ir`]):
/// `CheckReady`/`AcquireOperands`/`WriteBack` operate on exactly these
/// slices. The defaults present an operand-less payload, which keeps
/// every existing token type working unchanged — IR operand ops over such
/// payloads are trivially satisfied no-ops. A payload that wants its read
/// steps lowered to IR overrides the views (and its
/// [`crate::spec::OperandPolicy`] opts in with `lowers_to_ir`).
pub trait InstrData: 'static {
    /// The operation class of this instruction, which selects the sub-net
    /// its token flows through. The class may change over the lifetime of a
    /// token — typically once, at decode, when a raw fetched word becomes a
    /// classified instruction.
    fn op_class(&self) -> OpClassId;

    /// The source operands the IR `CheckReady`/`AcquireOperands` micro-ops
    /// probe and latch. Defaults to no operands.
    fn src_operands(&self) -> &[Operand] {
        &[]
    }

    /// Mutable view of the source operands (latched in place by
    /// `AcquireOperands`). Defaults to no operands.
    fn src_operands_mut(&mut self) -> &mut [Operand] {
        &mut []
    }

    /// Number of destination operands (`CheckReady` reservability checks,
    /// `AcquireOperands` reservations, `WriteBack` commits). Destinations
    /// are indexed rather than sliced because payloads commonly keep them
    /// in separate fields (`dst`, `dst2`). Defaults to zero.
    fn dst_count(&self) -> usize {
        0
    }

    /// The `i`-th destination operand, `i < dst_count()`.
    ///
    /// # Panics
    ///
    /// The default panics: it is unreachable while `dst_count()` is 0.
    fn dst_operand(&self, i: usize) -> &Operand {
        panic!("token exposes no destination operand (index {i})")
    }

    /// Mutable access to the `i`-th destination operand.
    ///
    /// # Panics
    ///
    /// The default panics: it is unreachable while `dst_count()` is 0.
    fn dst_operand_mut(&mut self, i: usize) -> &mut Operand {
        panic!("token exposes no destination operand (index {i})")
    }

    /// Whether this instruction has been annulled (its condition failed
    /// and it flows through the pipe as a bubble). Probed by models;
    /// set by the IR `Annul` micro-op. Defaults to `false`.
    fn annulled(&self) -> bool {
        false
    }

    /// Marks the instruction annulled (IR `Annul`). The default is a
    /// no-op for payloads that carry no annul flag.
    fn set_annulled(&mut self) {}

    /// Whether the instruction's predication/condition holds, for
    /// payloads that pre-resolve it into the token (IR `CheckCond`).
    /// Payloads whose condition depends on machine state outside the
    /// token (e.g. ARM's CPSR) must keep condition checks in closure
    /// guards instead — this view sees only the token. Defaults to
    /// `true` (unconditional).
    fn cond_passes(&self) -> bool {
        true
    }
}

/// Whether a token is an instruction token or a reservation token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Carries instruction data; processed by [`crate::engine::Engine`].
    Instruction,
    /// Carries no data; occupies stage capacity until it expires.
    Reservation,
}

/// One in-flight token.
#[derive(Debug)]
pub struct Token<D> {
    pub(crate) id: TokenId,
    pub(crate) kind: TokenKind,
    pub(crate) place: PlaceId,
    /// First cycle at which the token may enable an output transition.
    pub(crate) ready_at: u64,
    /// Cycle at which the token entered its current place.
    pub(crate) arrived_at: u64,
    /// Global allocation sequence number; preserves program order.
    pub(crate) seq: u64,
    /// Payload; `None` for reservation tokens.
    pub(crate) data: Option<D>,
}

impl<D> Token<D> {
    /// The token's id.
    #[inline]
    pub fn id(&self) -> TokenId {
        self.id
    }

    /// Whether this is an instruction or reservation token.
    #[inline]
    pub fn kind(&self) -> TokenKind {
        self.kind
    }

    /// The place the token currently resides in.
    #[inline]
    pub fn place(&self) -> PlaceId {
        self.place
    }

    /// The first cycle at which the token may leave its place.
    #[inline]
    pub fn ready_at(&self) -> u64 {
        self.ready_at
    }

    /// The cycle at which the token entered its current place.
    #[inline]
    pub fn arrived_at(&self) -> u64 {
        self.arrived_at
    }

    /// Allocation sequence number; lower means older (program order).
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The instruction payload, if any.
    #[inline]
    pub fn data(&self) -> Option<&D> {
        self.data.as_ref()
    }

    /// Mutable access to the instruction payload, if any.
    #[inline]
    pub fn data_mut(&mut self) -> Option<&mut D> {
        self.data.as_mut()
    }
}

struct Slot<D> {
    gen: u32,
    token: Option<Token<D>>,
}

/// Generational pool of tokens.
///
/// Slots are recycled through a free list; each reuse bumps the slot's
/// generation so stale [`TokenId`]s resolve to `None`.
pub struct TokenPool<D> {
    slots: Vec<Slot<D>>,
    free: Vec<u32>,
    next_seq: u64,
    live: usize,
}

impl<D> TokenPool<D> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        TokenPool { slots: Vec::new(), free: Vec::new(), next_seq: 0, live: 0 }
    }

    /// Number of live tokens.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total number of tokens ever allocated.
    #[inline]
    pub fn allocated(&self) -> u64 {
        self.next_seq
    }

    /// Allocates a token and returns its id.
    pub fn alloc(
        &mut self,
        kind: TokenKind,
        data: Option<D>,
        place: PlaceId,
        arrived_at: u64,
        ready_at: u64,
    ) -> TokenId {
        debug_assert_eq!(kind == TokenKind::Reservation, data.is_none());
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot { gen: 0, token: None });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[slot as usize].gen;
        let id = TokenId { slot, gen };
        self.slots[slot as usize].token =
            Some(Token { id, kind, place, ready_at, arrived_at, seq, data });
        id
    }

    /// Looks up a live token.
    #[inline]
    pub fn get(&self, id: TokenId) -> Option<&Token<D>> {
        let slot = self.slots.get(id.slot())?;
        if slot.gen != id.gen {
            return None;
        }
        slot.token.as_ref()
    }

    /// Looks up a live token mutably.
    #[inline]
    pub fn get_mut(&mut self, id: TokenId) -> Option<&mut Token<D>> {
        let slot = self.slots.get_mut(id.slot())?;
        if slot.gen != id.gen {
            return None;
        }
        slot.token.as_mut()
    }

    /// Removes a token from the pool, returning it.
    ///
    /// The slot's generation is bumped so the id can no longer resolve.
    ///
    /// # Panics
    ///
    /// Panics if the id does not refer to a live token.
    pub fn take(&mut self, id: TokenId) -> Token<D> {
        let slot = &mut self.slots[id.slot()];
        assert_eq!(slot.gen, id.gen, "stale token id {id}");
        let tok = slot.token.take().expect("token already taken");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.slot); // id.slot is the raw u32
        self.live -= 1;
        tok
    }

    /// Reinserts a token previously removed with [`TokenPool::take`] under a
    /// fresh id (the payload and bookkeeping fields are preserved; the seq
    /// number is kept so program order survives re-insertion).
    pub fn reinsert(&mut self, mut token: Token<D>) -> TokenId {
        self.live += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot { gen: 0, token: None });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[slot as usize].gen;
        let id = TokenId { slot, gen };
        token.id = id;
        self.slots[slot as usize].token = Some(token);
        id
    }

    /// Iterates over all live tokens.
    pub fn iter(&self) -> impl Iterator<Item = &Token<D>> {
        self.slots.iter().filter_map(|s| s.token.as_ref())
    }
}

impl<D> Default for TokenPool<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D: std::fmt::Debug> std::fmt::Debug for TokenPool<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenPool")
            .field("live", &self.live)
            .field("allocated", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(i: usize) -> PlaceId {
        PlaceId::from_index(i)
    }

    #[test]
    fn alloc_get_take() {
        let mut pool: TokenPool<u32> = TokenPool::new();
        let id = pool.alloc(TokenKind::Instruction, Some(42), place(0), 1, 2);
        assert_eq!(pool.live(), 1);
        let tok = pool.get(id).unwrap();
        assert_eq!(tok.data(), Some(&42));
        assert_eq!(tok.place(), place(0));
        assert_eq!(tok.arrived_at(), 1);
        assert_eq!(tok.ready_at(), 2);
        let tok = pool.take(id);
        assert_eq!(tok.data, Some(42));
        assert_eq!(pool.live(), 0);
        assert!(pool.get(id).is_none(), "taken id must not resolve");
    }

    #[test]
    fn recycled_slot_gets_new_generation() {
        let mut pool: TokenPool<u32> = TokenPool::new();
        let a = pool.alloc(TokenKind::Instruction, Some(1), place(0), 0, 0);
        pool.take(a);
        let b = pool.alloc(TokenKind::Instruction, Some(2), place(0), 0, 0);
        assert_eq!(a.slot(), b.slot());
        assert_ne!(a, b);
        assert!(pool.get(a).is_none());
        assert_eq!(pool.get(b).unwrap().data(), Some(&2));
    }

    #[test]
    fn seq_numbers_increase() {
        let mut pool: TokenPool<u32> = TokenPool::new();
        let a = pool.alloc(TokenKind::Instruction, Some(1), place(0), 0, 0);
        let b = pool.alloc(TokenKind::Instruction, Some(2), place(0), 0, 0);
        assert!(pool.get(a).unwrap().seq() < pool.get(b).unwrap().seq());
        assert_eq!(pool.allocated(), 2);
    }

    #[test]
    fn reservation_tokens_have_no_data() {
        let mut pool: TokenPool<u32> = TokenPool::new();
        let id = pool.alloc(TokenKind::Reservation, None, place(3), 5, 6);
        let tok = pool.get(id).unwrap();
        assert_eq!(tok.kind(), TokenKind::Reservation);
        assert!(tok.data().is_none());
    }

    #[test]
    fn reinsert_preserves_seq() {
        let mut pool: TokenPool<u32> = TokenPool::new();
        let a = pool.alloc(TokenKind::Instruction, Some(7), place(0), 0, 0);
        let seq = pool.get(a).unwrap().seq();
        let tok = pool.take(a);
        let b = pool.reinsert(tok);
        assert_ne!(a, b);
        assert_eq!(pool.get(b).unwrap().seq(), seq);
        assert_eq!(pool.get(b).unwrap().id(), b);
    }

    #[test]
    fn iter_visits_live_tokens() {
        let mut pool: TokenPool<u32> = TokenPool::new();
        let a = pool.alloc(TokenKind::Instruction, Some(1), place(0), 0, 0);
        let _b = pool.alloc(TokenKind::Instruction, Some(2), place(0), 0, 0);
        pool.take(a);
        let vals: Vec<u32> = pool.iter().map(|t| *t.data().unwrap()).collect();
        assert_eq!(vals, vec![2]);
    }
}
