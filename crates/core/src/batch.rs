//! Parallel batch simulation over the compiled-model seam.
//!
//! The compile step exists so that one model can drive many runs:
//! [`crate::compiled::CompiledModel::instantiate`] is O(places) and every
//! engine shares the read-only `ExecPlan` tables and the
//! model's guard/action closures by reference. This module supplies the
//! missing half of that bargain — a way to actually *run* many
//! instantiations at once.
//!
//! [`BatchRunner`] is a deliberately small, hand-rolled fork/join pool
//! (plain `std::thread::scope`; this workspace is offline and vendors no
//! runtime dependencies, see `DESIGN.md`). It fans a slice of job
//! descriptions across N workers; each worker claims jobs from a shared
//! atomic cursor, runs them — typically: instantiate an engine from a
//! shared compiled artifact, simulate, return [`Stats`] — and the runner
//! reassembles results **by job index**, so the output vector is
//! bit-identical to a serial run regardless of worker count or scheduling.
//!
//! Two invariants make this sound, and both are enforced at compile time:
//!
//! * every model closure type ([`crate::model::Guard`],
//!   [`crate::model::Action`], …) is `Send + Sync`, so a compiled model can
//!   be shared by reference between threads;
//! * each engine's mutable state (token pool, machine, statistics) is
//!   created *on* its worker and never crosses threads, so per-run state —
//!   including `!Send` types like `Rc` decode caches — needs no
//!   synchronization at all.
//!
//! ```
//! use rcpn::batch::BatchRunner;
//!
//! let jobs: Vec<u64> = (0..100).collect();
//! let runner = BatchRunner::new(8);
//! let results = runner.run(&jobs, |_idx, &job| job * job);
//! assert_eq!(results[7], 49); // results arrive in job order, always
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::stats::Stats;

/// A fixed-width fork/join worker pool for fanning simulation jobs across
/// threads.
///
/// The pool is scoped: threads are spawned per [`BatchRunner::run`] call
/// and joined before it returns, so jobs and the job closure may borrow
/// from the caller's stack (e.g. a `&CompiledModel` built just above).
/// Results are merged deterministically — slot `i` of the output always
/// holds the result of job `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRunner {
    workers: usize,
}

impl BatchRunner {
    /// A runner with exactly `workers` worker threads (clamped to ≥ 1).
    ///
    /// `BatchRunner::new(1)` never spawns a thread: jobs run inline on the
    /// caller, in order, which keeps single-threaded use zero-overhead and
    /// makes "serial" the `workers == 1` special case of the same code
    /// path.
    pub fn new(workers: usize) -> Self {
        BatchRunner { workers: workers.max(1) }
    }

    /// A runner sized to the host's available parallelism (falls back to 1
    /// when the host cannot report it).
    pub fn host_parallel() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Number of worker threads this runner fans jobs across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `run_job` over every job, in parallel, returning the results
    /// in job order.
    ///
    /// Workers claim jobs dynamically from a shared cursor (cheap
    /// work-stealing: long jobs do not serialize behind short ones), but
    /// the merged output is independent of the claim order: result `i`
    /// always lands in slot `i`. Combined with simulations that are
    /// themselves deterministic, the whole batch is bit-reproducible at
    /// any worker count.
    ///
    /// # Panics
    ///
    /// Propagates the panic of any job to the caller. Failure is prompt:
    /// a panicking job raises a shared abort flag, so the other workers
    /// stop claiming new jobs instead of draining the rest of the batch
    /// (jobs already in flight still run to completion — workers are
    /// never preempted).
    pub fn run<J, T, F>(&self, jobs: &[J], run_job: F) -> Vec<T>
    where
        J: Sync,
        T: Send,
        F: Fn(usize, &J) -> T + Sync,
    {
        let n = jobs.len();
        if self.workers == 1 || n <= 1 {
            return jobs.iter().enumerate().map(|(i, j)| run_job(i, j)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let threads = self.workers.min(n);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut part: Vec<(usize, T)> = Vec::new();
                        while !abort.load(Ordering::Relaxed) {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let unwind = std::panic::AssertUnwindSafe(|| run_job(i, &jobs[i]));
                            match std::panic::catch_unwind(unwind) {
                                Ok(result) => part.push((i, result)),
                                Err(payload) => {
                                    abort.store(true, Ordering::Relaxed);
                                    std::panic::resume_unwind(payload);
                                }
                            }
                        }
                        part
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(part) => {
                        for (i, result) in part {
                            slots[i] = Some(result);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        slots.into_iter().map(|s| s.expect("batch: every claimed job fills its slot")).collect()
    }
}

impl Default for BatchRunner {
    /// Defaults to [`BatchRunner::host_parallel`].
    fn default() -> Self {
        Self::host_parallel()
    }
}

/// Merges per-job statistics into one aggregate, folding left-to-right in
/// the order given.
///
/// Callers are expected to pass stats in **job order** (the order
/// [`BatchRunner::run`] returns them), which makes the aggregate a pure
/// function of the job list — bit-identical between serial and parallel
/// runs, at any worker count. That invariant is what the sweep harness
/// checks end to end.
pub fn merge_stats<'a, I>(stats: I) -> Stats
where
    I: IntoIterator<Item = &'a Stats>,
{
    let mut merged = Stats::default();
    for s in stats {
        merged.merge(s);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::OpClassId;
    use crate::token::InstrData;

    /// Compile-time proof that the shareable artifacts really are
    /// shareable — with a deliberately `!Send + !Sync` machine resource,
    /// because thread-safety of the *model* must not depend on per-run
    /// state.
    #[test]
    fn model_and_plan_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}

        #[derive(Debug)]
        struct Tok(OpClassId);
        impl InstrData for Tok {
            fn op_class(&self) -> OpClassId {
                self.0
            }
        }
        struct NotThreadSafe(#[allow(dead_code)] std::rc::Rc<()>);

        assert_send_sync::<crate::compiled::ExecPlan>();
        assert_send_sync::<crate::model::Model<Tok, NotThreadSafe>>();
        assert_send_sync::<crate::compiled::CompiledModel<Tok, NotThreadSafe>>();
    }

    #[test]
    fn results_arrive_in_job_order_at_any_worker_count() {
        let jobs: Vec<usize> = (0..57).collect();
        let expected: Vec<usize> = jobs.iter().map(|j| j * j).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = BatchRunner::new(workers).run(&jobs, |i, &j| {
                assert_eq!(i, j, "index matches the job it claims");
                j * j
            });
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = [10u32, 20];
        let got = BatchRunner::new(16).run(&jobs, |_, &j| j + 1);
        assert_eq!(got, vec![11, 21]);
    }

    #[test]
    fn empty_batch_returns_empty() {
        let got: Vec<u8> = BatchRunner::new(4).run(&[] as &[u8], |_, &j| j);
        assert!(got.is_empty());
    }

    #[test]
    fn workers_clamp_to_one() {
        assert_eq!(BatchRunner::new(0).workers(), 1);
    }

    #[test]
    fn job_panics_propagate() {
        let jobs: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            BatchRunner::new(4).run(&jobs, |_, &j| {
                assert!(j != 5, "boom");
                j
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn merge_stats_sums_counters_and_pads_vectors() {
        let mut a = Stats::new(2, 1, 2);
        a.cycles = 10;
        a.retired = 3;
        a.fires = vec![1, 2];
        let mut b = Stats::new(3, 1, 2);
        b.cycles = 5;
        b.retired = 4;
        b.fires = vec![10, 20, 30];
        let merged = merge_stats([&a, &b]);
        assert_eq!(merged.cycles, 15);
        assert_eq!(merged.retired, 7);
        assert_eq!(merged.fires, vec![11, 22, 30]);
    }
}
