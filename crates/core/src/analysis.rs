//! Static analysis of an RCPN model (paper, Section 4).
//!
//! Three properties of RCPN make its simulators fast, and all three are
//! extracted here, before simulation begins, so they carry no runtime cost:
//!
//! 1. **Sorted transition tables** (`CalculateSortedTransitions`, Fig. 6):
//!    for every (place, operation class) pair, the list of transitions that
//!    may be enabled, sorted by arc priority. During simulation only this
//!    subset is searched, never the whole net.
//! 2. **Reverse topological place order** (Fig. 8): evaluating places
//!    downstream-first guarantees stage capacity is freed before upstream
//!    instructions try to advance, so pipelines shift in lockstep without a
//!    second token storage.
//! 3. **Two-list places**: only places that are referenced in a circular way
//!    — either a genuine token-flow cycle, or a feedback reference such as
//!    `canRead(L3)` evaluated upstream of the transition that writes into
//!    `L3` — need the two-storage (master/slave) treatment. Everywhere else
//!    the single-storage fast path is safe.

use crate::ids::{OpClassId, PlaceId, SubnetId, TransitionId};

/// Results of the build-time analysis. Owned by [`crate::model::Model`].
#[derive(Debug, Clone)]
pub struct Analysis {
    pub(crate) order: Vec<PlaceId>,
    pub(crate) two_list: Vec<bool>,
    pub(crate) sorted: Vec<Box<[TransitionId]>>,
    pub(crate) by_place: Vec<Box<[TransitionId]>>,
    pub(crate) n_classes: usize,
    pub(crate) flow_cycle_places: usize,
    pub(crate) feedback_places: usize,
}

impl Analysis {
    /// The place evaluation order (reverse topological over token flow).
    pub fn order(&self) -> &[PlaceId] {
        &self.order
    }

    /// Whether `place` requires two-list (master/slave) token storage.
    pub fn is_two_list(&self, place: PlaceId) -> bool {
        self.two_list[place.index()]
    }

    /// Number of places requiring two-list storage.
    pub fn two_list_count(&self) -> usize {
        self.two_list.iter().filter(|&&b| b).count()
    }

    /// Number of places on genuine token-flow cycles.
    pub fn flow_cycle_places(&self) -> usize {
        self.flow_cycle_places
    }

    /// Number of places marked two-list because of feedback references
    /// (`canRead(s)` evaluated upstream of a writer into `s`).
    pub fn feedback_places(&self) -> usize {
        self.feedback_places
    }

    /// The sorted transition list for a (place, class) pair — the paper's
    /// `sorted_transitions[p, IType]` table.
    #[inline]
    pub fn sorted_transitions(&self, place: PlaceId, class: OpClassId) -> &[TransitionId] {
        &self.sorted[place.index() * self.n_classes + class.index()]
    }

    /// All transitions out of a place sorted by priority, regardless of
    /// class (used by the ablation mode that skips the per-class split).
    #[inline]
    pub fn place_transitions(&self, place: PlaceId) -> &[TransitionId] {
        &self.by_place[place.index()]
    }
}

/// Minimal view of a transition needed by the analysis, decoupled from the
/// generic model type.
pub(crate) struct TransView {
    pub input: PlaceId,
    pub dest: PlaceId,
    pub subnet: SubnetId,
    pub priority: u32,
    pub reads_states: Vec<PlaceId>,
}

pub(crate) struct AnalysisInput<'a> {
    pub n_places: usize,
    pub transitions: &'a [TransView],
    /// subnet of each operation class, indexed by class.
    pub class_subnets: &'a [SubnetId],
}

/// Tarjan's strongly-connected-components algorithm (iterative).
///
/// `adj` is an adjacency list; returns for each node the id of its SCC and
/// the number of SCCs. SCC ids are assigned in reverse topological order of
/// the condensation (an SCC's id is smaller than the ids of SCCs that can
/// reach it).
fn tarjan_scc(adj: &[Vec<usize>]) -> (Vec<usize>, Vec<usize>) {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut comp_sizes: Vec<usize> = Vec::new();
    let mut next_index = 0usize;

    // Iterative DFS with explicit call frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let cid = comp_sizes.len();
                    let mut size = 0;
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = cid;
                        size += 1;
                        if w == v {
                            break;
                        }
                    }
                    comp_sizes.push(size);
                }
            }
        }
    }
    (comp, comp_sizes)
}

pub(crate) fn analyze(input: &AnalysisInput<'_>) -> Analysis {
    let n = input.n_places;
    let n_classes = input.class_subnets.len();

    // --- Place evaluation order -------------------------------------------
    // Build the "process-before" graph: for every token-flow arc
    // input --t--> dest, the destination must be evaluated before the input
    // (downstream first), i.e. edge dest -> input.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for t in input.transitions {
        if t.input != t.dest {
            let (d, i) = (t.dest.index(), t.input.index());
            if !adj[d].contains(&i) {
                adj[d].push(i);
            }
        } else {
            self_loop[t.input.index()] = true;
        }
    }

    let (comp, comp_sizes) = tarjan_scc(&adj);
    // Tarjan assigns SCC ids in reverse topological order of the
    // condensation: an SCC reachable from another gets a *smaller* id. We
    // want "process-before" sources first, so sort places by descending SCC
    // id; within an SCC, keep declaration order for determinism.
    let mut order: Vec<PlaceId> = (0..n).map(PlaceId::from_index).collect();
    order.sort_by(|a, b| comp[b.index()].cmp(&comp[a.index()]).then(a.index().cmp(&b.index())));

    let mut two_list = vec![false; n];
    let mut flow_cycle_places = 0;
    for p in 0..n {
        // Nodes in a non-trivial SCC, or with a self-loop, sit on a flow
        // cycle: no linear order can make them read-before-write safe.
        let nontrivial = comp_sizes[comp[p]] > 1 || self_loop[p];
        if nontrivial {
            two_list[p] = true;
            flow_cycle_places += 1;
        }
    }

    // --- Feedback-reference detection --------------------------------------
    // A transition at place p referencing state s (canRead(s)/read(s)) must
    // observe s as it was at the start of the cycle. If any transition that
    // writes into s fires from a place evaluated no later than p, the write
    // would become visible in the same cycle, so s needs two-list storage.
    let mut pos = vec![0usize; n];
    for (i, p) in order.iter().enumerate() {
        pos[p.index()] = i;
    }
    let mut feedback_places = 0;
    for t in input.transitions {
        for &s in &t.reads_states {
            if two_list[s.index()] {
                continue;
            }
            let referenced_upstream = input
                .transitions
                .iter()
                .any(|w| w.dest == s && pos[w.input.index()] <= pos[t.input.index()]);
            if referenced_upstream {
                two_list[s.index()] = true;
                feedback_places += 1;
            }
        }
    }

    // --- Sorted transition tables (Fig. 6) ----------------------------------
    let mut sorted: Vec<Vec<TransitionId>> = vec![Vec::new(); n * n_classes.max(1)];
    let mut by_place: Vec<Vec<TransitionId>> = vec![Vec::new(); n];
    for (ti, t) in input.transitions.iter().enumerate() {
        let tid = TransitionId::from_index(ti);
        by_place[t.input.index()].push(tid);
        for (ci, &cn) in input.class_subnets.iter().enumerate() {
            if cn == t.subnet {
                sorted[t.input.index() * n_classes + ci].push(tid);
            }
        }
    }
    let priority_of = |tid: &TransitionId| input.transitions[tid.index()].priority;
    for list in sorted.iter_mut().chain(by_place.iter_mut()) {
        list.sort_by_key(|tid| (priority_of(tid), tid.index()));
    }

    Analysis {
        order,
        two_list,
        sorted: sorted.into_iter().map(Vec::into_boxed_slice).collect(),
        by_place: by_place.into_iter().map(Vec::into_boxed_slice).collect(),
        n_classes,
        flow_cycle_places,
        feedback_places,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(input: usize, dest: usize, subnet: usize, priority: u32) -> TransView {
        TransView {
            input: PlaceId::from_index(input),
            dest: PlaceId::from_index(dest),
            subnet: SubnetId::from_index(subnet),
            priority,
            reads_states: Vec::new(),
        }
    }

    #[test]
    fn linear_pipeline_orders_downstream_first() {
        // p0 -> p1 -> p2, single subnet/class.
        let ts = vec![t(0, 1, 0, 0), t(1, 2, 0, 0)];
        let a = analyze(&AnalysisInput {
            n_places: 3,
            transitions: &ts,
            class_subnets: &[SubnetId::from_index(0)],
        });
        let idx: Vec<usize> = a.order().iter().map(|p| p.index()).collect();
        assert_eq!(idx, vec![2, 1, 0], "downstream places must be evaluated first");
        assert_eq!(a.two_list_count(), 0, "a straight pipeline needs no two-list place");
    }

    #[test]
    fn diamond_orders_consistently() {
        // p0 -> p1 -> p3 and p0 -> p2 -> p3.
        let ts = vec![t(0, 1, 0, 0), t(0, 2, 0, 1), t(1, 3, 0, 0), t(2, 3, 0, 0)];
        let a = analyze(&AnalysisInput {
            n_places: 4,
            transitions: &ts,
            class_subnets: &[SubnetId::from_index(0)],
        });
        let pos: Vec<usize> = {
            let mut pos = vec![0; 4];
            for (i, p) in a.order().iter().enumerate() {
                pos[p.index()] = i;
            }
            pos
        };
        assert!(pos[3] < pos[1] && pos[3] < pos[2]);
        assert!(pos[1] < pos[0] && pos[2] < pos[0]);
    }

    #[test]
    fn token_flow_cycle_forces_two_list() {
        // p0 -> p1 -> p0 (a loop of places).
        let ts = vec![t(0, 1, 0, 0), t(1, 0, 0, 0)];
        let a = analyze(&AnalysisInput {
            n_places: 2,
            transitions: &ts,
            class_subnets: &[SubnetId::from_index(0)],
        });
        assert!(a.is_two_list(PlaceId::from_index(0)));
        assert!(a.is_two_list(PlaceId::from_index(1)));
        assert_eq!(a.flow_cycle_places(), 2);
    }

    #[test]
    fn feedback_reference_marks_referenced_place_only() {
        // Fig. 5 situation: p0 -> p1 -> p2 -> p3(end-ish), a transition at
        // p0 references state p2 (forwarding), and the writer into p2 fires
        // from p1, which is evaluated before p0. Only p2 needs two-list.
        let mut fwd = t(0, 1, 0, 1);
        fwd.reads_states = vec![PlaceId::from_index(2)];
        let ts = vec![t(0, 1, 0, 0), fwd, t(1, 2, 0, 0), t(2, 3, 0, 0)];
        let a = analyze(&AnalysisInput {
            n_places: 4,
            transitions: &ts,
            class_subnets: &[SubnetId::from_index(0)],
        });
        assert!(a.is_two_list(PlaceId::from_index(2)), "referenced feedback place");
        assert!(!a.is_two_list(PlaceId::from_index(0)));
        assert!(!a.is_two_list(PlaceId::from_index(1)));
        assert!(!a.is_two_list(PlaceId::from_index(3)));
        assert_eq!(a.feedback_places(), 1);
        assert_eq!(a.flow_cycle_places(), 0);
    }

    #[test]
    fn reference_to_downstream_written_place_is_safe() {
        // p0 -> p1 -> p2; a transition at p1 references p2, but the only
        // writer into p2 fires from p1 itself... that is pos-equal, so it
        // IS marked. Use instead: reader at p1 references p0-written place:
        // writer into p1 fires from p0, evaluated AFTER p1 -> safe.
        let mut rdr = t(1, 2, 0, 0);
        rdr.reads_states = vec![PlaceId::from_index(1)];
        let ts = vec![t(0, 1, 0, 0), rdr];
        let a = analyze(&AnalysisInput {
            n_places: 3,
            transitions: &ts,
            class_subnets: &[SubnetId::from_index(0)],
        });
        // Writer into p1 is at p0; pos[p0] > pos[p1], so reads of p1 state
        // at p1 happen before the write becomes visible. No two-list.
        assert_eq!(a.two_list_count(), 0);
    }

    #[test]
    fn sorted_tables_split_by_class_and_priority() {
        // Two classes on two subnets; place p0 has transitions of both, with
        // priorities interleaved.
        let ts = vec![t(0, 1, 0, 1), t(0, 1, 1, 0), t(0, 2, 0, 0)];
        let a = analyze(&AnalysisInput {
            n_places: 3,
            transitions: &ts,
            class_subnets: &[SubnetId::from_index(0), SubnetId::from_index(1)],
        });
        let c0 = a.sorted_transitions(PlaceId::from_index(0), OpClassId::from_index(0));
        let c1 = a.sorted_transitions(PlaceId::from_index(0), OpClassId::from_index(1));
        assert_eq!(c0.iter().map(|t| t.index()).collect::<Vec<_>>(), vec![2, 0]);
        assert_eq!(c1.iter().map(|t| t.index()).collect::<Vec<_>>(), vec![1]);
        let all = a.place_transitions(PlaceId::from_index(0));
        assert_eq!(all.iter().map(|t| t.index()).collect::<Vec<_>>(), vec![1, 2, 0]);
    }

    #[test]
    fn self_loop_is_two_list_but_not_ordering_cycle() {
        let ts = vec![t(0, 0, 0, 0), t(0, 1, 0, 1)];
        let a = analyze(&AnalysisInput {
            n_places: 2,
            transitions: &ts,
            class_subnets: &[SubnetId::from_index(0)],
        });
        // Self-loop place is conservatively two-list.
        assert!(a.is_two_list(PlaceId::from_index(0)));
        // But the order is still well defined.
        assert_eq!(a.order().len(), 2);
    }

    #[test]
    fn big_linear_chain_is_linear_time() {
        let n = 2000;
        let ts: Vec<TransView> = (0..n - 1).map(|i| t(i, i + 1, 0, 0)).collect();
        let a = analyze(&AnalysisInput {
            n_places: n,
            transitions: &ts,
            class_subnets: &[SubnetId::from_index(0)],
        });
        assert_eq!(a.order().len(), n);
        assert_eq!(a.order()[0].index(), n - 1);
        assert_eq!(a.two_list_count(), 0);
    }
}
