//! The compile step of the paper's flow: `Model --analysis--> CompiledModel
//! --instantiate--> Engine`.
//!
//! The paper's central claim (Section 4) is that an RCPN model can be
//! *statically analyzed and compiled into* a high-performance cycle-accurate
//! simulator. [`CompiledModel`] is that generated-simulator artifact made
//! explicit: it partially evaluates the model's static structure into flat
//! hot tables (an `ExecPlan`) exactly once, and can then instantiate any
//! number of independent [`Engine`]s that share the tables and the model's
//! guard/action closures by reference. Instantiation allocates only mutable
//! per-run state (token pool, place lists, statistics), which is the
//! prerequisite for batched and sharded simulation.
//!
//! The [`EngineConfig`] passed at compile time selects between compiled
//! variants: the candidate-transition [`TableMode`] decides *which* lookup
//! table is materialized in the plan (per-place-class spans, per-place
//! spans, or a global priority-sorted scan list), and
//! `two_list_everywhere` decides the evaluation order and commit
//! discipline. The engine's per-cycle loop consumes only the variant that
//! was compiled; no other table is built or consulted.

use std::sync::Arc;

use crate::engine::{Engine, EngineConfig, TableMode};
use crate::ids::{PlaceId, TransitionId};
use crate::ir::{MicroOp, Program};
use crate::model::{ActionKind, GuardKind, Machine, Model};
use crate::token::InstrData;

/// Partially evaluated per-transition facts (one cache line of PODs).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotTrans {
    pub(crate) dest: u32,
    pub(crate) dest_stage: u32,
    /// Capacity check can be skipped: destination is `end` or shares the
    /// input's stage.
    pub(crate) cap_exempt: bool,
    pub(crate) dest_is_end: bool,
    /// `transition.delay + dest place delay` (the no-override ready delta).
    pub(crate) base_ready: u64,
    /// `transition.delay` alone (token-delay override case).
    pub(crate) tdelay: u64,
    pub(crate) cap: u32,
    /// The transition gates on something ([`GuardCode`] is not `None`).
    /// Honest by construction: empty IR guard programs compile to `None`.
    pub(crate) has_guard: bool,
    /// Firing performs action work ([`ActionCode`] is not `None`, or the
    /// guard is fused and acquires at fire time). Honest by construction.
    pub(crate) has_action: bool,
    pub(crate) has_extra: bool,
    pub(crate) has_res: bool,
}

/// Compiled guard representation of one transition: how `try_fire`
/// evaluates its enabling condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GuardCode {
    /// No guard: always enabled (capacity/joins permitting).
    None,
    /// Call the closure stored on the model's transition.
    Closure,
    /// Interpret `programs[idx]` (all ops pure).
    Prog(u32),
    /// The fusion product: the guard was exactly `[CheckReady {
    /// fwd_mask }]` and the action began with a matching
    /// `AcquireOperands`. `try_fire` runs the fused check (memoizing each
    /// operand's source), and `fire` acquires from the memo before
    /// running the remaining [`ActionCode`] — the acquire never re-probes
    /// what the guard just established.
    Fused {
        /// Place-index bitmask of the resolved forwarding set.
        fwd_mask: u64,
    },
}

/// Compiled action representation of one transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ActionCode {
    /// No action work at fire time.
    None,
    /// Call the closure stored on the model's transition.
    Closure,
    /// Interpret `programs[idx]` in order.
    Prog(u32),
}

/// Per-transition dispatch pair, indexed like `hot`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotDispatch {
    pub(crate) guard: GuardCode,
    pub(crate) action: ActionCode,
}

/// Partially evaluated per-place facts.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotPlace {
    pub(crate) stage: u32,
    pub(crate) two_list: bool,
    pub(crate) delay: u64,
    pub(crate) cap: u32,
    pub(crate) is_end: bool,
    /// Number of transitions that consume tokens from this place (input or
    /// extra-input arcs) — `dependents[p].len()`, denormalized so the
    /// activity scheduler's skip accounting never touches the index lists.
    pub(crate) n_dependents: u32,
}

/// Partially evaluated per-source facts.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotSource {
    pub(crate) dest: u32,
    pub(crate) width: u32,
}

/// One compiled superblock: the fully pre-resolved fast-path form of the
/// *single* candidate transition of one (place, class) pair.
///
/// Formation rules (the compile pass admits a transition only when every
/// one of these holds — see `DESIGN.md` §2d):
///
/// * it is the only transition its (place, class) pair can try, so the
///   priority walk degenerates to one candidate;
/// * it has no extra (join) inputs and no static reservation arcs;
/// * its guard and action are data — `None`, a folded IR program, or the
///   fused check+acquire pair; a closure anywhere bails;
/// * every program op is [`MicroOp::is_superblock_op`]: no `CallHook`
///   (the hook boundary), and no `ReserveRes`/`EmitRedirect`/
///   `ReleaseRes` (their effects go through the engine's deferred-`Fx`
///   machinery, which the fast path deliberately never materializes).
///
/// The op ranges point into the plan's flattened `sb_ops` stream, laid
/// out contiguously per class chain so a token walking its path streams
/// through memory.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SbBlock {
    pub(crate) tid: u32,
    /// Guard op range in `sb_ops` (empty for fused or guard-less blocks).
    pub(crate) guard: (u32, u32),
    /// Action op range in `sb_ops`.
    pub(crate) action: (u32, u32),
    /// `Some(fwd_mask)` when the guard is the fused check+acquire pair.
    pub(crate) fused: Option<u64>,
    pub(crate) dest: u32,
    pub(crate) dest_stage: u32,
    pub(crate) dest_is_end: bool,
    pub(crate) cap_exempt: bool,
    pub(crate) cap: u32,
    pub(crate) base_ready: u64,
    pub(crate) tdelay: u64,
    /// Operation class this block dispatches (the `ci` of its
    /// `(place, class)` pair); chain cursors validate a parked token's
    /// class against it before trusting the pre-resolved successor.
    pub(crate) class: u32,
    /// Cross-place chain link: index of the successor superblock at
    /// `(dest, class)` when the link is fusion-legal (see the chain
    /// formation pass), else `u32::MAX`. Firing a block with a link
    /// parks a dispatch cursor on the destination place.
    pub(crate) chain_next: u32,
}

/// The candidate-transition lookup structure; exactly one variant is
/// materialized per compiled model, selected by [`TableMode`].
#[derive(Debug, Clone)]
pub(crate) enum Lookup {
    /// The paper's `sorted_transitions[p, IType]` table, flattened:
    /// `span[p * n_classes + class]` indexes into `flat`.
    PerPlaceClass { flat: Vec<u32>, span: Vec<(u32, u16)>, n_classes: usize },
    /// One priority-sorted list per place (`span[p]` into `flat`); class
    /// membership is re-checked dynamically against `subnet_of_trans`.
    PerPlace { flat: Vec<u32>, span: Vec<(u32, u16)> },
    /// No tables: every transition of the net, globally priority-sorted,
    /// is scanned for each token — the generic Petri-net search.
    FullScan { order: Vec<u32> },
}

/// The non-generic compiled execution plan: every statically derivable
/// fact the per-cycle loop needs, as dense arrays. Shared (via `Arc`)
/// between a [`CompiledModel`] and all engines instantiated from it.
#[derive(Debug)]
pub(crate) struct ExecPlan {
    /// Effective evaluation order (reverse topological, or declaration
    /// order when compiled with `two_list_everywhere`).
    pub(crate) order: Vec<PlaceId>,
    /// Run the generic two-storage fixpoint scheme instead of the single
    /// reverse-topological pass.
    pub(crate) fixpoint: bool,
    pub(crate) res_places: Vec<PlaceId>,
    pub(crate) lookup: Lookup,
    /// Sub-net of each operation class (dynamic class checks).
    pub(crate) subnet_of_class: Vec<u32>,
    /// Sub-net of each transition (dynamic class checks).
    pub(crate) subnet_of_trans: Vec<u32>,
    /// Input place of each transition (full-scan filtering).
    pub(crate) input_of_trans: Vec<u32>,
    /// Reverse index: for each place, the transitions whose enabling
    /// depends on that place's token population (input or extra-input
    /// arcs, sorted, deduplicated). This is the dependency structure the
    /// activity-driven scheduler's dirty-place worklist is justified by —
    /// a transition can only become newly enabled through one of its input
    /// places changing, a delayed token maturing, capacity freeing, or a
    /// guard flipping, and the scheduler re-evaluates on every one of
    /// those events (see `engine.rs`).
    pub(crate) dependents: Vec<Box<[TransitionId]>>,
    pub(crate) hot: Vec<HotTrans>,
    pub(crate) hot_place: Vec<HotPlace>,
    pub(crate) hot_source: Vec<HotSource>,
    /// Per-transition guard/action dispatch (parallel to `hot`), produced
    /// by the fold + fusion pass over the model's IR programs.
    pub(crate) dispatch: Vec<HotDispatch>,
    /// The folded program pool `GuardCode::Prog`/`ActionCode::Prog` index
    /// into.
    pub(crate) programs: Vec<Program>,
    pub(crate) n_stages: usize,
    /// (place, class) → index into `sb_blocks` (`u32::MAX` = no
    /// superblock: fall back to the generic candidate walk). Empty when
    /// superblock dispatch is disabled ([`EngineConfig::superblocks`]).
    pub(crate) sb_index: Vec<u32>,
    pub(crate) sb_blocks: Vec<SbBlock>,
    /// The flattened op stream `SbBlock` guard/action ranges point into.
    pub(crate) sb_ops: Vec<MicroOp>,
    /// Class count the `sb_index` rows are strided by.
    pub(crate) sb_classes: usize,
    /// (place, class) → index into `sb_blocks` of the superblock a chain
    /// cursor may be parked for when *any* firing moves a token there —
    /// the head of a chain (`u32::MAX` = not entry-legal). A filtered
    /// view of `sb_index`: entries exist only for ordinary single-list
    /// places that are no transition's join input and never hold
    /// reservation tokens. Empty when chain dispatch is disabled
    /// ([`EngineConfig::chains`]).
    pub(crate) chain_entry: Vec<u32>,
}

impl ExecPlan {
    /// The superblock of a (place, class) pair, if one was compiled.
    #[inline]
    pub(crate) fn sb_lookup(&self, place: usize, class: usize) -> Option<&SbBlock> {
        let idx = *self.sb_index.get(place * self.sb_classes + class)?;
        self.sb_blocks.get(idx as usize)
    }

    /// The superblock index a chain cursor may be parked for when a
    /// firing moves a token into `(place, class)`, or `u32::MAX`.
    #[inline]
    pub(crate) fn chain_entry_at(&self, place: usize, class: usize) -> u32 {
        *self.chain_entry.get(place * self.sb_classes + class).unwrap_or(&u32::MAX)
    }
}

impl ExecPlan {
    fn build<D, R>(model: &Model<D, R>, cfg: &EngineConfig) -> Self {
        let n_places = model.place_count();
        let (order, two_list): (Vec<PlaceId>, Vec<bool>) = if cfg.two_list_everywhere {
            ((0..n_places).map(PlaceId::from_index).collect(), vec![true; n_places])
        } else {
            (
                model.analysis.order.clone(),
                (0..n_places).map(|i| model.analysis.two_list[i]).collect(),
            )
        };
        // Every place the expiry scan must visit: static ResArc targets
        // plus the targets of IR `ReserveRes` ops.
        let mut res_places: Vec<PlaceId> =
            model.transitions.iter().flat_map(|t| t.reservations.iter().map(|r| r.place)).collect();
        for t in &model.transitions {
            if let Some(ActionKind::Ir(prog)) = &t.action {
                for op in prog.ops() {
                    if let MicroOp::ReserveRes { place, .. } = op {
                        res_places.push(*place);
                    }
                }
            }
        }
        res_places.sort();
        res_places.dedup();

        // Fold + fuse the guard/action representations into dispatch
        // codes. Folding drops empty programs (`has_guard`/`has_action`
        // stay honest); fusion collapses a `[CheckReady]` guard with the
        // `AcquireOperands` head of its action (same mask, no join
        // inputs — joins release victim reservations between the guard
        // and the action, which would invalidate the fused memo).
        let mut programs: Vec<Program> = Vec::new();
        let mut intern = |p: Program| -> u32 {
            programs.push(p);
            (programs.len() - 1) as u32
        };
        let dispatch: Vec<HotDispatch> = model
            .transitions
            .iter()
            .map(|t| {
                let guard_prog = match &t.guard {
                    Some(GuardKind::Ir(p)) => Some(p.clone().fold()),
                    _ => None,
                };
                let action_prog = match &t.action {
                    Some(ActionKind::Ir(p)) => Some(p.clone().fold()),
                    _ => None,
                };
                let fusable = match (&guard_prog, &action_prog) {
                    (Some(g), Some(a)) if t.extra_inputs.is_empty() => match (g.ops(), a.ops()) {
                        (
                            [MicroOp::CheckReady { fwd_mask: gm }],
                            [MicroOp::AcquireOperands { fwd_mask: am }, ..],
                        ) => (gm == am).then_some(*gm),
                        _ => None,
                    },
                    _ => None,
                };
                if let Some(fwd_mask) = fusable {
                    let rest = Program::new(
                        action_prog.expect("fusable implies action").ops()[1..].to_vec(),
                    );
                    let action = if rest.is_empty() {
                        ActionCode::None
                    } else {
                        ActionCode::Prog(intern(rest))
                    };
                    return HotDispatch { guard: GuardCode::Fused { fwd_mask }, action };
                }
                let guard = match (&t.guard, guard_prog) {
                    (None, _) => GuardCode::None,
                    (Some(GuardKind::Closure(_)), _) => GuardCode::Closure,
                    (Some(GuardKind::Ir(_)), Some(p)) if p.is_empty() => GuardCode::None,
                    (Some(GuardKind::Ir(_)), Some(p)) => GuardCode::Prog(intern(p)),
                    (Some(GuardKind::Ir(_)), None) => unreachable!("Ir guard folds to Some"),
                };
                let action = match (&t.action, action_prog) {
                    (None, _) => ActionCode::None,
                    (Some(ActionKind::Closure(_)), _) => ActionCode::Closure,
                    (Some(ActionKind::Ir(_)), Some(p)) if p.is_empty() => ActionCode::None,
                    (Some(ActionKind::Ir(_)), Some(p)) => ActionCode::Prog(intern(p)),
                    (Some(ActionKind::Ir(_)), None) => unreachable!("Ir action folds to Some"),
                };
                HotDispatch { guard, action }
            })
            .collect();

        // Reverse index: which transitions consume from each place.
        let mut dep_lists: Vec<Vec<TransitionId>> = vec![Vec::new(); n_places];
        for (ti, t) in model.transitions.iter().enumerate() {
            let tid = TransitionId::from_index(ti);
            dep_lists[t.input.index()].push(tid);
            for x in &t.extra_inputs {
                dep_lists[x.index()].push(tid);
            }
        }
        let dependents: Vec<Box<[TransitionId]>> = dep_lists
            .into_iter()
            .map(|mut l| {
                l.sort_unstable();
                l.dedup();
                l.into_boxed_slice()
            })
            .collect();

        // Partial evaluation of the static structure into flat tables.
        let hot_place: Vec<HotPlace> = model
            .places
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let st = &model.stages[p.stage.index()];
                HotPlace {
                    stage: p.stage.index() as u32,
                    two_list: two_list[i],
                    delay: u64::from(p.delay),
                    cap: st.capacity,
                    is_end: st.is_end,
                    n_dependents: dependents[i].len() as u32,
                }
            })
            .collect();
        let hot: Vec<HotTrans> = model
            .transitions
            .iter()
            .zip(&dispatch)
            .map(|(t, d)| {
                let dp = &hot_place[t.dest.index()];
                let sp = &hot_place[t.input.index()];
                let fused = matches!(d.guard, GuardCode::Fused { .. });
                HotTrans {
                    dest: t.dest.index() as u32,
                    dest_stage: dp.stage,
                    cap_exempt: dp.is_end || dp.stage == sp.stage,
                    dest_is_end: dp.is_end,
                    base_ready: u64::from(t.delay) + dp.delay,
                    tdelay: u64::from(t.delay),
                    cap: dp.cap,
                    has_guard: d.guard != GuardCode::None,
                    has_action: d.action != ActionCode::None || fused,
                    has_extra: !t.extra_inputs.is_empty(),
                    has_res: !t.reservations.is_empty(),
                }
            })
            .collect();
        let hot_source: Vec<HotSource> = model
            .sources
            .iter()
            .map(|s| HotSource { dest: s.dest.index() as u32, width: s.max_per_cycle })
            .collect();

        // Superblock formation: for every (place, class) pair whose
        // candidate list holds exactly one transition that is pure data
        // (see [`SbBlock`] for the admission rules), pre-resolve the
        // whole try-fire into a block over a flattened op stream. The
        // class-outer iteration lays each class's chain out contiguously.
        let n_classes = model.analysis.n_classes;
        let mut sb_index = Vec::new();
        let mut sb_blocks: Vec<SbBlock> = Vec::new();
        let mut sb_ops: Vec<MicroOp> = Vec::new();
        if cfg.superblocks {
            sb_index = vec![u32::MAX; n_places * n_classes];
            for ci in 0..n_classes {
                for pi in 0..n_places {
                    let cands = &model.analysis.sorted[pi * n_classes + ci];
                    if cands.len() != 1 {
                        continue;
                    }
                    let ti = cands[0].index();
                    let t = &model.transitions[ti];
                    if !t.extra_inputs.is_empty() || !t.reservations.is_empty() {
                        continue;
                    }
                    let d = &dispatch[ti];
                    let guard_ops: &[MicroOp] = match d.guard {
                        GuardCode::None | GuardCode::Fused { .. } => &[],
                        GuardCode::Prog(i) => programs[i as usize].ops(),
                        GuardCode::Closure => continue,
                    };
                    let action_ops: &[MicroOp] = match d.action {
                        ActionCode::None => &[],
                        ActionCode::Prog(i) => programs[i as usize].ops(),
                        ActionCode::Closure => continue,
                    };
                    if !guard_ops.iter().chain(action_ops).all(MicroOp::is_superblock_op) {
                        continue;
                    }
                    let fused = match d.guard {
                        GuardCode::Fused { fwd_mask } => Some(fwd_mask),
                        _ => None,
                    };
                    let g0 = sb_ops.len() as u32;
                    sb_ops.extend_from_slice(guard_ops);
                    let g1 = sb_ops.len() as u32;
                    sb_ops.extend_from_slice(action_ops);
                    let a1 = sb_ops.len() as u32;
                    let h = &hot[ti];
                    sb_index[pi * n_classes + ci] = sb_blocks.len() as u32;
                    sb_blocks.push(SbBlock {
                        tid: ti as u32,
                        guard: (g0, g1),
                        action: (g1, a1),
                        fused,
                        dest: h.dest,
                        dest_stage: h.dest_stage,
                        dest_is_end: h.dest_is_end,
                        cap_exempt: h.cap_exempt,
                        cap: h.cap,
                        base_ready: h.base_ready,
                        tdelay: h.tdelay,
                        class: ci as u32,
                        chain_next: u32::MAX,
                    });
                }
            }
        }

        // Chain formation (see `DESIGN.md` §2f). Two static tables decide
        // where the engine may park a chain cursor — a pre-resolved
        // next-cycle dispatch for a token just moved into a place:
        //
        // `chain_entry[(place, class)]`: the place can be the *head* of a
        // chain — any firing that moves a token there (a hooked generic
        // transition entering the chain from outside, or a superblock)
        // may park a cursor for the place's own superblock. Entry-legal
        // iff the `(place, class)` superblock exists (single hook-free
        // candidate by admission) and the place is an ordinary
        // single-list latch: not two-list (latch commits defer arrival),
        // no transition's extra (join) input (the token could be consumed
        // from another place's dispatch), and not a reservation target
        // (`res_places` — no reservation token can ever share it).
        //
        // `SbBlock::chain_next`: the superblock *links* to its
        // destination's block, making the destination an intermediate
        // place of a fused multi-dispatch walk. On top of entry legality
        // this demands that no other transition's guard reads the
        // destination's state (`reads_states`, the feedback references
        // the analysis tracks — fusing across an observed place is where
        // interference could hide), and that the block's effective token
        // delay is a static 0 or 1 cycle (`base_ready`, or `tdelay + d`
        // under a constant `SetDelay`) so the token is provably ready at
        // its very next sweep slot and the cursor can be armed for
        // `cycle + 1` unconditionally.
        //
        // The cursor re-proves the dynamic half at dispatch time (sole
        // residency, token identity, class, readiness) and falls back to
        // the generic scan otherwise, so these rules only decide *where*
        // cursors may be parked, never what fires.
        let mut chain_entry = Vec::new();
        if cfg.chains && !sb_blocks.is_empty() {
            let mut joined = vec![false; n_places];
            let mut guard_read = vec![false; n_places];
            for t in &model.transitions {
                for x in &t.extra_inputs {
                    joined[x.index()] = true;
                }
                for s in &t.reads_states {
                    guard_read[s.index()] = true;
                }
            }
            chain_entry = vec![u32::MAX; n_places * n_classes];
            for pi in 0..n_places {
                if two_list[pi]
                    || joined[pi]
                    || res_places.binary_search(&PlaceId::from_index(pi)).is_ok()
                {
                    continue;
                }
                let row = pi * n_classes;
                chain_entry[row..row + n_classes].copy_from_slice(&sb_index[row..row + n_classes]);
            }
            let eff_delay = |b: &SbBlock| {
                let ops = &sb_ops[b.action.0 as usize..b.action.1 as usize];
                ops.iter()
                    .rev()
                    .find_map(|op| match op {
                        MicroOp::SetDelay(d) => Some(b.tdelay + u64::from(*d)),
                        _ => None,
                    })
                    .unwrap_or(b.base_ready)
            };
            for blk in &mut sb_blocks {
                let b = *blk;
                if b.dest_is_end || eff_delay(&b) > 1 {
                    continue;
                }
                let di = b.dest as usize;
                if guard_read[di] {
                    continue;
                }
                let nxt = chain_entry[di * n_classes + b.class as usize];
                if nxt != u32::MAX {
                    blk.chain_next = nxt;
                }
            }
        }

        let subnet_of_class: Vec<u32> =
            model.classes.iter().map(|c| c.subnet.index() as u32).collect();
        let subnet_of_trans: Vec<u32> =
            model.transitions.iter().map(|t| t.subnet.index() as u32).collect();
        let input_of_trans: Vec<u32> =
            model.transitions.iter().map(|t| t.input.index() as u32).collect();

        // Materialize only the lookup variant this plan was compiled for.
        let flatten = |lists: &[Box<[TransitionId]>]| {
            let mut flat: Vec<u32> = Vec::new();
            let mut span: Vec<(u32, u16)> = Vec::with_capacity(lists.len());
            for list in lists {
                let start = flat.len() as u32;
                flat.extend(list.iter().map(|t| t.index() as u32));
                assert!(
                    list.len() <= usize::from(u16::MAX),
                    "candidate-transition list exceeds the u16 span limit"
                );
                span.push((start, list.len() as u16));
            }
            (flat, span)
        };
        let lookup = match cfg.table_mode {
            TableMode::PerPlaceClass => {
                let (flat, span) = flatten(&model.analysis.sorted);
                Lookup::PerPlaceClass { flat, span, n_classes: model.analysis.n_classes }
            }
            TableMode::PerPlace => {
                let (flat, span) = flatten(&model.analysis.by_place);
                Lookup::PerPlace { flat, span }
            }
            TableMode::FullScan => {
                let mut scan: Vec<u32> = (0..model.transition_count() as u32).collect();
                scan.sort_by_key(|&t| (model.transitions[t as usize].priority, t));
                Lookup::FullScan { order: scan }
            }
        };

        ExecPlan {
            order,
            fixpoint: cfg.two_list_everywhere,
            res_places,
            lookup,
            subnet_of_class,
            subnet_of_trans,
            input_of_trans,
            dependents,
            hot,
            hot_place,
            hot_source,
            dispatch,
            programs,
            n_stages: model.stage_count(),
            sb_index,
            sb_blocks,
            sb_ops,
            sb_classes: n_classes,
            chain_entry,
        }
    }
}

/// A compiled RCPN model: the generated-simulator artifact.
///
/// Produced by [`CompiledModel::compile`] (or `compile_with` for explicit
/// [`EngineConfig`] variants); consumed by [`CompiledModel::instantiate`],
/// which creates an independent [`Engine`] sharing the compiled tables.
///
/// Cloning a `CompiledModel` is cheap (two `Arc` clones) and instantiated
/// engines keep the artifact alive, so the typical pattern is:
///
/// ```
/// use rcpn::prelude::*;
/// use rcpn::compiled::CompiledModel;
///
/// #[derive(Debug)]
/// struct Tok(OpClassId);
/// impl InstrData for Tok {
///     fn op_class(&self) -> OpClassId { self.0 }
/// }
///
/// # fn main() -> Result<(), rcpn::error::BuildError> {
/// let mut b = ModelBuilder::<Tok, u32>::new();
/// let s = b.stage("S", 1);
/// let p = b.place("P", s);
/// let end = b.end_place();
/// let (alu, _) = b.class_net("Alu");
/// b.transition(alu, "retire").from(p).to(end).done();
/// b.source("feed").to(p).produce(move |_m, _fx| Some(Tok(alu))).done();
///
/// // Compile once...
/// let compiled = CompiledModel::compile(b.build()?);
/// // ...instantiate many times.
/// let mut a = compiled.instantiate(Machine::new(RegisterFile::new(), 0u32));
/// let mut b = compiled.instantiate(Machine::new(RegisterFile::new(), 0u32));
/// a.run(10);
/// b.run(10);
/// assert_eq!(a.stats().retired, b.stats().retired);
/// # Ok(())
/// # }
/// ```
pub struct CompiledModel<D: InstrData, R> {
    pub(crate) model: Arc<Model<D, R>>,
    pub(crate) plan: Arc<ExecPlan>,
    pub(crate) cfg: EngineConfig,
}

impl<D: InstrData, R> Clone for CompiledModel<D, R> {
    fn clone(&self) -> Self {
        CompiledModel {
            model: Arc::clone(&self.model),
            plan: Arc::clone(&self.plan),
            cfg: self.cfg.clone(),
        }
    }
}

impl<D: InstrData, R> CompiledModel<D, R> {
    /// Compiles `model` with the default (fully optimized) configuration.
    pub fn compile(model: Model<D, R>) -> Self {
        Self::compile_with(model, EngineConfig::default())
    }

    /// Compiles `model` into the variant selected by `cfg`.
    pub fn compile_with(model: Model<D, R>, cfg: EngineConfig) -> Self {
        let plan = ExecPlan::build(&model, &cfg);
        CompiledModel { model: Arc::new(model), plan: Arc::new(plan), cfg }
    }

    /// The source model.
    pub fn model(&self) -> &Model<D, R> {
        &self.model
    }

    /// The configuration this model was compiled with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The candidate-lookup variant this model was compiled for.
    pub fn table_mode(&self) -> TableMode {
        self.cfg.table_mode
    }

    /// The transitions whose enabling depends on `place`'s token
    /// population (input or extra-input arcs; sorted, deduplicated).
    ///
    /// This is the compiled place→transitions reverse index the
    /// activity-driven scheduler accounts skipped work against; it is
    /// exposed so tests can validate the dependency structure.
    pub fn dependents_of(&self, place: PlaceId) -> &[TransitionId] {
        &self.plan.dependents[place.index()]
    }

    /// Number of transitions whose guard or action is dispatched through
    /// the micro-op IR (including fused ones) — zero for a purely
    /// closure-wired model. Exposed so tests can assert the IR path is
    /// actually reachable, not just compiled.
    pub fn ir_transitions(&self) -> usize {
        self.plan
            .dispatch
            .iter()
            .filter(|d| {
                !matches!(
                    (d.guard, d.action),
                    (GuardCode::None | GuardCode::Closure, ActionCode::None | ActionCode::Closure)
                )
            })
            .count()
    }

    /// Number of transitions whose `CheckReady` guard was fused with the
    /// `AcquireOperands` head of their action by the compile pass.
    pub fn fused_transitions(&self) -> usize {
        self.plan.dispatch.iter().filter(|d| matches!(d.guard, GuardCode::Fused { .. })).count()
    }

    /// Number of superblocks formed: (place, class) pairs that dispatch
    /// through a pre-resolved block instead of the candidate walk. Zero
    /// when compiled with [`EngineConfig::superblocks`] off.
    pub fn superblocks(&self) -> usize {
        self.plan.sb_blocks.len()
    }

    /// Number of fusion-legal chain links: superblocks whose destination
    /// carries a pre-resolved successor block, so firing them parks a
    /// chain dispatch cursor. Zero when compiled with
    /// [`EngineConfig::chains`] off.
    pub fn chain_links(&self) -> usize {
        self.plan.sb_blocks.iter().filter(|b| b.chain_next != u32::MAX).count()
    }

    /// Number of chain entry points: (place, class) pairs where any
    /// firing that moves a token in may park a chain cursor for the
    /// place's superblock — where a chain can begin. Zero when compiled
    /// with [`EngineConfig::chains`] off.
    pub fn chains(&self) -> usize {
        self.plan.chain_entry.iter().filter(|&&e| e != u32::MAX).count()
    }

    /// Creates an independent engine over fresh mutable state (token pool,
    /// place lists, statistics) sharing this compiled artifact.
    pub fn instantiate(&self, machine: Machine<R>) -> Engine<D, R> {
        Engine::from_compiled(self.clone(), machine)
    }
}

impl<D: InstrData, R> std::fmt::Debug for CompiledModel<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledModel")
            .field("places", &self.model.place_count())
            .field("transitions", &self.model.transition_count())
            .field("table_mode", &self.cfg.table_mode)
            .field("fixpoint", &self.plan.fixpoint)
            .finish()
    }
}
