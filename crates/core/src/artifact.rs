//! Serialized compiled models: the generated simulator as a build product.
//!
//! The paper's flow — pipeline description → analysis → generated
//! cycle-accurate simulator — ends, in this crate, at a
//! [`CompiledModel`]: flat hot tables plus the source model. Since the
//! spec layer synthesizes guards and actions as micro-op IR
//! ([`crate::ir`]), almost everything in that artifact is plain data; this
//! module makes the artifact *persistent*, so a model is compiled once and
//! reloaded from disk thereafter — the prerequisite for treating pipeline
//! descriptions as data a service can accept.
//!
//! Three pieces:
//!
//! * **Encoding** — a hand-rolled, deterministic, little-endian binary
//!   format (magic, format version, spec hash, payload checksum, then
//!   tagged length-prefixed sections). Hand-rolled on purpose: no serde
//!   (vendor policy), no schema drift hidden behind derives — the format
//!   is the code in this file, versioned by [`FORMAT_VERSION`], and the
//!   golden-fixture test fails loudly when the bytes change without a
//!   version bump. The decoder is fully bounds-checked and returns typed
//!   [`ArtifactError`]s; it never panics on hostile bytes.
//! * **Named hooks** — closures cannot be serialized, so every
//!   escape-hatch closure of a serializable model carries a
//!   [`NamedHook`]: a stable string key plus the captured [`HookArgs`]
//!   (forwarding window, flush set, own places). On reload a
//!   [`HookRegistry`] rebuilds each closure from its key; processors
//!   register their semantic functions once under stable `"arm.*"`-style
//!   keys. Models with unnamed closures still work in memory — they are
//!   just refused by the encoder ([`ArtifactError::UnnamedClosure`]).
//! * **Cache** — [`ArtifactCache`], a content-addressed directory keyed
//!   by `(spec hash, engine config, format version)`, with hit/miss/
//!   bypass counters. The spec hash is [`crate::spec::PipelineSpec::content_hash`];
//!   the engine config is hashed from its encoded bytes, so every
//!   compiled variant (table mode, scheduler, superblocks, …) gets its
//!   own entry.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::analysis::Analysis;
use crate::compiled::{
    ActionCode, CompiledModel, ExecPlan, GuardCode, HotDispatch, HotPlace, HotSource, HotTrans,
    Lookup, SbBlock,
};
use crate::engine::{EngineConfig, SchedulerMode, TableMode};
use crate::ids::{PlaceId, StageId, SubnetId, TransitionId};
use crate::ir::{MicroOp, Program};
use crate::model::{
    Action, ActionKind, Guard, GuardKind, HookArgs, Hooks, Model, NamedHook, OpClassDef, PlaceDef,
    ResArc, SourceAction, SourceDef, SourceGuard, SquashHandler, StageDef, SubnetDef,
    TransitionDef,
};
use crate::token::InstrData;

/// Version of the on-disk encoding. Bump on **any** change to the byte
/// layout — the golden-fixture test pins the current bytes and fails when
/// they drift under an unchanged version.
pub const FORMAT_VERSION: u32 = 2;

/// The four magic bytes every artifact starts with.
pub const MAGIC: [u8; 4] = *b"RCPN";

/// Errors of the artifact layer: encoding, decoding, and the cache.
///
/// Every decoder failure mode is a typed variant with a rendered message
/// carrying the offending entity — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArtifactError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The rendered I/O error.
        detail: String,
    },
    /// The file does not start with the [`MAGIC`] bytes.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The artifact was written under a different [`FORMAT_VERSION`].
    Version {
        /// Version in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The artifact was built from a different pipeline spec.
    SpecHash {
        /// Spec hash in the file.
        found: u64,
        /// Spec hash the caller expected.
        expected: u64,
    },
    /// The payload checksum does not match: the file is corrupt.
    Checksum {
        /// Checksum computed over the payload.
        computed: u64,
        /// Checksum stored in the header.
        stored: u64,
    },
    /// The file ends in the middle of a section.
    Truncated {
        /// The section being read when the bytes ran out.
        section: &'static str,
    },
    /// A section holds structurally invalid data (bad tag, out-of-range
    /// index, …).
    Corrupt {
        /// The section being read.
        section: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// The artifact references a hook key the [`HookRegistry`] does not
    /// provide.
    UnknownHook {
        /// The registry table missing the key (guard, action, …).
        kind: &'static str,
        /// The missing key.
        key: String,
    },
    /// The model holds a closure without a [`NamedHook`], so it cannot be
    /// serialized. Use the `*_named` spec/builder methods.
    UnnamedClosure {
        /// The entity holding the anonymous closure.
        entity: String,
    },
    /// Well-formed sections followed by garbage bytes.
    TrailingBytes {
        /// Number of unconsumed bytes.
        len: usize,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io { path, detail } => {
                write!(f, "artifact i/o on {} failed: {detail}", path.display())
            }
            ArtifactError::BadMagic { found } => {
                write!(f, "not an rcpn artifact: magic bytes are {found:?}")
            }
            ArtifactError::Version { found, expected } => write!(
                f,
                "artifact format version {found} does not match this build's {expected}; \
                 recompile the model (or garbage-collect the cache)"
            ),
            ArtifactError::SpecHash { found, expected } => write!(
                f,
                "artifact was built from spec {found:#018x} but spec {expected:#018x} was \
                 expected"
            ),
            ArtifactError::Checksum { computed, stored } => write!(
                f,
                "artifact payload checksum mismatch: computed {computed:#018x}, header says \
                 {stored:#018x}"
            ),
            ArtifactError::Truncated { section } => {
                write!(f, "artifact truncated inside the {section} section")
            }
            ArtifactError::Corrupt { section, detail } => {
                write!(f, "artifact {section} section is corrupt: {detail}")
            }
            ArtifactError::UnknownHook { kind, key } => {
                write!(f, "artifact references unregistered {kind} hook {key:?}")
            }
            ArtifactError::UnnamedClosure { entity } => write!(
                f,
                "{entity} holds a closure without a registry name; use the *_named \
                 spec/builder methods to keep the model serializable"
            ),
            ArtifactError::TrailingBytes { len } => {
                write!(f, "artifact has {len} trailing bytes after the last section")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

// ---------------------------------------------------------------------------
// FNV-1a hashing (deterministic, dependency-free).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a-64 hasher used for the payload checksum, the spec
/// hash, and the cache key. Deterministic across platforms by
/// construction (byte-oriented, little-endian integer encoding).
#[derive(Debug, Clone)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.write(s.as_bytes());
    }

    pub(crate) fn opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
            None => self.u8(0),
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

// ---------------------------------------------------------------------------
// Section table.

const SEC_CONFIG: u8 = 1;
const SEC_STAGES: u8 = 2;
const SEC_PLACES: u8 = 3;
const SEC_SUBNETS: u8 = 4;
const SEC_CLASSES: u8 = 5;
const SEC_HOOKS: u8 = 6;
const SEC_TRANSITIONS: u8 = 7;
const SEC_SOURCES: u8 = 8;
const SEC_SQUASH: u8 = 9;
const SEC_ANALYSIS: u8 = 10;
const SEC_PLAN: u8 = 11;

/// Tag → name, in the exact order sections appear in the payload.
const SECTIONS: [(u8, &str); 11] = [
    (SEC_CONFIG, "config"),
    (SEC_STAGES, "stages"),
    (SEC_PLACES, "places"),
    (SEC_SUBNETS, "subnets"),
    (SEC_CLASSES, "classes"),
    (SEC_HOOKS, "hooks"),
    (SEC_TRANSITIONS, "transitions"),
    (SEC_SOURCES, "sources"),
    (SEC_SQUASH, "squash"),
    (SEC_ANALYSIS, "analysis"),
    (SEC_PLAN, "plan"),
];

fn section_name(tag: u8) -> &'static str {
    SECTIONS.iter().find(|(t, _)| *t == tag).map_or("unknown", |(_, n)| n)
}

/// Byte length of the fixed header (magic, version, spec hash, checksum).
pub const HEADER_LEN: usize = 4 + 4 + 8 + 8;

// ---------------------------------------------------------------------------
// Writer.

#[derive(Debug, Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn len32(&mut self, v: usize) {
        assert!(v <= u32::MAX as usize, "artifact section element count exceeds u32");
        self.u32(v as u32);
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn str(&mut self, s: &str) {
        self.len32(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn place(&mut self, p: PlaceId) {
        self.u32(p.index() as u32);
    }

    fn opt_place(&mut self, p: Option<PlaceId>) {
        self.u32(p.map_or(u32::MAX, |p| p.index() as u32));
    }

    fn places(&mut self, ps: &[PlaceId]) {
        self.len32(ps.len());
        for &p in ps {
            self.place(p);
        }
    }

    fn tids(&mut self, ts: &[TransitionId]) {
        self.len32(ts.len());
        for t in ts {
            self.u32(t.index() as u32);
        }
    }

    fn u32s(&mut self, vs: &[u32]) {
        self.len32(vs.len());
        for &v in vs {
            self.u32(v);
        }
    }

    fn named_hook(&mut self, h: &NamedHook) {
        self.str(&h.key);
        self.places(&h.args.fwd);
        self.places(&h.args.flush);
        self.opt_place(h.args.from);
        self.opt_place(h.args.to);
    }

    fn micro_op(&mut self, op: &MicroOp) {
        match op {
            MicroOp::CheckReady { fwd_mask } => {
                self.u8(0);
                self.u64(*fwd_mask);
            }
            MicroOp::AcquireOperands { fwd_mask } => {
                self.u8(1);
                self.u64(*fwd_mask);
            }
            MicroOp::WriteBack => self.u8(2),
            MicroOp::ReserveRes { place, expire } => {
                self.u8(3);
                self.place(*place);
                self.u32(*expire);
            }
            MicroOp::ReleaseRes => self.u8(4),
            MicroOp::EmitRedirect { flush } => {
                self.u8(5);
                self.places(flush);
            }
            MicroOp::Publish => self.u8(6),
            MicroOp::CheckCond { expect } => {
                self.u8(7);
                self.bool(*expect);
            }
            MicroOp::Annul => self.u8(8),
            MicroOp::SetDelay(d) => {
                self.u8(9);
                self.u32(*d);
            }
            MicroOp::CallHook(h) => {
                self.u8(10);
                self.u32(*h);
            }
        }
    }

    fn program(&mut self, p: &Program) {
        self.len32(p.ops().len());
        for op in p.ops() {
            self.micro_op(op);
        }
    }

    /// Writes a tagged section: `tag, byte-length, body`.
    fn section(
        &mut self,
        tag: u8,
        body: impl FnOnce(&mut Writer) -> Result<(), ArtifactError>,
    ) -> Result<(), ArtifactError> {
        self.u8(tag);
        let len_at = self.buf.len();
        self.u32(0); // length placeholder
        body(self)?;
        let len = self.buf.len() - len_at - 4;
        assert!(len <= u32::MAX as usize, "artifact section exceeds u32 bytes");
        self.buf[len_at..len_at + 4].copy_from_slice(&(len as u32).to_le_bytes());
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Reader.

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Reader { buf, pos: 0, section }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.remaining() < n {
            return Err(ArtifactError::Truncated { section: self.section });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn corrupt(&self, detail: impl Into<String>) -> ArtifactError {
        ArtifactError::Corrupt { section: self.section, detail: detail.into() }
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ArtifactError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Element count: bounded by the remaining bytes so corrupt lengths
    /// cannot trigger huge allocations.
    fn count(&mut self) -> Result<usize, ArtifactError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(self.corrupt(format!("element count {n} exceeds remaining bytes")));
        }
        Ok(n)
    }

    fn bool(&mut self) -> Result<bool, ArtifactError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.corrupt(format!("bool byte {b:#04x}"))),
        }
    }

    fn str(&mut self) -> Result<String, ArtifactError> {
        let n = self.count()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("non-utf8 string"))
    }

    fn place(&mut self, n_places: usize) -> Result<PlaceId, ArtifactError> {
        let i = self.u32()? as usize;
        if i >= n_places {
            return Err(self.corrupt(format!("place index {i} out of range (< {n_places})")));
        }
        Ok(PlaceId::from_index(i))
    }

    fn opt_place(&mut self, n_places: usize) -> Result<Option<PlaceId>, ArtifactError> {
        let i = self.u32()?;
        if i == u32::MAX {
            return Ok(None);
        }
        let i = i as usize;
        if i >= n_places {
            return Err(self.corrupt(format!("place index {i} out of range (< {n_places})")));
        }
        Ok(Some(PlaceId::from_index(i)))
    }

    fn places(&mut self, n_places: usize) -> Result<Vec<PlaceId>, ArtifactError> {
        let n = self.count()?;
        (0..n).map(|_| self.place(n_places)).collect()
    }

    fn tids(&mut self, n_trans: usize) -> Result<Vec<TransitionId>, ArtifactError> {
        let n = self.count()?;
        (0..n)
            .map(|_| {
                let i = self.u32()? as usize;
                if i >= n_trans {
                    return Err(
                        self.corrupt(format!("transition index {i} out of range (< {n_trans})"))
                    );
                }
                Ok(TransitionId::from_index(i))
            })
            .collect()
    }

    fn u32s(&mut self) -> Result<Vec<u32>, ArtifactError> {
        let n = self.count()?;
        (0..n).map(|_| self.u32()).collect()
    }

    fn named_hook(&mut self, n_places: usize) -> Result<NamedHook, ArtifactError> {
        let key = self.str()?;
        let fwd = self.places(n_places)?;
        let flush = self.places(n_places)?;
        let from = self.opt_place(n_places)?;
        let to = self.opt_place(n_places)?;
        Ok(NamedHook { key, args: HookArgs { fwd, flush, from, to } })
    }

    fn micro_op(&mut self, n_places: usize) -> Result<MicroOp, ArtifactError> {
        Ok(match self.u8()? {
            0 => MicroOp::CheckReady { fwd_mask: self.u64()? },
            1 => MicroOp::AcquireOperands { fwd_mask: self.u64()? },
            2 => MicroOp::WriteBack,
            3 => MicroOp::ReserveRes { place: self.place(n_places)?, expire: self.u32()? },
            4 => MicroOp::ReleaseRes,
            5 => MicroOp::EmitRedirect { flush: self.places(n_places)?.into_boxed_slice() },
            6 => MicroOp::Publish,
            7 => MicroOp::CheckCond { expect: self.bool()? },
            8 => MicroOp::Annul,
            9 => MicroOp::SetDelay(self.u32()?),
            10 => MicroOp::CallHook(self.u32()?),
            t => return Err(self.corrupt(format!("micro-op tag {t}"))),
        })
    }

    fn program(&mut self, n_places: usize) -> Result<Program, ArtifactError> {
        let n = self.count()?;
        let ops = (0..n).map(|_| self.micro_op(n_places)).collect::<Result<Vec<_>, _>>()?;
        Ok(Program::new(ops))
    }
}

// ---------------------------------------------------------------------------
// Hook registry.

type GuardFactory<D, R> = Box<dyn Fn(&HookArgs) -> Guard<D, R> + Send + Sync>;
type ActionFactory<D, R> = Box<dyn Fn(&HookArgs) -> Action<D, R> + Send + Sync>;
type SourceGuardFactory<R> = Box<dyn Fn(&HookArgs) -> SourceGuard<R> + Send + Sync>;
type SourceActionFactory<D, R> = Box<dyn Fn(&HookArgs) -> SourceAction<D, R> + Send + Sync>;
type SquashFactory<D, R> = Box<dyn Fn(&HookArgs) -> SquashHandler<D, R> + Send + Sync>;

/// The decoder's closure factory: rebuilds every [`NamedHook`] an artifact
/// references.
///
/// Each key maps to a factory receiving the hook's captured [`HookArgs`]
/// and returning a fresh closure. Keys are a stable public contract of the
/// model crate that registers them: the same key must always rebuild
/// behaviorally identical semantics, or reloaded artifacts silently
/// diverge from freshly compiled models (the round-trip tests pin this).
pub struct HookRegistry<D, R> {
    guards: HashMap<String, GuardFactory<D, R>>,
    actions: HashMap<String, ActionFactory<D, R>>,
    source_guards: HashMap<String, SourceGuardFactory<R>>,
    source_actions: HashMap<String, SourceActionFactory<D, R>>,
    squash: HashMap<String, SquashFactory<D, R>>,
}

impl<D, R> Default for HookRegistry<D, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D, R> HookRegistry<D, R> {
    /// An empty registry.
    pub fn new() -> Self {
        HookRegistry {
            guards: HashMap::new(),
            actions: HashMap::new(),
            source_guards: HashMap::new(),
            source_actions: HashMap::new(),
            squash: HashMap::new(),
        }
    }

    /// Registers a transition-guard factory under `key`.
    pub fn guard(
        &mut self,
        key: &str,
        f: impl Fn(&HookArgs) -> Guard<D, R> + Send + Sync + 'static,
    ) -> &mut Self {
        self.guards.insert(key.to_string(), Box::new(f));
        self
    }

    /// Registers a transition-action (and action-hook) factory under `key`.
    pub fn action(
        &mut self,
        key: &str,
        f: impl Fn(&HookArgs) -> Action<D, R> + Send + Sync + 'static,
    ) -> &mut Self {
        self.actions.insert(key.to_string(), Box::new(f));
        self
    }

    /// Registers a source-guard factory under `key`.
    pub fn source_guard(
        &mut self,
        key: &str,
        f: impl Fn(&HookArgs) -> SourceGuard<R> + Send + Sync + 'static,
    ) -> &mut Self {
        self.source_guards.insert(key.to_string(), Box::new(f));
        self
    }

    /// Registers a source-producer factory under `key`.
    pub fn source_action(
        &mut self,
        key: &str,
        f: impl Fn(&HookArgs) -> SourceAction<D, R> + Send + Sync + 'static,
    ) -> &mut Self {
        self.source_actions.insert(key.to_string(), Box::new(f));
        self
    }

    /// Registers a squash-handler factory under `key`.
    pub fn squash(
        &mut self,
        key: &str,
        f: impl Fn(&HookArgs) -> SquashHandler<D, R> + Send + Sync + 'static,
    ) -> &mut Self {
        self.squash.insert(key.to_string(), Box::new(f));
        self
    }

    fn make_guard(&self, h: &NamedHook) -> Result<Guard<D, R>, ArtifactError> {
        self.guards
            .get(&h.key)
            .map(|f| f(&h.args))
            .ok_or_else(|| ArtifactError::UnknownHook { kind: "guard", key: h.key.clone() })
    }

    fn make_action(&self, h: &NamedHook) -> Result<Action<D, R>, ArtifactError> {
        self.actions
            .get(&h.key)
            .map(|f| f(&h.args))
            .ok_or_else(|| ArtifactError::UnknownHook { kind: "action", key: h.key.clone() })
    }

    fn make_source_guard(&self, h: &NamedHook) -> Result<SourceGuard<R>, ArtifactError> {
        self.source_guards
            .get(&h.key)
            .map(|f| f(&h.args))
            .ok_or_else(|| ArtifactError::UnknownHook { kind: "source guard", key: h.key.clone() })
    }

    fn make_source_action(&self, h: &NamedHook) -> Result<SourceAction<D, R>, ArtifactError> {
        self.source_actions.get(&h.key).map(|f| f(&h.args)).ok_or_else(|| {
            ArtifactError::UnknownHook { kind: "source producer", key: h.key.clone() }
        })
    }

    fn make_squash(&self, h: &NamedHook) -> Result<SquashHandler<D, R>, ArtifactError> {
        self.squash
            .get(&h.key)
            .map(|f| f(&h.args))
            .ok_or_else(|| ArtifactError::UnknownHook { kind: "squash", key: h.key.clone() })
    }
}

impl<D, R> std::fmt::Debug for HookRegistry<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookRegistry")
            .field("guards", &self.guards.len())
            .field("actions", &self.actions.len())
            .field("source_guards", &self.source_guards.len())
            .field("source_actions", &self.source_actions.len())
            .field("squash", &self.squash.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Encoding.

fn encode_config(w: &mut Writer, cfg: &EngineConfig) {
    w.u8(match cfg.table_mode {
        TableMode::PerPlaceClass => 0,
        TableMode::PerPlace => 1,
        TableMode::FullScan => 2,
    });
    w.bool(cfg.two_list_everywhere);
    w.u8(match cfg.scheduler {
        SchedulerMode::ActivityDriven => 0,
        SchedulerMode::Exhaustive => 1,
    });
    w.bool(cfg.collect_occupancy);
    w.bool(cfg.trace);
    w.bool(cfg.superblocks);
    w.bool(cfg.chains);
}

fn config_bytes(cfg: &EngineConfig) -> Vec<u8> {
    let mut w = Writer::default();
    encode_config(&mut w, cfg);
    w.buf
}

fn unnamed(entity: String) -> ArtifactError {
    ArtifactError::UnnamedClosure { entity }
}

fn encode_model<D, R>(w: &mut Writer, model: &Model<D, R>) -> Result<(), ArtifactError> {
    w.section(SEC_STAGES, |w| {
        w.len32(model.stages.len());
        for s in &model.stages {
            w.str(&s.name);
            w.u32(s.capacity);
            w.bool(s.is_end);
        }
        Ok(())
    })?;
    w.section(SEC_PLACES, |w| {
        w.len32(model.places.len());
        for p in &model.places {
            w.str(&p.name);
            w.u32(p.stage.index() as u32);
            w.u32(p.delay);
        }
        Ok(())
    })?;
    w.section(SEC_SUBNETS, |w| {
        w.len32(model.subnets.len());
        for s in &model.subnets {
            w.str(&s.name);
        }
        Ok(())
    })?;
    w.section(SEC_CLASSES, |w| {
        w.len32(model.classes.len());
        for c in &model.classes {
            w.str(&c.name);
            w.u32(c.subnet.index() as u32);
        }
        Ok(())
    })?;
    w.section(SEC_HOOKS, |w| {
        w.len32(model.hooks.guards.len());
        for (i, name) in model.hooks.guard_names.iter().enumerate() {
            let name = name.as_ref().ok_or_else(|| unnamed(format!("guard hook #{i}")))?;
            w.named_hook(name);
        }
        w.len32(model.hooks.actions.len());
        for (i, name) in model.hooks.action_names.iter().enumerate() {
            let name = name.as_ref().ok_or_else(|| unnamed(format!("action hook #{i}")))?;
            w.named_hook(name);
        }
        Ok(())
    })?;
    w.section(SEC_TRANSITIONS, |w| {
        w.len32(model.transitions.len());
        for t in &model.transitions {
            w.str(&t.name);
            w.u32(t.subnet.index() as u32);
            w.place(t.input);
            w.u32(t.priority);
            w.places(&t.extra_inputs);
            w.place(t.dest);
            w.len32(t.reservations.len());
            for r in &t.reservations {
                w.place(r.place);
                w.u32(r.expire);
            }
            w.u32(t.delay);
            w.places(&t.reads_states);
            match &t.guard {
                None => w.u8(0),
                Some(GuardKind::Ir(p)) => {
                    w.u8(1);
                    w.program(p);
                }
                Some(GuardKind::Closure(_)) => {
                    let name = t
                        .guard_name
                        .as_ref()
                        .ok_or_else(|| unnamed(format!("transition {:?} guard", t.name)))?;
                    w.u8(2);
                    w.named_hook(name);
                }
            }
            match &t.action {
                None => w.u8(0),
                Some(ActionKind::Ir(p)) => {
                    w.u8(1);
                    w.program(p);
                }
                Some(ActionKind::Closure(_)) => {
                    let name = t
                        .action_name
                        .as_ref()
                        .ok_or_else(|| unnamed(format!("transition {:?} action", t.name)))?;
                    w.u8(2);
                    w.named_hook(name);
                }
            }
        }
        Ok(())
    })?;
    w.section(SEC_SOURCES, |w| {
        w.len32(model.sources.len());
        for s in &model.sources {
            w.str(&s.name);
            w.place(s.dest);
            w.u32(s.max_per_cycle);
            match (&s.guard, &s.guard_name) {
                (None, _) => w.u8(0),
                (Some(_), Some(name)) => {
                    w.u8(1);
                    w.named_hook(name);
                }
                (Some(_), None) => {
                    return Err(unnamed(format!("source {:?} guard", s.name)));
                }
            }
            let name = s
                .produce_name
                .as_ref()
                .ok_or_else(|| unnamed(format!("source {:?} producer", s.name)))?;
            w.named_hook(name);
        }
        Ok(())
    })?;
    w.section(SEC_SQUASH, |w| {
        match (&model.squash_handler, &model.squash_name) {
            (None, _) => w.u8(0),
            (Some(_), Some(name)) => {
                w.u8(1);
                w.named_hook(name);
            }
            (Some(_), None) => return Err(unnamed("squash handler".to_string())),
        }
        Ok(())
    })?;
    w.section(SEC_ANALYSIS, |w| {
        let a = &model.analysis;
        w.places(&a.order);
        w.len32(a.two_list.len());
        for &b in &a.two_list {
            w.bool(b);
        }
        w.len32(a.sorted.len());
        for list in &a.sorted {
            w.tids(list);
        }
        w.len32(a.by_place.len());
        for list in &a.by_place {
            w.tids(list);
        }
        w.len32(a.n_classes);
        w.len32(a.flow_cycle_places);
        w.len32(a.feedback_places);
        Ok(())
    })?;
    Ok(())
}

fn encode_plan(w: &mut Writer, plan: &ExecPlan) -> Result<(), ArtifactError> {
    w.section(SEC_PLAN, |w| {
        w.places(&plan.order);
        w.bool(plan.fixpoint);
        w.places(&plan.res_places);
        match &plan.lookup {
            Lookup::PerPlaceClass { flat, span, n_classes } => {
                w.u8(0);
                w.u32s(flat);
                w.len32(span.len());
                for &(start, len) in span {
                    w.u32(start);
                    w.u16(len);
                }
                w.len32(*n_classes);
            }
            Lookup::PerPlace { flat, span } => {
                w.u8(1);
                w.u32s(flat);
                w.len32(span.len());
                for &(start, len) in span {
                    w.u32(start);
                    w.u16(len);
                }
            }
            Lookup::FullScan { order } => {
                w.u8(2);
                w.u32s(order);
            }
        }
        w.u32s(&plan.subnet_of_class);
        w.u32s(&plan.subnet_of_trans);
        w.u32s(&plan.input_of_trans);
        w.len32(plan.dependents.len());
        for list in &plan.dependents {
            w.tids(list);
        }
        w.len32(plan.hot.len());
        for h in &plan.hot {
            w.u32(h.dest);
            w.u32(h.dest_stage);
            w.bool(h.cap_exempt);
            w.bool(h.dest_is_end);
            w.u64(h.base_ready);
            w.u64(h.tdelay);
            w.u32(h.cap);
            w.bool(h.has_guard);
            w.bool(h.has_action);
            w.bool(h.has_extra);
            w.bool(h.has_res);
        }
        w.len32(plan.hot_place.len());
        for p in &plan.hot_place {
            w.u32(p.stage);
            w.bool(p.two_list);
            w.u64(p.delay);
            w.u32(p.cap);
            w.bool(p.is_end);
            w.u32(p.n_dependents);
        }
        w.len32(plan.hot_source.len());
        for s in &plan.hot_source {
            w.u32(s.dest);
            w.u32(s.width);
        }
        w.len32(plan.dispatch.len());
        for d in &plan.dispatch {
            match d.guard {
                GuardCode::None => w.u8(0),
                GuardCode::Closure => w.u8(1),
                GuardCode::Prog(i) => {
                    w.u8(2);
                    w.u32(i);
                }
                GuardCode::Fused { fwd_mask } => {
                    w.u8(3);
                    w.u64(fwd_mask);
                }
            }
            match d.action {
                ActionCode::None => w.u8(0),
                ActionCode::Closure => w.u8(1),
                ActionCode::Prog(i) => {
                    w.u8(2);
                    w.u32(i);
                }
            }
        }
        w.len32(plan.programs.len());
        for p in &plan.programs {
            w.program(p);
        }
        w.len32(plan.n_stages);
        w.u32s(&plan.sb_index);
        w.len32(plan.sb_blocks.len());
        for b in &plan.sb_blocks {
            w.u32(b.tid);
            w.u32(b.guard.0);
            w.u32(b.guard.1);
            w.u32(b.action.0);
            w.u32(b.action.1);
            match b.fused {
                None => w.u8(0),
                Some(m) => {
                    w.u8(1);
                    w.u64(m);
                }
            }
            w.u32(b.dest);
            w.u32(b.dest_stage);
            w.bool(b.dest_is_end);
            w.bool(b.cap_exempt);
            w.u32(b.cap);
            w.u64(b.base_ready);
            w.u64(b.tdelay);
            w.u32(b.class);
            w.u32(b.chain_next);
        }
        w.len32(plan.sb_ops.len());
        for op in &plan.sb_ops {
            w.micro_op(op);
        }
        w.len32(plan.sb_classes);
        w.u32s(&plan.chain_entry);
        Ok(())
    })
}

// ---------------------------------------------------------------------------
// Decoding.

/// A section slice, with its absolute payload offset (for inspection
/// tooling and corruption tests that need to target specific regions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section name (`"config"`, `"stages"`, …).
    pub name: &'static str,
    /// Absolute byte offset of the section *body* within the file.
    pub offset: usize,
    /// Body length in bytes.
    pub len: usize,
}

/// Header and layout facts of an artifact, obtainable without knowing the
/// model's payload/resource types — what `rcpn-cache` prints and
/// validates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactInfo {
    /// Format version stored in the header.
    pub format_version: u32,
    /// Spec hash stored in the header.
    pub spec_hash: u64,
    /// Payload checksum stored in the header.
    pub stored_checksum: u64,
    /// Whether the stored checksum matches the payload bytes.
    pub checksum_ok: bool,
    /// The engine configuration the model was compiled with.
    pub config: EngineConfig,
    /// Every section, in file order.
    pub sections: Vec<SectionInfo>,
    /// Total file length in bytes.
    pub total_len: usize,
}

fn split_header(bytes: &[u8]) -> Result<(u32, u64, u64, &[u8]), ArtifactError> {
    if bytes.len() < HEADER_LEN {
        return Err(ArtifactError::Truncated { section: "header" });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(ArtifactError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let spec_hash = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    Ok((version, spec_hash, checksum, &bytes[HEADER_LEN..]))
}

fn decode_config(r: &mut Reader<'_>) -> Result<EngineConfig, ArtifactError> {
    let table_mode = match r.u8()? {
        0 => TableMode::PerPlaceClass,
        1 => TableMode::PerPlace,
        2 => TableMode::FullScan,
        t => return Err(r.corrupt(format!("table-mode tag {t}"))),
    };
    let two_list_everywhere = r.bool()?;
    let scheduler = match r.u8()? {
        0 => SchedulerMode::ActivityDriven,
        1 => SchedulerMode::Exhaustive,
        t => return Err(r.corrupt(format!("scheduler tag {t}"))),
    };
    Ok(EngineConfig {
        table_mode,
        two_list_everywhere,
        scheduler,
        collect_occupancy: r.bool()?,
        trace: r.bool()?,
        superblocks: r.bool()?,
        chains: r.bool()?,
    })
}

/// One decoded section: `(tag, absolute body offset within the payload,
/// body bytes)`.
type RawSection<'a> = (u8, usize, &'a [u8]);

/// Splits the payload into its expected sections, in order.
fn split_sections(payload: &[u8]) -> Result<Vec<RawSection<'_>>, ArtifactError> {
    let mut out = Vec::with_capacity(SECTIONS.len());
    let mut pos = 0usize;
    for (expect_tag, name) in SECTIONS {
        if payload.len() - pos < 5 {
            return Err(ArtifactError::Truncated { section: name });
        }
        let tag = payload[pos];
        if tag != expect_tag {
            return Err(ArtifactError::Corrupt {
                section: name,
                detail: format!("expected section tag {expect_tag}, found {tag}"),
            });
        }
        let len =
            u32::from_le_bytes(payload[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
        pos += 5;
        if payload.len() - pos < len {
            return Err(ArtifactError::Truncated { section: section_name(tag) });
        }
        out.push((tag, pos, &payload[pos..pos + len]));
        pos += len;
    }
    if pos != payload.len() {
        return Err(ArtifactError::TrailingBytes { len: payload.len() - pos });
    }
    Ok(out)
}

/// Parses an artifact's header and section layout without reconstructing
/// the model — the generic-free view used by the `rcpn-cache` tool and the
/// robustness tests.
///
/// # Errors
///
/// Returns the same header/layout [`ArtifactError`]s as a full decode
/// (bad magic, version mismatch, truncation, tag corruption); checksum
/// state is *reported* (in [`ArtifactInfo::checksum_ok`]) rather than
/// enforced, so corrupt files can still be listed and garbage-collected.
pub fn inspect(bytes: &[u8]) -> Result<ArtifactInfo, ArtifactError> {
    let (version, spec_hash, stored, payload) = split_header(bytes)?;
    if version != FORMAT_VERSION {
        return Err(ArtifactError::Version { found: version, expected: FORMAT_VERSION });
    }
    let sections_raw = split_sections(payload)?;
    let mut config = None;
    let mut sections = Vec::with_capacity(sections_raw.len());
    for (tag, off, body) in &sections_raw {
        if *tag == SEC_CONFIG {
            config = Some(decode_config(&mut Reader::new(body, "config"))?);
        }
        sections.push(SectionInfo {
            name: section_name(*tag),
            offset: HEADER_LEN + off,
            len: body.len(),
        });
    }
    Ok(ArtifactInfo {
        format_version: version,
        spec_hash,
        stored_checksum: stored,
        checksum_ok: fnv1a(payload) == stored,
        config: config.expect("config section is mandatory"),
        sections,
        total_len: bytes.len(),
    })
}

fn decode_analysis(
    r: &mut Reader<'_>,
    n_places: usize,
    n_trans: usize,
) -> Result<Analysis, ArtifactError> {
    let order = r.places(n_places)?;
    let n = r.count()?;
    let two_list = (0..n).map(|_| r.bool()).collect::<Result<Vec<_>, _>>()?;
    let n = r.count()?;
    let sorted = (0..n)
        .map(|_| Ok(r.tids(n_trans)?.into_boxed_slice()))
        .collect::<Result<Vec<_>, ArtifactError>>()?;
    let n = r.count()?;
    let by_place = (0..n)
        .map(|_| Ok(r.tids(n_trans)?.into_boxed_slice()))
        .collect::<Result<Vec<_>, ArtifactError>>()?;
    Ok(Analysis {
        order,
        two_list,
        sorted,
        by_place,
        n_classes: r.u32()? as usize,
        flow_cycle_places: r.u32()? as usize,
        feedback_places: r.u32()? as usize,
    })
}

#[allow(clippy::too_many_lines)]
fn decode_plan(
    r: &mut Reader<'_>,
    n_places: usize,
    n_trans: usize,
) -> Result<ExecPlan, ArtifactError> {
    let order = r.places(n_places)?;
    let fixpoint = r.bool()?;
    let res_places = r.places(n_places)?;
    let lookup = match r.u8()? {
        0 => {
            let flat = r.u32s()?;
            let n = r.count()?;
            let span = (0..n)
                .map(|_| Ok((r.u32()?, r.u16()?)))
                .collect::<Result<Vec<_>, ArtifactError>>()?;
            let n_classes = r.u32()? as usize;
            Lookup::PerPlaceClass { flat, span, n_classes }
        }
        1 => {
            let flat = r.u32s()?;
            let n = r.count()?;
            let span = (0..n)
                .map(|_| Ok((r.u32()?, r.u16()?)))
                .collect::<Result<Vec<_>, ArtifactError>>()?;
            Lookup::PerPlace { flat, span }
        }
        2 => Lookup::FullScan { order: r.u32s()? },
        t => return Err(r.corrupt(format!("lookup tag {t}"))),
    };
    let subnet_of_class = r.u32s()?;
    let subnet_of_trans = r.u32s()?;
    let input_of_trans = r.u32s()?;
    let n = r.count()?;
    let dependents = (0..n)
        .map(|_| Ok(r.tids(n_trans)?.into_boxed_slice()))
        .collect::<Result<Vec<_>, ArtifactError>>()?;
    let n = r.count()?;
    let hot = (0..n)
        .map(|_| {
            Ok(HotTrans {
                dest: r.u32()?,
                dest_stage: r.u32()?,
                cap_exempt: r.bool()?,
                dest_is_end: r.bool()?,
                base_ready: r.u64()?,
                tdelay: r.u64()?,
                cap: r.u32()?,
                has_guard: r.bool()?,
                has_action: r.bool()?,
                has_extra: r.bool()?,
                has_res: r.bool()?,
            })
        })
        .collect::<Result<Vec<_>, ArtifactError>>()?;
    let n = r.count()?;
    let hot_place = (0..n)
        .map(|_| {
            Ok(HotPlace {
                stage: r.u32()?,
                two_list: r.bool()?,
                delay: r.u64()?,
                cap: r.u32()?,
                is_end: r.bool()?,
                n_dependents: r.u32()?,
            })
        })
        .collect::<Result<Vec<_>, ArtifactError>>()?;
    let n = r.count()?;
    let hot_source = (0..n)
        .map(|_| Ok(HotSource { dest: r.u32()?, width: r.u32()? }))
        .collect::<Result<Vec<_>, ArtifactError>>()?;
    let n = r.count()?;
    let dispatch = (0..n)
        .map(|_| {
            let guard = match r.u8()? {
                0 => GuardCode::None,
                1 => GuardCode::Closure,
                2 => GuardCode::Prog(r.u32()?),
                3 => GuardCode::Fused { fwd_mask: r.u64()? },
                t => return Err(r.corrupt(format!("guard-code tag {t}"))),
            };
            let action = match r.u8()? {
                0 => ActionCode::None,
                1 => ActionCode::Closure,
                2 => ActionCode::Prog(r.u32()?),
                t => return Err(r.corrupt(format!("action-code tag {t}"))),
            };
            Ok(HotDispatch { guard, action })
        })
        .collect::<Result<Vec<_>, ArtifactError>>()?;
    let n = r.count()?;
    let programs = (0..n).map(|_| r.program(n_places)).collect::<Result<Vec<_>, _>>()?;
    let n_stages = r.u32()? as usize;
    let sb_index = r.u32s()?;
    let n = r.count()?;
    let sb_blocks = (0..n)
        .map(|_| {
            Ok(SbBlock {
                tid: r.u32()?,
                guard: (r.u32()?, r.u32()?),
                action: (r.u32()?, r.u32()?),
                fused: match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    t => return Err(r.corrupt(format!("fused tag {t}"))),
                },
                dest: r.u32()?,
                dest_stage: r.u32()?,
                dest_is_end: r.bool()?,
                cap_exempt: r.bool()?,
                cap: r.u32()?,
                base_ready: r.u64()?,
                tdelay: r.u64()?,
                class: r.u32()?,
                chain_next: r.u32()?,
            })
        })
        .collect::<Result<Vec<_>, ArtifactError>>()?;
    let n = r.count()?;
    let sb_ops = (0..n).map(|_| r.micro_op(n_places)).collect::<Result<Vec<_>, _>>()?;
    let sb_classes = r.u32()? as usize;
    let chain_entry = r.u32s()?;

    // Cross-table sanity: indices the hot loops trust blindly must be in
    // range, so a forged-but-checksummed file cannot crash the engine.
    for d in &dispatch {
        let ok = match (d.guard, d.action) {
            (GuardCode::Prog(i), _) if i as usize >= programs.len() => false,
            (_, ActionCode::Prog(i)) if i as usize >= programs.len() => false,
            _ => true,
        };
        if !ok {
            return Err(r.corrupt("dispatch program index out of range"));
        }
    }
    for b in &sb_blocks {
        if b.tid as usize >= n_trans
            || b.guard.1 as usize > sb_ops.len()
            || b.action.1 as usize > sb_ops.len()
            || b.guard.0 > b.guard.1
            || b.action.0 > b.action.1
            || (b.chain_next != u32::MAX && b.chain_next as usize >= sb_blocks.len())
        {
            return Err(r.corrupt("superblock range out of bounds"));
        }
    }
    for &i in &sb_index {
        if i != u32::MAX && i as usize >= sb_blocks.len() {
            return Err(r.corrupt("sb_index entry out of range"));
        }
    }
    for &i in &chain_entry {
        if i != u32::MAX && i as usize >= sb_blocks.len() {
            return Err(r.corrupt("chain_entry out of range"));
        }
    }

    Ok(ExecPlan {
        order,
        fixpoint,
        res_places,
        lookup,
        subnet_of_class,
        subnet_of_trans,
        input_of_trans,
        dependents,
        hot,
        hot_place,
        hot_source,
        dispatch,
        programs,
        n_stages,
        sb_index,
        sb_blocks,
        sb_ops,
        sb_classes,
        chain_entry,
    })
}

impl<D: InstrData, R> CompiledModel<D, R> {
    /// Serializes this compiled model into the versioned artifact
    /// encoding, stamped with `spec_hash` (see
    /// [`crate::spec::PipelineSpec::content_hash`]).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::UnnamedClosure`] when any guard, action, hook,
    /// source or squash closure lacks a [`NamedHook`] — such a model
    /// cannot be reconstructed from bytes.
    pub fn to_artifact_bytes(&self, spec_hash: u64) -> Result<Vec<u8>, ArtifactError> {
        let mut w = Writer::default();
        w.section(SEC_CONFIG, |w| {
            encode_config(w, &self.cfg);
            Ok(())
        })?;
        encode_model(&mut w, &self.model)?;
        encode_plan(&mut w, &self.plan)?;
        let payload = w.buf;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&spec_hash.to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// [`CompiledModel::to_artifact_bytes`] written to `path` (via a
    /// temporary file + rename, so concurrent readers never observe a
    /// half-written artifact).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::UnnamedClosure`] as for `to_artifact_bytes`, and
    /// [`ArtifactError::Io`] on filesystem failures.
    pub fn save_artifact(&self, path: &Path, spec_hash: u64) -> Result<(), ArtifactError> {
        let bytes = self.to_artifact_bytes(spec_hash)?;
        let io_err = |e: std::io::Error| ArtifactError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        };
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, &bytes).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    /// Reconstructs a compiled model from artifact bytes, rebuilding every
    /// named closure through `registry`, without recompiling anything:
    /// the decoded `ExecPlan` tables are used as stored.
    ///
    /// `expected_spec_hash`, when given, must match the hash stamped into
    /// the header — the caller's proof the artifact belongs to the spec it
    /// is about to simulate.
    ///
    /// # Errors
    ///
    /// Every [`ArtifactError`] variant except `UnnamedClosure`: bad magic,
    /// version or spec-hash mismatch, checksum failure, truncation,
    /// structural corruption, unknown hook keys, trailing bytes.
    pub fn from_artifact_bytes(
        bytes: &[u8],
        expected_spec_hash: Option<u64>,
        registry: &HookRegistry<D, R>,
    ) -> Result<Self, ArtifactError> {
        let (version, spec_hash, stored, payload) = split_header(bytes)?;
        if version != FORMAT_VERSION {
            return Err(ArtifactError::Version { found: version, expected: FORMAT_VERSION });
        }
        if let Some(expected) = expected_spec_hash {
            if spec_hash != expected {
                return Err(ArtifactError::SpecHash { found: spec_hash, expected });
            }
        }
        let computed = fnv1a(payload);
        if computed != stored {
            return Err(ArtifactError::Checksum { computed, stored });
        }
        let sections = split_sections(payload)?;
        let body = |tag: u8| -> &[u8] {
            sections.iter().find(|(t, _, _)| *t == tag).map(|(_, _, b)| *b).expect("all present")
        };

        let cfg = decode_config(&mut Reader::new(body(SEC_CONFIG), "config"))?;

        let r = &mut Reader::new(body(SEC_STAGES), "stages");
        let n = r.count()?;
        let mut stages = Vec::with_capacity(n);
        for _ in 0..n {
            stages.push(StageDef { name: r.str()?, capacity: r.u32()?, is_end: r.bool()? });
        }
        let n_stages = stages.len();

        let r = &mut Reader::new(body(SEC_PLACES), "places");
        let n = r.count()?;
        let mut places = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?;
            let stage = r.u32()? as usize;
            if stage >= n_stages {
                return Err(r.corrupt(format!("place {name:?} references stage {stage}")));
            }
            places.push(PlaceDef { name, stage: StageId::from_index(stage), delay: r.u32()? });
        }
        let n_places = places.len();

        let r = &mut Reader::new(body(SEC_SUBNETS), "subnets");
        let n = r.count()?;
        let mut subnets = Vec::with_capacity(n);
        for _ in 0..n {
            subnets.push(SubnetDef { name: r.str()? });
        }
        let n_subnets = subnets.len();

        let r = &mut Reader::new(body(SEC_CLASSES), "classes");
        let n = r.count()?;
        let mut classes = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?;
            let subnet = r.u32()? as usize;
            if subnet >= n_subnets {
                return Err(r.corrupt(format!("class {name:?} references subnet {subnet}")));
            }
            classes.push(OpClassDef { name, subnet: SubnetId::from_index(subnet) });
        }

        let r = &mut Reader::new(body(SEC_HOOKS), "hooks");
        let mut hooks = Hooks::new();
        let n = r.count()?;
        for _ in 0..n {
            let name = r.named_hook(n_places)?;
            hooks.guards.push(registry.make_guard(&name)?);
            hooks.guard_names.push(Some(name));
        }
        let n = r.count()?;
        for _ in 0..n {
            let name = r.named_hook(n_places)?;
            hooks.actions.push(registry.make_action(&name)?);
            hooks.action_names.push(Some(name));
        }

        let r = &mut Reader::new(body(SEC_TRANSITIONS), "transitions");
        let n = r.count()?;
        let mut transitions: Vec<TransitionDef<D, R>> = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?;
            let subnet = r.u32()? as usize;
            if subnet >= n_subnets {
                return Err(r.corrupt(format!("transition {name:?} references subnet {subnet}")));
            }
            let input = r.place(n_places)?;
            let priority = r.u32()?;
            let extra_inputs = r.places(n_places)?;
            let dest = r.place(n_places)?;
            let nres = r.count()?;
            let reservations = (0..nres)
                .map(|_| Ok(ResArc { place: r.place(n_places)?, expire: r.u32()? }))
                .collect::<Result<Vec<_>, ArtifactError>>()?;
            let delay = r.u32()?;
            let reads_states = r.places(n_places)?;
            let (guard, guard_name) = match r.u8()? {
                0 => (None, None),
                1 => (Some(GuardKind::Ir(r.program(n_places)?)), None),
                2 => {
                    let h = r.named_hook(n_places)?;
                    (Some(GuardKind::Closure(registry.make_guard(&h)?)), Some(h))
                }
                t => return Err(r.corrupt(format!("guard tag {t}"))),
            };
            let (action, action_name) = match r.u8()? {
                0 => (None, None),
                1 => (Some(ActionKind::Ir(r.program(n_places)?)), None),
                2 => {
                    let h = r.named_hook(n_places)?;
                    (Some(ActionKind::Closure(registry.make_action(&h)?)), Some(h))
                }
                t => return Err(r.corrupt(format!("action tag {t}"))),
            };
            transitions.push(TransitionDef {
                name,
                subnet: SubnetId::from_index(subnet),
                input,
                priority,
                extra_inputs,
                guard,
                action,
                dest,
                reservations,
                delay,
                reads_states,
                guard_name,
                action_name,
            });
        }
        let n_trans = transitions.len();

        let r = &mut Reader::new(body(SEC_SOURCES), "sources");
        let n = r.count()?;
        let mut sources: Vec<SourceDef<D, R>> = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?;
            let dest = r.place(n_places)?;
            let max_per_cycle = r.u32()?;
            let (guard, guard_name) = match r.u8()? {
                0 => (None, None),
                1 => {
                    let h = r.named_hook(n_places)?;
                    (Some(registry.make_source_guard(&h)?), Some(h))
                }
                t => return Err(r.corrupt(format!("source guard tag {t}"))),
            };
            let produce_name = r.named_hook(n_places)?;
            let produce = registry.make_source_action(&produce_name)?;
            sources.push(SourceDef {
                name,
                dest,
                guard,
                produce,
                max_per_cycle,
                guard_name,
                produce_name: Some(produce_name),
            });
        }

        let r = &mut Reader::new(body(SEC_SQUASH), "squash");
        let (squash_handler, squash_name) = match r.u8()? {
            0 => (None, None),
            1 => {
                let h = r.named_hook(n_places)?;
                (Some(registry.make_squash(&h)?), Some(h))
            }
            t => return Err(r.corrupt(format!("squash tag {t}"))),
        };

        let analysis =
            decode_analysis(&mut Reader::new(body(SEC_ANALYSIS), "analysis"), n_places, n_trans)?;
        let plan = decode_plan(&mut Reader::new(body(SEC_PLAN), "plan"), n_places, n_trans)?;

        let model = Model {
            stages,
            places,
            transitions,
            sources,
            subnets,
            classes,
            hooks,
            analysis,
            squash_handler,
            squash_name,
        };
        Ok(CompiledModel { model: Arc::new(model), plan: Arc::new(plan), cfg })
    }

    /// Reads and decodes an artifact file; see
    /// [`CompiledModel::from_artifact_bytes`].
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on read failure, plus every decode error of
    /// `from_artifact_bytes`.
    pub fn load_artifact(
        path: &Path,
        expected_spec_hash: Option<u64>,
        registry: &HookRegistry<D, R>,
    ) -> Result<Self, ArtifactError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ArtifactError::Io { path: path.to_path_buf(), detail: e.to_string() })?;
        Self::from_artifact_bytes(&bytes, expected_spec_hash, registry)
    }
}

// ---------------------------------------------------------------------------
// Cache.

/// A content-addressed artifact cache over a directory.
///
/// Entries are keyed by `(spec hash, engine-config hash, format
/// version)`; the file name embeds the first two, the header carries the
/// third. [`ArtifactCache::load_or_compile`] is the primary entry point:
/// it reloads on a valid cache entry (**hit**), compiles-and-stores on a
/// missing or invalid one (**miss**), and compiles without storing when
/// the model turns out to be unserializable — unnamed closures —
/// (**bypass**). Counters for all three are kept with relaxed atomics, so
/// a shared `&ArtifactCache` works from batch workers.
#[derive(Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
}

impl ArtifactCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ArtifactError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ArtifactError::Io { path: dir.clone(), detail: e.to_string() })?;
        Ok(ArtifactCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Successful reloads so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Compile-and-store events so far (entry missing or invalid).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Unserializable-model compilations so far (nothing stored).
    pub fn bypasses(&self) -> u64 {
        self.bypasses.load(Ordering::Relaxed)
    }

    /// The file name stem for `(spec_hash, cfg)` under the current
    /// [`FORMAT_VERSION`]: `"{spec_hash:016x}-{cfg_hash:016x}"`.
    pub fn entry_stem(spec_hash: u64, cfg: &EngineConfig) -> String {
        let mut h = Fnv::new();
        h.u32(FORMAT_VERSION);
        h.write(&config_bytes(cfg));
        format!("{spec_hash:016x}-{:016x}", h.finish())
    }

    /// The on-disk path an artifact for `(spec_hash, cfg)` lives at.
    pub fn entry_path(&self, spec_hash: u64, cfg: &EngineConfig) -> PathBuf {
        self.dir.join(format!("{}.rcpn", Self::entry_stem(spec_hash, cfg)))
    }

    /// Reloads the artifact for `(spec_hash, cfg)` if a valid entry
    /// exists (hit); otherwise runs `compile` and stores its result
    /// (miss). A model `compile` produces that cannot be serialized —
    /// unnamed closures — is returned as-is and counted as a bypass;
    /// nothing is stored.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when storing a freshly compiled artifact
    /// fails. Invalid cache entries are not errors: they are recompiled
    /// over (and the decode failure is discarded).
    pub fn load_or_compile<D: InstrData, R>(
        &self,
        spec_hash: u64,
        cfg: &EngineConfig,
        registry: &HookRegistry<D, R>,
        compile: impl FnOnce() -> CompiledModel<D, R>,
    ) -> Result<CompiledModel<D, R>, ArtifactError> {
        let path = self.entry_path(spec_hash, cfg);
        if let Ok(bytes) = std::fs::read(&path) {
            if let Ok(m) = CompiledModel::from_artifact_bytes(&bytes, Some(spec_hash), registry) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(m);
            }
        }
        let compiled = compile();
        match compiled.to_artifact_bytes(spec_hash) {
            Ok(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                compiled.save_artifact(&path, spec_hash)?;
                Ok(compiled)
            }
            Err(ArtifactError::UnnamedClosure { .. }) => {
                self.bypasses.fetch_add(1, Ordering::Relaxed);
                Ok(compiled)
            }
            Err(e) => Err(e),
        }
    }

    /// Paths of every `.rcpn` entry currently in the cache directory, in
    /// name order.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when the directory cannot be read.
    pub fn entries(&self) -> Result<Vec<PathBuf>, ArtifactError> {
        let rd = std::fs::read_dir(&self.dir)
            .map_err(|e| ArtifactError::Io { path: self.dir.clone(), detail: e.to_string() })?;
        let mut out: Vec<PathBuf> = rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "rcpn"))
            .collect();
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn error_messages_carry_entity_names() {
        let cases: Vec<(ArtifactError, &str)> = vec![
            (ArtifactError::BadMagic { found: *b"JUNK" }, "not an rcpn artifact"),
            (
                ArtifactError::Version { found: 9, expected: FORMAT_VERSION },
                "format version 9 does not match",
            ),
            (
                ArtifactError::SpecHash { found: 0xabc, expected: 0xdef },
                "built from spec 0x0000000000000abc",
            ),
            (ArtifactError::Checksum { computed: 1, stored: 2 }, "checksum mismatch"),
            (ArtifactError::Truncated { section: "plan" }, "truncated inside the plan section"),
            (
                ArtifactError::Corrupt { section: "hooks", detail: "bool byte 0x07".into() },
                "hooks section is corrupt: bool byte 0x07",
            ),
            (
                ArtifactError::UnknownHook { kind: "guard", key: "arm.nope".into() },
                "unregistered guard hook \"arm.nope\"",
            ),
            (
                ArtifactError::UnnamedClosure { entity: "transition \"t\" guard".into() },
                "transition \"t\" guard holds a closure without a registry name",
            ),
            (ArtifactError::TrailingBytes { len: 3 }, "3 trailing bytes"),
        ];
        for (e, needle) in cases {
            let msg = e.to_string();
            assert!(msg.contains(needle), "{msg:?} must contain {needle:?}");
        }
    }

    #[test]
    fn entry_stem_separates_config_variants() {
        let a = ArtifactCache::entry_stem(7, &EngineConfig::default());
        let cfg = EngineConfig { superblocks: false, ..Default::default() };
        let b = ArtifactCache::entry_stem(7, &cfg);
        assert_ne!(a, b, "config variants must get distinct cache entries");
        assert_eq!(a, ArtifactCache::entry_stem(7, &EngineConfig::default()), "stable stems");
    }
}
