//! Error types reported while constructing an RCPN model.

use std::error::Error;
use std::fmt;

use crate::ids::{OpClassId, PlaceId, StageId, SubnetId, TransitionId};

/// An error produced while building or validating an RCPN model.
///
/// Returned by [`crate::builder::ModelBuilder::build`] and
/// [`crate::spec::PipelineSpec::lower`]. Each variant carries both the id
/// *and the declared name* of the offending entity, so a failure deep in a
/// generated model renders as "stage `\"X1\"`", not "stage 7" — spec
/// lowering failures must be debuggable from the message alone.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A place refers to a stage id that was never declared.
    UnknownStage {
        /// The place with the dangling reference.
        place: PlaceId,
        /// The offending place's name.
        place_name: String,
        /// The undeclared stage id.
        stage: StageId,
    },
    /// A transition refers to a place id that was never declared.
    UnknownPlace {
        /// The transition with the dangling reference.
        transition: TransitionId,
        /// The offending transition's name.
        transition_name: String,
        /// The undeclared place id.
        place: PlaceId,
    },
    /// A transition was declared without a destination place.
    MissingDestination {
        /// The incomplete transition.
        transition: TransitionId,
    },
    /// A transition was declared without an input place. Token-consuming
    /// transitions must have exactly one instruction-token input; use a
    /// source transition for token generation instead.
    MissingInput {
        /// The incomplete transition.
        transition: TransitionId,
    },
    /// An operation class refers to a sub-net that was never declared.
    UnknownSubnet {
        /// The class with the dangling reference.
        class: OpClassId,
        /// The offending class's name.
        class_name: String,
        /// The undeclared sub-net id.
        subnet: SubnetId,
    },
    /// A stage was declared with a capacity of zero.
    ZeroCapacity {
        /// The zero-capacity stage.
        stage: StageId,
        /// The offending stage's name.
        stage_name: String,
    },
    /// Two transitions on the same input place and sub-net share a priority,
    /// which would make the firing order ambiguous.
    DuplicatePriority {
        /// The shared input place.
        place: PlaceId,
        /// The shared input place's name.
        place_name: String,
        /// The sub-net both transitions belong to.
        subnet: SubnetId,
        /// The sub-net's name.
        subnet_name: String,
        /// The colliding priority value.
        priority: u32,
        /// The first transition declared with this priority.
        first: TransitionId,
        /// The first transition's name.
        first_name: String,
        /// The second transition declared with this priority.
        second: TransitionId,
        /// The second transition's name.
        second_name: String,
    },
    /// The model contains no operation classes, so no instruction token can
    /// ever be dispatched.
    NoOpClasses,
    /// A name was reused for two different entities of the same kind.
    DuplicateName {
        /// The entity kind ("stage", "place", "transition", ...).
        kind: &'static str,
        /// The reused name.
        name: String,
    },
    /// A transition carries an invalid micro-op [`crate::ir::Program`]: a
    /// mutating op in a guard program, a `CallHook` index outside the
    /// model's hook table, or a reference to an undeclared place.
    InvalidProgram {
        /// The transition carrying the bad program.
        transition: TransitionId,
        /// The offending transition's name.
        transition_name: String,
        /// What was wrong with the program.
        detail: String,
    },
    /// A [`crate::spec::PipelineSpec`] could not be lowered: a dangling
    /// latch/stage/rule name, a read step without an operand policy, or an
    /// incomplete source declaration.
    Spec {
        /// The spec's name.
        spec: String,
        /// What was wrong, in terms of the spec's declared names.
        detail: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownStage { place, place_name, stage } => {
                write!(f, "place {place} ({place_name:?}) refers to undeclared stage {stage}")
            }
            BuildError::UnknownPlace { transition, transition_name, place } => {
                write!(
                    f,
                    "transition {transition} ({transition_name:?}) refers to undeclared place \
                     {place}"
                )
            }
            BuildError::MissingDestination { transition } => {
                write!(f, "transition {transition} has no destination place")
            }
            BuildError::MissingInput { transition } => {
                write!(f, "transition {transition} has no input place")
            }
            BuildError::UnknownSubnet { class, class_name, subnet } => {
                write!(
                    f,
                    "operation class {class} ({class_name:?}) refers to undeclared sub-net \
                     {subnet}"
                )
            }
            BuildError::ZeroCapacity { stage, stage_name } => {
                write!(f, "stage {stage} ({stage_name:?}) was declared with capacity zero")
            }
            BuildError::DuplicatePriority {
                place,
                place_name,
                subnet,
                subnet_name,
                priority,
                first,
                first_name,
                second,
                second_name,
            } => {
                write!(
                    f,
                    "transitions {first} ({first_name:?}) and {second} ({second_name:?}) on \
                     place {place} ({place_name:?}) in sub-net {subnet} ({subnet_name:?}) share \
                     priority {priority}"
                )
            }
            BuildError::NoOpClasses => {
                write!(f, "model declares no operation classes")
            }
            BuildError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name {name:?}")
            }
            BuildError::InvalidProgram { transition, transition_name, detail } => {
                write!(f, "transition {transition} ({transition_name:?}): {detail}")
            }
            BuildError::Spec { spec, detail } => {
                write!(f, "pipeline spec {spec:?}: {detail}")
            }
        }
    }
}

impl Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = BuildError::NoOpClasses;
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(BuildError::NoOpClasses);
    }

    #[test]
    fn messages_carry_entity_names() {
        let e = BuildError::ZeroCapacity {
            stage: StageId::from_index(3),
            stage_name: "X1".to_string(),
        };
        assert_eq!(e.to_string(), "stage S3 (\"X1\") was declared with capacity zero");

        let e = BuildError::DuplicatePriority {
            place: PlaceId::from_index(1),
            place_name: "RF".to_string(),
            subnet: SubnetId::from_index(0),
            subnet_name: "LoadStoreMultiple".to_string(),
            priority: 1,
            first: TransitionId::from_index(4),
            first_name: "ldm_skip".to_string(),
            second: TransitionId::from_index(5),
            second_name: "ldm_uop".to_string(),
        };
        let s = e.to_string();
        for needle in ["\"ldm_skip\"", "\"ldm_uop\"", "\"RF\"", "\"LoadStoreMultiple\""] {
            assert!(s.contains(needle), "{s:?} must name the entity {needle}");
        }
    }
}
