//! Error types reported while constructing an RCPN model.

use std::error::Error;
use std::fmt;

use crate::ids::{OpClassId, PlaceId, StageId, SubnetId, TransitionId};

/// An error produced while building or validating an RCPN model.
///
/// Returned by [`crate::builder::ModelBuilder::build`]. Each variant points
/// at the offending entity so the model author can locate the mistake.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A place refers to a stage id that was never declared.
    UnknownStage {
        /// The place with the dangling reference.
        place: PlaceId,
        /// The undeclared stage id.
        stage: StageId,
    },
    /// A transition refers to a place id that was never declared.
    UnknownPlace {
        /// The transition with the dangling reference.
        transition: TransitionId,
        /// The undeclared place id.
        place: PlaceId,
    },
    /// A transition was declared without a destination place.
    MissingDestination {
        /// The incomplete transition.
        transition: TransitionId,
    },
    /// A transition was declared without an input place. Token-consuming
    /// transitions must have exactly one instruction-token input; use a
    /// source transition for token generation instead.
    MissingInput {
        /// The incomplete transition.
        transition: TransitionId,
    },
    /// An operation class refers to a sub-net that was never declared.
    UnknownSubnet {
        /// The class with the dangling reference.
        class: OpClassId,
        /// The undeclared sub-net id.
        subnet: SubnetId,
    },
    /// A stage was declared with a capacity of zero.
    ZeroCapacity {
        /// The zero-capacity stage.
        stage: StageId,
    },
    /// Two transitions on the same input place and sub-net share a priority,
    /// which would make the firing order ambiguous.
    DuplicatePriority {
        /// The shared input place.
        place: PlaceId,
        /// The sub-net both transitions belong to.
        subnet: SubnetId,
        /// The colliding priority value.
        priority: u32,
        /// The first transition declared with this priority.
        first: TransitionId,
        /// The second transition declared with this priority.
        second: TransitionId,
    },
    /// The model contains no operation classes, so no instruction token can
    /// ever be dispatched.
    NoOpClasses,
    /// A name was reused for two different entities of the same kind.
    DuplicateName {
        /// The entity kind ("stage", "place", "transition", ...).
        kind: &'static str,
        /// The reused name.
        name: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownStage { place, stage } => {
                write!(f, "place {place} refers to undeclared stage {stage}")
            }
            BuildError::UnknownPlace { transition, place } => {
                write!(f, "transition {transition} refers to undeclared place {place}")
            }
            BuildError::MissingDestination { transition } => {
                write!(f, "transition {transition} has no destination place")
            }
            BuildError::MissingInput { transition } => {
                write!(f, "transition {transition} has no input place")
            }
            BuildError::UnknownSubnet { class, subnet } => {
                write!(f, "operation class {class} refers to undeclared sub-net {subnet}")
            }
            BuildError::ZeroCapacity { stage } => {
                write!(f, "stage {stage} was declared with capacity zero")
            }
            BuildError::DuplicatePriority { place, subnet, priority, first, second } => {
                write!(
                    f,
                    "transitions {first} and {second} on place {place} in sub-net {subnet} \
                     share priority {priority}"
                )
            }
            BuildError::NoOpClasses => {
                write!(f, "model declares no operation classes")
            }
            BuildError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name {name:?}")
            }
        }
    }
}

impl Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = BuildError::NoOpClasses;
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(BuildError::NoOpClasses);
    }
}
