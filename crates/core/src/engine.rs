//! The cycle-accurate simulation engine (paper, Section 4).
//!
//! The engine executes a [`Model`] one clock cycle at a time. The main loop
//! mirrors Figure 8 of the paper:
//!
//! ```text
//! CalculateSortedTransitions();            // done at Model::build time
//! P = places in reverse topological order;
//! while program not finished
//!     foreach two-list place p: mark written tokens available for read;
//!     foreach place p in P: Process(p);
//!     execute the instruction-independent sub-net (sources);
//!     increment cycle count;
//! ```
//!
//! `Process(p)` (Figure 7) walks the instruction tokens resident in `p` and,
//! for each, tries the statically sorted transition list of the token's
//! operation class; the first enabled transition fires and the token moves
//! on.
//!
//! The engine plays the role of the paper's *generated* simulator: at
//! construction it partially evaluates the model into flat hot tables
//! (per-transition capacity/delay/destination facts, flattened sorted
//! transition lists), so the per-cycle loop touches only dense arrays plus
//! the model's guard/action closures.
//!
//! Three optimizations from the paper are implemented and individually
//! switchable through [`EngineConfig`] so their contribution can be measured
//! (see the `ablations` bench):
//!
//! * [`TableMode::PerPlaceClass`] — the `sorted_transitions[p, IType]`
//!   table; alternatives re-introduce the search cost the paper eliminates.
//! * Reverse-topological evaluation with two-list storage only on feedback
//!   places; [`EngineConfig::two_list_everywhere`] instead runs the generic
//!   two-storage fixpoint scheme for every place, like a naive synchronous
//!   Petri-net simulator.

use crate::ids::{PlaceId, SourceId, TokenId, TransitionId};
use crate::model::{Fx, Machine, Model};
use crate::stats::Stats;
use crate::token::{InstrData, TokenKind, TokenPool};

/// How `Process(p)` locates candidate transitions for a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableMode {
    /// The paper's optimization: a pre-sorted list per (place, class).
    #[default]
    PerPlaceClass,
    /// A pre-sorted list per place; class membership checked dynamically.
    PerPlace,
    /// No tables: scan every transition of the net for each token, the way
    /// a generic Petri-net simulator searches for enabled transitions.
    FullScan,
}

/// Engine tuning knobs; the defaults enable every optimization.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Candidate-transition lookup strategy.
    pub table_mode: TableMode,
    /// Use two-storage (master/slave) token lists for *every* place and a
    /// per-cycle fixpoint search instead of the reverse-topological single
    /// pass. This is the "usual, computationally expensive solution" the
    /// paper avoids.
    pub two_list_everywhere: bool,
    /// Accumulate per-place occupancy statistics (small per-cycle cost).
    pub collect_occupancy: bool,
    /// Record a [`TraceEvent`] log (for model validation / CPN equivalence
    /// checks).
    pub trace: bool,
}

/// One recorded simulation event (enabled by [`EngineConfig::trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A transition fired, moving the token with sequence number `seq`.
    Fired {
        /// Cycle of the firing.
        cycle: u64,
        /// The transition.
        transition: TransitionId,
        /// Sequence number of the moved token.
        seq: u64,
    },
    /// A source generated a token.
    Generated {
        /// Cycle of the generation.
        cycle: u64,
        /// The source.
        source: SourceId,
        /// Sequence number of the new token.
        seq: u64,
    },
    /// An instruction token reached an `end` place.
    Retired {
        /// Cycle of the retirement.
        cycle: u64,
        /// The end place reached.
        place: PlaceId,
        /// Sequence number of the retired token.
        seq: u64,
    },
    /// A token was squashed by a flush.
    Flushed {
        /// Cycle of the flush.
        cycle: u64,
        /// The flushed place.
        place: PlaceId,
        /// Sequence number of the squashed token.
        seq: u64,
    },
}

/// Why [`Engine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The model requested a halt (e.g. an exit system call).
    Halted,
    /// The cycle budget was exhausted first.
    CycleLimit,
}

/// Partially evaluated per-transition facts (one cache line of PODs).
#[derive(Debug, Clone, Copy)]
struct HotTrans {
    dest: u32,
    dest_stage: u32,
    /// Capacity check can be skipped: destination is `end` or shares the
    /// input's stage.
    cap_exempt: bool,
    dest_is_end: bool,
    /// `transition.delay + dest place delay` (the no-override ready delta).
    base_ready: u64,
    /// `transition.delay` alone (token-delay override case).
    tdelay: u64,
    cap: u32,
    has_guard: bool,
    has_action: bool,
    has_extra: bool,
    has_res: bool,
}

/// Partially evaluated per-place facts.
#[derive(Debug, Clone, Copy)]
struct HotPlace {
    stage: u32,
    two_list: bool,
    delay: u64,
    cap: u32,
    is_end: bool,
}

#[derive(Debug, Clone, Copy)]
struct HotSource {
    dest: u32,
    width: u32,
}

/// The RCPN cycle-accurate simulator.
///
/// Created from a validated [`Model`] and an initial [`Machine`]; stepped
/// with [`Engine::step`] or driven with [`Engine::run`].
pub struct Engine<D: InstrData, R> {
    model: Model<D, R>,
    machine: Machine<R>,
    pool: TokenPool<D>,
    live: Vec<Vec<TokenId>>,
    pending: Vec<Vec<TokenId>>,
    stage_occ: Vec<u32>,
    /// Effective evaluation order (reverse topological, or declaration
    /// order when `two_list_everywhere`).
    order: Vec<PlaceId>,
    two_list_places: Vec<PlaceId>,
    res_places: Vec<PlaceId>,
    full_scan_order: Vec<TransitionId>,
    hot: Vec<HotTrans>,
    hot_place: Vec<HotPlace>,
    hot_source: Vec<HotSource>,
    /// Flattened sorted_transitions: spans into `tab_flat` indexed by
    /// `place * n_classes + class`.
    tab_flat: Vec<u32>,
    tab_span: Vec<(u32, u16)>,
    n_classes: usize,
    cfg: EngineConfig,
    stats: Stats,
    halted: bool,
    cycle: u64,
    trace: Vec<TraceEvent>,
    scratch: Vec<TokenId>,
}

impl<D: InstrData, R> Engine<D, R> {
    /// Creates an engine with the default (fully optimized) configuration.
    pub fn new(model: Model<D, R>, machine: Machine<R>) -> Self {
        Self::with_config(model, machine, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(model: Model<D, R>, machine: Machine<R>, cfg: EngineConfig) -> Self {
        let n_places = model.place_count();
        let (order, two_list): (Vec<PlaceId>, Vec<bool>) = if cfg.two_list_everywhere {
            ((0..n_places).map(PlaceId::from_index).collect(), vec![true; n_places])
        } else {
            (
                model.analysis.order.clone(),
                (0..n_places).map(|i| model.analysis.two_list[i]).collect(),
            )
        };
        let two_list_places: Vec<PlaceId> = (0..n_places)
            .map(PlaceId::from_index)
            .filter(|p| two_list[p.index()])
            .collect();
        let mut res_places: Vec<PlaceId> = model
            .transitions
            .iter()
            .flat_map(|t| t.reservations.iter().map(|r| r.place))
            .collect();
        res_places.sort();
        res_places.dedup();
        let mut full_scan_order: Vec<TransitionId> = model.transition_ids().collect();
        full_scan_order.sort_by_key(|t| (model.transitions[t.index()].priority, t.index()));

        // Partial evaluation of the static structure into flat tables.
        let hot_place: Vec<HotPlace> = model
            .places
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let st = &model.stages[p.stage.index()];
                HotPlace {
                    stage: p.stage.index() as u32,
                    two_list: two_list[i],
                    delay: u64::from(p.delay),
                    cap: st.capacity,
                    is_end: st.is_end,
                }
            })
            .collect();
        let hot: Vec<HotTrans> = model
            .transitions
            .iter()
            .map(|t| {
                let dp = &hot_place[t.dest.index()];
                let sp = &hot_place[t.input.index()];
                HotTrans {
                    dest: t.dest.index() as u32,
                    dest_stage: dp.stage,
                    cap_exempt: dp.is_end || dp.stage == sp.stage,
                    dest_is_end: dp.is_end,
                    base_ready: u64::from(t.delay) + dp.delay,
                    tdelay: u64::from(t.delay),
                    cap: dp.cap,
                    has_guard: t.guard.is_some(),
                    has_action: t.action.is_some(),
                    has_extra: !t.extra_inputs.is_empty(),
                    has_res: !t.reservations.is_empty(),
                }
            })
            .collect();
        let hot_source: Vec<HotSource> = model
            .sources
            .iter()
            .map(|s| HotSource { dest: s.dest.index() as u32, width: s.max_per_cycle })
            .collect();
        let n_classes = model.analysis.n_classes;
        let mut tab_flat: Vec<u32> = Vec::new();
        let mut tab_span: Vec<(u32, u16)> = Vec::with_capacity(n_places * n_classes);
        for list in &model.analysis.sorted {
            let start = tab_flat.len() as u32;
            tab_flat.extend(list.iter().map(|t| t.index() as u32));
            tab_span.push((start, list.len() as u16));
        }

        let stats =
            Stats::new(model.transition_count(), model.source_count(), model.place_count());
        Engine {
            live: vec![Vec::new(); n_places],
            pending: vec![Vec::new(); n_places],
            stage_occ: vec![0; model.stage_count()],
            order,
            two_list_places,
            res_places,
            full_scan_order,
            hot,
            hot_place,
            hot_source,
            tab_flat,
            tab_span,
            n_classes,
            cfg,
            stats,
            halted: false,
            cycle: 0,
            trace: Vec::new(),
            scratch: Vec::new(),
            model,
            machine,
            pool: TokenPool::new(),
        }
    }

    /// The model being simulated.
    pub fn model(&self) -> &Model<D, R> {
        &self.model
    }

    /// The machine state.
    pub fn machine(&self) -> &Machine<R> {
        &self.machine
    }

    /// Mutable machine state (for initialization between runs).
    pub fn machine_mut(&mut self) -> &mut Machine<R> {
        &mut self.machine
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether a halt was requested.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of tokens (live + pending) currently in `place`.
    pub fn tokens_in(&self, place: PlaceId) -> usize {
        self.live[place.index()].len() + self.pending[place.index()].len()
    }

    /// Total number of in-flight tokens.
    pub fn live_tokens(&self) -> usize {
        self.pool.live()
    }

    /// Drains and returns the recorded trace.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Injects an instruction token directly into a place (testing and
    /// model-bring-up aid). The token becomes eligible after the place's
    /// default delay.
    pub fn inject(&mut self, payload: D, place: PlaceId) -> TokenId {
        let ready = self.cycle + self.hot_place[place.index()].delay;
        let id =
            self.pool.alloc(TokenKind::Instruction, Some(payload), place, self.cycle, ready);
        self.insert_token(id, place.index() as u32);
        self.stats.generated += 1;
        id
    }

    /// Executes one clock cycle (Figure 8 main loop body).
    pub fn step(&mut self) {
        self.machine.cycle = self.cycle;

        // 1. Two-list commit: written tokens become readable.
        for i in 0..self.two_list_places.len() {
            let p = self.two_list_places[i];
            if self.pending[p.index()].is_empty() {
                continue;
            }
            let mut moved = std::mem::take(&mut self.pending[p.index()]);
            for &id in &moved {
                self.machine.regs.note_move(id, p);
            }
            self.stats.two_list_commits += moved.len() as u64;
            self.live[p.index()].append(&mut moved);
        }

        // 2. Reservation expiry: reservation tokens whose residency elapsed
        //    release their stage capacity ("in the next cycle, this token
        //    is consumed").
        for i in 0..self.res_places.len() {
            let p = self.res_places[i];
            if self.live[p.index()].is_empty() {
                continue;
            }
            let cycle = self.cycle;
            let mut expired: Vec<TokenId> = Vec::new();
            self.live[p.index()].retain(|&id| {
                let t = self.pool.get(id).expect("reservation token must be live");
                if t.kind == TokenKind::Reservation && t.ready_at <= cycle {
                    expired.push(id);
                    false
                } else {
                    true
                }
            });
            let stage = self.hot_place[p.index()].stage as usize;
            for id in expired {
                self.pool.take(id);
                self.stage_occ[stage] -= 1;
            }
        }

        // 3. Process places.
        if !self.halted {
            if self.cfg.two_list_everywhere {
                // Generic synchronous scheme: scan for enabled transitions
                // until a fixpoint — the expensive search RCPN avoids.
                let max_passes = self.order.len() + 1;
                for _ in 0..max_passes {
                    let mut any = false;
                    for i in 0..self.order.len() {
                        let p = self.order[i];
                        if self.process_place(p) {
                            any = true;
                        }
                        if self.halted {
                            break;
                        }
                    }
                    if !any || self.halted {
                        break;
                    }
                }
            } else {
                for i in 0..self.order.len() {
                    let p = self.order[i];
                    self.process_place(p);
                    if self.halted {
                        break;
                    }
                }
            }
        }

        // 4. Instruction-independent sub-net: generate new tokens.
        if !self.halted {
            self.run_sources();
        }

        if self.cfg.collect_occupancy {
            for p in 0..self.live.len() {
                self.stats.occupancy[p] +=
                    (self.live[p].len() + self.pending[p].len()) as u64;
            }
        }

        self.cycle += 1;
        self.stats.cycles += 1;
    }

    /// Runs until the model halts or `max_cycles` have executed.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        let limit = self.cycle.saturating_add(max_cycles);
        while !self.halted && self.cycle < limit {
            self.step();
        }
        if self.halted {
            RunOutcome::Halted
        } else {
            RunOutcome::CycleLimit
        }
    }

    /// Figure 7: processes the instruction tokens of one place. Returns
    /// whether any transition fired.
    fn process_place(&mut self, p: PlaceId) -> bool {
        let pi = p.index();
        if self.live[pi].is_empty() {
            return false;
        }
        let mut snapshot = std::mem::take(&mut self.scratch);
        snapshot.clear();
        snapshot.extend_from_slice(&self.live[pi]);
        let mut fired_any = false;

        for &id in &snapshot {
            let Some(tok) = self.pool.get(id) else { continue };
            if tok.place != p || tok.kind != TokenKind::Instruction || tok.ready_at > self.cycle
            {
                continue;
            }
            let class = tok.data.as_ref().expect("instruction token has data").op_class();
            let fired = match self.cfg.table_mode {
                TableMode::PerPlaceClass => {
                    let (start, len) = self.tab_span[pi * self.n_classes + class.index()];
                    let mut fired = false;
                    for k in start..start + u32::from(len) {
                        let tid = self.tab_flat[k as usize] as usize;
                        if self.try_fire(tid, id, p) {
                            fired = true;
                            break;
                        }
                    }
                    fired
                }
                TableMode::PerPlace => {
                    let len = self.model.analysis.by_place[pi].len();
                    let subnet = self.model.classes[class.index()].subnet;
                    let mut fired = false;
                    for k in 0..len {
                        let tid = self.model.analysis.by_place[pi][k];
                        if self.model.transitions[tid.index()].subnet != subnet {
                            continue;
                        }
                        if self.try_fire(tid.index(), id, p) {
                            fired = true;
                            break;
                        }
                    }
                    fired
                }
                TableMode::FullScan => {
                    let subnet = self.model.classes[class.index()].subnet;
                    let mut fired = false;
                    for k in 0..self.full_scan_order.len() {
                        let tid = self.full_scan_order[k];
                        let t = &self.model.transitions[tid.index()];
                        if t.input != p || t.subnet != subnet {
                            continue;
                        }
                        if self.try_fire(tid.index(), id, p) {
                            fired = true;
                            break;
                        }
                    }
                    fired
                }
            };
            if fired {
                fired_any = true;
            } else {
                self.stats.stalls += 1;
                self.stats.place_stalls[pi] += 1;
            }
            if self.halted {
                break;
            }
        }

        self.scratch = snapshot;
        fired_any
    }

    /// Checks capacity / extra inputs / guard; fires if enabled.
    #[inline]
    fn try_fire(&mut self, tid: usize, token: TokenId, place: PlaceId) -> bool {
        let h = self.hot[tid];
        if !h.cap_exempt && self.stage_occ[h.dest_stage as usize] >= h.cap {
            self.stats.capacity_blocks += 1;
            return false;
        }
        if h.has_extra {
            for k in 0..self.model.transitions[tid].extra_inputs.len() {
                let x = self.model.transitions[tid].extra_inputs[k];
                if self.oldest_ready(x).is_none() {
                    return false;
                }
            }
        }
        if h.has_guard {
            let guard =
                self.model.transitions[tid].guard.as_ref().expect("has_guard implies guard");
            let tok = self.pool.get(token).expect("token live during guard");
            let data = tok.data.as_ref().expect("instruction token has data");
            if !guard(&self.machine, data) {
                self.stats.guard_fails += 1;
                return false;
            }
        }
        self.fire(tid, h, token, place);
        true
    }

    /// The oldest ready token in `place` (any kind), if one exists.
    fn oldest_ready(&self, place: PlaceId) -> Option<TokenId> {
        self.live[place.index()]
            .iter()
            .copied()
            .filter(|&id| self.pool.get(id).is_some_and(|t| t.ready_at <= self.cycle))
            .min_by_key(|&id| self.pool.get(id).expect("live token").seq())
    }

    #[inline]
    fn remove_from_place(&mut self, place: usize, id: TokenId) {
        let list = &mut self.live[place];
        let pos = list.iter().position(|&x| x == id).expect("token listed in its place");
        list.remove(pos);
        self.stage_occ[self.hot_place[place].stage as usize] -= 1;
    }

    #[inline]
    fn insert_token(&mut self, id: TokenId, place: u32) {
        let hp = self.hot_place[place as usize];
        if hp.two_list {
            self.pending[place as usize].push(id);
        } else {
            self.live[place as usize].push(id);
            self.machine.regs.note_move(id, PlaceId::from_index(place as usize));
        }
        self.stage_occ[hp.stage as usize] += 1;
    }

    /// Fires transition `tid`, moving `token` from `place` to the
    /// destination.
    fn fire(&mut self, tid: usize, h: HotTrans, token: TokenId, place: PlaceId) {
        let cycle = self.cycle;

        // Consume extra-input tokens (joins) first.
        if h.has_extra {
            for k in 0..self.model.transitions[tid].extra_inputs.len() {
                let x = self.model.transitions[tid].extra_inputs[k];
                let victim = self
                    .oldest_ready(x)
                    .expect("extra input availability was checked in try_fire");
                self.remove_from_place(x.index(), victim);
                let t = self.pool.take(victim);
                if t.kind == TokenKind::Instruction {
                    self.machine.regs.release(victim);
                }
            }
        }

        self.remove_from_place(place.index(), token);

        // Run the action.
        let mut fx = Fx::new(Some(token));
        let mut has_fx = false;
        if h.has_action {
            let action =
                self.model.transitions[tid].action.as_ref().expect("has_action implies action");
            let tok = self.pool.get_mut(token).expect("firing token is live");
            let data = tok.data.as_mut().expect("instruction token has data");
            action(&mut self.machine, data, &mut fx);
            has_fx = !fx.emits.is_empty() || !fx.flush_places.is_empty() || fx.halt;
        }

        // Move the token.
        let mut seq = 0;
        if h.dest_is_end {
            let tok = self.pool.take(token);
            if self.cfg.trace {
                seq = tok.seq;
            }
            let leaked = self.machine.regs.release(token);
            self.stats.leaked_reservations += leaked as u64;
            self.stats.retired += 1;
            if self.cfg.trace {
                self.trace.push(TraceEvent::Retired {
                    cycle,
                    place: PlaceId::from_index(h.dest as usize),
                    seq,
                });
            }
        } else {
            let eff = match fx.token_delay {
                None => h.base_ready,
                Some(d) => h.tdelay + u64::from(d),
            };
            let tok = self.pool.get_mut(token).expect("firing token is live");
            tok.place = PlaceId::from_index(h.dest as usize);
            tok.arrived_at = cycle;
            tok.ready_at = cycle + eff;
            if self.cfg.trace {
                seq = tok.seq;
            }
            self.insert_token(token, h.dest);
        }

        // Reservation-token output arcs.
        if h.has_res {
            for k in 0..self.model.transitions[tid].reservations.len() {
                let r = self.model.transitions[tid].reservations[k];
                let rid = self.pool.alloc(
                    TokenKind::Reservation,
                    None,
                    r.place,
                    cycle,
                    cycle + u64::from(r.expire),
                );
                // Reservations occupy immediately; they are not deferred
                // even on two-list places, since their only observable
                // effect is stage occupancy (which is always next-state).
                self.live[r.place.index()].push(rid);
                self.stage_occ[self.hot_place[r.place.index()].stage as usize] += 1;
                self.stats.reservations += 1;
            }
        }

        if has_fx {
            self.apply_fx(fx);
        }
        self.stats.fires[tid] += 1;
        if self.cfg.trace {
            self.trace.push(TraceEvent::Fired {
                cycle,
                transition: TransitionId::from_index(tid),
                seq,
            });
        }
    }

    fn apply_fx(&mut self, fx: Fx<D>) {
        let cycle = self.cycle;
        for (payload, place, delay) in fx.emits {
            let id = self.pool.alloc(
                TokenKind::Instruction,
                Some(payload),
                place,
                cycle,
                cycle + u64::from(delay),
            );
            self.insert_token(id, place.index() as u32);
            self.stats.emitted += 1;
        }
        for place in fx.flush_places {
            self.flush_place(place);
        }
        if fx.halt {
            self.halted = true;
        }
    }

    /// Squashes every token in `place`, releasing register reservations.
    pub fn flush_place(&mut self, place: PlaceId) {
        let ids: Vec<TokenId> = self.live[place.index()]
            .drain(..)
            .chain(self.pending[place.index()].drain(..))
            .collect();
        let stage = self.hot_place[place.index()].stage as usize;
        for id in ids {
            let mut tok = self.pool.take(id);
            if tok.kind == TokenKind::Instruction {
                self.machine.regs.release(id);
                if let Some(handler) = &self.model.squash_handler {
                    let data = tok.data.as_mut().expect("instruction token has data");
                    handler(&mut self.machine, data);
                }
            }
            self.stage_occ[stage] -= 1;
            self.stats.flushed += 1;
            if self.cfg.trace {
                self.trace.push(TraceEvent::Flushed { cycle: self.cycle, place, seq: tok.seq });
            }
        }
    }

    /// Executes the instruction-independent sub-net (all sources).
    fn run_sources(&mut self) {
        let cycle = self.cycle;
        for si in 0..self.hot_source.len() {
            let hs = self.hot_source[si];
            let hp = self.hot_place[hs.dest as usize];
            for _ in 0..hs.width {
                if !hp.is_end && self.stage_occ[hp.stage as usize] >= hp.cap {
                    break;
                }
                if let Some(guard) = &self.model.sources[si].guard {
                    if !guard(&self.machine) {
                        break;
                    }
                }
                let mut fx = Fx::new(None);
                let payload = {
                    let produce = &self.model.sources[si].produce;
                    produce(&mut self.machine, &mut fx)
                };
                let produced = payload.is_some();
                if let Some(data) = payload {
                    let eff = match fx.token_delay {
                        None => hp.delay,
                        Some(d) => u64::from(d),
                    };
                    let id = self.pool.alloc(
                        TokenKind::Instruction,
                        Some(data),
                        PlaceId::from_index(hs.dest as usize),
                        cycle,
                        cycle + eff,
                    );
                    self.insert_token(id, hs.dest);
                    self.stats.generated += 1;
                    self.stats.source_fires[si] += 1;
                    if self.cfg.trace {
                        let seq = self.pool.get(id).expect("just allocated").seq();
                        self.trace.push(TraceEvent::Generated {
                            cycle,
                            source: SourceId::from_index(si),
                            seq,
                        });
                    }
                }
                if !fx.emits.is_empty() || !fx.flush_places.is_empty() || fx.halt {
                    self.apply_fx(fx);
                }
                if self.halted || !produced {
                    break;
                }
            }
            if self.halted {
                break;
            }
        }
    }
}

impl<D: InstrData, R> std::fmt::Debug for Engine<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cycle", &self.cycle)
            .field("halted", &self.halted)
            .field("live_tokens", &self.pool.live())
            .finish()
    }
}
