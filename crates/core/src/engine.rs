//! The cycle-accurate simulation engine (paper, Section 4).
//!
//! The engine executes a compiled model one clock cycle at a time. The
//! main loop mirrors Figure 8 of the paper:
//!
//! ```text
//! CalculateSortedTransitions();            // done at Model::build time
//! P = places in reverse topological order; // baked into the ExecPlan
//! while program not finished
//!     foreach two-list place p: mark written tokens available for read;
//!     foreach place p in P: Process(p);
//!     execute the instruction-independent sub-net (sources);
//!     increment cycle count;
//! ```
//!
//! `Process(p)` (Figure 7) walks the instruction tokens resident in `p`
//! and, for each, tries the statically sorted transition list of the
//! token's operation class; the first enabled transition fires and the
//! token moves on.
//!
//! The pipeline is split into an explicit **model → compile → run**
//! sequence: [`crate::compiled::CompiledModel`] partially evaluates a
//! [`Model`] into flat hot tables (the compile step, playing the role of
//! the paper's simulator *generation*), and `Engine` is the run step —
//! pure mutable state (token pool, place lists, statistics) over the
//! shared read-only plan. [`Engine::new`] compiles and instantiates in
//! one call for convenience; use [`crate::compiled::CompiledModel`]
//! directly to build once and instantiate many times.
//!
//! Three optimizations from the paper are implemented and individually
//! switchable through [`EngineConfig`] so their contribution can be
//! measured (see the `ablations` bench):
//!
//! * [`TableMode::PerPlaceClass`] — the `sorted_transitions[p, IType]`
//!   table; alternatives re-introduce the search cost the paper eliminates.
//! * Reverse-topological evaluation with two-list storage only on feedback
//!   places; [`EngineConfig::two_list_everywhere`] instead runs the generic
//!   two-storage fixpoint scheme for every place, like a naive synchronous
//!   Petri-net simulator.
//!
//! Each `EngineConfig` selects a compiled *variant*: only the lookup
//! table the variant needs is materialized in its plan.

use std::sync::Arc;

use crate::compiled::{CompiledModel, ExecPlan, HotTrans, Lookup};
use crate::ids::{PlaceId, SourceId, TokenId, TransitionId};
use crate::model::{Fx, Machine, Model};
use crate::stats::Stats;
use crate::token::{InstrData, TokenKind, TokenPool};

/// How `Process(p)` locates candidate transitions for a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableMode {
    /// The paper's optimization: a pre-sorted list per (place, class).
    #[default]
    PerPlaceClass,
    /// A pre-sorted list per place; class membership checked dynamically.
    PerPlace,
    /// No tables: scan every transition of the net for each token, the way
    /// a generic Petri-net simulator searches for enabled transitions.
    FullScan,
}

/// Engine tuning knobs; the defaults enable every optimization.
///
/// `table_mode` and `two_list_everywhere` are *compile-time* choices: they
/// select which tables a [`CompiledModel`] materializes.
/// `collect_occupancy` and `trace` are runtime flags carried into each
/// instantiated engine.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Candidate-transition lookup strategy.
    pub table_mode: TableMode,
    /// Use two-storage (master/slave) token lists for *every* place and a
    /// per-cycle fixpoint search instead of the reverse-topological single
    /// pass. This is the "usual, computationally expensive solution" the
    /// paper avoids.
    pub two_list_everywhere: bool,
    /// Accumulate per-place occupancy statistics (small per-cycle cost).
    pub collect_occupancy: bool,
    /// Record a [`TraceEvent`] log (for model validation / CPN equivalence
    /// checks).
    pub trace: bool,
}

/// One recorded simulation event (enabled by [`EngineConfig::trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A transition fired, moving the token with sequence number `seq`.
    Fired {
        /// Cycle of the firing.
        cycle: u64,
        /// The transition.
        transition: TransitionId,
        /// Sequence number of the moved token.
        seq: u64,
    },
    /// A source generated a token.
    Generated {
        /// Cycle of the generation.
        cycle: u64,
        /// The source.
        source: SourceId,
        /// Sequence number of the new token.
        seq: u64,
    },
    /// An instruction token reached an `end` place.
    Retired {
        /// Cycle of the retirement.
        cycle: u64,
        /// The end place reached.
        place: PlaceId,
        /// Sequence number of the retired token.
        seq: u64,
    },
    /// A token was squashed by a flush.
    Flushed {
        /// Cycle of the flush.
        cycle: u64,
        /// The flushed place.
        place: PlaceId,
        /// Sequence number of the squashed token.
        seq: u64,
    },
}

/// Why [`Engine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The model requested a halt (e.g. an exit system call).
    Halted,
    /// The cycle budget was exhausted first.
    CycleLimit,
}

/// The RCPN cycle-accurate simulator: the run step of the model →
/// compile → run pipeline.
///
/// Created from a [`CompiledModel`] (via
/// [`CompiledModel::instantiate`], or the [`Engine::new`] /
/// [`Engine::with_config`] conveniences that compile on the spot) and an
/// initial [`Machine`]; stepped with [`Engine::step`] or driven with
/// [`Engine::run`]. The compiled tables are shared; all mutable
/// simulation state is per-engine.
pub struct Engine<D: InstrData, R> {
    model: Arc<Model<D, R>>,
    plan: Arc<ExecPlan>,
    st: EngineState<D, R>,
}

/// The mutable per-run half of an [`Engine`], split from the shared
/// model/plan so the per-cycle loop can borrow the read-only tables and
/// the mutable state disjointly — no `Arc` traffic on the hot path.
struct EngineState<D: InstrData, R> {
    machine: Machine<R>,
    pool: TokenPool<D>,
    live: Vec<Vec<TokenId>>,
    pending: Vec<Vec<TokenId>>,
    stage_occ: Vec<u32>,
    cfg: EngineConfig,
    stats: Stats,
    halted: bool,
    cycle: u64,
    trace: Vec<TraceEvent>,
    scratch: Vec<TokenId>,
}

impl<D: InstrData, R> Engine<D, R> {
    /// Compiles `model` with the default (fully optimized) configuration
    /// and instantiates an engine over it.
    pub fn new(model: Model<D, R>, machine: Machine<R>) -> Self {
        CompiledModel::compile(model).instantiate(machine)
    }

    /// Compiles `model` into the variant selected by `cfg` and
    /// instantiates an engine over it.
    pub fn with_config(model: Model<D, R>, machine: Machine<R>, cfg: EngineConfig) -> Self {
        CompiledModel::compile_with(model, cfg).instantiate(machine)
    }

    /// Instantiation entry point used by [`CompiledModel::instantiate`].
    pub(crate) fn from_compiled(compiled: CompiledModel<D, R>, machine: Machine<R>) -> Self {
        let CompiledModel { model, plan, cfg } = compiled;
        let n_places = model.place_count();
        let stats = Stats::new(model.transition_count(), model.source_count(), model.place_count());
        Engine {
            st: EngineState {
                live: vec![Vec::new(); n_places],
                pending: vec![Vec::new(); n_places],
                stage_occ: vec![0; plan.n_stages],
                cfg,
                stats,
                halted: false,
                cycle: 0,
                trace: Vec::new(),
                scratch: Vec::new(),
                machine,
                pool: TokenPool::new(),
            },
            model,
            plan,
        }
    }

    /// The model being simulated.
    pub fn model(&self) -> &Model<D, R> {
        &self.model
    }

    /// A handle to the compiled artifact this engine runs (cheap clone;
    /// can be used to instantiate sibling engines).
    pub fn compiled(&self) -> CompiledModel<D, R> {
        CompiledModel {
            model: Arc::clone(&self.model),
            plan: Arc::clone(&self.plan),
            cfg: self.st.cfg.clone(),
        }
    }

    /// The machine state.
    pub fn machine(&self) -> &Machine<R> {
        &self.st.machine
    }

    /// Mutable machine state (for initialization between runs).
    pub fn machine_mut(&mut self) -> &mut Machine<R> {
        &mut self.st.machine
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.st.stats
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.st.cycle
    }

    /// Whether a halt was requested.
    pub fn halted(&self) -> bool {
        self.st.halted
    }

    /// Number of tokens (live + pending) currently in `place`.
    pub fn tokens_in(&self, place: PlaceId) -> usize {
        self.st.live[place.index()].len() + self.st.pending[place.index()].len()
    }

    /// Total number of in-flight tokens.
    pub fn live_tokens(&self) -> usize {
        self.st.pool.live()
    }

    /// Drains and returns the recorded trace.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.st.trace)
    }

    /// Injects an instruction token directly into a place (testing and
    /// model-bring-up aid). The token becomes eligible after the place's
    /// default delay.
    pub fn inject(&mut self, payload: D, place: PlaceId) -> TokenId {
        self.st.inject(&self.plan, payload, place)
    }

    /// Executes one clock cycle (Figure 8 main loop body).
    pub fn step(&mut self) {
        self.st.step(&self.model, &self.plan);
    }

    /// Runs until the model halts or `max_cycles` have executed.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        let limit = self.st.cycle.saturating_add(max_cycles);
        while !self.st.halted && self.st.cycle < limit {
            self.st.step(&self.model, &self.plan);
        }
        if self.st.halted {
            RunOutcome::Halted
        } else {
            RunOutcome::CycleLimit
        }
    }

    /// Squashes every token in `place`, releasing register reservations.
    pub fn flush_place(&mut self, place: PlaceId) {
        self.st.flush_place(&self.model, &self.plan, place);
    }
}

impl<D: InstrData, R> EngineState<D, R> {
    fn inject(&mut self, plan: &ExecPlan, payload: D, place: PlaceId) -> TokenId {
        let ready = self.cycle + plan.hot_place[place.index()].delay;
        let id = self.pool.alloc(TokenKind::Instruction, Some(payload), place, self.cycle, ready);
        self.insert_token(plan, id, place.index() as u32);
        self.stats.generated += 1;
        id
    }

    /// One clock cycle (Figure 8 main loop body).
    fn step(&mut self, model: &Model<D, R>, plan: &ExecPlan) {
        self.machine.cycle = self.cycle;

        // 1. Two-list commit: written tokens become readable.
        for &p in &plan.two_list_places {
            if self.pending[p.index()].is_empty() {
                continue;
            }
            let mut moved = std::mem::take(&mut self.pending[p.index()]);
            for &id in &moved {
                self.machine.regs.note_move(id, p);
            }
            self.stats.two_list_commits += moved.len() as u64;
            self.live[p.index()].append(&mut moved);
        }

        // 2. Reservation expiry: reservation tokens whose residency elapsed
        //    release their stage capacity ("in the next cycle, this token
        //    is consumed").
        for &p in &plan.res_places {
            if self.live[p.index()].is_empty() {
                continue;
            }
            let cycle = self.cycle;
            let mut expired: Vec<TokenId> = Vec::new();
            self.live[p.index()].retain(|&id| {
                let t = self.pool.get(id).expect("reservation token must be live");
                if t.kind == TokenKind::Reservation && t.ready_at <= cycle {
                    expired.push(id);
                    false
                } else {
                    true
                }
            });
            let stage = plan.hot_place[p.index()].stage as usize;
            for id in expired {
                self.pool.take(id);
                self.stage_occ[stage] -= 1;
            }
        }

        // 3. Process places.
        if !self.halted {
            if plan.fixpoint {
                // Generic synchronous scheme: scan for enabled transitions
                // until a fixpoint — the expensive search RCPN avoids.
                let max_passes = plan.order.len() + 1;
                for _ in 0..max_passes {
                    let mut any = false;
                    for &p in &plan.order {
                        if self.process_place(model, plan, p) {
                            any = true;
                        }
                        if self.halted {
                            break;
                        }
                    }
                    if !any || self.halted {
                        break;
                    }
                }
            } else {
                for &p in &plan.order {
                    self.process_place(model, plan, p);
                    if self.halted {
                        break;
                    }
                }
            }
        }

        // 4. Instruction-independent sub-net: generate new tokens.
        if !self.halted {
            self.run_sources(model, plan);
        }

        if self.cfg.collect_occupancy {
            for p in 0..self.live.len() {
                self.stats.occupancy[p] += (self.live[p].len() + self.pending[p].len()) as u64;
            }
        }

        self.cycle += 1;
        self.stats.cycles += 1;
    }

    /// Figure 7: processes the instruction tokens of one place. Returns
    /// whether any transition fired.
    fn process_place(&mut self, model: &Model<D, R>, plan: &ExecPlan, p: PlaceId) -> bool {
        let pi = p.index();
        if self.live[pi].is_empty() {
            return false;
        }
        let mut snapshot = std::mem::take(&mut self.scratch);
        snapshot.clear();
        snapshot.extend_from_slice(&self.live[pi]);
        let mut fired_any = false;

        for &id in &snapshot {
            let Some(tok) = self.pool.get(id) else { continue };
            if tok.place != p || tok.kind != TokenKind::Instruction || tok.ready_at > self.cycle {
                continue;
            }
            let class = tok.data.as_ref().expect("instruction token has data").op_class();
            let fired = match &plan.lookup {
                Lookup::PerPlaceClass { flat, span, n_classes } => {
                    let (start, len) = span[pi * n_classes + class.index()];
                    let mut fired = false;
                    for k in start..start + u32::from(len) {
                        let tid = flat[k as usize] as usize;
                        if self.try_fire(model, plan, tid, id, p) {
                            fired = true;
                            break;
                        }
                    }
                    fired
                }
                Lookup::PerPlace { flat, span } => {
                    let subnet = plan.subnet_of_class[class.index()];
                    let (start, len) = span[pi];
                    let mut fired = false;
                    for k in start..start + u32::from(len) {
                        let tid = flat[k as usize] as usize;
                        if plan.subnet_of_trans[tid] != subnet {
                            continue;
                        }
                        if self.try_fire(model, plan, tid, id, p) {
                            fired = true;
                            break;
                        }
                    }
                    fired
                }
                Lookup::FullScan { order } => {
                    let subnet = plan.subnet_of_class[class.index()];
                    let mut fired = false;
                    for &t in order {
                        let tid = t as usize;
                        if plan.input_of_trans[tid] as usize != pi
                            || plan.subnet_of_trans[tid] != subnet
                        {
                            continue;
                        }
                        if self.try_fire(model, plan, tid, id, p) {
                            fired = true;
                            break;
                        }
                    }
                    fired
                }
            };
            if fired {
                fired_any = true;
            } else {
                self.stats.stalls += 1;
                self.stats.place_stalls[pi] += 1;
            }
            if self.halted {
                break;
            }
        }

        self.scratch = snapshot;
        fired_any
    }

    /// Checks capacity / extra inputs / guard; fires if enabled.
    #[inline]
    fn try_fire(
        &mut self,
        model: &Model<D, R>,
        plan: &ExecPlan,
        tid: usize,
        token: TokenId,
        place: PlaceId,
    ) -> bool {
        let h = plan.hot[tid];
        if !h.cap_exempt && self.stage_occ[h.dest_stage as usize] >= h.cap {
            self.stats.capacity_blocks += 1;
            return false;
        }
        if h.has_extra {
            for k in 0..model.transitions[tid].extra_inputs.len() {
                let x = model.transitions[tid].extra_inputs[k];
                if self.oldest_ready(x).is_none() {
                    return false;
                }
            }
        }
        if h.has_guard {
            let guard = model.transitions[tid].guard.as_ref().expect("has_guard implies guard");
            let tok = self.pool.get(token).expect("token live during guard");
            let data = tok.data.as_ref().expect("instruction token has data");
            if !guard(&self.machine, data) {
                self.stats.guard_fails += 1;
                return false;
            }
        }
        self.fire(model, plan, tid, h, token, place);
        true
    }

    /// The oldest ready token in `place` (any kind), if one exists.
    fn oldest_ready(&self, place: PlaceId) -> Option<TokenId> {
        self.live[place.index()]
            .iter()
            .copied()
            .filter(|&id| self.pool.get(id).is_some_and(|t| t.ready_at <= self.cycle))
            .min_by_key(|&id| self.pool.get(id).expect("live token").seq())
    }

    #[inline]
    fn remove_from_place(&mut self, plan: &ExecPlan, place: usize, id: TokenId) {
        let list = &mut self.live[place];
        let pos = list.iter().position(|&x| x == id).expect("token listed in its place");
        list.remove(pos);
        self.stage_occ[plan.hot_place[place].stage as usize] -= 1;
    }

    #[inline]
    fn insert_token(&mut self, plan: &ExecPlan, id: TokenId, place: u32) {
        let hp = plan.hot_place[place as usize];
        if hp.two_list {
            self.pending[place as usize].push(id);
        } else {
            self.live[place as usize].push(id);
            self.machine.regs.note_move(id, PlaceId::from_index(place as usize));
        }
        self.stage_occ[hp.stage as usize] += 1;
    }

    /// Fires transition `tid`, moving `token` from `place` to the
    /// destination.
    fn fire(
        &mut self,
        model: &Model<D, R>,
        plan: &ExecPlan,
        tid: usize,
        h: HotTrans,
        token: TokenId,
        place: PlaceId,
    ) {
        let cycle = self.cycle;

        // Consume extra-input tokens (joins) first.
        if h.has_extra {
            for k in 0..model.transitions[tid].extra_inputs.len() {
                let x = model.transitions[tid].extra_inputs[k];
                let victim =
                    self.oldest_ready(x).expect("extra input availability was checked in try_fire");
                self.remove_from_place(plan, x.index(), victim);
                let t = self.pool.take(victim);
                if t.kind == TokenKind::Instruction {
                    self.machine.regs.release(victim);
                }
            }
        }

        self.remove_from_place(plan, place.index(), token);

        // Run the action.
        let mut fx = Fx::new(Some(token));
        let mut has_fx = false;
        if h.has_action {
            let action = model.transitions[tid].action.as_ref().expect("has_action implies action");
            let tok = self.pool.get_mut(token).expect("firing token is live");
            let data = tok.data.as_mut().expect("instruction token has data");
            action(&mut self.machine, data, &mut fx);
            has_fx = !fx.emits.is_empty() || !fx.flush_places.is_empty() || fx.halt;
        }

        // Move the token.
        let mut seq = 0;
        if h.dest_is_end {
            let tok = self.pool.take(token);
            if self.cfg.trace {
                seq = tok.seq;
            }
            let leaked = self.machine.regs.release(token);
            self.stats.leaked_reservations += leaked as u64;
            self.stats.retired += 1;
            if self.cfg.trace {
                self.trace.push(TraceEvent::Retired {
                    cycle,
                    place: PlaceId::from_index(h.dest as usize),
                    seq,
                });
            }
        } else {
            let eff = match fx.token_delay {
                None => h.base_ready,
                Some(d) => h.tdelay + u64::from(d),
            };
            let tok = self.pool.get_mut(token).expect("firing token is live");
            tok.place = PlaceId::from_index(h.dest as usize);
            tok.arrived_at = cycle;
            tok.ready_at = cycle + eff;
            if self.cfg.trace {
                seq = tok.seq;
            }
            self.insert_token(plan, token, h.dest);
        }

        // Reservation-token output arcs.
        if h.has_res {
            for k in 0..model.transitions[tid].reservations.len() {
                let r = model.transitions[tid].reservations[k];
                let rid = self.pool.alloc(
                    TokenKind::Reservation,
                    None,
                    r.place,
                    cycle,
                    cycle + u64::from(r.expire),
                );
                // Reservations occupy immediately; they are not deferred
                // even on two-list places, since their only observable
                // effect is stage occupancy (which is always next-state).
                self.live[r.place.index()].push(rid);
                self.stage_occ[plan.hot_place[r.place.index()].stage as usize] += 1;
                self.stats.reservations += 1;
            }
        }

        if has_fx {
            self.apply_fx(model, plan, fx);
        }
        self.stats.fires[tid] += 1;
        if self.cfg.trace {
            self.trace.push(TraceEvent::Fired {
                cycle,
                transition: TransitionId::from_index(tid),
                seq,
            });
        }
    }

    fn apply_fx(&mut self, model: &Model<D, R>, plan: &ExecPlan, fx: Fx<D>) {
        let cycle = self.cycle;
        for (payload, place, delay) in fx.emits {
            let id = self.pool.alloc(
                TokenKind::Instruction,
                Some(payload),
                place,
                cycle,
                cycle + u64::from(delay),
            );
            self.insert_token(plan, id, place.index() as u32);
            self.stats.emitted += 1;
        }
        for place in fx.flush_places {
            self.flush_place(model, plan, place);
        }
        if fx.halt {
            self.halted = true;
        }
    }

    /// Squashes every token in `place`, releasing register reservations.
    fn flush_place(&mut self, model: &Model<D, R>, plan: &ExecPlan, place: PlaceId) {
        let ids: Vec<TokenId> = self.live[place.index()]
            .drain(..)
            .chain(self.pending[place.index()].drain(..))
            .collect();
        let stage = plan.hot_place[place.index()].stage as usize;
        for id in ids {
            let mut tok = self.pool.take(id);
            if tok.kind == TokenKind::Instruction {
                self.machine.regs.release(id);
                if let Some(handler) = &model.squash_handler {
                    let data = tok.data.as_mut().expect("instruction token has data");
                    handler(&mut self.machine, data);
                }
            }
            self.stage_occ[stage] -= 1;
            self.stats.flushed += 1;
            if self.cfg.trace {
                self.trace.push(TraceEvent::Flushed { cycle: self.cycle, place, seq: tok.seq });
            }
        }
    }

    /// Executes the instruction-independent sub-net (all sources).
    fn run_sources(&mut self, model: &Model<D, R>, plan: &ExecPlan) {
        let cycle = self.cycle;
        for si in 0..plan.hot_source.len() {
            let hs = plan.hot_source[si];
            let hp = plan.hot_place[hs.dest as usize];
            for _ in 0..hs.width {
                if !hp.is_end && self.stage_occ[hp.stage as usize] >= hp.cap {
                    break;
                }
                if let Some(guard) = &model.sources[si].guard {
                    if !guard(&self.machine) {
                        break;
                    }
                }
                let mut fx = Fx::new(None);
                let payload = {
                    let produce = &model.sources[si].produce;
                    produce(&mut self.machine, &mut fx)
                };
                let produced = payload.is_some();
                if let Some(data) = payload {
                    let eff = match fx.token_delay {
                        None => hp.delay,
                        Some(d) => u64::from(d),
                    };
                    let id = self.pool.alloc(
                        TokenKind::Instruction,
                        Some(data),
                        PlaceId::from_index(hs.dest as usize),
                        cycle,
                        cycle + eff,
                    );
                    self.insert_token(plan, id, hs.dest);
                    self.stats.generated += 1;
                    self.stats.source_fires[si] += 1;
                    if self.cfg.trace {
                        let seq = self.pool.get(id).expect("just allocated").seq();
                        self.trace.push(TraceEvent::Generated {
                            cycle,
                            source: SourceId::from_index(si),
                            seq,
                        });
                    }
                }
                if !fx.emits.is_empty() || !fx.flush_places.is_empty() || fx.halt {
                    self.apply_fx(model, plan, fx);
                }
                if self.halted || !produced {
                    break;
                }
            }
            if self.halted {
                break;
            }
        }
    }
}

impl<D: InstrData, R> std::fmt::Debug for Engine<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cycle", &self.st.cycle)
            .field("halted", &self.st.halted)
            .field("live_tokens", &self.st.pool.live())
            .finish()
    }
}
