//! The cycle-accurate simulation engine (paper, Section 4).
//!
//! The engine executes a compiled model one clock cycle at a time. The
//! main loop mirrors Figure 8 of the paper:
//!
//! ```text
//! CalculateSortedTransitions();            // done at Model::build time
//! P = places in reverse topological order; // baked into the ExecPlan
//! while program not finished
//!     foreach two-list place p: mark written tokens available for read;
//!     foreach place p in P: Process(p);
//!     execute the instruction-independent sub-net (sources);
//!     increment cycle count;
//! ```
//!
//! `Process(p)` (Figure 7) walks the instruction tokens resident in `p`
//! and, for each, tries the statically sorted transition list of the
//! token's operation class; the first enabled transition fires and the
//! token moves on.
//!
//! The pipeline is split into an explicit **model → compile → run**
//! sequence: [`crate::compiled::CompiledModel`] partially evaluates a
//! [`Model`] into flat hot tables (the compile step, playing the role of
//! the paper's simulator *generation*), and `Engine` is the run step —
//! pure mutable state (token pool, place lists, statistics) over the
//! shared read-only plan. [`Engine::new`] compiles and instantiates in
//! one call for convenience; use [`crate::compiled::CompiledModel`]
//! directly to build once and instantiate many times.
//!
//! ## Activity-driven scheduling
//!
//! The `foreach place p in P` of Figure 8 is exhaustive: it visits every
//! place every cycle even when most of the pipeline is quiescent (drained
//! bubbles, tokens parked on multi-cycle latencies). The default
//! [`SchedulerMode::ActivityDriven`] scheduler makes that sweep sparse
//! with a dirty-place worklist built on three per-place facts maintained
//! incrementally by every token movement:
//!
//! * `n_instr[p]` — live instruction tokens resident in `p`;
//! * `wake[p]` — a lower bound on the earliest cycle at which any token in
//!   `p` can enable a transition (min token `ready_at`; a token that was
//!   ready but found no enabled transition re-arms `wake` to the next
//!   cycle, because capacity, guards, or join inputs may change);
//! * `res_wake[p]` — the earliest reservation expiry in `p`.
//!
//! A place is processed in a cycle only when `n_instr[p] > 0` and
//! `wake[p]` has arrived; latch commits walk a dirty list of two-list
//! places with pending tokens, and reservation expiry walks only places
//! whose earliest expiry has arrived. Skipped work is *provably* a no-op:
//! a place is skipped only when every resident instruction token is still
//! delayed, which is exactly the case where the exhaustive sweep scans it
//! and does nothing — so retirement streams, traces, and [`Stats`] are
//! bit-identical between the two schedulers (the differential property
//! tests enforce this). Firing a transition re-dirties its output places
//! through the token insertion itself, which preserves the paper's
//! fixed-point semantics under `two_list_everywhere`. The amount of work
//! skipped is observable through [`SchedStats`] (see [`Engine::sched`]),
//! quantified against the compiled place→transitions reverse index.
//!
//! [`SchedulerMode::Exhaustive`] keeps the verbatim Figure 8 sweep as the
//! differential-testing oracle (and as the honest ablation baseline).
//!
//! Three optimizations from the paper are implemented and individually
//! switchable through [`EngineConfig`] so their contribution can be
//! measured (see the `ablations` bench):
//!
//! * [`TableMode::PerPlaceClass`] — the `sorted_transitions[p, IType]`
//!   table; alternatives re-introduce the search cost the paper eliminates.
//! * Reverse-topological evaluation with two-list storage only on feedback
//!   places; [`EngineConfig::two_list_everywhere`] instead runs the generic
//!   two-storage fixpoint scheme for every place, like a naive synchronous
//!   Petri-net simulator.
//!
//! Each `EngineConfig` selects a compiled *variant*: only the lookup
//! table the variant needs is materialized in its plan.

use std::sync::Arc;

use crate::compiled::{ActionCode, CompiledModel, ExecPlan, GuardCode, HotTrans, Lookup, SbBlock};
use crate::ids::{PlaceId, SourceId, TokenId, TransitionId};
use crate::ir::{self, MicroOp};
use crate::model::{ActionKind, Fx, GuardKind, Machine, Model};
use crate::stats::{SchedStats, Stats};
use crate::token::{InstrData, TokenKind, TokenPool};

/// How `Process(p)` locates candidate transitions for a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableMode {
    /// The paper's optimization: a pre-sorted list per (place, class).
    #[default]
    PerPlaceClass,
    /// A pre-sorted list per place; class membership checked dynamically.
    PerPlace,
    /// No tables: scan every transition of the net for each token, the way
    /// a generic Petri-net simulator searches for enabled transitions.
    FullScan,
}

/// How the per-cycle loop selects the places to process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// The sparse dirty-place worklist: a place is scanned only when it
    /// holds an instruction token that can become ready this cycle, and
    /// latch/expiry scans walk active lists. Bit-identical simulation to
    /// [`SchedulerMode::Exhaustive`]; strictly less host work.
    #[default]
    ActivityDriven,
    /// The verbatim Figure 8 sweep: every place in the evaluation order is
    /// scanned every cycle. Kept as the differential-testing oracle.
    Exhaustive,
}

/// Engine tuning knobs; the defaults enable every optimization.
///
/// `table_mode` and `two_list_everywhere` are *compile-time* choices: they
/// select which tables a [`CompiledModel`] materializes.
/// `scheduler`, `collect_occupancy` and `trace` are runtime flags carried
/// into each instantiated engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Candidate-transition lookup strategy.
    pub table_mode: TableMode,
    /// Use two-storage (master/slave) token lists for *every* place and a
    /// per-cycle fixpoint search instead of the reverse-topological single
    /// pass. This is the "usual, computationally expensive solution" the
    /// paper avoids.
    pub two_list_everywhere: bool,
    /// Per-cycle place-selection strategy: the sparse activity-driven
    /// worklist (default) or the exhaustive oracle sweep.
    pub scheduler: SchedulerMode,
    /// Accumulate per-place occupancy statistics (small per-cycle cost).
    pub collect_occupancy: bool,
    /// Record a [`TraceEvent`] log (for model validation / CPN equivalence
    /// checks).
    pub trace: bool,
    /// Compile superblocks (compile-time choice): a (place, class) pair
    /// whose candidate list is a single pure-data transition dispatches
    /// through one pre-resolved block over a flattened op stream instead
    /// of the candidate walk + generic interpreters. `false` keeps the
    /// per-op dispatch everywhere — the differential oracle for the fast
    /// path. Simulation results are bit-identical either way; only
    /// [`SchedStats`] dispatch counters and host speed differ.
    pub superblocks: bool,
    /// Compile cross-place chains (compile-time choice, implies
    /// `superblocks`): superblocks whose destination is the head of a
    /// fusion-legal successor block (see `DESIGN.md` §2f) carry a
    /// pre-resolved link, and the engine parks a dispatch cursor on the
    /// destination place when such a link fires — the next sweep slot
    /// dispatches the successor directly instead of re-deriving it
    /// through the token scan and superblock lookup. `false` keeps the
    /// plain superblock dispatch everywhere — the differential oracle
    /// for the chain path. Simulation results are bit-identical either
    /// way; only the chain [`SchedStats`] counters and host speed
    /// differ.
    pub chains: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            table_mode: TableMode::default(),
            two_list_everywhere: false,
            scheduler: SchedulerMode::default(),
            collect_occupancy: false,
            trace: false,
            superblocks: true,
            chains: true,
        }
    }
}

/// One recorded simulation event (enabled by [`EngineConfig::trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A transition fired, moving the token with sequence number `seq`.
    Fired {
        /// Cycle of the firing.
        cycle: u64,
        /// The transition.
        transition: TransitionId,
        /// Sequence number of the moved token.
        seq: u64,
    },
    /// A source generated a token.
    Generated {
        /// Cycle of the generation.
        cycle: u64,
        /// The source.
        source: SourceId,
        /// Sequence number of the new token.
        seq: u64,
    },
    /// An instruction token reached an `end` place.
    Retired {
        /// Cycle of the retirement.
        cycle: u64,
        /// The end place reached.
        place: PlaceId,
        /// Sequence number of the retired token.
        seq: u64,
    },
    /// A token was squashed by a flush.
    Flushed {
        /// Cycle of the flush.
        cycle: u64,
        /// The flushed place.
        place: PlaceId,
        /// Sequence number of the squashed token.
        seq: u64,
    },
}

/// A parked chain dispatch cursor: when a superblock with a chain link
/// fires, the engine records on the destination place which successor
/// block the moved token will dispatch through at its next sweep slot.
/// The slot validates the park (sole residency, token identity, class,
/// readiness) before trusting it; anything else — extra arrivals,
/// flushes, token-id reuse — fails the validation and falls back to the
/// generic place scan, so a park is only ever a memoized shortcut to the
/// dispatch the scan would have derived.
#[derive(Debug, Clone, Copy)]
struct ChainPark {
    /// Successor superblock index, `u32::MAX` when the slot is empty.
    sb: u32,
    /// The parked token.
    token: TokenId,
    /// Operation class the successor block dispatches.
    class: u32,
    /// The one cycle at which the cursor is armed; any other cycle means
    /// the park is stale.
    fire_at: u64,
}

impl ChainPark {
    const EMPTY: ChainPark =
        ChainPark { sb: u32::MAX, token: TokenId { slot: u32::MAX, gen: 0 }, class: 0, fire_at: 0 };
}

/// Why [`Engine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The model requested a halt (e.g. an exit system call).
    Halted,
    /// The cycle budget was exhausted first.
    CycleLimit,
}

/// The RCPN cycle-accurate simulator: the run step of the model →
/// compile → run pipeline.
///
/// Created from a [`CompiledModel`] (via
/// [`CompiledModel::instantiate`], or the [`Engine::new`] /
/// [`Engine::with_config`] conveniences that compile on the spot) and an
/// initial [`Machine`]; stepped with [`Engine::step`] or driven with
/// [`Engine::run`]. The compiled tables are shared; all mutable
/// simulation state is per-engine.
pub struct Engine<D: InstrData, R> {
    model: Arc<Model<D, R>>,
    plan: Arc<ExecPlan>,
    st: EngineState<D, R>,
}

/// The mutable per-run half of an [`Engine`], split from the shared
/// model/plan so the per-cycle loop can borrow the read-only tables and
/// the mutable state disjointly — no `Arc` traffic on the hot path.
///
/// All buffers used inside a cycle (`scratch`, `expired`, `flush_buf`,
/// the `fx` side-effect collector) are owned here and reused, so the
/// steady-state path allocates nothing per cycle.
struct EngineState<D: InstrData, R> {
    machine: Machine<R>,
    pool: TokenPool<D>,
    live: Vec<Vec<TokenId>>,
    pending: Vec<Vec<TokenId>>,
    stage_occ: Vec<u32>,
    /// Live instruction tokens per place (activity criterion).
    n_instr: Vec<u32>,
    /// Live reservation tokens per place (expiry-scan criterion).
    n_res: Vec<u32>,
    /// Earliest cycle at which a place may need processing; `u64::MAX`
    /// when nothing resident can ever become ready without new arrivals.
    wake: Vec<u64>,
    /// Earliest reservation expiry per place; `u64::MAX` when none.
    res_wake: Vec<u64>,
    /// Two-list places with tokens written this cycle (the latch-commit
    /// worklist; may hold stale/duplicate entries, resolved at commit).
    pending_dirty: Vec<u32>,
    /// Per-place chain dispatch cursors (see [`ChainPark`]); all-empty
    /// when the plan was compiled without chain links.
    park: Vec<ChainPark>,
    cfg: EngineConfig,
    stats: Stats,
    sched: SchedStats,
    halted: bool,
    cycle: u64,
    trace: Vec<TraceEvent>,
    scratch: Vec<TokenId>,
    expired: Vec<TokenId>,
    flush_buf: Vec<TokenId>,
    /// Per-operand source decisions of the last passing fused guard
    /// (`false` = register file, `true` = forwarding scoreboard);
    /// consumed by the immediately following fused acquire.
    fused_memo: Vec<bool>,
    fx: Fx<D>,
}

impl<D: InstrData, R> Engine<D, R> {
    /// Compiles `model` with the default (fully optimized) configuration
    /// and instantiates an engine over it.
    pub fn new(model: Model<D, R>, machine: Machine<R>) -> Self {
        CompiledModel::compile(model).instantiate(machine)
    }

    /// Compiles `model` into the variant selected by `cfg` and
    /// instantiates an engine over it.
    pub fn with_config(model: Model<D, R>, machine: Machine<R>, cfg: EngineConfig) -> Self {
        CompiledModel::compile_with(model, cfg).instantiate(machine)
    }

    /// Instantiation entry point used by [`CompiledModel::instantiate`].
    pub(crate) fn from_compiled(compiled: CompiledModel<D, R>, machine: Machine<R>) -> Self {
        let CompiledModel { model, plan, cfg } = compiled;
        let n_places = model.place_count();
        let stats = Stats::new(model.transition_count(), model.source_count(), model.place_count());
        Engine {
            st: EngineState {
                live: vec![Vec::new(); n_places],
                pending: vec![Vec::new(); n_places],
                stage_occ: vec![0; plan.n_stages],
                n_instr: vec![0; n_places],
                n_res: vec![0; n_places],
                wake: vec![u64::MAX; n_places],
                res_wake: vec![u64::MAX; n_places],
                pending_dirty: Vec::new(),
                park: vec![ChainPark::EMPTY; n_places],
                cfg,
                stats,
                sched: SchedStats::default(),
                halted: false,
                cycle: 0,
                trace: Vec::new(),
                scratch: Vec::new(),
                expired: Vec::new(),
                flush_buf: Vec::new(),
                fused_memo: Vec::new(),
                fx: Fx::new(None),
                machine,
                pool: TokenPool::new(),
            },
            model,
            plan,
        }
    }

    /// The model being simulated.
    pub fn model(&self) -> &Model<D, R> {
        &self.model
    }

    /// A handle to the compiled artifact this engine runs (cheap clone;
    /// can be used to instantiate sibling engines).
    pub fn compiled(&self) -> CompiledModel<D, R> {
        CompiledModel {
            model: Arc::clone(&self.model),
            plan: Arc::clone(&self.plan),
            cfg: self.st.cfg.clone(),
        }
    }

    /// The machine state.
    pub fn machine(&self) -> &Machine<R> {
        &self.st.machine
    }

    /// Mutable machine state (for initialization between runs).
    pub fn machine_mut(&mut self) -> &mut Machine<R> {
        &mut self.st.machine
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.st.stats
    }

    /// Host-side scheduler counters: visited vs skipped places, tokens and
    /// candidate transitions. Unlike [`Engine::stats`] these depend on the
    /// [`SchedulerMode`] (that is their purpose — they make the sparsity
    /// win observable), but they are deterministic for a fixed
    /// configuration.
    pub fn sched(&self) -> &SchedStats {
        &self.st.sched
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.st.cycle
    }

    /// Whether a halt was requested.
    pub fn halted(&self) -> bool {
        self.st.halted
    }

    /// Number of tokens (live + pending) currently in `place`.
    pub fn tokens_in(&self, place: PlaceId) -> usize {
        self.st.live[place.index()].len() + self.st.pending[place.index()].len()
    }

    /// Total number of in-flight tokens.
    pub fn live_tokens(&self) -> usize {
        self.st.pool.live()
    }

    /// Drains and returns the recorded trace.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.st.trace)
    }

    /// Injects an instruction token directly into a place (testing and
    /// model-bring-up aid). The token becomes eligible after the place's
    /// default delay.
    pub fn inject(&mut self, payload: D, place: PlaceId) -> TokenId {
        self.st.inject(&self.plan, payload, place)
    }

    /// Executes one clock cycle (Figure 8 main loop body).
    pub fn step(&mut self) {
        self.st.step(&self.model, &self.plan);
    }

    /// Runs until the model halts or `max_cycles` have executed.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        let limit = self.st.cycle.saturating_add(max_cycles);
        while !self.st.halted && self.st.cycle < limit {
            self.st.step(&self.model, &self.plan);
        }
        if self.st.halted {
            RunOutcome::Halted
        } else {
            RunOutcome::CycleLimit
        }
    }

    /// Squashes every token in `place`, releasing register reservations.
    pub fn flush_place(&mut self, place: PlaceId) {
        self.st.flush_place(&self.model, &self.plan, place);
    }
}

impl<D: InstrData, R> EngineState<D, R> {
    fn inject(&mut self, plan: &ExecPlan, payload: D, place: PlaceId) -> TokenId {
        let ready = self.cycle + plan.hot_place[place.index()].delay;
        let id = self.pool.alloc(TokenKind::Instruction, Some(payload), place, self.cycle, ready);
        self.insert_token(plan, id, place.index() as u32, ready);
        self.stats.generated += 1;
        id
    }

    /// One clock cycle (Figure 8 main loop body).
    fn step(&mut self, model: &Model<D, R>, plan: &ExecPlan) {
        self.machine.cycle = self.cycle;
        let exhaustive = self.cfg.scheduler == SchedulerMode::Exhaustive;

        // 1. Two-list commit: written tokens become readable. Walks the
        //    dirty worklist (places that received pending tokens), sorted
        //    into place-index order so the commit sequence is identical to
        //    the full `two_list_places` sweep it replaces.
        if !self.pending_dirty.is_empty() {
            let mut dirty = std::mem::take(&mut self.pending_dirty);
            dirty.sort_unstable();
            dirty.dedup();
            for &place in &dirty {
                let pi = place as usize;
                if self.pending[pi].is_empty() {
                    continue; // stale entry (e.g. the place was flushed)
                }
                let p = PlaceId::from_index(pi);
                for &id in &self.pending[pi] {
                    self.machine.regs.note_move(id, p);
                }
                let moved = self.pending[pi].len();
                self.stats.two_list_commits += moved as u64;
                self.n_instr[pi] += moved as u32;
                // Conservative wake: the committed tokens may be ready
                // this very cycle; processing recomputes the exact bound.
                self.wake[pi] = self.wake[pi].min(self.cycle);
                let (live, pending) = (&mut self.live, &mut self.pending);
                live[pi].append(&mut pending[pi]);
            }
            dirty.clear();
            self.pending_dirty = dirty;
        }

        // 2. Reservation expiry: reservation tokens whose residency elapsed
        //    release their stage capacity ("in the next cycle, this token
        //    is consumed"). The activity scheduler scans a place only when
        //    its earliest expiry has arrived; skipped scans could not have
        //    removed anything.
        for &p in &plan.res_places {
            let pi = p.index();
            if exhaustive {
                if self.live[pi].is_empty() {
                    continue;
                }
            } else {
                if self.n_res[pi] == 0 {
                    continue;
                }
                if self.res_wake[pi] > self.cycle {
                    self.sched.expiry_skips += 1;
                    continue;
                }
            }
            self.sched.expiry_scans += 1;
            let cycle = self.cycle;
            let mut expired = std::mem::take(&mut self.expired);
            expired.clear();
            let mut next_expiry = u64::MAX;
            self.live[pi].retain(|&id| {
                let t = self.pool.get(id).expect("reservation token must be live");
                if t.kind == TokenKind::Reservation {
                    if t.ready_at <= cycle {
                        expired.push(id);
                        return false;
                    }
                    next_expiry = next_expiry.min(t.ready_at);
                }
                true
            });
            self.n_res[pi] -= expired.len() as u32;
            self.res_wake[pi] = next_expiry;
            let stage = plan.hot_place[pi].stage as usize;
            for &id in &expired {
                self.pool.take(id);
                self.stage_occ[stage] -= 1;
            }
            expired.clear();
            self.expired = expired;
        }

        // 3. Process places.
        if !self.halted {
            if plan.fixpoint {
                // Generic synchronous scheme: scan for enabled transitions
                // until a fixpoint — the expensive search RCPN avoids. The
                // activity gate widens by one cycle after the first pass:
                // a token that was ready but stalled re-arms its place to
                // `cycle + 1`, and such places must be rescanned on every
                // pass (the exhaustive fixpoint rescans them, counting
                // their stalls again), while places whose tokens are all
                // still delayed stay skippable — rescanning them is a
                // no-op either way.
                let max_passes = plan.order.len() + 1;
                for pass in 0..max_passes {
                    let bound = if pass == 0 { self.cycle } else { self.cycle + 1 };
                    let mut any = false;
                    for &p in &plan.order {
                        let pi = p.index();
                        if !exhaustive {
                            if self.n_instr[pi] == 0 {
                                continue;
                            }
                            if self.wake[pi] > bound {
                                self.note_place_skip(plan, pi);
                                continue;
                            }
                        }
                        if self.dispatch_place(model, plan, p) {
                            any = true;
                        }
                        if self.halted {
                            break;
                        }
                    }
                    if !any || self.halted {
                        break;
                    }
                }
            } else {
                for &p in &plan.order {
                    let pi = p.index();
                    if !exhaustive {
                        if self.n_instr[pi] == 0 {
                            continue;
                        }
                        if self.wake[pi] > self.cycle {
                            self.note_place_skip(plan, pi);
                            continue;
                        }
                    }
                    self.dispatch_place(model, plan, p);
                    if self.halted {
                        break;
                    }
                }
            }
        }

        // 4. Instruction-independent sub-net: generate new tokens.
        if !self.halted {
            self.run_sources(model, plan);
        }

        if self.cfg.collect_occupancy {
            for p in 0..self.live.len() {
                self.stats.occupancy[p] += (self.live[p].len() + self.pending[p].len()) as u64;
            }
        }

        self.cycle += 1;
        self.stats.cycles += 1;
    }

    /// Accounts one activity skip of a non-empty place: the tokens that
    /// were not rescanned, and (via the compiled reverse index) the
    /// dependent transitions that were not reconsidered.
    #[inline]
    fn note_place_skip(&mut self, plan: &ExecPlan, pi: usize) {
        self.sched.place_skips += 1;
        self.sched.token_visits_skipped += self.live[pi].len() as u64;
        self.sched.trans_visits_skipped += u64::from(plan.hot_place[pi].n_dependents);
    }

    /// Dispatches one place slot: the chain cursor fast path when a
    /// parked chain token provably *is* the entire work the generic scan
    /// would derive for this place this cycle, the generic
    /// [`EngineState::process_place`] otherwise.
    ///
    /// The park is trusted only when the place holds exactly the parked
    /// token, still live (the generation-counted [`TokenId`] rules out
    /// pool-slot reuse), an instruction of the chain's class, resident
    /// here and ready now, at exactly the armed cycle. Under those checks
    /// the generic scan would visit one token and dispatch the very
    /// superblock the cursor pre-resolved, so the cursor firing it
    /// directly is observation-equivalent; everything the shortcut elides
    /// is host-side lookup work plus the per-visit [`SchedStats`]
    /// accounting that [`SchedStats::dispatch_normalized`] folds back.
    fn dispatch_place(&mut self, model: &Model<D, R>, plan: &ExecPlan, p: PlaceId) -> bool {
        let pi = p.index();
        let park = self.park[pi];
        if park.sb != u32::MAX
            && park.fire_at == self.cycle
            && self.live[pi].len() == 1
            && self.live[pi][0] == park.token
        {
            if let Some(tok) = self.pool.get(park.token) {
                if tok.place == p
                    && tok.kind == TokenKind::Instruction
                    && tok.ready_at <= self.cycle
                    && tok.data.as_ref().expect("instruction token has data").op_class().index()
                        == park.class as usize
                {
                    let sb = plan.sb_blocks[park.sb as usize];
                    return self.fire_chain_link(plan, &sb, park.token, p);
                }
            }
        }
        self.process_place(model, plan, p)
    }

    /// Dispatches one validated chain link through its parked cursor.
    /// A fired link counts `chain_links_fired` and elides the generic
    /// scan's per-visit accounting; a blocked link replays that
    /// accounting verbatim (visit, candidate, stall, wake re-arm) and
    /// re-arms the cursor for the next cycle, so chains never change
    /// admissible behavior — only how an admissible dispatch is reached.
    fn fire_chain_link(
        &mut self,
        plan: &ExecPlan,
        sb: &SbBlock,
        token: TokenId,
        place: PlaceId,
    ) -> bool {
        let pi = place.index();
        if self.try_fire_superblock(plan, sb, token, place, true) {
            self.sched.chain_links_fired += 1;
            self.wake[pi] = u64::MAX;
            true
        } else {
            // Bit-identical fallback: the counters and wake bound the
            // generic single-token place scan would have produced for
            // this blocked dispatch.
            self.sched.place_visits += 1;
            self.sched.token_visits += 1;
            self.sched.trans_visits += 1;
            self.stats.stalls += 1;
            self.stats.place_stalls[pi] += 1;
            self.wake[pi] = self.cycle + 1;
            self.park[pi].fire_at = self.cycle + 1;
            false
        }
    }

    /// Figure 7: processes the instruction tokens of one place. Returns
    /// whether any transition fired.
    ///
    /// Also recomputes the place's `wake` bound from what it saw: delayed
    /// tokens contribute their `ready_at`, a ready token that stalled
    /// contributes `cycle + 1` (its enabling conditions may change), and
    /// insertions that happen *during* the scan lower the bound through
    /// [`EngineState::insert_token`].
    fn process_place(&mut self, model: &Model<D, R>, plan: &ExecPlan, p: PlaceId) -> bool {
        let pi = p.index();
        if self.live[pi].is_empty() {
            return false;
        }
        self.sched.place_visits += 1;
        self.wake[pi] = u64::MAX;
        let mut next_wake = u64::MAX;
        let mut snapshot = std::mem::take(&mut self.scratch);
        snapshot.clear();
        snapshot.extend_from_slice(&self.live[pi]);
        self.sched.token_visits += snapshot.len() as u64;
        let mut fired_any = false;

        for &id in &snapshot {
            let Some(tok) = self.pool.get(id) else { continue };
            if tok.place != p || tok.kind != TokenKind::Instruction {
                continue;
            }
            if tok.ready_at > self.cycle {
                next_wake = next_wake.min(tok.ready_at);
                continue;
            }
            let class = tok.data.as_ref().expect("instruction token has data").op_class();
            if let Some(sb) = plan.sb_lookup(pi, class.index()) {
                // Direct-threaded fast path: the (place, class) pair was
                // pre-resolved to its single pure-data transition at
                // compile time; no candidate walk needed.
                if self.try_fire_superblock(plan, sb, id, p, false) {
                    fired_any = true;
                } else {
                    self.stats.stalls += 1;
                    self.stats.place_stalls[pi] += 1;
                    next_wake = next_wake.min(self.cycle + 1);
                }
                // Superblock ops cannot halt; no halted check needed.
                continue;
            }
            let fired = match &plan.lookup {
                Lookup::PerPlaceClass { flat, span, n_classes } => {
                    let (start, len) = span[pi * n_classes + class.index()];
                    let mut fired = false;
                    for k in start..start + u32::from(len) {
                        let tid = flat[k as usize] as usize;
                        if self.try_fire(model, plan, tid, id, p) {
                            fired = true;
                            break;
                        }
                    }
                    fired
                }
                Lookup::PerPlace { flat, span } => {
                    let subnet = plan.subnet_of_class[class.index()];
                    let (start, len) = span[pi];
                    let mut fired = false;
                    for k in start..start + u32::from(len) {
                        let tid = flat[k as usize] as usize;
                        if plan.subnet_of_trans[tid] != subnet {
                            continue;
                        }
                        if self.try_fire(model, plan, tid, id, p) {
                            fired = true;
                            break;
                        }
                    }
                    fired
                }
                Lookup::FullScan { order } => {
                    let subnet = plan.subnet_of_class[class.index()];
                    let mut fired = false;
                    for &t in order {
                        let tid = t as usize;
                        if plan.input_of_trans[tid] as usize != pi
                            || plan.subnet_of_trans[tid] != subnet
                        {
                            continue;
                        }
                        if self.try_fire(model, plan, tid, id, p) {
                            fired = true;
                            break;
                        }
                    }
                    fired
                }
            };
            if fired {
                fired_any = true;
            } else {
                self.stats.stalls += 1;
                self.stats.place_stalls[pi] += 1;
                next_wake = next_wake.min(self.cycle + 1);
            }
            if self.halted {
                break;
            }
        }

        self.scratch = snapshot;
        self.wake[pi] = self.wake[pi].min(next_wake);
        fired_any
    }

    /// Checks capacity / extra inputs / guard; fires if enabled.
    #[inline]
    fn try_fire(
        &mut self,
        model: &Model<D, R>,
        plan: &ExecPlan,
        tid: usize,
        token: TokenId,
        place: PlaceId,
    ) -> bool {
        self.sched.trans_visits += 1;
        let h = plan.hot[tid];
        if !h.cap_exempt && self.stage_occ[h.dest_stage as usize] >= h.cap {
            self.stats.capacity_blocks += 1;
            return false;
        }
        if h.has_extra {
            for k in 0..model.transitions[tid].extra_inputs.len() {
                let x = model.transitions[tid].extra_inputs[k];
                if self.oldest_ready(x).is_none() {
                    return false;
                }
            }
        }
        if h.has_guard {
            let passed = match plan.dispatch[tid].guard {
                GuardCode::None => unreachable!("has_guard implies a guard code"),
                GuardCode::Closure => {
                    self.sched.guard_hook_evals += 1;
                    let Some(GuardKind::Closure(guard)) = &model.transitions[tid].guard else {
                        unreachable!("GuardCode::Closure implies a closure guard")
                    };
                    let tok = self.pool.get(token).expect("token live during guard");
                    let data = tok.data.as_ref().expect("instruction token has data");
                    guard(&self.machine, data)
                }
                GuardCode::Prog(idx) => {
                    self.sched.guard_ir_evals += 1;
                    let tok = self.pool.get(token).expect("token live during guard");
                    let data = tok.data.as_ref().expect("instruction token has data");
                    ir::eval_guard(&plan.programs[idx as usize], &self.machine, data, &model.hooks)
                }
                GuardCode::Fused { fwd_mask } => {
                    self.sched.guard_ir_evals += 1;
                    let mut memo = std::mem::take(&mut self.fused_memo);
                    let tok = self.pool.get(token).expect("token live during guard");
                    let data = tok.data.as_ref().expect("instruction token has data");
                    let ok = ir::fused_check(&self.machine, data, fwd_mask, &mut memo);
                    self.fused_memo = memo;
                    ok
                }
            };
            if !passed {
                self.stats.guard_fails += 1;
                return false;
            }
        }
        self.fire(model, plan, tid, h, token, place);
        true
    }

    /// Superblock dispatch: the whole try-fire of a pre-resolved
    /// single-candidate transition — capacity, guard, action, token move
    /// — as one direct-threaded loop over the flattened op stream, with
    /// no candidate walk, no `HotTrans`/dispatch-table indirection, no
    /// hook table and no `Fx` collector (the admitted ops produce no
    /// deferred effects; see [`SbBlock`]). Observable simulation behavior
    /// — statistics, trace, token and machine state, wake bounds — is
    /// bit-identical to [`EngineState::try_fire`] on the same transition;
    /// only the two superblock [`SchedStats`] counters and host work
    /// differ.
    ///
    /// `via_chain` marks a dispatch reached through a parked chain
    /// cursor rather than the generic place scan: the visit-shaped
    /// counters (`trans_visits`, `superblocks_entered`) are skipped —
    /// they belong to the scan the cursor elided and are folded back by
    /// [`SchedStats::dispatch_normalized`] via `chain_links_fired` —
    /// while the work-shaped counters (guard evals, fused actions, ops
    /// inlined) still accrue because the work itself still happens.
    #[inline]
    fn try_fire_superblock(
        &mut self,
        plan: &ExecPlan,
        sb: &SbBlock,
        token: TokenId,
        place: PlaceId,
        via_chain: bool,
    ) -> bool {
        if !via_chain {
            self.sched.trans_visits += 1;
        }
        if !sb.cap_exempt && self.stage_occ[sb.dest_stage as usize] >= sb.cap {
            self.stats.capacity_blocks += 1;
            return false;
        }
        let (g0, g1) = sb.guard;
        let guard_ops = &plan.sb_ops[g0 as usize..g1 as usize];
        if let Some(fwd_mask) = sb.fused {
            self.sched.guard_ir_evals += 1;
            let mut memo = std::mem::take(&mut self.fused_memo);
            let tok = self.pool.get(token).expect("token live during guard");
            let data = tok.data.as_ref().expect("instruction token has data");
            let ok = ir::fused_check(&self.machine, data, fwd_mask, &mut memo);
            self.fused_memo = memo;
            if !ok {
                self.stats.guard_fails += 1;
                return false;
            }
        } else if !guard_ops.is_empty() {
            self.sched.guard_ir_evals += 1;
            let tok = self.pool.get(token).expect("token live during guard");
            let data = tok.data.as_ref().expect("instruction token has data");
            let passed = guard_ops.iter().all(|op| match op {
                MicroOp::CheckReady { fwd_mask } => ir::check_ready(&self.machine, data, *fwd_mask),
                MicroOp::CheckCond { expect } => data.cond_passes() == *expect,
                other => unreachable!("non-superblock op {other:?} in superblock guard"),
            });
            if !passed {
                self.stats.guard_fails += 1;
                return false;
            }
        }

        // Fire: same observable sequence as `EngineState::fire`, minus
        // the impossible parts (joins, reservations, side effects).
        let cycle = self.cycle;
        let tid = sb.tid as usize;
        self.remove_from_place(plan, place.index(), token, TokenKind::Instruction);
        let (a0, a1) = sb.action;
        let action_ops = &plan.sb_ops[a0 as usize..a1 as usize];
        if !via_chain {
            self.sched.superblocks_entered += 1;
        }
        self.sched.ops_inlined += u64::from(g1 - g0) + u64::from(a1 - a0);
        let mut delay: Option<u32> = None;
        if sb.fused.is_some() || !action_ops.is_empty() {
            let tok = self.pool.get_mut(token).expect("firing token is live");
            let data = tok.data.as_mut().expect("instruction token has data");
            if sb.fused.is_some() {
                self.sched.actions_fused += 1;
                self.sched.ops_inlined += 2; // the fused ready/acquire pair
                ir::fused_acquire_tok(&mut self.machine, data, token, &self.fused_memo);
            }
            for op in action_ops {
                match op {
                    MicroOp::AcquireOperands { fwd_mask } => {
                        ir::acquire_operands_tok(&mut self.machine, data, token, *fwd_mask);
                    }
                    MicroOp::WriteBack => ir::write_back_tok(&mut self.machine, data, token),
                    MicroOp::Publish => ir::publish_results(&mut self.machine, data, token),
                    MicroOp::Annul => ir::annul_token(&mut self.machine, data, token),
                    MicroOp::SetDelay(d) => delay = Some(*d),
                    other => unreachable!("non-superblock op {other:?} in superblock action"),
                }
            }
        }

        // Move the token.
        let mut seq = 0;
        if sb.dest_is_end {
            let tok = self.pool.take(token);
            if self.cfg.trace {
                seq = tok.seq;
            }
            let leaked = self.machine.regs.release(token);
            self.stats.leaked_reservations += leaked as u64;
            self.stats.retired += 1;
            if self.cfg.trace {
                self.trace.push(TraceEvent::Retired {
                    cycle,
                    place: PlaceId::from_index(sb.dest as usize),
                    seq,
                });
            }
        } else {
            let eff = match delay {
                None => sb.base_ready,
                Some(d) => sb.tdelay + u64::from(d),
            };
            let ready = cycle + eff;
            let tok = self.pool.get_mut(token).expect("firing token is live");
            tok.place = PlaceId::from_index(sb.dest as usize);
            tok.arrived_at = cycle;
            tok.ready_at = ready;
            if self.cfg.trace {
                seq = tok.seq;
            }
            self.insert_token(plan, token, sb.dest, ready);
            if sb.chain_next != u32::MAX {
                // Park a chain cursor on the destination: the compile
                // pass proved (place, class) there has a fusion-legal
                // successor superblock, so pre-resolve next cycle's
                // dispatch instead of re-deriving it from the scan.
                self.park[sb.dest as usize] =
                    ChainPark { sb: sb.chain_next, token, class: sb.class, fire_at: cycle + 1 };
                if !via_chain {
                    self.sched.chains_entered += 1;
                }
            }
        }

        self.stats.fires[tid] += 1;
        if self.cfg.trace {
            self.trace.push(TraceEvent::Fired {
                cycle,
                transition: TransitionId::from_index(tid),
                seq,
            });
        }
        true
    }

    /// The oldest ready token in `place` (any kind), if one exists.
    fn oldest_ready(&self, place: PlaceId) -> Option<TokenId> {
        self.live[place.index()]
            .iter()
            .copied()
            .filter(|&id| self.pool.get(id).is_some_and(|t| t.ready_at <= self.cycle))
            .min_by_key(|&id| self.pool.get(id).expect("live token").seq())
    }

    #[inline]
    fn remove_from_place(&mut self, plan: &ExecPlan, place: usize, id: TokenId, kind: TokenKind) {
        let list = &mut self.live[place];
        let pos = list.iter().position(|&x| x == id).expect("token listed in its place");
        list.remove(pos);
        match kind {
            TokenKind::Instruction => self.n_instr[place] -= 1,
            TokenKind::Reservation => self.n_res[place] -= 1,
        }
        self.stage_occ[plan.hot_place[place].stage as usize] -= 1;
    }

    /// Inserts `id` (an instruction token becoming ready at `ready`) into
    /// `place`, dirtying the place for the scheduler: a live insert lowers
    /// the place's wake bound, a pending insert enlists it for the next
    /// latch commit.
    #[inline]
    fn insert_token(&mut self, plan: &ExecPlan, id: TokenId, place: u32, ready: u64) {
        let pi = place as usize;
        let hp = plan.hot_place[pi];
        if hp.two_list {
            if self.pending[pi].is_empty() {
                self.pending_dirty.push(place);
            }
            self.pending[pi].push(id);
        } else {
            self.live[pi].push(id);
            self.n_instr[pi] += 1;
            self.wake[pi] = self.wake[pi].min(ready);
            self.machine.regs.note_move(id, PlaceId::from_index(pi));
        }
        self.stage_occ[hp.stage as usize] += 1;
    }

    /// Fires transition `tid`, moving `token` from `place` to the
    /// destination.
    fn fire(
        &mut self,
        model: &Model<D, R>,
        plan: &ExecPlan,
        tid: usize,
        h: HotTrans,
        token: TokenId,
        place: PlaceId,
    ) {
        let cycle = self.cycle;

        // Consume extra-input tokens (joins) first.
        if h.has_extra {
            for k in 0..model.transitions[tid].extra_inputs.len() {
                let x = model.transitions[tid].extra_inputs[k];
                let victim =
                    self.oldest_ready(x).expect("extra input availability was checked in try_fire");
                let vkind = self.pool.get(victim).expect("victim is live").kind;
                self.remove_from_place(plan, x.index(), victim, vkind);
                let t = self.pool.take(victim);
                if t.kind == TokenKind::Instruction {
                    self.machine.regs.release(victim);
                }
            }
        }

        self.remove_from_place(plan, place.index(), token, TokenKind::Instruction);

        // Run the action, collecting side effects into the reusable
        // scratch collector (its buffers persist across fires, so emitting
        // actions stop allocating per fire).
        let mut fx = std::mem::replace(&mut self.fx, Fx::new(None));
        debug_assert!(
            fx.emits.is_empty() && fx.flush_places.is_empty() && fx.reserves.is_empty() && !fx.halt
        );
        fx.token = Some(token);
        fx.token_delay = None;
        let mut has_fx = false;
        if h.has_action {
            let disp = plan.dispatch[tid];
            if matches!(disp.guard, GuardCode::Fused { .. }) {
                self.sched.actions_fused += 1;
            }
            let tok = self.pool.get_mut(token).expect("firing token is live");
            let data = tok.data.as_mut().expect("instruction token has data");
            if matches!(disp.guard, GuardCode::Fused { .. }) {
                // The fused guard just passed for this very token; latch
                // each operand from the source it memoized.
                ir::fused_acquire(&mut self.machine, data, &mut fx, &self.fused_memo);
            }
            match disp.action {
                ActionCode::None => {}
                ActionCode::Closure => {
                    let Some(ActionKind::Closure(action)) = &model.transitions[tid].action else {
                        unreachable!("ActionCode::Closure implies a closure action")
                    };
                    action(&mut self.machine, data, &mut fx);
                }
                ActionCode::Prog(idx) => ir::run_action(
                    plan.programs[idx as usize].ops(),
                    &mut self.machine,
                    data,
                    &mut fx,
                    &model.hooks,
                ),
            }
            has_fx = !fx.emits.is_empty()
                || !fx.flush_places.is_empty()
                || !fx.reserves.is_empty()
                || fx.halt;
        }

        // Move the token.
        let mut seq = 0;
        if h.dest_is_end {
            let tok = self.pool.take(token);
            if self.cfg.trace {
                seq = tok.seq;
            }
            let leaked = self.machine.regs.release(token);
            self.stats.leaked_reservations += leaked as u64;
            self.stats.retired += 1;
            if self.cfg.trace {
                self.trace.push(TraceEvent::Retired {
                    cycle,
                    place: PlaceId::from_index(h.dest as usize),
                    seq,
                });
            }
        } else {
            let eff = match fx.token_delay {
                None => h.base_ready,
                Some(d) => h.tdelay + u64::from(d),
            };
            let ready = cycle + eff;
            let tok = self.pool.get_mut(token).expect("firing token is live");
            tok.place = PlaceId::from_index(h.dest as usize);
            tok.arrived_at = cycle;
            tok.ready_at = ready;
            let class = tok.data.as_ref().expect("instruction token has data").op_class();
            if self.cfg.trace {
                seq = tok.seq;
            }
            self.insert_token(plan, token, h.dest, ready);
            // Enter a chain from outside: the destination `(place, class)`
            // is a compile-proven chain head, and the token will be ready
            // at its next sweep slot — park a cursor so that dispatch is
            // pre-resolved instead of re-derived by the generic scan.
            // (Self-validating; a flush or redirect from this very
            // firing's effects just makes the cursor fail validation.)
            if ready <= cycle + 1 {
                let entry = plan.chain_entry_at(h.dest as usize, class.index());
                if entry != u32::MAX {
                    self.park[h.dest as usize] = ChainPark {
                        sb: entry,
                        token,
                        class: class.index() as u32,
                        fire_at: cycle + 1,
                    };
                    self.sched.chains_entered += 1;
                }
            }
        }

        // Reservation-token output arcs.
        if h.has_res {
            for k in 0..model.transitions[tid].reservations.len() {
                let r = model.transitions[tid].reservations[k];
                let expiry = cycle + u64::from(r.expire);
                let rid = self.pool.alloc(TokenKind::Reservation, None, r.place, cycle, expiry);
                // Reservations occupy immediately; they are not deferred
                // even on two-list places, since their only observable
                // effect is stage occupancy (which is always next-state).
                let rp = r.place.index();
                self.live[rp].push(rid);
                self.n_res[rp] += 1;
                self.res_wake[rp] = self.res_wake[rp].min(expiry);
                self.stage_occ[plan.hot_place[rp].stage as usize] += 1;
                self.stats.reservations += 1;
            }
        }

        if has_fx {
            self.apply_fx(model, plan, &mut fx);
        }
        fx.token = None;
        self.fx = fx;
        self.stats.fires[tid] += 1;
        if self.cfg.trace {
            self.trace.push(TraceEvent::Fired {
                cycle,
                transition: TransitionId::from_index(tid),
                seq,
            });
        }
    }

    /// Applies and drains the collected side effects, leaving `fx` empty
    /// (so its buffers can be reused by the next firing).
    fn apply_fx(&mut self, model: &Model<D, R>, plan: &ExecPlan, fx: &mut Fx<D>) {
        let cycle = self.cycle;
        for (place, expire) in fx.reserves.drain(..) {
            // Always-on (res_places is sorted; the search is cheap and
            // reserves are rare): a reservation in a place the expiry
            // scan never visits would occupy its stage forever, which in
            // release would read as a silent wedge, not a bug report.
            assert!(
                plan.res_places.binary_search(&place).is_ok(),
                "Fx::reserve into {place}, which is not a compiled reservation target (no ResArc \
                 or IR ReserveRes op names it) — the expiry scan would never release it"
            );
            let expiry = cycle + u64::from(expire);
            let rid = self.pool.alloc(TokenKind::Reservation, None, place, cycle, expiry);
            let rp = place.index();
            self.live[rp].push(rid);
            self.n_res[rp] += 1;
            self.res_wake[rp] = self.res_wake[rp].min(expiry);
            self.stage_occ[plan.hot_place[rp].stage as usize] += 1;
            self.stats.reservations += 1;
        }
        for (payload, place, delay) in fx.emits.drain(..) {
            let ready = cycle + u64::from(delay);
            let id = self.pool.alloc(TokenKind::Instruction, Some(payload), place, cycle, ready);
            self.insert_token(plan, id, place.index() as u32, ready);
            self.stats.emitted += 1;
        }
        for place in fx.flush_places.drain(..) {
            self.flush_place(model, plan, place);
        }
        if fx.halt {
            self.halted = true;
            fx.halt = false;
        }
    }

    /// Squashes every token in `place`, releasing register reservations.
    fn flush_place(&mut self, model: &Model<D, R>, plan: &ExecPlan, place: PlaceId) {
        let pi = place.index();
        let mut ids = std::mem::take(&mut self.flush_buf);
        ids.clear();
        ids.append(&mut self.live[pi]);
        ids.append(&mut self.pending[pi]);
        // The place is now empty; reset its activity metadata wholesale.
        self.n_instr[pi] = 0;
        self.n_res[pi] = 0;
        self.wake[pi] = u64::MAX;
        self.res_wake[pi] = u64::MAX;
        let stage = plan.hot_place[pi].stage as usize;
        for &id in &ids {
            let mut tok = self.pool.take(id);
            if tok.kind == TokenKind::Instruction {
                self.machine.regs.release(id);
                if let Some(handler) = &model.squash_handler {
                    let data = tok.data.as_mut().expect("instruction token has data");
                    handler(&mut self.machine, data);
                }
            }
            self.stage_occ[stage] -= 1;
            self.stats.flushed += 1;
            if self.cfg.trace {
                self.trace.push(TraceEvent::Flushed { cycle: self.cycle, place, seq: tok.seq });
            }
        }
        ids.clear();
        self.flush_buf = ids;
    }

    /// Executes the instruction-independent sub-net (all sources).
    fn run_sources(&mut self, model: &Model<D, R>, plan: &ExecPlan) {
        let cycle = self.cycle;
        for si in 0..plan.hot_source.len() {
            let hs = plan.hot_source[si];
            let hp = plan.hot_place[hs.dest as usize];
            for _ in 0..hs.width {
                if !hp.is_end && self.stage_occ[hp.stage as usize] >= hp.cap {
                    break;
                }
                if let Some(guard) = &model.sources[si].guard {
                    if !guard(&self.machine) {
                        break;
                    }
                }
                let mut fx = std::mem::replace(&mut self.fx, Fx::new(None));
                debug_assert!(
                    fx.emits.is_empty()
                        && fx.flush_places.is_empty()
                        && fx.reserves.is_empty()
                        && !fx.halt
                );
                fx.token = None;
                fx.token_delay = None;
                let payload = {
                    let produce = &model.sources[si].produce;
                    produce(&mut self.machine, &mut fx)
                };
                let produced = payload.is_some();
                if let Some(data) = payload {
                    let eff = match fx.token_delay {
                        None => hp.delay,
                        Some(d) => u64::from(d),
                    };
                    let ready = cycle + eff;
                    let id = self.pool.alloc(
                        TokenKind::Instruction,
                        Some(data),
                        PlaceId::from_index(hs.dest as usize),
                        cycle,
                        ready,
                    );
                    self.insert_token(plan, id, hs.dest, ready);
                    // A generated token enters a chain the same way a
                    // fired one does: when the destination `(place,
                    // class)` is a compile-proven chain head and the
                    // token is ready at its next sweep slot, park a
                    // cursor pre-resolving that dispatch.
                    if ready <= cycle + 1 {
                        let class = self
                            .pool
                            .get(id)
                            .expect("just allocated")
                            .data
                            .as_ref()
                            .expect("instruction token has data")
                            .op_class();
                        let entry = plan.chain_entry_at(hs.dest as usize, class.index());
                        if entry != u32::MAX {
                            self.park[hs.dest as usize] = ChainPark {
                                sb: entry,
                                token: id,
                                class: class.index() as u32,
                                fire_at: cycle + 1,
                            };
                            self.sched.chains_entered += 1;
                        }
                    }
                    self.stats.generated += 1;
                    self.stats.source_fires[si] += 1;
                    if self.cfg.trace {
                        let seq = self.pool.get(id).expect("just allocated").seq();
                        self.trace.push(TraceEvent::Generated {
                            cycle,
                            source: SourceId::from_index(si),
                            seq,
                        });
                    }
                }
                if !fx.emits.is_empty()
                    || !fx.flush_places.is_empty()
                    || !fx.reserves.is_empty()
                    || fx.halt
                {
                    self.apply_fx(model, plan, &mut fx);
                }
                self.fx = fx;
                if self.halted || !produced {
                    break;
                }
            }
            if self.halted {
                break;
            }
        }
    }
}

impl<D: InstrData, R> std::fmt::Debug for Engine<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cycle", &self.st.cycle)
            .field("halted", &self.st.halted)
            .field("live_tokens", &self.st.pool.live())
            .finish()
    }
}
