//! Declarative pipeline specification — the model-*authoring* layer.
//!
//! [`crate::builder::ModelBuilder`] is the RCPN assembly language: every
//! transition is wired by hand with its own guard and action closures.
//! That is flexible but verbose — real processor models repeat the same
//! ready/acquire/flush wiring once per operation class. `PipelineSpec` is
//! the layer the paper's *generic modeling* claim asks for: a processor is
//! described once as a pipeline — stages, per-class **paths** through
//! them, an operand read/forwarding policy, redirect/flush rules — and
//! [`PipelineSpec::lower`] *generates* the RCPN model, synthesizing the
//! per-class guards and actions from a small policy pair:
//!
//! * [`OperandPolicy`] — how a path's read step checks operand
//!   availability (register file or forwarding latches) and latches
//!   values / reserves destinations;
//! * [`HazardPolicy`] — how a redirect rule's resolve point maps to the
//!   ordered list of squashed places ([`SquashOrder`] covers the common
//!   front-first / nearest-first conventions).
//!
//! Lowering is deterministic: stages, places, classes, transitions and
//! sources are registered in declaration order, so a spec-generated model
//! is bit-identical — traces, statistics, analysis — to an equivalent
//! hand-wired `ModelBuilder` model that declares its entities in the same
//! order (the processor crates pin exactly this with differential tests).
//!
//! # Example
//!
//! A two-class pipeline in a page of description:
//!
//! ```
//! use rcpn::prelude::*;
//! use rcpn::spec::{Forward, OperandPolicy, PipelineSpec};
//!
//! #[derive(Debug)]
//! struct Tok {
//!     class: OpClassId,
//! }
//! impl InstrData for Tok {
//!     fn op_class(&self) -> OpClassId { self.class }
//! }
//!
//! /// Tokens carry no registers: always ready, nothing to latch.
//! struct NoOperands;
//! impl<R> OperandPolicy<Tok, R> for NoOperands {
//!     fn ready(&self, _m: &Machine<R>, _t: &Tok, _fwd: &[PlaceId]) -> bool { true }
//!     fn acquire(&self, _m: &mut Machine<R>, _t: &mut Tok, _fx: &mut Fx<Tok>, _f: &[PlaceId]) {}
//! }
//!
//! # fn main() -> Result<(), rcpn::error::BuildError> {
//! let mut s = PipelineSpec::<Tok, u64>::new("demo");
//! s.pipe("F", 1).pipe("D", 1).pipe("E", 1);
//! s.forwards(&["E"]);
//! s.operand_policy(NoOperands);
//! s.class("Short").step("D").read(Forward::All).step("end");
//! s.class("Long").step("D").read(Forward::All).step("E").step("end");
//! s.source("fetch").to("F").produce(|m: &mut Machine<u64>, _fx| {
//!     m.res += 1;
//!     Some(Tok { class: OpClassId::from_index((m.res % 2) as usize) })
//! });
//! let model = s.lower()?;
//! assert_eq!(model.op_class_count(), 2);
//! let mut engine = Engine::new(model, Machine::new(RegisterFile::new(), 0u64));
//! engine.run(100);
//! assert!(engine.stats().retired > 0);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use crate::builder::ModelBuilder;
use crate::error::BuildError;
use crate::ids::PlaceId;
use crate::ir::{self, MicroOp, Program};
use crate::model::{Fx, Machine, Model, SourceAction, SourceGuard};
use crate::token::InstrData;

/// How [`PipelineSpec::lower`] represents the guards/actions it
/// *synthesizes* (read steps). User-supplied closures are always kept as
/// closures; this knob only selects the representation of synthesized
/// behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lowering {
    /// Lower synthesized read steps to micro-op IR ([`crate::ir`])
    /// whenever the [`OperandPolicy`] opts in
    /// ([`OperandPolicy::lowers_to_ir`]) and the forwarding set fits the
    /// place bitmask; fall back to closures otherwise.
    #[default]
    Auto,
    /// Force closure lowering everywhere — the pre-IR representation,
    /// kept as the compile-time differential oracle: an `Auto`-lowered
    /// model must simulate bit-identically to its `Closures`-lowered
    /// twin.
    Closures,
}

/// How a path's read step checks and latches operands.
///
/// The spec layer synthesizes a read step's guard from
/// [`OperandPolicy::ready`] and its action from [`OperandPolicy::acquire`];
/// the `fwd` slice is the resolved forwarding set ([`PipelineSpec::forwards`]
/// when the step reads with [`Forward::All`], empty for [`Forward::None`]).
pub trait OperandPolicy<D, R>: Send + Sync {
    /// True when the token's operands can all be supplied now (register
    /// file or a forwarding latch in `fwd`) and its destinations reserved.
    fn ready(&self, m: &Machine<R>, t: &D, fwd: &[PlaceId]) -> bool;
    /// Latches operand values and reserves destinations. Only called when
    /// [`OperandPolicy::ready`] held in the same cycle.
    fn acquire(&self, m: &mut Machine<R>, t: &mut D, fx: &mut Fx<D>, fwd: &[PlaceId]);
    /// Opt-in to micro-op IR lowering ([`crate::ir`]): return `true` iff
    /// this policy's `ready`/`acquire` are *exactly* the standard
    /// scoreboard discipline the `CheckReady`/`AcquireOperands` micro-ops
    /// implement over the token's [`crate::token::InstrData`] operand
    /// views — every source obtainable (register file, or forwarded from
    /// a writer resident in the forwarding set) and every destination
    /// reservable; acquire latches each source from its best source and
    /// reserves the destinations. The spec layer then compiles read
    /// steps to IR instead of closures; the oracle tests pin the two
    /// representations bit-identical. Defaults to `false`.
    fn lowers_to_ir(&self) -> bool {
        false
    }
}

/// How a redirect rule's resolve point maps to squashed places.
///
/// [`PipelineSpec::redirect`] hands the policy the pipeline places
/// strictly upstream of the resolve point, in pipeline (declaration)
/// order; the policy returns the list in the order flushes are issued.
pub trait HazardPolicy: Send + Sync {
    /// Chooses and orders the squash list from the upstream places.
    fn squash_list(&self, upstream: &[PlaceId]) -> Vec<PlaceId>;
}

/// The two stock [`HazardPolicy`] orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashOrder {
    /// Squash every upstream place, pipeline-front first (fetch end
    /// first) — the StrongARM convention.
    FrontFirst,
    /// Squash every upstream place, nearest to the resolve point first —
    /// the XScale convention.
    NearestFirst,
}

impl HazardPolicy for SquashOrder {
    fn squash_list(&self, upstream: &[PlaceId]) -> Vec<PlaceId> {
        let mut list = upstream.to_vec();
        if matches!(self, SquashOrder::NearestFirst) {
            list.reverse();
        }
        list
    }
}

/// Forwarding selection of a read step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Forward {
    /// Operands may come from any latch named in [`PipelineSpec::forwards`].
    All,
    /// Operands come from the register file only.
    None,
}

/// The resolved surroundings of one path step, passed to `*_ctx` closures.
///
/// Specs are written in terms of latch *names*; place ids exist only after
/// lowering. Closures that need them — a custom guard probing the
/// forwarding latches, an action flushing the front end or emitting a
/// micro-op back into its own place — receive this resolved context
/// instead of capturing ids they cannot know yet.
#[derive(Debug, Clone)]
pub struct StepCtx {
    /// The resolved forwarding set ([`PipelineSpec::forwards`], or empty
    /// for a [`Forward::None`] read step).
    pub fwd: Vec<PlaceId>,
    /// The resolved squash list of the step's redirect rule
    /// ([`PathSpec::flushes`]; empty when the step has no rule).
    pub flush: Vec<PlaceId>,
    /// The place the step consumes its token from.
    pub from: PlaceId,
    /// The step's destination place.
    pub to: PlaceId,
}

type CtxGuard<D, R> = Arc<dyn Fn(&Machine<R>, &D, &StepCtx) -> bool + Send + Sync>;
type CtxAction<D, R> = Arc<dyn Fn(&mut Machine<R>, &mut D, &mut Fx<D>, &StepCtx) + Send + Sync>;
type PlainAction<D, R> = Arc<dyn Fn(&mut Machine<R>, &mut D, &mut Fx<D>) + Send + Sync>;
type Squash<D, R> = Box<dyn Fn(&mut Machine<R>, &mut D) + Send + Sync>;

/// One transition-to-be on a class path.
struct StepSpec<D, R> {
    name: Option<String>,
    to: String,
    /// Whether the step moves the path's current place forward
    /// ([`PathSpec::step`]) or branches off it ([`PathSpec::alt`]).
    advances: bool,
    priority: Option<u32>,
    read: Option<Forward>,
    read_then: Option<PlainAction<D, R>>,
    guard: Option<CtxGuard<D, R>>,
    action: Option<CtxAction<D, R>>,
    /// Stable registry keys for the step's closures, when supplied through
    /// the `*_named` modifiers (see [`crate::artifact`]).
    guard_key: Option<String>,
    act_key: Option<String>,
    read_then_key: Option<String>,
    flush_rule: Option<String>,
    reads_forward: bool,
    reserve: Vec<(String, u32)>,
    delay: u32,
    /// Guard on the token's pre-resolved condition ([`PathSpec::when_cond`]).
    when_cond: Option<bool>,
    /// Publish destination results after the action ([`PathSpec::publish`]).
    publish: bool,
    /// Annul the token before the action ([`PathSpec::annuls`]).
    annuls: bool,
    /// Flush the bound rule's squash list unconditionally on firing
    /// ([`PathSpec::flushes_always`]).
    static_flush: bool,
}

/// One operation class's path through the pipeline; created by
/// [`PipelineSpec::class`].
///
/// A path is an ordered chain of steps. [`PathSpec::step`] appends a
/// transition from the current place to a destination latch and advances
/// the chain; [`PathSpec::alt`] appends an alternative transition out of
/// the current place without advancing (use [`PathSpec::priority`] to
/// disambiguate alternatives). Modifier methods apply to the most
/// recently appended step.
pub struct PathSpec<D, R> {
    name: String,
    start: Option<String>,
    steps: Vec<StepSpec<D, R>>,
}

impl<D, R> PathSpec<D, R> {
    fn new(name: &str) -> Self {
        PathSpec { name: name.to_string(), start: None, steps: Vec::new() }
    }

    /// Overrides the latch the path starts at (defaults to the first
    /// declared latch — where the fetch source deposits tokens).
    pub fn start(&mut self, latch: &str) -> &mut Self {
        self.start = Some(latch.to_string());
        self
    }

    /// Appends a step to latch `to` (`"end"` targets the virtual end
    /// place) and advances the chain: the next step consumes from `to`.
    pub fn step(&mut self, to: &str) -> &mut Self {
        self.push(to, true)
    }

    /// Appends an *alternative* step out of the current chain place
    /// without advancing it — a second way tokens may leave the place
    /// (condition-failed skips, forwarding variants).
    pub fn alt(&mut self, to: &str) -> &mut Self {
        self.push(to, false)
    }

    fn push(&mut self, to: &str, advances: bool) -> &mut Self {
        self.steps.push(StepSpec {
            name: None,
            to: to.to_string(),
            advances,
            priority: None,
            read: None,
            read_then: None,
            guard: None,
            action: None,
            guard_key: None,
            act_key: None,
            read_then_key: None,
            flush_rule: None,
            reads_forward: false,
            reserve: Vec::new(),
            delay: 0,
            when_cond: None,
            publish: false,
            annuls: false,
            static_flush: false,
        });
        self
    }

    fn last(&mut self) -> &mut StepSpec<D, R> {
        self.steps.last_mut().unwrap_or_else(|| {
            panic!("path {:?}: call step()/alt() before step modifiers", self.name)
        })
    }

    /// Names the last step's transition (defaults to a generated unique
    /// name). Useful when tests look transitions up by name.
    pub fn name(&mut self, name: &str) -> &mut Self {
        self.last().name = Some(name.to_string());
        self
    }

    /// Sets the last step's arc priority (lower fires first).
    pub fn priority(&mut self, priority: u32) -> &mut Self {
        self.last().priority = Some(priority);
        self
    }

    /// Marks the last step as the path's operand-*read* step: its guard
    /// and action are synthesized from the spec's [`OperandPolicy`], and
    /// [`Forward::All`] additionally declares `reads_state` arcs on every
    /// forwarding latch (required for correct two-list analysis).
    pub fn read(&mut self, forward: Forward) -> &mut Self {
        self.last().read = Some(forward);
        self
    }

    /// Like [`PathSpec::read`], with an extra action executed right after
    /// the synthesized acquire (e.g. address pre-computation at issue).
    pub fn read_then(
        &mut self,
        forward: Forward,
        then: impl Fn(&mut Machine<R>, &mut D, &mut Fx<D>) + Send + Sync + 'static,
    ) -> &mut Self {
        let s = self.last();
        s.read = Some(forward);
        s.read_then = Some(Arc::new(then));
        s.read_then_key = None;
        self
    }

    /// [`PathSpec::read_then`] plus a stable registry key for the extra
    /// action, keeping the lowered model serializable (see
    /// [`crate::artifact`]).
    pub fn read_then_named(
        &mut self,
        forward: Forward,
        key: &str,
        then: impl Fn(&mut Machine<R>, &mut D, &mut Fx<D>) + Send + Sync + 'static,
    ) -> &mut Self {
        let s = self.last();
        s.read = Some(forward);
        s.read_then = Some(Arc::new(then));
        s.read_then_key = Some(key.to_string());
        self
    }

    /// Sets a custom guard on the last step (mutually exclusive with
    /// [`PathSpec::read`], which synthesizes the guard).
    pub fn guard(
        &mut self,
        guard: impl Fn(&Machine<R>, &D) -> bool + Send + Sync + 'static,
    ) -> &mut Self {
        let s = self.last();
        s.guard = Some(Arc::new(move |m, t, _cx| guard(m, t)));
        s.guard_key = None;
        self
    }

    /// [`PathSpec::guard`] plus a stable registry key, keeping the lowered
    /// model serializable (see [`crate::artifact`]).
    pub fn guard_named(
        &mut self,
        key: &str,
        guard: impl Fn(&Machine<R>, &D) -> bool + Send + Sync + 'static,
    ) -> &mut Self {
        let s = self.last();
        s.guard = Some(Arc::new(move |m, t, _cx| guard(m, t)));
        s.guard_key = Some(key.to_string());
        self
    }

    /// Like [`PathSpec::guard`], with the resolved [`StepCtx`] available.
    pub fn guard_ctx(
        &mut self,
        guard: impl Fn(&Machine<R>, &D, &StepCtx) -> bool + Send + Sync + 'static,
    ) -> &mut Self {
        let s = self.last();
        s.guard = Some(Arc::new(guard));
        s.guard_key = None;
        self
    }

    /// [`PathSpec::guard_ctx`] plus a stable registry key, keeping the
    /// lowered model serializable (see [`crate::artifact`]).
    pub fn guard_ctx_named(
        &mut self,
        key: &str,
        guard: impl Fn(&Machine<R>, &D, &StepCtx) -> bool + Send + Sync + 'static,
    ) -> &mut Self {
        let s = self.last();
        s.guard = Some(Arc::new(guard));
        s.guard_key = Some(key.to_string());
        self
    }

    /// Sets a custom action on the last step.
    pub fn act(
        &mut self,
        action: impl Fn(&mut Machine<R>, &mut D, &mut Fx<D>) + Send + Sync + 'static,
    ) -> &mut Self {
        let s = self.last();
        s.action = Some(Arc::new(move |m, t, fx, _cx| action(m, t, fx)));
        s.act_key = None;
        self
    }

    /// [`PathSpec::act`] plus a stable registry key, keeping the lowered
    /// model serializable (see [`crate::artifact`]).
    pub fn act_named(
        &mut self,
        key: &str,
        action: impl Fn(&mut Machine<R>, &mut D, &mut Fx<D>) + Send + Sync + 'static,
    ) -> &mut Self {
        let s = self.last();
        s.action = Some(Arc::new(move |m, t, fx, _cx| action(m, t, fx)));
        s.act_key = Some(key.to_string());
        self
    }

    /// Like [`PathSpec::act`], with the resolved [`StepCtx`] available
    /// (forwarding set, flush list, own places).
    pub fn act_ctx(
        &mut self,
        action: impl Fn(&mut Machine<R>, &mut D, &mut Fx<D>, &StepCtx) + Send + Sync + 'static,
    ) -> &mut Self {
        let s = self.last();
        s.action = Some(Arc::new(action));
        s.act_key = None;
        self
    }

    /// [`PathSpec::act_ctx`] plus a stable registry key, keeping the
    /// lowered model serializable (see [`crate::artifact`]).
    pub fn act_ctx_named(
        &mut self,
        key: &str,
        action: impl Fn(&mut Machine<R>, &mut D, &mut Fx<D>, &StepCtx) + Send + Sync + 'static,
    ) -> &mut Self {
        let s = self.last();
        s.action = Some(Arc::new(action));
        s.act_key = Some(key.to_string());
        self
    }

    /// Binds the last step to a redirect rule: the rule's resolved squash
    /// list becomes [`StepCtx::flush`] for the step's closures.
    pub fn flushes(&mut self, rule: &str) -> &mut Self {
        self.last().flush_rule = Some(rule.to_string());
        self
    }

    /// Binds the last step to a redirect rule *and* issues the rule's
    /// flushes unconditionally every time the step fires — a static
    /// redirect whose squash list is pure data. Lowers to an
    /// [`MicroOp::EmitRedirect`] under [`Lowering::Auto`]; the
    /// closure-lowered twin flushes the same places in the same order.
    /// Mutually exclusive with [`PathSpec::read`].
    pub fn flushes_always(&mut self, rule: &str) -> &mut Self {
        let s = self.last();
        s.flush_rule = Some(rule.to_string());
        s.static_flush = true;
        self
    }

    /// Guards the last step on the token's pre-resolved condition
    /// ([`crate::token::InstrData::cond_passes`]`() == expect`). Lowers
    /// to an [`MicroOp::CheckCond`] under [`Lowering::Auto`]. Only
    /// meaningful for payloads that resolve their condition into the
    /// token; conditions that read machine state (e.g. ARM's CPSR) must
    /// use [`PathSpec::guard`] instead. Mutually exclusive with
    /// [`PathSpec::guard`] and [`PathSpec::read`].
    pub fn when_cond(&mut self, expect: bool) -> &mut Self {
        self.last().when_cond = Some(expect);
        self
    }

    /// Publishes every destination operand's latched value to the
    /// forwarding scoreboard after the last step's action runs — the
    /// declarative form of a simple execute stage's "make the result
    /// bypassable" epilogue. Lowers to an [`MicroOp::Publish`] under
    /// [`Lowering::Auto`], so a step whose value is already latched
    /// needs no closure at all. Mutually exclusive with
    /// [`PathSpec::read`].
    pub fn publish(&mut self) -> &mut Self {
        self.last().publish = true;
        self
    }

    /// Annuls the firing token before the last step's action runs: the
    /// payload is marked annulled and every register reservation it
    /// holds is released. Lowers to an [`MicroOp::Annul`] under
    /// [`Lowering::Auto`]; any [`PathSpec::act`] on the step runs after
    /// the annul (as a hook) for model-specific bookkeeping. Mutually
    /// exclusive with [`PathSpec::read`].
    pub fn annuls(&mut self) -> &mut Self {
        self.last().annuls = true;
        self
    }

    /// Declares `reads_state` arcs from every forwarding latch on the
    /// last step — for custom steps whose guard probes the forwarding set
    /// (read steps with [`Forward::All`] get this automatically).
    pub fn reads_forward(&mut self) -> &mut Self {
        self.last().reads_forward = true;
        self
    }

    /// Adds a reservation-token output arc to the last step: firing
    /// occupies `latch`'s stage with a dataless token for `expire` cycles.
    pub fn reserve(&mut self, latch: &str, expire: u32) -> &mut Self {
        self.last().reserve.push((latch.to_string(), expire));
        self
    }

    /// Sets the last step's execution delay.
    pub fn delay(&mut self, cycles: u32) -> &mut Self {
        self.last().delay = cycles;
        self
    }
}

impl<D, R> std::fmt::Debug for PathSpec<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathSpec")
            .field("name", &self.name)
            .field("steps", &self.steps.len())
            .finish()
    }
}

/// A source-transition declaration; created by [`PipelineSpec::source`].
pub struct SourceSpec<D, R> {
    name: String,
    to: Option<String>,
    width: u32,
    guard: Option<SourceGuard<R>>,
    produce: Option<SourceAction<D, R>>,
    guard_key: Option<String>,
    produce_key: Option<String>,
}

impl<D, R> SourceSpec<D, R> {
    /// Sets the latch generated tokens are deposited into.
    pub fn to(&mut self, latch: &str) -> &mut Self {
        self.to = Some(latch.to_string());
        self
    }

    /// Sets the fetch width (tokens per cycle); defaults to 1.
    pub fn width(&mut self, max_per_cycle: u32) -> &mut Self {
        self.width = max_per_cycle;
        self
    }

    /// Sets the guard; the source fires only while it holds.
    pub fn guard(
        &mut self,
        guard: impl Fn(&Machine<R>) -> bool + Send + Sync + 'static,
    ) -> &mut Self {
        self.guard = Some(Box::new(guard));
        self.guard_key = None;
        self
    }

    /// [`SourceSpec::guard`] plus a stable registry key, keeping the
    /// lowered model serializable (see [`crate::artifact`]).
    pub fn guard_named(
        &mut self,
        key: &str,
        guard: impl Fn(&Machine<R>) -> bool + Send + Sync + 'static,
    ) -> &mut Self {
        self.guard = Some(Box::new(guard));
        self.guard_key = Some(key.to_string());
        self
    }

    /// Sets the producer: the payload of a new token, or `None` to stall.
    pub fn produce(
        &mut self,
        produce: impl Fn(&mut Machine<R>, &mut Fx<D>) -> Option<D> + Send + Sync + 'static,
    ) -> &mut Self {
        self.produce = Some(Box::new(produce));
        self.produce_key = None;
        self
    }

    /// [`SourceSpec::produce`] plus a stable registry key, keeping the
    /// lowered model serializable (see [`crate::artifact`]).
    pub fn produce_named(
        &mut self,
        key: &str,
        produce: impl Fn(&mut Machine<R>, &mut Fx<D>) -> Option<D> + Send + Sync + 'static,
    ) -> &mut Self {
        self.produce = Some(Box::new(produce));
        self.produce_key = Some(key.to_string());
        self
    }
}

impl<D, R> std::fmt::Debug for SourceSpec<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SourceSpec").field("name", &self.name).field("to", &self.to).finish()
    }
}

/// How a redirect rule's squash list is specified.
enum Redirect {
    /// Everything strictly upstream of the named latch, ordered by the
    /// spec's [`HazardPolicy`].
    UpstreamOf(String),
    /// An explicit, ordered latch list.
    Explicit(Vec<String>),
}

/// A declarative pipeline description that *generates* an RCPN [`Model`].
///
/// See the [module documentation](self) for the overall shape and an
/// example; [`PipelineSpec::lower`] documents the generated structure.
pub struct PipelineSpec<D, R> {
    name: String,
    stages: Vec<(String, u32)>,
    latches: Vec<(String, String, Option<u32>)>,
    forwards: Vec<String>,
    redirects: Vec<(String, Redirect)>,
    hazard: Box<dyn HazardPolicy>,
    policy: Option<Arc<dyn OperandPolicy<D, R>>>,
    classes: Vec<PathSpec<D, R>>,
    sources: Vec<SourceSpec<D, R>>,
    squash: Option<Squash<D, R>>,
    squash_key: Option<String>,
    lowering: Lowering,
}

impl<D, R> PipelineSpec<D, R> {
    /// Creates an empty spec named `name` (the name appears in lowering
    /// diagnostics). The hazard policy defaults to
    /// [`SquashOrder::NearestFirst`].
    pub fn new(name: &str) -> Self {
        PipelineSpec {
            name: name.to_string(),
            stages: Vec::new(),
            latches: Vec::new(),
            forwards: Vec::new(),
            redirects: Vec::new(),
            hazard: Box::new(SquashOrder::NearestFirst),
            policy: None,
            classes: Vec::new(),
            sources: Vec::new(),
            squash: None,
            squash_key: None,
            lowering: Lowering::Auto,
        }
    }

    /// Selects how synthesized read steps are represented; defaults to
    /// [`Lowering::Auto`] (micro-op IR where the policy permits). Force
    /// [`Lowering::Closures`] to build the closure-dispatch oracle twin.
    pub fn lowering(&mut self, mode: Lowering) -> &mut Self {
        self.lowering = mode;
        self
    }

    /// Declares a pipeline stage (a storage element with a capacity).
    pub fn stage(&mut self, name: &str, capacity: u32) -> &mut Self {
        self.stages.push((name.to_string(), capacity));
        self
    }

    /// Declares a latch: an instruction state (place) bound to `stage`,
    /// with the default one-cycle residency.
    pub fn latch(&mut self, name: &str, stage: &str) -> &mut Self {
        self.latches.push((name.to_string(), stage.to_string(), None));
        self
    }

    /// Declares a latch with an explicit residency delay.
    pub fn latch_with_delay(&mut self, name: &str, stage: &str, delay: u32) -> &mut Self {
        self.latches.push((name.to_string(), stage.to_string(), Some(delay)));
        self
    }

    /// Declares a stage together with a same-named latch on it — the
    /// common case where every stage holds exactly one instruction state.
    pub fn pipe(&mut self, name: &str, capacity: u32) -> &mut Self {
        self.stage(name, capacity).latch(name, name)
    }

    /// Declares the forwarding set: the latches whose resident results
    /// operand reads may bypass the register file for. Order is
    /// significant (policies probe the latches in this order).
    pub fn forwards(&mut self, latches: &[&str]) -> &mut Self {
        self.forwards = latches.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Installs the operand read/forwarding policy used by
    /// [`PathSpec::read`] steps.
    pub fn operand_policy(&mut self, policy: impl OperandPolicy<D, R> + 'static) -> &mut Self {
        self.policy = Some(Arc::new(policy));
        self
    }

    /// Installs the control-hazard policy that orders
    /// [`PipelineSpec::redirect`] squash lists. Defaults to
    /// [`SquashOrder::NearestFirst`].
    pub fn hazard_policy(&mut self, policy: impl HazardPolicy + 'static) -> &mut Self {
        self.hazard = Box::new(policy);
        self
    }

    /// Declares a redirect rule: when a step bound to `rule` (via
    /// [`PathSpec::flushes`]) redirects the front end, every latch
    /// declared strictly before `resolve_from` — the place such steps
    /// consume from — is squashed, in the order chosen by the spec's
    /// [`HazardPolicy`].
    pub fn redirect(&mut self, rule: &str, resolve_from: &str) -> &mut Self {
        self.redirects.push((rule.to_string(), Redirect::UpstreamOf(resolve_from.to_string())));
        self
    }

    /// Declares a redirect rule with an explicit, ordered squash list
    /// (bypasses the [`HazardPolicy`]).
    pub fn redirect_explicit(&mut self, rule: &str, squash: &[&str]) -> &mut Self {
        self.redirects.push((
            rule.to_string(),
            Redirect::Explicit(squash.iter().map(|s| s.to_string()).collect()),
        ));
        self
    }

    /// Declares an operation class and returns its path for step-by-step
    /// description. Classes are registered in declaration order (their
    /// [`crate::ids::OpClassId`]s follow it).
    pub fn class(&mut self, name: &str) -> &mut PathSpec<D, R> {
        self.classes.push(PathSpec::new(name));
        self.classes.last_mut().expect("just pushed")
    }

    /// Declares a source transition (the instruction-independent
    /// sub-net; e.g. fetch) and returns it for configuration.
    pub fn source(&mut self, name: &str) -> &mut SourceSpec<D, R> {
        self.sources.push(SourceSpec {
            name: name.to_string(),
            to: None,
            width: 1,
            guard: None,
            produce: None,
            guard_key: None,
            produce_key: None,
        });
        self.sources.last_mut().expect("just pushed")
    }

    /// Installs a cleanup hook called for every instruction token removed
    /// by a flush (see [`crate::model::SquashHandler`]).
    pub fn on_squash(
        &mut self,
        handler: impl Fn(&mut Machine<R>, &mut D) + Send + Sync + 'static,
    ) -> &mut Self {
        self.squash = Some(Box::new(handler));
        self.squash_key = None;
        self
    }

    /// [`PipelineSpec::on_squash`] plus a stable registry key, keeping the
    /// lowered model serializable (see [`crate::artifact`]).
    pub fn on_squash_named(
        &mut self,
        key: &str,
        handler: impl Fn(&mut Machine<R>, &mut D) + Send + Sync + 'static,
    ) -> &mut Self {
        self.squash = Some(Box::new(handler));
        self.squash_key = Some(key.to_string());
        self
    }

    /// A deterministic structural hash of the description: everything that
    /// shapes the lowered model — name, stages, latches, forwarding set,
    /// resolved redirect squash lists (so the [`HazardPolicy`] choice is
    /// covered), every path step with its modifiers and registry keys,
    /// sources, squash hook, and the [`Lowering`] mode.
    ///
    /// This is the *spec hash* the artifact cache keys on (see
    /// [`crate::artifact`]): two specs hashing equal are assumed to lower
    /// to interchangeable models. Opaque closure *behavior* cannot be
    /// hashed — closures contribute only their presence and registry key,
    /// so specs that differ solely in the body of an unnamed closure hash
    /// equal (such models are unserializable anyway, and the cache refuses
    /// them before this matters).
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::artifact::Fnv::new();
        h.str("rcpn.spec.v1");
        h.str(&self.name);
        h.usize(self.stages.len());
        for (name, cap) in &self.stages {
            h.str(name);
            h.u32(*cap);
        }
        h.usize(self.latches.len());
        for (name, stage, delay) in &self.latches {
            h.str(name);
            h.str(stage);
            h.u32(delay.map_or(u32::MAX, |d| d));
        }
        h.usize(self.forwards.len());
        for f in &self.forwards {
            h.str(f);
        }
        h.usize(self.redirects.len());
        for (rule, redirect) in &self.redirects {
            h.str(rule);
            match redirect {
                Redirect::Explicit(names) => {
                    h.u8(0);
                    h.usize(names.len());
                    for n in names {
                        h.str(n);
                    }
                }
                Redirect::UpstreamOf(from) => {
                    // Resolve through the hazard policy exactly as lower()
                    // does (latch i becomes place i+1; place 0 is `end`),
                    // so the policy's ordering choice lands in the hash.
                    h.u8(1);
                    h.str(from);
                    if let Some(idx) = self.latches.iter().position(|(n, _, _)| n == from) {
                        let upstream: Vec<PlaceId> =
                            (0..idx).map(|i| PlaceId::from_index(i + 1)).collect();
                        let list = self.hazard.squash_list(&upstream);
                        h.usize(list.len());
                        for p in list {
                            h.usize(p.index());
                        }
                    }
                }
            }
        }
        h.u8(match (self.policy.as_ref().map(|p| p.lowers_to_ir()), self.lowering) {
            (None, _) => 0,
            (Some(false), _) => 1,
            (Some(true), Lowering::Auto) => 2,
            (Some(true), Lowering::Closures) => 3,
        });
        h.u8(match self.lowering {
            Lowering::Auto => 0,
            Lowering::Closures => 1,
        });
        h.usize(self.classes.len());
        for class in &self.classes {
            h.str(&class.name);
            h.opt_str(class.start.as_deref());
            h.usize(class.steps.len());
            for s in &class.steps {
                h.opt_str(s.name.as_deref());
                h.str(&s.to);
                h.bool(s.advances);
                h.u32(s.priority.map_or(u32::MAX, |p| p));
                h.u8(match s.read {
                    None => 0,
                    Some(Forward::All) => 1,
                    Some(Forward::None) => 2,
                });
                h.bool(s.read_then.is_some());
                h.opt_str(s.read_then_key.as_deref());
                h.bool(s.guard.is_some());
                h.opt_str(s.guard_key.as_deref());
                h.bool(s.action.is_some());
                h.opt_str(s.act_key.as_deref());
                h.opt_str(s.flush_rule.as_deref());
                h.bool(s.reads_forward);
                h.usize(s.reserve.len());
                for (latch, expire) in &s.reserve {
                    h.str(latch);
                    h.u32(*expire);
                }
                h.u32(s.delay);
                h.u8(match s.when_cond {
                    None => 0,
                    Some(false) => 1,
                    Some(true) => 2,
                });
                h.bool(s.publish);
                h.bool(s.annuls);
                h.bool(s.static_flush);
            }
        }
        h.usize(self.sources.len());
        for src in &self.sources {
            h.str(&src.name);
            h.opt_str(src.to.as_deref());
            h.u32(src.width);
            h.bool(src.guard.is_some());
            h.opt_str(src.guard_key.as_deref());
            h.bool(src.produce.is_some());
            h.opt_str(src.produce_key.as_deref());
        }
        h.bool(self.squash.is_some());
        h.opt_str(self.squash_key.as_deref());
        h.finish()
    }
}

impl<D: InstrData, R: 'static> PipelineSpec<D, R> {
    /// Lowers the spec into a validated RCPN [`Model`], synthesizing the
    /// read-step guards/actions from the [`OperandPolicy`] and resolving
    /// redirect rules through the [`HazardPolicy`].
    ///
    /// Generated structure, in registration order (this order is the
    /// bit-identity contract with equivalently hand-wired models): all
    /// stages, then all latches (places), then one class sub-net per
    /// [`PipelineSpec::class`] in declaration order, then each class's
    /// steps in path order, then the sources.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Spec`] for spec-level mistakes (unknown
    /// latch/stage/rule names, a read step without an operand policy,
    /// a read step combined with a custom guard, a source without
    /// destination or producer), and propagates every structural
    /// [`ModelBuilder::build`] validation error.
    pub fn lower(self) -> Result<Model<D, R>, BuildError> {
        let PipelineSpec {
            name: spec_name,
            stages,
            latches,
            forwards,
            redirects,
            hazard,
            policy,
            classes,
            sources,
            squash,
            squash_key,
            lowering,
        } = self;
        let err = |detail: String| BuildError::Spec { spec: spec_name.clone(), detail };

        let mut b = ModelBuilder::<D, R>::new();
        let mut stage_ids = Vec::new();
        for (name, cap) in &stages {
            stage_ids.push((name.clone(), b.stage(name, *cap)));
        }
        let mut latch_ids: Vec<(String, PlaceId)> = Vec::new();
        for (name, stage, delay) in &latches {
            let &(_, sid) = stage_ids.iter().find(|(n, _)| n == stage).ok_or_else(|| {
                err(format!("latch {name:?} references undeclared stage {stage:?}"))
            })?;
            let pid = match delay {
                Some(d) => b.place_with_delay(name, sid, *d),
                None => b.place(name, sid),
            };
            latch_ids.push((name.clone(), pid));
        }
        let end = b.end_place();
        let resolve = |name: &str| -> Result<PlaceId, BuildError> {
            if name == "end" {
                return Ok(end);
            }
            latch_ids
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, p)| p)
                .ok_or_else(|| err(format!("undeclared latch {name:?}")))
        };

        let mut fwd = Vec::new();
        for f in &forwards {
            fwd.push(resolve(f)?);
        }

        let mut rules: Vec<(String, Vec<PlaceId>)> = Vec::new();
        for (rname, redirect) in &redirects {
            let list = match redirect {
                Redirect::Explicit(names) => {
                    names.iter().map(|n| resolve(n)).collect::<Result<Vec<_>, _>>()?
                }
                Redirect::UpstreamOf(from) => {
                    let idx = latch_ids.iter().position(|(n, _)| n == from).ok_or_else(|| {
                        err(format!("redirect {rname:?} resolves from undeclared latch {from:?}"))
                    })?;
                    let upstream: Vec<PlaceId> = latch_ids[..idx].iter().map(|&(_, p)| p).collect();
                    hazard.squash_list(&upstream)
                }
            };
            rules.push((rname.clone(), list));
        }

        let class_ids: Vec<_> = classes.iter().map(|c| b.class_net(&c.name).0).collect();
        for (class, &cid) in classes.iter().zip(&class_ids) {
            let mut chain = match &class.start {
                Some(s) => s.clone(),
                None => latch_ids
                    .first()
                    .ok_or_else(|| err(format!("class {:?} has no latch to start at", class.name)))?
                    .0
                    .clone(),
            };
            for (si, step) in class.steps.iter().enumerate() {
                let from_name = chain.clone();
                let from = resolve(&from_name)?;
                let to = resolve(&step.to)?;
                if step.advances {
                    chain = step.to.clone();
                }
                let flush = match &step.flush_rule {
                    Some(r) => {
                        rules.iter().find(|(n, _)| n == r).map(|(_, l)| l.clone()).ok_or_else(
                            || {
                                err(format!(
                                "class {:?} step {si} references undeclared redirect rule {r:?}",
                                class.name
                            ))
                            },
                        )?
                    }
                    None => Vec::new(),
                };
                let step_fwd =
                    if step.read == Some(Forward::None) { Vec::new() } else { fwd.clone() };
                let ctx = Arc::new(StepCtx { fwd: step_fwd, flush, from, to });
                // A `*_named` closure's registry reference captures the
                // step's resolved context, so a registry factory can
                // rebuild an equivalent closure on artifact reload.
                let named = |key: &String| {
                    crate::model::NamedHook::with_args(
                        key.clone(),
                        crate::model::HookArgs {
                            fwd: ctx.fwd.clone(),
                            flush: ctx.flush.clone(),
                            from: Some(from),
                            to: Some(to),
                        },
                    )
                };
                let synth_action = step.annuls || step.publish || step.static_flush;
                if step.read.is_some() && (step.when_cond.is_some() || synth_action) {
                    return Err(err(format!(
                        "class {:?} step {si}: read() excludes \
                         when_cond()/publish()/annuls()/flushes_always()",
                        class.name
                    )));
                }
                if step.when_cond.is_some() && step.guard.is_some() {
                    return Err(err(format!(
                        "class {:?} step {si}: when_cond() and guard() are mutually exclusive",
                        class.name
                    )));
                }
                // Read steps: decide the representation (IR vs closure)
                // and register the read_then hook *before* the transition
                // builder borrows `b`. Hook ids are handed out in
                // declaration order, keeping lowering deterministic.
                let read_plan = if step.read.is_some() {
                    if step.guard.is_some() {
                        return Err(err(format!(
                            "class {:?} step {si}: read() and guard() are mutually exclusive",
                            class.name
                        )));
                    }
                    let pol = policy.clone().ok_or_else(|| {
                        err(format!(
                            "class {:?} step {si} is a read step but no operand_policy is set",
                            class.name
                        ))
                    })?;
                    let ir_mask = match lowering {
                        Lowering::Closures => None,
                        Lowering::Auto if pol.lowers_to_ir() => ir::place_mask(&ctx.fwd),
                        Lowering::Auto => None,
                    };
                    let then_hook = match (&step.read_then, ir_mask) {
                        (Some(f), Some(_)) => {
                            let f = Arc::clone(f);
                            let hook =
                                move |m: &mut Machine<R>, t: &mut D, fx: &mut Fx<D>| f(m, t, fx);
                            Some(match &step.read_then_key {
                                Some(k) => b.hook_action_named(named(k), hook),
                                None => b.hook_action(hook),
                            })
                        }
                        _ => None,
                    };
                    Some((pol, ir_mask, then_hook))
                } else {
                    None
                };
                // Steps with synthesized action parts (annul/publish/
                // static flush) escape their user action — run between
                // the annul and the publish — through the hook table
                // under `Auto`; registered here for the same
                // declaration-order determinism as read_then hooks.
                let act_hook = match (&step.action, synth_action, lowering) {
                    (Some(a), true, Lowering::Auto) => {
                        let (a, c) = (Arc::clone(a), Arc::clone(&ctx));
                        let hook =
                            move |m: &mut Machine<R>, t: &mut D, fx: &mut Fx<D>| a(m, t, fx, &c);
                        Some(match &step.act_key {
                            Some(k) => b.hook_action_named(named(k), hook),
                            None => b.hook_action(hook),
                        })
                    }
                    _ => None,
                };
                let tname = step
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("{}.{si}:{from_name}>{}", class.name, step.to));
                let mut tb = b.transition(cid, &tname).from(from).to(to);
                if let Some(p) = step.priority {
                    tb = tb.priority(p);
                }
                if step.delay > 0 {
                    tb = tb.delay(step.delay);
                }
                if step.reads_forward || step.read == Some(Forward::All) {
                    for &p in &fwd {
                        tb = tb.reads_state(p);
                    }
                }
                for (latch, expire) in &step.reserve {
                    tb = tb.reserve(resolve(latch)?, *expire);
                }
                if let Some((pol, ir_mask, then_hook)) = read_plan {
                    if let Some(mask) = ir_mask {
                        // Synthesized discipline as data: the guard is one
                        // CheckReady, the action an AcquireOperands (the
                        // compile step fuses the pair) plus the user's
                        // read_then hook, if any, via the escape hatch.
                        tb =
                            tb.guard_ir(Program::new(vec![MicroOp::CheckReady { fwd_mask: mask }]));
                        let mut ops = vec![MicroOp::AcquireOperands { fwd_mask: mask }];
                        if let Some(h) = then_hook {
                            ops.push(MicroOp::CallHook(h));
                        }
                        tb = tb.action_ir(Program::new(ops));
                    } else {
                        let (p2, c2) = (Arc::clone(&pol), Arc::clone(&ctx));
                        tb = tb.guard(move |m, t| p2.ready(m, t, &c2.fwd));
                        let then = step.read_then.clone();
                        let c3 = Arc::clone(&ctx);
                        tb = tb.action(move |m, t, fx| {
                            pol.acquire(m, t, fx, &c3.fwd);
                            if let Some(f) = &then {
                                f(m, t, fx);
                            }
                        });
                    }
                } else {
                    match (step.when_cond, lowering) {
                        (Some(expect), Lowering::Auto) => {
                            tb = tb.guard_ir(Program::new(vec![MicroOp::CheckCond { expect }]));
                        }
                        (Some(expect), Lowering::Closures) => {
                            tb = tb.guard(move |_m, t: &D| t.cond_passes() == expect);
                        }
                        (None, _) => {
                            if let Some(g) = &step.guard {
                                let (g, c) = (Arc::clone(g), Arc::clone(&ctx));
                                let guard = move |m: &Machine<R>, t: &D| g(m, t, &c);
                                tb = match &step.guard_key {
                                    Some(k) => tb.guard_named(named(k), guard),
                                    None => tb.guard(guard),
                                };
                            }
                        }
                    }
                    if synth_action {
                        match lowering {
                            Lowering::Auto => {
                                // Fixed assembly order — annul, user
                                // action, publish, static flush — shared
                                // with the closure twin below.
                                let mut ops = Vec::new();
                                if step.annuls {
                                    ops.push(MicroOp::Annul);
                                }
                                if let Some(h) = act_hook {
                                    ops.push(MicroOp::CallHook(h));
                                }
                                if step.publish {
                                    ops.push(MicroOp::Publish);
                                }
                                if step.static_flush {
                                    ops.push(MicroOp::EmitRedirect {
                                        flush: ctx.flush.clone().into_boxed_slice(),
                                    });
                                }
                                tb = tb.action_ir(Program::new(ops));
                            }
                            Lowering::Closures => {
                                let act = step.action.clone();
                                let c = Arc::clone(&ctx);
                                let (annuls, publish, static_flush) =
                                    (step.annuls, step.publish, step.static_flush);
                                tb = tb.action(move |m, t: &mut D, fx| {
                                    if annuls {
                                        t.set_annulled();
                                        m.regs.release(fx.token());
                                    }
                                    if let Some(a) = &act {
                                        a(m, t, fx, &c);
                                    }
                                    if publish {
                                        let tok = fx.token();
                                        for i in 0..t.dst_count() {
                                            t.dst_operand(i).publish(&mut m.regs, tok);
                                        }
                                    }
                                    if static_flush {
                                        for &p in &c.flush {
                                            fx.flush(p);
                                        }
                                    }
                                });
                            }
                        }
                    } else if let Some(a) = &step.action {
                        let (a, c) = (Arc::clone(a), Arc::clone(&ctx));
                        let action =
                            move |m: &mut Machine<R>, t: &mut D, fx: &mut Fx<D>| a(m, t, fx, &c);
                        tb = match &step.act_key {
                            Some(k) => tb.action_named(named(k), action),
                            None => tb.action(action),
                        };
                    }
                }
                tb.done();
            }
        }

        for src in sources {
            let to = src
                .to
                .as_deref()
                .ok_or_else(|| err(format!("source {:?} needs .to(latch)", src.name)))?;
            let to = resolve(to)?;
            let produce = src
                .produce
                .ok_or_else(|| err(format!("source {:?} needs .produce(..)", src.name)))?;
            let mut sb = b.source(&src.name).to(to).width(src.width);
            if let Some(g) = src.guard {
                let guard = move |m: &Machine<R>| g(m);
                sb = match &src.guard_key {
                    Some(k) => sb.guard_named(crate::model::NamedHook::new(k.clone()), guard),
                    None => sb.guard(guard),
                };
            }
            let producer = move |m: &mut Machine<R>, fx: &mut Fx<D>| produce(m, fx);
            match &src.produce_key {
                Some(k) => {
                    sb.produce_named(crate::model::NamedHook::new(k.clone()), producer).done()
                }
                None => sb.produce(producer).done(),
            };
        }

        if let Some(h) = squash {
            let handler = move |m: &mut Machine<R>, d: &mut D| h(m, d);
            match &squash_key {
                Some(k) => b.on_squash_named(crate::model::NamedHook::new(k.clone()), handler),
                None => b.on_squash(handler),
            }
        }

        b.build()
    }
}

impl<D, R> std::fmt::Debug for PipelineSpec<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineSpec")
            .field("name", &self.name)
            .field("stages", &self.stages.len())
            .field("latches", &self.latches.len())
            .field("classes", &self.classes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::ids::OpClassId;
    use crate::reg::RegisterFile;
    use crate::token::InstrData;

    #[derive(Debug)]
    struct Tok(OpClassId);
    impl InstrData for Tok {
        fn op_class(&self) -> OpClassId {
            self.0
        }
    }

    struct NoOperands;
    impl<R> OperandPolicy<Tok, R> for NoOperands {
        fn ready(&self, _m: &Machine<R>, _t: &Tok, _fwd: &[PlaceId]) -> bool {
            true
        }
        fn acquire(&self, _m: &mut Machine<R>, _t: &mut Tok, _fx: &mut Fx<Tok>, _f: &[PlaceId]) {}
    }

    fn three_deep() -> PipelineSpec<Tok, u64> {
        let mut s = PipelineSpec::new("t");
        s.pipe("F", 1).pipe("D", 1).pipe("E", 1);
        s.forwards(&["E"]);
        s.operand_policy(NoOperands);
        s.class("C").step("D").read(Forward::All).step("E").step("end");
        s.source("fetch")
            .to("F")
            .produce(|_m: &mut Machine<u64>, _fx| Some(Tok(OpClassId::from_index(0))));
        s
    }

    #[test]
    fn lowers_and_runs() {
        let model = three_deep().lower().expect("valid spec");
        assert_eq!(model.place_count(), 4); // end + F/D/E
        assert_eq!(model.transition_count(), 3);
        // The read step declared a reads_state arc on E, making E two-list.
        let e = model.find_place("E").unwrap();
        assert!(model.analysis().is_two_list(e));
        let mut engine = Engine::new(model, Machine::new(RegisterFile::new(), 0u64));
        engine.run(50);
        assert!(engine.stats().retired > 40);
    }

    #[test]
    fn unknown_latch_is_a_spec_error() {
        let mut s = three_deep();
        s.class("X").step("NOPE");
        let e = s.lower().unwrap_err();
        assert!(matches!(&e, BuildError::Spec { .. }), "{e:?}");
        assert!(e.to_string().contains("NOPE"), "{e}");
    }

    #[test]
    fn read_without_policy_is_a_spec_error() {
        let mut s = PipelineSpec::<Tok, ()>::new("nopol");
        s.pipe("F", 1).pipe("D", 1);
        s.class("C").step("D").read(Forward::All).step("end");
        s.source("f").to("F").produce(|_m, _fx| None);
        let e = s.lower().unwrap_err();
        assert!(e.to_string().contains("operand_policy"), "{e}");
    }

    #[test]
    fn redirect_upstream_resolves_in_hazard_order() {
        for (policy, expect) in
            [(SquashOrder::FrontFirst, ["F", "D"]), (SquashOrder::NearestFirst, ["D", "F"])]
        {
            // Single class whose E-entering step carries the rule; the
            // action records the resolved flush list the first time a
            // token reaches it.
            let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            let seen2 = std::sync::Arc::clone(&seen);
            let mut s = PipelineSpec::<Tok, u64>::new("t");
            s.pipe("F", 1).pipe("D", 1).pipe("E", 1);
            s.hazard_policy(policy);
            s.redirect("r", "E");
            s.class("C")
                .step("D")
                .step("E")
                .flushes("r")
                .act_ctx(move |_m, _t, _fx, cx| {
                    let mut v = seen2.lock().unwrap();
                    if v.is_empty() {
                        v.extend(cx.flush.iter().copied());
                    }
                })
                .step("end");
            s.source("fetch")
                .to("F")
                .produce(|_m: &mut Machine<u64>, _fx| Some(Tok(OpClassId::from_index(0))));
            let model = s.lower().expect("valid");
            let expect_ids: Vec<PlaceId> =
                expect.iter().map(|n| model.find_place(n).unwrap()).collect();
            let mut engine = Engine::new(model, Machine::new(RegisterFile::new(), 0u64));
            engine.run(20);
            assert_eq!(*seen.lock().unwrap(), expect_ids, "{policy:?}");
        }
    }

    #[test]
    fn alt_steps_do_not_advance_the_chain() {
        let mut s = three_deep();
        // Second class: skip from D straight to end at priority 0, spine
        // D -> E at priority 1.
        s.class("Skippy")
            .step("D")
            .read(Forward::All)
            .alt("end")
            .name("skip")
            .priority(0)
            .guard(|_m, _t| false)
            .step("E")
            .name("spine")
            .priority(1)
            .step("end");
        let model = s.lower().expect("valid");
        let skip = model.find_transition("skip").unwrap();
        let spine = model.find_transition("spine").unwrap();
        let d = model.find_place("D").unwrap();
        assert_eq!(model.transition(skip).input(), d);
        assert_eq!(model.transition(spine).input(), d, "alt must not advance the chain");
        assert!(model.is_end_place(model.transition(skip).dest()));
    }
}
