//! # RCPN — Reduced Colored Petri Nets for pipelined processor modeling
//!
//! A reproduction of *"Generic Pipelined Processor Modeling and High
//! Performance Cycle-Accurate Simulator Generation"* (Reshadi & Dutt,
//! DATE 2005).
//!
//! RCPN is an instruction-centric variant of Colored Petri Nets for
//! describing pipelined processors. A model is a set of **sub-nets**: one
//! instruction-independent sub-net that generates instruction tokens
//! (fetch/decode), and one sub-net per **operation class** describing how
//! instructions of that class flow through the pipeline's **places**
//! (instruction states bound to **stages**) via guarded, prioritized
//! **transitions**. Structural and control hazards and variable operation
//! latencies are captured by tokens, capacities and delays; **data hazards**
//! are captured separately by the three-level register model in [`reg`].
//!
//! Models can be hand-wired with [`builder::ModelBuilder`] or — the
//! paper's *generic modeling* claim — **generated** from a declarative
//! [`spec::PipelineSpec`]: stages, per-class paths, an operand
//! read/forwarding policy and redirect rules, lowered into a validated
//! model with the per-class guards and actions synthesized.
//!
//! The same model drives a fast cycle-accurate simulator through an
//! explicit **model → compile → run** pipeline: [`analysis`] statically
//! extracts three properties (sorted per-(place, class) transition tables,
//! reverse-topological place evaluation, and two-list token storage only
//! where feedback demands it), [`compiled`] partially evaluates them into
//! the [`compiled::CompiledModel`] generated-simulator artifact, and
//! [`engine`] instantiates that artifact — once or many times — as
//! runnable [`engine::Engine`]s. [`batch`] fans many instantiations of a
//! shared artifact across worker threads with deterministic result
//! merging — the scale-out layer over the same seam.
//!
//! ## Quick start
//!
//! Model a two-stage pipeline and run tokens through it:
//!
//! ```
//! use rcpn::prelude::*;
//!
//! // Token payload: just an operation class.
//! #[derive(Debug)]
//! struct Tok(OpClassId);
//! impl InstrData for Tok {
//!     fn op_class(&self) -> OpClassId { self.0 }
//! }
//!
//! # fn main() -> Result<(), rcpn::error::BuildError> {
//! let mut b = ModelBuilder::<Tok, u32>::new();   // u32: a counter resource
//! let l1 = b.stage("L1", 1);
//! let l2 = b.stage("L2", 1);
//! let p1 = b.place("decode", l1);
//! let p2 = b.place("execute", l2);
//! let end = b.end_place();
//! let (alu, _) = b.class_net("Alu");
//!
//! b.transition(alu, "issue").from(p1).to(p2).done();
//! b.transition(alu, "complete")
//!     .from(p2)
//!     .to(end)
//!     .action(|m, _d, _fx| m.res += 1)
//!     .done();
//! b.source("fetch").to(p1).produce(move |_m, _fx| Some(Tok(alu))).done();
//!
//! let model = b.build()?;
//! let mut engine = Engine::new(model, Machine::new(RegisterFile::new(), 0u32));
//! engine.run(100);
//! assert!(engine.stats().retired > 90);
//! assert_eq!(engine.machine().res as u64, engine.stats().retired);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod artifact;
pub mod batch;
pub mod builder;
pub mod compiled;
pub mod cpn;
pub mod engine;
pub mod error;
pub mod ids;
pub mod ir;
pub mod model;
pub mod reg;
pub mod spec;
pub mod stats;
pub mod token;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::artifact::{ArtifactCache, ArtifactError, HookRegistry};
    pub use crate::batch::BatchRunner;
    pub use crate::builder::ModelBuilder;
    pub use crate::compiled::CompiledModel;
    pub use crate::engine::{Engine, EngineConfig, RunOutcome, SchedulerMode, TableMode};
    pub use crate::error::BuildError;
    pub use crate::ids::{OpClassId, PlaceId, RegId, StageId, SubnetId, TokenId, TransitionId};
    pub use crate::ir::{MicroOp, Program};
    pub use crate::model::{Fx, Machine, Model, UNLIMITED};
    pub use crate::reg::{Operand, RegRef, RegisterFile};
    pub use crate::spec::{
        Forward, HazardPolicy, Lowering, OperandPolicy, PipelineSpec, SquashOrder,
    };
    pub use crate::stats::{SchedStats, Stats};
    pub use crate::token::{InstrData, TokenKind};
}
