//! The static structure of an RCPN model.
//!
//! An RCPN model (paper, Section 3) consists of:
//!
//! * **Stages** — pipeline storage elements (latches, reservation stations)
//!   with a capacity; the virtual `end` stage has unlimited capacity.
//! * **Places** — instruction states; every place is assigned to a stage,
//!   and places assigned to the same stage share its capacity.
//! * **Transitions** — the functionality executed when an instruction moves
//!   between states, guarded by an enabling condition, with a priority on
//!   the (place → transition) arc for deterministic alternative selection.
//! * **Sources** — transitions with no input place (the model "starts with a
//!   transition"); they form the instruction-independent sub-net that
//!   generates instruction tokens, executed at the end of every cycle.
//! * **Sub-nets** — one per operation class, plus the independent sub-net.
//! * **Operation classes** — groups of instructions that share a pipeline
//!   path; each class designates the sub-net its tokens flow through.
//!
//! Models are constructed with [`crate::builder::ModelBuilder`] and executed
//! by [`crate::engine::Engine`].

use crate::analysis::Analysis;
use crate::ids::{OpClassId, PlaceId, SourceId, StageId, SubnetId, TransitionId};
use crate::ir::Program;
use crate::reg::RegisterFile;

/// Unlimited stage capacity (used by the virtual `end` stage).
pub const UNLIMITED: u32 = u32::MAX;

/// Arguments a named-hook factory receives when a closure is reconstructed
/// from a serialized artifact (see [`crate::artifact`]).
///
/// Spec-lowered closures capture per-step context — the forwarding window,
/// the flush set, the step's input/destination places. When such a closure
/// is registered under a stable name, that captured context is recorded
/// here so the registry factory can rebuild an equivalent closure on
/// reload without recompiling anything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HookArgs {
    /// Places the closure reads forwarded results from (the step's
    /// forwarding window, in model order).
    pub fwd: Vec<PlaceId>,
    /// Places the closure flushes on a redirect (the step's squash set).
    pub flush: Vec<PlaceId>,
    /// The step's input place, when the closure depends on it.
    pub from: Option<PlaceId>,
    /// The step's destination place, when the closure depends on it.
    pub to: Option<PlaceId>,
}

/// A stable reference to an escape-hatch closure: a registry key plus the
/// captured [`HookArgs`] needed to reconstruct it.
///
/// Closures themselves cannot be serialized; a model whose every closure
/// carries a `NamedHook` can. The artifact encoder stores `(key, args)` and
/// the decoder asks a [`crate::artifact::HookRegistry`] to rebuild the
/// closure. Models register names through the `*_named` builder and spec
/// methods; unnamed closures keep working but make the model unserializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedHook {
    /// The registry key (e.g. `"arm.fetch_produce"`). Keys are a stable
    /// public contract: renaming one invalidates every artifact that
    /// references it.
    pub key: String,
    /// Captured per-step context the factory rebuilds the closure from.
    pub args: HookArgs,
}

impl NamedHook {
    /// A named hook with no captured context.
    pub fn new(key: impl Into<String>) -> Self {
        NamedHook { key: key.into(), args: HookArgs::default() }
    }

    /// A named hook with captured per-step context.
    pub fn with_args(key: impl Into<String>, args: HookArgs) -> Self {
        NamedHook { key: key.into(), args }
    }
}

/// The machine state visible to guards and actions: the register file plus
/// model-specific resources `R` (memory, caches, branch predictor, PC, ...).
///
/// The paper allows transitions to "directly reference non-pipeline units
/// such as branch predictor, memory, cache etc."; those units live in `R`.
#[derive(Debug)]
pub struct Machine<R> {
    /// The register file and hazard scoreboard.
    pub regs: RegisterFile,
    /// Model-specific resources.
    pub res: R,
    /// Current simulation cycle (mirrors the engine's cycle counter).
    pub cycle: u64,
}

impl<R> Machine<R> {
    /// Creates a machine from a register file and resources.
    pub fn new(regs: RegisterFile, res: R) -> Self {
        Machine { regs, res, cycle: 0 }
    }
}

/// Guard condition of a transition: may inspect the machine and the token
/// payload, must not mutate anything.
///
/// Guards (like every model closure) must be `Send + Sync`: a compiled
/// model is shared by reference between every engine instantiated from it,
/// including engines running concurrently on [`crate::batch`] workers.
/// Closures therefore may capture only immutable shared data; all mutable
/// state belongs in the per-engine [`Machine`] they receive as an argument.
pub type Guard<D, R> = Box<dyn Fn(&Machine<R>, &D) -> bool + Send + Sync>;

/// Action of a transition: executed when the transition fires. Receives the
/// machine, the moving token's payload, and a [`Fx`] handle for side effects
/// on the net itself (emitting tokens, flushing places, delays, halting).
///
/// `Send + Sync` for the same reason as [`Guard`]: the closure is shared
/// across concurrently running engines; per-run mutable state lives in the
/// `Machine` argument, never in captures.
pub type Action<D, R> = Box<dyn Fn(&mut Machine<R>, &mut D, &mut Fx<D>) + Send + Sync>;

/// Guard of a source transition (no token payload exists yet).
/// `Send + Sync` for the same reason as [`Guard`].
pub type SourceGuard<R> = Box<dyn Fn(&Machine<R>) -> bool + Send + Sync>;

/// Action of a source transition: produces the payload of a new instruction
/// token, or `None` to stall this cycle.
/// `Send + Sync` for the same reason as [`Guard`].
pub type SourceAction<D, R> = Box<dyn Fn(&mut Machine<R>, &mut Fx<D>) -> Option<D> + Send + Sync>;

/// How a transition's guard is represented: an opaque closure, or a typed
/// micro-op [`Program`] the engine interprets inline (see [`crate::ir`]).
///
/// Synthesized behavior (spec-layer read steps) lowers to `Ir`; closures
/// remain for user-supplied custom semantics. The compile step
/// ([`crate::compiled`]) folds and fuses IR programs; the engine counts
/// each representation separately in
/// [`crate::stats::SchedStats::guard_ir_evals`] /
/// [`crate::stats::SchedStats::guard_hook_evals`].
pub enum GuardKind<D, R> {
    /// An opaque user-supplied guard closure.
    Closure(Guard<D, R>),
    /// A typed micro-op program (pure guard ops only; validated at build).
    Ir(Program),
}

/// How a transition's action is represented; see [`GuardKind`].
pub enum ActionKind<D, R> {
    /// An opaque user-supplied action closure.
    Closure(Action<D, R>),
    /// A typed micro-op program.
    Ir(Program),
}

impl<D, R> GuardKind<D, R> {
    /// The IR program, when this guard is IR-represented.
    pub fn ir(&self) -> Option<&Program> {
        match self {
            GuardKind::Ir(p) => Some(p),
            GuardKind::Closure(_) => None,
        }
    }
}

impl<D, R> ActionKind<D, R> {
    /// The IR program, when this action is IR-represented.
    pub fn ir(&self) -> Option<&Program> {
        match self {
            ActionKind::Ir(p) => Some(p),
            ActionKind::Closure(_) => None,
        }
    }
}

impl<D, R> std::fmt::Debug for GuardKind<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardKind::Closure(_) => f.write_str("Closure(..)"),
            GuardKind::Ir(p) => f.debug_tuple("Ir").field(p).finish(),
        }
    }
}

impl<D, R> std::fmt::Debug for ActionKind<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActionKind::Closure(_) => f.write_str("Closure(..)"),
            ActionKind::Ir(p) => f.debug_tuple("Ir").field(p).finish(),
        }
    }
}

/// The model's hook table: the closures [`crate::ir::MicroOp::CallHook`]
/// escapes into. A `CallHook(n)` in a guard program calls `guards[n]`; in
/// an action program, `actions[n]`. Hook indices are handed out by
/// [`crate::builder::ModelBuilder::hook_guard`] /
/// [`crate::builder::ModelBuilder::hook_action`] and validated against
/// this table at build time.
pub struct Hooks<D, R> {
    pub(crate) guards: Vec<Guard<D, R>>,
    pub(crate) actions: Vec<Action<D, R>>,
    pub(crate) guard_names: Vec<Option<NamedHook>>,
    pub(crate) action_names: Vec<Option<NamedHook>>,
}

impl<D, R> Hooks<D, R> {
    pub(crate) fn new() -> Self {
        Hooks {
            guards: Vec::new(),
            actions: Vec::new(),
            guard_names: Vec::new(),
            action_names: Vec::new(),
        }
    }

    /// Number of registered guard hooks.
    pub fn guard_count(&self) -> usize {
        self.guards.len()
    }

    /// Number of registered action hooks.
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }
}

impl<D, R> std::fmt::Debug for Hooks<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hooks")
            .field("guards", &self.guards.len())
            .field("actions", &self.actions.len())
            .finish()
    }
}

/// Side-effect collector passed to actions while a transition fires.
///
/// Mutations requested through `Fx` are applied by the engine after the
/// action returns, keeping firing atomic.
#[derive(Debug)]
pub struct Fx<D> {
    pub(crate) token: Option<crate::ids::TokenId>,
    pub(crate) token_delay: Option<u32>,
    pub(crate) emits: Vec<(D, PlaceId, u32)>,
    pub(crate) flush_places: Vec<PlaceId>,
    pub(crate) reserves: Vec<(PlaceId, u32)>,
    pub(crate) halt: bool,
}

impl<D> Fx<D> {
    pub(crate) fn new(token: Option<crate::ids::TokenId>) -> Self {
        Fx {
            token,
            token_delay: None,
            emits: Vec::new(),
            flush_places: Vec::new(),
            reserves: Vec::new(),
            halt: false,
        }
    }

    /// The id of the firing token. Needed for `reserveWrite`/`writeback`.
    ///
    /// # Panics
    ///
    /// Panics when called from a source action: the token does not exist
    /// until the source returns its payload.
    #[inline]
    pub fn token(&self) -> crate::ids::TokenId {
        self.token.expect("Fx::token is not available inside a source action")
    }

    /// Overrides the delay the token will experience in its destination
    /// place — the paper's *token delay* ("the delay of a token overwrites
    /// the delay of its containing place"). Used for data-dependent delays,
    /// e.g. `t.delay = mem.delay(addr)` in the LoadStore sub-net.
    #[inline]
    pub fn set_token_delay(&mut self, cycles: u32) {
        self.token_delay = Some(cycles);
    }

    /// Emits a new instruction token into `place`, ready after `delay`
    /// cycles. This is how one instruction generates multiple micro
    /// operations (e.g. ARM load/store-multiple).
    #[inline]
    pub fn emit(&mut self, payload: D, place: PlaceId, delay: u32) {
        self.emits.push((payload, place, delay));
    }

    /// Removes every token from `place` (control-hazard squash). Register
    /// reservations held by squashed tokens are released.
    #[inline]
    pub fn flush(&mut self, place: PlaceId) {
        self.flush_places.push(place);
    }

    /// Deposits a dataless reservation token into `place`, occupying its
    /// stage for `expire` cycles — the dynamic twin of a [`ResArc`]
    /// output arc (used by the IR `ReserveRes` micro-op).
    ///
    /// `place` must be a reservation target the compile step knows about
    /// (it appears in some transition's `ResArc` or IR `ReserveRes` op):
    /// reservations in places the expiry scan never visits would occupy
    /// their stage forever, so the engine rejects the request with a
    /// panic when the effects are applied.
    #[inline]
    pub fn reserve(&mut self, place: PlaceId, expire: u32) {
        self.reserves.push((place, expire));
    }

    /// Stops the simulation at the end of this cycle (e.g. an exit system
    /// call).
    #[inline]
    pub fn halt(&mut self) {
        self.halt = true;
    }
}

/// A pipeline stage definition.
#[derive(Debug, Clone)]
pub struct StageDef {
    pub(crate) name: String,
    pub(crate) capacity: u32,
    pub(crate) is_end: bool,
}

impl StageDef {
    /// The stage's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How many tokens (instructions) can reside in the stage at any time.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Whether this is the virtual final stage.
    pub fn is_end(&self) -> bool {
        self.is_end
    }
}

/// A place definition: an instruction state bound to a stage.
#[derive(Debug, Clone)]
pub struct PlaceDef {
    pub(crate) name: String,
    pub(crate) stage: StageId,
    pub(crate) delay: u32,
}

impl PlaceDef {
    /// The place's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stage this place is assigned to.
    pub fn stage(&self) -> StageId {
        self.stage
    }

    /// Default residency (in cycles) before a token may leave this place.
    pub fn delay(&self) -> u32 {
        self.delay
    }
}

/// A reservation-token output arc: firing deposits a dataless token that
/// occupies `place`'s stage for `expire` cycles.
#[derive(Debug, Clone, Copy)]
pub struct ResArc {
    pub(crate) place: PlaceId,
    pub(crate) expire: u32,
}

/// A transition definition.
pub struct TransitionDef<D, R> {
    pub(crate) name: String,
    pub(crate) subnet: SubnetId,
    pub(crate) input: PlaceId,
    pub(crate) priority: u32,
    pub(crate) extra_inputs: Vec<PlaceId>,
    pub(crate) guard: Option<GuardKind<D, R>>,
    pub(crate) action: Option<ActionKind<D, R>>,
    pub(crate) dest: PlaceId,
    pub(crate) reservations: Vec<ResArc>,
    pub(crate) delay: u32,
    pub(crate) reads_states: Vec<PlaceId>,
    pub(crate) guard_name: Option<NamedHook>,
    pub(crate) action_name: Option<NamedHook>,
}

impl<D, R> TransitionDef<D, R> {
    /// The transition's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sub-net the transition belongs to.
    pub fn subnet(&self) -> SubnetId {
        self.subnet
    }

    /// The input place the transition consumes its instruction token from.
    pub fn input(&self) -> PlaceId {
        self.input
    }

    /// Additional input places consumed when the transition fires (joins).
    pub fn extra_inputs(&self) -> &[PlaceId] {
        &self.extra_inputs
    }

    /// The destination place of the instruction token.
    pub fn dest(&self) -> PlaceId {
        self.dest
    }

    /// Priority of the (input place → transition) arc; lower fires first.
    pub fn priority(&self) -> u32 {
        self.priority
    }

    /// Execution delay of the transition's functionality.
    pub fn delay(&self) -> u32 {
        self.delay
    }

    /// The guard's representation, if the transition has one.
    pub fn guard_kind(&self) -> Option<&GuardKind<D, R>> {
        self.guard.as_ref()
    }

    /// The action's representation, if the transition has one.
    pub fn action_kind(&self) -> Option<&ActionKind<D, R>> {
        self.action.as_ref()
    }
}

impl<D, R> std::fmt::Debug for TransitionDef<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransitionDef")
            .field("name", &self.name)
            .field("subnet", &self.subnet)
            .field("input", &self.input)
            .field("dest", &self.dest)
            .field("priority", &self.priority)
            .finish()
    }
}

/// A source-transition definition (instruction-independent sub-net).
pub struct SourceDef<D, R> {
    pub(crate) name: String,
    pub(crate) dest: PlaceId,
    pub(crate) guard: Option<SourceGuard<R>>,
    pub(crate) produce: SourceAction<D, R>,
    pub(crate) max_per_cycle: u32,
    pub(crate) guard_name: Option<NamedHook>,
    pub(crate) produce_name: Option<NamedHook>,
}

impl<D, R> SourceDef<D, R> {
    /// The source's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The place newly generated tokens are deposited into.
    pub fn dest(&self) -> PlaceId {
        self.dest
    }

    /// Maximum number of tokens generated per cycle (fetch width).
    pub fn max_per_cycle(&self) -> u32 {
        self.max_per_cycle
    }
}

impl<D, R> std::fmt::Debug for SourceDef<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SourceDef")
            .field("name", &self.name)
            .field("dest", &self.dest)
            .field("max_per_cycle", &self.max_per_cycle)
            .finish()
    }
}

/// A sub-net definition (a name; membership is recorded on transitions).
#[derive(Debug, Clone)]
pub struct SubnetDef {
    pub(crate) name: String,
}

impl SubnetDef {
    /// The sub-net's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// An operation-class definition.
#[derive(Debug, Clone)]
pub struct OpClassDef {
    pub(crate) name: String,
    pub(crate) subnet: SubnetId,
}

impl OpClassDef {
    /// The class's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sub-net instructions of this class flow through.
    pub fn subnet(&self) -> SubnetId {
        self.subnet
    }
}

/// A complete, validated RCPN model.
///
/// `D` is the instruction-token payload type; `R` the machine resources.
/// Produced by [`crate::builder::ModelBuilder::build`], which also runs the
/// static analysis of Section 4 (sorted transition tables, reverse
/// topological place order, two-list detection).
pub struct Model<D, R> {
    pub(crate) stages: Vec<StageDef>,
    pub(crate) places: Vec<PlaceDef>,
    pub(crate) transitions: Vec<TransitionDef<D, R>>,
    pub(crate) sources: Vec<SourceDef<D, R>>,
    pub(crate) subnets: Vec<SubnetDef>,
    pub(crate) classes: Vec<OpClassDef>,
    pub(crate) hooks: Hooks<D, R>,
    pub(crate) analysis: Analysis,
    pub(crate) squash_handler: Option<SquashHandler<D, R>>,
    pub(crate) squash_name: Option<NamedHook>,
}

/// Cleanup hook invoked for every instruction token removed by a flush,
/// before the token is destroyed. Lets models undo machine-level
/// bookkeeping (beyond register reservations, which the engine releases
/// itself) for squashed instructions.
/// `Send + Sync` for the same reason as [`Guard`].
pub type SquashHandler<D, R> = Box<dyn Fn(&mut Machine<R>, &mut D) + Send + Sync>;

impl<D, R> Model<D, R> {
    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions (excluding sources).
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Number of source transitions.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of sub-nets.
    pub fn subnet_count(&self) -> usize {
        self.subnets.len()
    }

    /// Number of operation classes.
    pub fn op_class_count(&self) -> usize {
        self.classes.len()
    }

    /// A stage definition.
    pub fn stage(&self, id: StageId) -> &StageDef {
        &self.stages[id.index()]
    }

    /// A place definition.
    pub fn place(&self, id: PlaceId) -> &PlaceDef {
        &self.places[id.index()]
    }

    /// A transition definition.
    pub fn transition(&self, id: TransitionId) -> &TransitionDef<D, R> {
        &self.transitions[id.index()]
    }

    /// A source definition.
    pub fn source(&self, id: SourceId) -> &SourceDef<D, R> {
        &self.sources[id.index()]
    }

    /// A sub-net definition.
    pub fn subnet(&self, id: SubnetId) -> &SubnetDef {
        &self.subnets[id.index()]
    }

    /// An operation-class definition.
    pub fn op_class(&self, id: OpClassId) -> &OpClassDef {
        &self.classes[id.index()]
    }

    /// The static analysis results (Section 4).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// The hook table IR `CallHook` micro-ops escape into.
    pub fn hooks(&self) -> &Hooks<D, R> {
        &self.hooks
    }

    /// Iterates over place ids.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.places.len()).map(PlaceId::from_index)
    }

    /// Iterates over transition ids.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> {
        (0..self.transitions.len()).map(TransitionId::from_index)
    }

    /// Looks up a place by name.
    pub fn find_place(&self, name: &str) -> Option<PlaceId> {
        self.places.iter().position(|p| p.name == name).map(PlaceId::from_index)
    }

    /// Looks up a transition by name.
    pub fn find_transition(&self, name: &str) -> Option<TransitionId> {
        self.transitions.iter().position(|t| t.name == name).map(TransitionId::from_index)
    }

    /// Looks up a stage by name.
    pub fn find_stage(&self, name: &str) -> Option<StageId> {
        self.stages.iter().position(|s| s.name == name).map(StageId::from_index)
    }

    /// True if `place` belongs to the virtual `end` stage.
    pub fn is_end_place(&self, place: PlaceId) -> bool {
        self.stages[self.places[place.index()].stage.index()].is_end
    }
}

impl<D, R> std::fmt::Debug for Model<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("stages", &self.stages.len())
            .field("places", &self.places.len())
            .field("transitions", &self.transitions.len())
            .field("sources", &self.sources.len())
            .field("subnets", &self.subnets.len())
            .field("classes", &self.classes.len())
            .finish()
    }
}
