//! Conversion of RCPN models to standard Colored Petri Nets, plus a generic
//! CPN interpreter.
//!
//! The paper argues (Figures 1 and 2) that a CPN model of a pipeline needs
//! explicit *capacity places* with circular back-edges for every resource,
//! which (a) blows up the net size and (b) defeats the reverse-topological
//! evaluation trick, forcing a generic enabled-transition search. This
//! module makes both effects measurable:
//!
//! * [`convert`] lowers an RCPN [`Model`] into a [`Cpn`]: one *free-slot*
//!   place per stage holding `capacity` unit tokens, one colored place per
//!   RCPN place, and back-edge arcs returning freed slots — the classic CPN
//!   encoding of Figure 2(b).
//! * [`Cpn`] simulates the result with the textbook synchronous scheme:
//!   repeated scans over all transitions until a fixpoint, one cycle at a
//!   time. The number of transition examinations is counted so the search
//!   overhead can be compared against the RCPN engine.
//!
//! The conversion covers the token game (structural hazards, capacities,
//! unit-delay flow). Data-dependent guards, reservations and token emission
//! are outside the structural fragment (the full conversion is in the
//! paper's technical report (ref. 5), which is not publicly available) and
//! produce a [`ConvertError`].

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use crate::ids::{OpClassId, TransitionId};
use crate::model::Model;

/// Why an RCPN model could not be converted to the structural CPN fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConvertError {
    /// The transition has guard/action/state references; data-dependent
    /// behavior is outside the structural fragment.
    DataDependent {
        /// The data-dependent transition.
        transition: TransitionId,
    },
    /// The transition uses reservation arcs or extra inputs.
    NonStructuralArc {
        /// The transition with non-structural arcs.
        transition: TransitionId,
    },
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::DataDependent { transition } => {
                write!(f, "transition {transition} is data-dependent; structural CPN fragment only")
            }
            ConvertError::NonStructuralArc { transition } => {
                write!(f, "transition {transition} uses reservation/extra arcs; not convertible")
            }
        }
    }
}

impl Error for ConvertError {}

/// Color carried by a CPN token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    /// An uncolored resource token (a free pipeline slot).
    Unit,
    /// An instruction token of the given operation class.
    Instr(OpClassId),
}

/// One CPN token: a color plus the first cycle it may be consumed.
#[derive(Debug, Clone, Copy)]
pub struct CpnToken {
    /// The token's color.
    pub color: Color,
    /// Earliest cycle at which the token can enable a transition.
    pub ready: u64,
    /// Creation order, for FIFO consumption.
    pub seq: u64,
}

/// What an input arc accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArcFilter {
    /// Any unit token.
    Unit,
    /// An instruction token of one of the listed classes.
    InstrOf(Vec<OpClassId>),
    /// Any instruction token.
    AnyInstr,
}

/// What an output arc produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArcOutput {
    /// A unit token, consumable in the same cycle (freed capacity).
    UnitNow,
    /// The instruction token consumed by this firing, delayed one cycle.
    PassInstr,
}

/// A CPN place: a FIFO multiset of colored tokens.
#[derive(Debug, Clone)]
pub struct CpnPlace {
    /// Display name.
    pub name: String,
    /// Whether tokens arriving here count as retired instructions.
    pub is_end: bool,
    tokens: VecDeque<CpnToken>,
}

/// A CPN transition.
#[derive(Debug, Clone)]
pub struct CpnTransition {
    /// Display name.
    pub name: String,
    /// Input arcs: (place index, filter).
    pub inputs: Vec<(usize, ArcFilter)>,
    /// Output arcs: (place index, production rule).
    pub outputs: Vec<(usize, ArcOutput)>,
}

/// Interpreter statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpnStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Transition firings.
    pub fires: u64,
    /// Transitions examined while searching for enabled ones — the search
    /// cost RCPN's sorted tables eliminate.
    pub scans: u64,
    /// Fixpoint passes executed.
    pub passes: u64,
    /// Instruction tokens that reached an end place.
    pub retired: u64,
}

/// A colored Petri net with a synchronous fixpoint interpreter.
#[derive(Debug, Clone)]
pub struct Cpn {
    places: Vec<CpnPlace>,
    transitions: Vec<CpnTransition>,
    cycle: u64,
    next_seq: u64,
    stats: CpnStats,
    retire_log: Vec<u64>,
}

impl Cpn {
    /// Creates an empty net.
    pub fn new() -> Self {
        Cpn {
            places: Vec::new(),
            transitions: Vec::new(),
            cycle: 0,
            next_seq: 0,
            stats: CpnStats::default(),
            retire_log: Vec::new(),
        }
    }

    /// Adds a place; returns its index.
    pub fn add_place(&mut self, name: &str, is_end: bool) -> usize {
        self.places.push(CpnPlace { name: name.to_string(), is_end, tokens: VecDeque::new() });
        self.places.len() - 1
    }

    /// Adds a transition; returns its index.
    pub fn add_transition(
        &mut self,
        name: &str,
        inputs: Vec<(usize, ArcFilter)>,
        outputs: Vec<(usize, ArcOutput)>,
    ) -> usize {
        self.transitions.push(CpnTransition { name: name.to_string(), inputs, outputs });
        self.transitions.len() - 1
    }

    /// Deposits a token into a place (initial marking).
    pub fn add_token(&mut self, place: usize, color: Color) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.places[place].tokens.push_back(CpnToken { color, ready: self.cycle, seq });
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Total number of arcs.
    pub fn arc_count(&self) -> usize {
        self.transitions.iter().map(|t| t.inputs.len() + t.outputs.len()).sum()
    }

    /// Tokens currently in the named place.
    pub fn tokens_in(&self, name: &str) -> usize {
        self.places.iter().find(|p| p.name == name).map_or(0, |p| p.tokens.len())
    }

    /// Interpreter statistics.
    pub fn stats(&self) -> &CpnStats {
        &self.stats
    }

    /// Cycles at which each retirement happened, in retirement order.
    pub fn retire_log(&self) -> &[u64] {
        &self.retire_log
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn find_binding(&self, t: usize) -> Option<Vec<(usize, usize)>> {
        // For each input arc, the oldest ready matching token. Arcs bind
        // independently (our generated nets never have two arcs from the
        // same place on one transition).
        let mut binding = Vec::with_capacity(self.transitions[t].inputs.len());
        for (pi, filter) in &self.transitions[t].inputs {
            let place = &self.places[*pi];
            let found = place.tokens.iter().enumerate().find(|(_, tok)| {
                tok.ready <= self.cycle
                    && match filter {
                        ArcFilter::Unit => tok.color == Color::Unit,
                        ArcFilter::AnyInstr => matches!(tok.color, Color::Instr(_)),
                        ArcFilter::InstrOf(classes) => match tok.color {
                            Color::Instr(c) => classes.contains(&c),
                            Color::Unit => false,
                        },
                    }
            });
            match found {
                Some((idx, _)) => binding.push((*pi, idx)),
                None => return None,
            }
        }
        Some(binding)
    }

    fn fire(&mut self, t: usize, binding: Vec<(usize, usize)>) {
        let mut instr: Option<Color> = None;
        for (pi, idx) in binding {
            let tok = self.places[pi].tokens.remove(idx).expect("bound token exists");
            if matches!(tok.color, Color::Instr(_)) {
                instr = Some(tok.color);
            }
        }
        let outputs = self.transitions[t].outputs.clone();
        for (pi, out) in outputs {
            let (color, ready) = match out {
                ArcOutput::UnitNow => (Color::Unit, self.cycle),
                ArcOutput::PassInstr => {
                    (instr.expect("PassInstr output without instr input"), self.cycle + 1)
                }
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            self.places[pi].tokens.push_back(CpnToken { color, ready, seq });
            if self.places[pi].is_end && matches!(color, Color::Instr(_)) {
                self.stats.retired += 1;
                self.retire_log.push(self.cycle);
            }
        }
        self.stats.fires += 1;
    }

    /// Executes one synchronous cycle: scan all transitions repeatedly,
    /// firing enabled ones, until a pass makes no progress.
    pub fn step(&mut self) {
        loop {
            self.stats.passes += 1;
            let mut fired = false;
            for t in 0..self.transitions.len() {
                self.stats.scans += 1;
                if let Some(binding) = self.find_binding(t) {
                    self.fire(t, binding);
                    fired = true;
                }
            }
            if !fired {
                break;
            }
        }
        self.cycle += 1;
        self.stats.cycles += 1;
    }

    /// Runs `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }
}

impl Default for Cpn {
    fn default() -> Self {
        Self::new()
    }
}

/// Lowers the structural fragment of an RCPN model into a standard CPN
/// (Figure 2(b) encoding) and preloads `program` as the instruction stream.
///
/// Every non-`end` stage becomes a *free-slot* place initially holding
/// `capacity` unit tokens; every RCPN transition additionally consumes a
/// free slot of its destination stage and returns a slot of its source
/// stage — the circular back-edges the paper highlights. Sources consume
/// from a `stream` place preloaded with one instruction token per entry of
/// `program`.
///
/// # Errors
///
/// Returns [`ConvertError`] if the model uses guards, actions, state
/// references, reservations or extra inputs (the data-dependent features
/// RCPN adds on top of the token game).
pub fn convert<D, R>(model: &Model<D, R>, program: &[OpClassId]) -> Result<Cpn, ConvertError> {
    for (i, t) in model.transitions.iter().enumerate() {
        let tid = TransitionId::from_index(i);
        if t.guard.is_some() || t.action.is_some() || !t.reads_states.is_empty() {
            return Err(ConvertError::DataDependent { transition: tid });
        }
        if !t.reservations.is_empty() || !t.extra_inputs.is_empty() {
            return Err(ConvertError::NonStructuralArc { transition: tid });
        }
    }

    let mut cpn = Cpn::new();

    // Free-slot place per non-end stage.
    let mut free_of: Vec<Option<usize>> = Vec::with_capacity(model.stages.len());
    for s in &model.stages {
        if s.is_end {
            free_of.push(None);
        } else {
            let pi = cpn.add_place(&format!("free_{}", s.name), false);
            for _ in 0..s.capacity {
                cpn.add_token(pi, Color::Unit);
            }
            free_of.push(Some(pi));
        }
    }

    // Colored place per RCPN place.
    let mut place_of: Vec<usize> = Vec::with_capacity(model.places.len());
    for p in &model.places {
        let is_end = model.stages[p.stage.index()].is_end;
        place_of.push(cpn.add_place(&p.name, is_end));
    }

    // Stream place feeding the sources.
    let stream = cpn.add_place("stream", false);
    for &c in program {
        cpn.add_token(stream, Color::Instr(c));
    }

    // Transitions with capacity claim/release back-edges.
    for t in &model.transitions {
        let classes: Vec<OpClassId> = model
            .classes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.subnet == t.subnet)
            .map(|(i, _)| OpClassId::from_index(i))
            .collect();
        let src_stage = model.places[t.input.index()].stage;
        let dst_stage = model.places[t.dest.index()].stage;
        let mut inputs = vec![(place_of[t.input.index()], ArcFilter::InstrOf(classes))];
        if dst_stage != src_stage {
            if let Some(free) = free_of[dst_stage.index()] {
                inputs.push((free, ArcFilter::Unit));
            }
        }
        let mut outputs = vec![(place_of[t.dest.index()], ArcOutput::PassInstr)];
        if dst_stage != src_stage {
            if let Some(free) = free_of[src_stage.index()] {
                outputs.push((free, ArcOutput::UnitNow));
            }
        }
        cpn.add_transition(&t.name, inputs, outputs);
    }

    // Sources: consume a stream token and a free slot of the destination.
    for s in &model.sources {
        let dst_stage = model.places[s.dest.index()].stage;
        let mut inputs = vec![(stream, ArcFilter::AnyInstr)];
        if let Some(free) = free_of[dst_stage.index()] {
            inputs.push((free, ArcFilter::Unit));
        }
        let outputs = vec![(place_of[s.dest.index()], ArcOutput::PassInstr)];
        cpn.add_transition(&s.name, inputs, outputs);
    }

    Ok(cpn)
}

/// Side-by-side size comparison of an RCPN model and its CPN lowering —
/// the quantitative version of the paper's Figure 1/2 argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeComparison {
    /// RCPN places.
    pub rcpn_places: usize,
    /// RCPN transitions (including sources).
    pub rcpn_transitions: usize,
    /// RCPN arcs (input + output + reservation + extra arcs).
    pub rcpn_arcs: usize,
    /// CPN places (including free-slot and stream places).
    pub cpn_places: usize,
    /// CPN transitions.
    pub cpn_transitions: usize,
    /// CPN arcs.
    pub cpn_arcs: usize,
}

/// Computes the [`SizeComparison`] for a convertible model.
///
/// # Errors
///
/// Propagates [`ConvertError`] from [`convert`].
pub fn compare_sizes<D, R>(model: &Model<D, R>) -> Result<SizeComparison, ConvertError> {
    let cpn = convert(model, &[])?;
    let rcpn_arcs: usize = model
        .transitions
        .iter()
        .map(|t| 2 + t.reservations.len() + t.extra_inputs.len())
        .sum::<usize>()
        + model.sources.len();
    Ok(SizeComparison {
        rcpn_places: model.place_count(),
        rcpn_transitions: model.transition_count() + model.source_count(),
        rcpn_arcs,
        cpn_places: cpn.place_count(),
        cpn_transitions: cpn.transition_count(),
        cpn_arcs: cpn.arc_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_built_pipeline_flows() {
        // free_L1 --(fetch: stream+free_L1 -> p1)--> p1 --(u: p1+free_L2 ->
        // p2, free_L1)--> p2 --(done: p2 -> end, free_L2)--> end
        let mut cpn = Cpn::new();
        let free1 = cpn.add_place("free_L1", false);
        let free2 = cpn.add_place("free_L2", false);
        let p1 = cpn.add_place("p1", false);
        let p2 = cpn.add_place("p2", false);
        let end = cpn.add_place("end", true);
        let stream = cpn.add_place("stream", false);
        cpn.add_token(free1, Color::Unit);
        cpn.add_token(free2, Color::Unit);
        let class = OpClassId::from_index(0);
        for _ in 0..4 {
            cpn.add_token(stream, Color::Instr(class));
        }
        cpn.add_transition(
            "u",
            vec![(p1, ArcFilter::AnyInstr), (free2, ArcFilter::Unit)],
            vec![(p2, ArcOutput::PassInstr), (free1, ArcOutput::UnitNow)],
        );
        cpn.add_transition(
            "done",
            vec![(p2, ArcFilter::AnyInstr)],
            vec![(end, ArcOutput::PassInstr), (free2, ArcOutput::UnitNow)],
        );
        cpn.add_transition(
            "fetch",
            vec![(stream, ArcFilter::AnyInstr), (free1, ArcFilter::Unit)],
            vec![(p1, ArcOutput::PassInstr)],
        );

        cpn.run(10);
        assert_eq!(cpn.stats().retired, 4, "all four instructions retire");
        assert_eq!(cpn.tokens_in("free_L1"), 1, "capacity restored");
        assert_eq!(cpn.tokens_in("free_L2"), 1);
        // Steady-state throughput 1/cycle: retirements on consecutive cycles.
        let log = cpn.retire_log();
        for w in log.windows(2) {
            assert_eq!(w[1] - w[0], 1);
        }
    }

    #[test]
    fn capacity_blocks_when_no_free_token() {
        let mut cpn = Cpn::new();
        let free1 = cpn.add_place("free_L1", false);
        let p1 = cpn.add_place("p1", false);
        let stream = cpn.add_place("stream", false);
        cpn.add_token(free1, Color::Unit);
        let class = OpClassId::from_index(0);
        cpn.add_token(stream, Color::Instr(class));
        cpn.add_token(stream, Color::Instr(class));
        cpn.add_transition(
            "fetch",
            vec![(stream, ArcFilter::AnyInstr), (free1, ArcFilter::Unit)],
            vec![(p1, ArcOutput::PassInstr)],
        );
        cpn.run(5);
        // Only one instruction got in: the slot was never released.
        assert_eq!(cpn.tokens_in("p1"), 1);
        assert_eq!(cpn.tokens_in("stream"), 1);
    }

    #[test]
    fn scans_count_search_cost() {
        let mut cpn = Cpn::new();
        let p = cpn.add_place("p", false);
        let q = cpn.add_place("q", false);
        cpn.add_transition("t", vec![(p, ArcFilter::Unit)], vec![(q, ArcOutput::UnitNow)]);
        cpn.run(3);
        // Each cycle does at least one full pass over all transitions.
        assert!(cpn.stats().scans >= 3);
        assert_eq!(cpn.stats().fires, 0);
    }

    #[test]
    fn class_filter_selects_matching_tokens() {
        let mut cpn = Cpn::new();
        let p = cpn.add_place("p", false);
        let a = cpn.add_place("a", true);
        let b = cpn.add_place("b", true);
        let c0 = OpClassId::from_index(0);
        let c1 = OpClassId::from_index(1);
        cpn.add_token(p, Color::Instr(c1));
        cpn.add_token(p, Color::Instr(c0));
        cpn.add_transition(
            "ta",
            vec![(p, ArcFilter::InstrOf(vec![c0]))],
            vec![(a, ArcOutput::PassInstr)],
        );
        cpn.add_transition(
            "tb",
            vec![(p, ArcFilter::InstrOf(vec![c1]))],
            vec![(b, ArcOutput::PassInstr)],
        );
        cpn.run(2);
        assert_eq!(cpn.tokens_in("a"), 1);
        assert_eq!(cpn.tokens_in("b"), 1);
    }
}
