//! Fluent construction of RCPN models.
//!
//! A model is declared in the same shape as the processor's pipeline block
//! diagram: declare stages, bind places to them, then describe each
//! operation class's sub-net as transitions between places. Finally,
//! [`ModelBuilder::build`] validates the net and runs the static analysis of
//! Section 4.
//!
//! # Examples
//!
//! The paper's Figure 2 pipeline (two latches, four units):
//!
//! ```
//! use rcpn::builder::ModelBuilder;
//! use rcpn::ids::OpClassId;
//! use rcpn::token::InstrData;
//!
//! #[derive(Debug)]
//! struct Tok(OpClassId);
//! impl InstrData for Tok {
//!     fn op_class(&self) -> OpClassId { self.0 }
//! }
//!
//! # fn main() -> Result<(), rcpn::error::BuildError> {
//! let mut b = ModelBuilder::<Tok, ()>::new();
//! let l1 = b.stage("L1", 1);
//! let l2 = b.stage("L2", 1);
//! let p1 = b.place("P1", l1);
//! let p2 = b.place("P2", l2);
//! let (short, _) = b.class_net("Short");
//! let (long, _) = b.class_net("Long");
//! let end = b.end_place();
//!
//! b.transition(short, "U4").from(p1).to(end).done();
//! b.transition(long, "U2").from(p1).to(p2).done();
//! b.transition(long, "U3").from(p2).to(end).done();
//! let l1_for_fetch = p1;
//! b.source("U1")
//!     .to(l1_for_fetch)
//!     .produce(move |_m, _fx| Some(Tok(long)))
//!     .done();
//! let model = b.build()?;
//! assert_eq!(model.place_count(), 3);
//! # Ok(())
//! # }
//! ```

use crate::analysis::{analyze, AnalysisInput, TransView};
use crate::error::BuildError;
use crate::ids::{OpClassId, PlaceId, SourceId, StageId, SubnetId, TransitionId};
use crate::ir::{MicroOp, Program};
use crate::model::{
    Action, ActionKind, Fx, Guard, GuardKind, Hooks, Machine, Model, NamedHook, OpClassDef,
    PlaceDef, ResArc, SourceAction, SourceDef, SourceGuard, StageDef, SubnetDef, TransitionDef,
    UNLIMITED,
};

/// Builder for [`Model`]. See the [module documentation](self) for an
/// example.
pub struct ModelBuilder<D, R> {
    stages: Vec<StageDef>,
    places: Vec<PlaceDef>,
    transitions: Vec<TransitionDef<D, R>>,
    sources: Vec<SourceDef<D, R>>,
    subnets: Vec<SubnetDef>,
    classes: Vec<OpClassDef>,
    hooks: Hooks<D, R>,
    end_stage: StageId,
    end_place: PlaceId,
    squash_handler: Option<crate::model::SquashHandler<D, R>>,
    squash_name: Option<NamedHook>,
}

impl<D, R> ModelBuilder<D, R> {
    /// Creates a builder. The virtual `end` stage and a default `end` place
    /// are pre-declared, per the paper: "we assume when instructions finish
    /// they go to a final virtual pipeline stage, called end, with unlimited
    /// capacity".
    pub fn new() -> Self {
        let mut b = ModelBuilder {
            stages: Vec::new(),
            places: Vec::new(),
            transitions: Vec::new(),
            sources: Vec::new(),
            subnets: Vec::new(),
            classes: Vec::new(),
            hooks: Hooks::new(),
            end_stage: StageId::from_index(0),
            end_place: PlaceId::from_index(0),
            squash_handler: None,
            squash_name: None,
        };
        b.stages.push(StageDef { name: "end".to_string(), capacity: UNLIMITED, is_end: true });
        b.places.push(PlaceDef { name: "end".to_string(), stage: b.end_stage, delay: 0 });
        b
    }

    /// Declares a pipeline stage with the given token capacity.
    pub fn stage(&mut self, name: &str, capacity: u32) -> StageId {
        self.stages.push(StageDef { name: name.to_string(), capacity, is_end: false });
        StageId::from_index(self.stages.len() - 1)
    }

    /// The pre-declared virtual final stage.
    pub fn end_stage(&self) -> StageId {
        self.end_stage
    }

    /// The pre-declared default place on the `end` stage.
    pub fn end_place(&self) -> PlaceId {
        self.end_place
    }

    /// Declares a place on `stage` with the default delay of one cycle
    /// (a token must reside one cycle in a stage before moving on).
    pub fn place(&mut self, name: &str, stage: StageId) -> PlaceId {
        self.place_with_delay(name, stage, 1)
    }

    /// Declares a place with an explicit delay — "the delay of a place
    /// determines how long a token should reside in that place before it
    /// can be considered for enabling an output transition".
    pub fn place_with_delay(&mut self, name: &str, stage: StageId, delay: u32) -> PlaceId {
        self.places.push(PlaceDef { name: name.to_string(), stage, delay });
        PlaceId::from_index(self.places.len() - 1)
    }

    /// Declares an additional final place (an `end`-stage state for a
    /// specific class of instructions).
    pub fn final_place(&mut self, name: &str) -> PlaceId {
        self.places.push(PlaceDef { name: name.to_string(), stage: self.end_stage, delay: 0 });
        PlaceId::from_index(self.places.len() - 1)
    }

    /// Declares a sub-net.
    pub fn subnet(&mut self, name: &str) -> SubnetId {
        self.subnets.push(SubnetDef { name: name.to_string() });
        SubnetId::from_index(self.subnets.len() - 1)
    }

    /// Declares an operation class whose instructions flow through `subnet`.
    pub fn op_class(&mut self, name: &str, subnet: SubnetId) -> OpClassId {
        self.classes.push(OpClassDef { name: name.to_string(), subnet });
        OpClassId::from_index(self.classes.len() - 1)
    }

    /// Declares an operation class together with its own sub-net — the
    /// common 1:1 case ("for each instruction type, there is a
    /// corresponding sub-net").
    pub fn class_net(&mut self, name: &str) -> (OpClassId, SubnetId) {
        let net = self.subnet(name);
        (self.op_class(name, net), net)
    }

    /// Starts declaring a transition in the sub-net of `class`.
    pub fn transition(&mut self, class: OpClassId, name: &str) -> TransitionBuilder<'_, D, R> {
        let subnet = self.classes[class.index()].subnet;
        self.transition_in(subnet, name)
    }

    /// Starts declaring a transition in an explicit sub-net (used when a
    /// sub-net is shared between several operation classes).
    pub fn transition_in(&mut self, subnet: SubnetId, name: &str) -> TransitionBuilder<'_, D, R> {
        TransitionBuilder {
            parent: self,
            def: TransitionDef {
                name: name.to_string(),
                subnet,
                input: PlaceId::from_index(usize::from(u16::MAX)), // sentinel; validated in done()
                priority: 0,
                extra_inputs: Vec::new(),
                guard: None,
                action: None,
                dest: PlaceId::from_index(usize::from(u16::MAX)),
                reservations: Vec::new(),
                delay: 0,
                reads_states: Vec::new(),
                guard_name: None,
                action_name: None,
            },
            has_input: false,
            has_dest: false,
        }
    }

    /// Starts declaring a source transition (instruction-independent
    /// sub-net; e.g. fetch).
    pub fn source(&mut self, name: &str) -> SourceBuilder<'_, D, R> {
        SourceBuilder {
            parent: self,
            name: name.to_string(),
            dest: None,
            guard: None,
            produce: None,
            max_per_cycle: 1,
            guard_name: None,
            produce_name: None,
        }
    }

    /// Installs a cleanup hook called for every instruction token removed
    /// by a flush (squash); see [`crate::model::SquashHandler`].
    pub fn on_squash(&mut self, handler: impl Fn(&mut Machine<R>, &mut D) + Send + Sync + 'static) {
        self.squash_handler = Some(Box::new(handler));
        self.squash_name = None;
    }

    /// [`ModelBuilder::on_squash`] plus a stable registry name, keeping the
    /// model serializable (see [`crate::artifact`]).
    pub fn on_squash_named(
        &mut self,
        name: NamedHook,
        handler: impl Fn(&mut Machine<R>, &mut D) + Send + Sync + 'static,
    ) {
        self.squash_handler = Some(Box::new(handler));
        self.squash_name = Some(name);
    }

    /// Registers a guard hook in the model's [`Hooks`] table and returns
    /// its index, for use in an IR guard program via
    /// [`crate::ir::MicroOp::CallHook`].
    pub fn hook_guard(
        &mut self,
        guard: impl Fn(&Machine<R>, &D) -> bool + Send + Sync + 'static,
    ) -> u32 {
        self.hooks.guards.push(Box::new(guard));
        self.hooks.guard_names.push(None);
        (self.hooks.guards.len() - 1) as u32
    }

    /// [`ModelBuilder::hook_guard`] plus a stable registry name, keeping the
    /// model serializable (see [`crate::artifact`]).
    pub fn hook_guard_named(
        &mut self,
        name: NamedHook,
        guard: impl Fn(&Machine<R>, &D) -> bool + Send + Sync + 'static,
    ) -> u32 {
        let idx = self.hook_guard(guard);
        self.hooks.guard_names[idx as usize] = Some(name);
        idx
    }

    /// Registers an action hook in the model's [`Hooks`] table and returns
    /// its index, for use in an IR action program via
    /// [`crate::ir::MicroOp::CallHook`].
    pub fn hook_action(
        &mut self,
        action: impl Fn(&mut Machine<R>, &mut D, &mut Fx<D>) + Send + Sync + 'static,
    ) -> u32 {
        self.hooks.actions.push(Box::new(action));
        self.hooks.action_names.push(None);
        (self.hooks.actions.len() - 1) as u32
    }

    /// [`ModelBuilder::hook_action`] plus a stable registry name, keeping
    /// the model serializable (see [`crate::artifact`]).
    pub fn hook_action_named(
        &mut self,
        name: NamedHook,
        action: impl Fn(&mut Machine<R>, &mut D, &mut Fx<D>) + Send + Sync + 'static,
    ) -> u32 {
        let idx = self.hook_action(action);
        self.hooks.action_names[idx as usize] = Some(name);
        idx
    }

    /// Validates the net and computes the static analysis, producing an
    /// executable [`Model`].
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if the net is structurally invalid: dangling
    /// ids, zero-capacity stages, missing inputs/destinations, duplicate
    /// priorities on the same (place, sub-net), duplicate names, or no
    /// operation classes.
    pub fn build(self) -> Result<Model<D, R>, BuildError> {
        // Unique names per entity kind.
        fn check_names<'a>(
            kind: &'static str,
            names: impl Iterator<Item = &'a str>,
        ) -> Result<(), BuildError> {
            let mut seen = std::collections::HashSet::new();
            for n in names {
                if !seen.insert(n) {
                    return Err(BuildError::DuplicateName { kind, name: n.to_string() });
                }
            }
            Ok(())
        }
        check_names("stage", self.stages.iter().map(|s| s.name.as_str()))?;
        check_names("place", self.places.iter().map(|p| p.name.as_str()))?;
        check_names("transition", self.transitions.iter().map(|t| t.name.as_str()))?;

        for (i, s) in self.stages.iter().enumerate() {
            if s.capacity == 0 {
                return Err(BuildError::ZeroCapacity {
                    stage: StageId::from_index(i),
                    stage_name: s.name.clone(),
                });
            }
        }
        for (i, p) in self.places.iter().enumerate() {
            if p.stage.index() >= self.stages.len() {
                return Err(BuildError::UnknownStage {
                    place: PlaceId::from_index(i),
                    place_name: p.name.clone(),
                    stage: p.stage,
                });
            }
        }
        if self.classes.is_empty() {
            return Err(BuildError::NoOpClasses);
        }
        for (i, c) in self.classes.iter().enumerate() {
            if c.subnet.index() >= self.subnets.len() {
                return Err(BuildError::UnknownSubnet {
                    class: OpClassId::from_index(i),
                    class_name: c.name.clone(),
                    subnet: c.subnet,
                });
            }
        }
        let n_places = self.places.len();
        let check_place = |tid: usize, tname: &str, p: PlaceId| -> Result<(), BuildError> {
            if p.index() >= n_places {
                Err(BuildError::UnknownPlace {
                    transition: TransitionId::from_index(tid),
                    transition_name: tname.to_string(),
                    place: p,
                })
            } else {
                Ok(())
            }
        };
        for (i, t) in self.transitions.iter().enumerate() {
            check_place(i, &t.name, t.input)?;
            check_place(i, &t.name, t.dest)?;
            for &p in t.extra_inputs.iter().chain(t.reads_states.iter()) {
                check_place(i, &t.name, p)?;
            }
            for r in &t.reservations {
                check_place(i, &t.name, r.place)?;
            }
        }

        // IR program validation: guard programs are pure, hook indices
        // resolve, referenced places exist.
        let program_err = |tid: usize, tname: &str, detail: String| BuildError::InvalidProgram {
            transition: TransitionId::from_index(tid),
            transition_name: tname.to_string(),
            detail,
        };
        for (i, t) in self.transitions.iter().enumerate() {
            if let Some(GuardKind::Ir(prog)) = &t.guard {
                for op in prog.ops() {
                    if !op.is_guard_op() {
                        return Err(program_err(
                            i,
                            &t.name,
                            format!("guard program contains non-guard op {op:?}"),
                        ));
                    }
                    if let MicroOp::CallHook(h) = op {
                        if *h as usize >= self.hooks.guards.len() {
                            return Err(program_err(
                                i,
                                &t.name,
                                format!(
                                    "guard program calls hook {h} but only {} guard hooks exist",
                                    self.hooks.guards.len()
                                ),
                            ));
                        }
                    }
                }
            }
            if let Some(ActionKind::Ir(prog)) = &t.action {
                for op in prog.ops() {
                    if !op.is_action_op() {
                        return Err(program_err(
                            i,
                            &t.name,
                            format!("action program contains non-action op {op:?}"),
                        ));
                    }
                    match op {
                        MicroOp::CallHook(h) if *h as usize >= self.hooks.actions.len() => {
                            return Err(program_err(
                                i,
                                &t.name,
                                format!(
                                    "action program calls hook {h} but only {} action hooks exist",
                                    self.hooks.actions.len()
                                ),
                            ));
                        }
                        MicroOp::ReserveRes { place, .. } => check_place(i, &t.name, *place)?,
                        MicroOp::EmitRedirect { flush } => {
                            for &p in flush.iter() {
                                check_place(i, &t.name, p)?;
                            }
                        }
                        MicroOp::AcquireOperands { fwd_mask } => {
                            // Acquire's contract is "only after a passing
                            // CheckReady with the same mask": an unguarded
                            // or mask-mismatched acquire would latch stale
                            // operand values silently in release builds,
                            // so reject it here instead.
                            let guarded = matches!(
                                &t.guard,
                                Some(GuardKind::Ir(g))
                                    if g.ops().contains(&MicroOp::CheckReady { fwd_mask: *fwd_mask })
                            );
                            if !guarded {
                                return Err(program_err(
                                    i,
                                    &t.name,
                                    format!(
                                        "AcquireOperands {{ fwd_mask: {fwd_mask:#x} }} requires \
                                         a CheckReady with the same mask in the transition's \
                                         guard program"
                                    ),
                                ));
                            }
                        }
                        _ => {}
                    }
                }
            }
        }

        // Duplicate (input, subnet, priority) detection.
        let mut keyed: Vec<(PlaceId, SubnetId, u32, TransitionId)> = self
            .transitions
            .iter()
            .enumerate()
            .map(|(i, t)| (t.input, t.subnet, t.priority, TransitionId::from_index(i)))
            .collect();
        keyed.sort_by_key(|&(p, s, pr, t)| (p, s, pr, t));
        for w in keyed.windows(2) {
            let (p1, s1, pr1, t1) = w[0];
            let (p2, s2, pr2, t2) = w[1];
            if p1 == p2 && s1 == s2 && pr1 == pr2 {
                return Err(BuildError::DuplicatePriority {
                    place: p1,
                    place_name: self.places[p1.index()].name.clone(),
                    subnet: s1,
                    subnet_name: self.subnets[s1.index()].name.clone(),
                    priority: pr1,
                    first: t1,
                    first_name: self.transitions[t1.index()].name.clone(),
                    second: t2,
                    second_name: self.transitions[t2.index()].name.clone(),
                });
            }
        }

        let views: Vec<TransView> = self
            .transitions
            .iter()
            .map(|t| TransView {
                input: t.input,
                dest: t.dest,
                subnet: t.subnet,
                priority: t.priority,
                reads_states: t.reads_states.clone(),
            })
            .collect();
        let class_subnets: Vec<SubnetId> = self.classes.iter().map(|c| c.subnet).collect();
        let analysis = analyze(&AnalysisInput {
            n_places,
            transitions: &views,
            class_subnets: &class_subnets,
        });

        Ok(Model {
            stages: self.stages,
            places: self.places,
            transitions: self.transitions,
            sources: self.sources,
            subnets: self.subnets,
            classes: self.classes,
            hooks: self.hooks,
            analysis,
            squash_handler: self.squash_handler,
            squash_name: self.squash_name,
        })
    }
}

impl<D, R> Default for ModelBuilder<D, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D, R> std::fmt::Debug for ModelBuilder<D, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelBuilder")
            .field("stages", &self.stages.len())
            .field("places", &self.places.len())
            .field("transitions", &self.transitions.len())
            .finish()
    }
}

/// Declares one transition; created by [`ModelBuilder::transition`].
///
/// Call [`TransitionBuilder::done`] to register the transition — a builder
/// that is dropped without `done()` adds nothing to the model.
pub struct TransitionBuilder<'b, D, R> {
    parent: &'b mut ModelBuilder<D, R>,
    def: TransitionDef<D, R>,
    has_input: bool,
    has_dest: bool,
}

impl<'b, D, R> TransitionBuilder<'b, D, R> {
    /// Sets the input place the transition consumes its token from.
    pub fn from(mut self, place: PlaceId) -> Self {
        self.def.input = place;
        self.has_input = true;
        self
    }

    /// Sets the destination place of the token.
    pub fn to(mut self, place: PlaceId) -> Self {
        self.def.dest = place;
        self.has_dest = true;
        self
    }

    /// Sets the priority of the (input place → transition) arc. Lower
    /// priorities are tried first; defaults to 0.
    pub fn priority(mut self, priority: u32) -> Self {
        self.def.priority = priority;
        self
    }

    /// Sets the guard condition (closure representation).
    pub fn guard(
        mut self,
        guard: impl Fn(&Machine<R>, &D) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.def.guard = Some(GuardKind::Closure(Box::new(guard) as Guard<D, R>));
        self.def.guard_name = None;
        self
    }

    /// [`TransitionBuilder::guard`] plus a stable registry name, keeping
    /// the model serializable (see [`crate::artifact`]).
    pub fn guard_named(
        mut self,
        name: NamedHook,
        guard: impl Fn(&Machine<R>, &D) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.def.guard = Some(GuardKind::Closure(Box::new(guard) as Guard<D, R>));
        self.def.guard_name = Some(name);
        self
    }

    /// Sets the guard as a typed micro-op [`Program`] interpreted inline
    /// by the engine. Only pure guard ops are legal
    /// ([`MicroOp::is_guard_op`]); validated in [`ModelBuilder::build`].
    pub fn guard_ir(mut self, program: Program) -> Self {
        self.def.guard = Some(GuardKind::Ir(program));
        self
    }

    /// Sets the action executed when the transition fires (closure
    /// representation).
    pub fn action(
        mut self,
        action: impl Fn(&mut Machine<R>, &mut D, &mut Fx<D>) + Send + Sync + 'static,
    ) -> Self {
        self.def.action = Some(ActionKind::Closure(Box::new(action) as Action<D, R>));
        self.def.action_name = None;
        self
    }

    /// [`TransitionBuilder::action`] plus a stable registry name, keeping
    /// the model serializable (see [`crate::artifact`]).
    pub fn action_named(
        mut self,
        name: NamedHook,
        action: impl Fn(&mut Machine<R>, &mut D, &mut Fx<D>) + Send + Sync + 'static,
    ) -> Self {
        self.def.action = Some(ActionKind::Closure(Box::new(action) as Action<D, R>));
        self.def.action_name = Some(name);
        self
    }

    /// Sets the action as a typed micro-op [`Program`]; validated in
    /// [`ModelBuilder::build`].
    pub fn action_ir(mut self, program: Program) -> Self {
        self.def.action = Some(ActionKind::Ir(program));
        self
    }

    /// Declares that the guard/action reference the state `place` through
    /// `canRead(s)`/`read(s)` — required for correct two-list analysis.
    pub fn reads_state(mut self, place: PlaceId) -> Self {
        self.def.reads_states.push(place);
        self
    }

    /// Adds a reservation-token output arc: firing deposits a dataless
    /// token occupying `place`'s stage for `expire` cycles.
    pub fn reserve(mut self, place: PlaceId, expire: u32) -> Self {
        self.def.reservations.push(ResArc { place, expire });
        self
    }

    /// Adds an extra input place; the transition additionally consumes the
    /// oldest ready token from it when firing (join semantics).
    pub fn extra_input(mut self, place: PlaceId) -> Self {
        self.def.extra_inputs.push(place);
        self
    }

    /// Sets the execution delay of the transition's functionality.
    pub fn delay(mut self, cycles: u32) -> Self {
        self.def.delay = cycles;
        self
    }

    /// Registers the transition and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` was not called; a transition must have
    /// exactly one input and one destination place.
    pub fn done(self) -> TransitionId {
        assert!(self.has_input, "transition {:?} needs .from(place)", self.def.name);
        assert!(self.has_dest, "transition {:?} needs .to(place)", self.def.name);
        self.parent.transitions.push(self.def);
        TransitionId::from_index(self.parent.transitions.len() - 1)
    }
}

/// Declares one source transition; created by [`ModelBuilder::source`].
pub struct SourceBuilder<'b, D, R> {
    parent: &'b mut ModelBuilder<D, R>,
    name: String,
    dest: Option<PlaceId>,
    guard: Option<SourceGuard<R>>,
    produce: Option<SourceAction<D, R>>,
    max_per_cycle: u32,
    guard_name: Option<NamedHook>,
    produce_name: Option<NamedHook>,
}

impl<'b, D, R> SourceBuilder<'b, D, R> {
    /// Sets the place generated tokens are deposited into.
    pub fn to(mut self, place: PlaceId) -> Self {
        self.dest = Some(place);
        self
    }

    /// Sets the guard; the source fires only while the guard holds (and the
    /// destination stage has capacity).
    pub fn guard(mut self, guard: impl Fn(&Machine<R>) -> bool + Send + Sync + 'static) -> Self {
        self.guard = Some(Box::new(guard) as SourceGuard<R>);
        self.guard_name = None;
        self
    }

    /// [`SourceBuilder::guard`] plus a stable registry name, keeping the
    /// model serializable (see [`crate::artifact`]).
    pub fn guard_named(
        mut self,
        name: NamedHook,
        guard: impl Fn(&Machine<R>) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.guard = Some(Box::new(guard) as SourceGuard<R>);
        self.guard_name = Some(name);
        self
    }

    /// Sets the producer: returns the payload of a new instruction token,
    /// or `None` to stall.
    pub fn produce(
        mut self,
        produce: impl Fn(&mut Machine<R>, &mut Fx<D>) -> Option<D> + Send + Sync + 'static,
    ) -> Self {
        self.produce = Some(Box::new(produce) as SourceAction<D, R>);
        self.produce_name = None;
        self
    }

    /// [`SourceBuilder::produce`] plus a stable registry name, keeping the
    /// model serializable (see [`crate::artifact`]).
    pub fn produce_named(
        mut self,
        name: NamedHook,
        produce: impl Fn(&mut Machine<R>, &mut Fx<D>) -> Option<D> + Send + Sync + 'static,
    ) -> Self {
        self.produce = Some(Box::new(produce) as SourceAction<D, R>);
        self.produce_name = Some(name);
        self
    }

    /// Sets the fetch width (tokens per cycle); defaults to 1.
    pub fn width(mut self, max_per_cycle: u32) -> Self {
        self.max_per_cycle = max_per_cycle.max(1);
        self
    }

    /// Registers the source and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `to` or `produce` was not called.
    pub fn done(self) -> SourceId {
        let dest = self.dest.unwrap_or_else(|| panic!("source {:?} needs .to(place)", self.name));
        let produce =
            self.produce.unwrap_or_else(|| panic!("source {:?} needs .produce(..)", self.name));
        self.parent.sources.push(SourceDef {
            name: self.name,
            dest,
            guard: self.guard,
            produce,
            max_per_cycle: self.max_per_cycle,
            guard_name: self.guard_name,
            produce_name: self.produce_name,
        });
        SourceId::from_index(self.parent.sources.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::InstrData;

    #[derive(Debug)]
    struct Tok(OpClassId);
    impl InstrData for Tok {
        fn op_class(&self) -> OpClassId {
            self.0
        }
    }

    fn two_place_builder() -> (ModelBuilder<Tok, ()>, PlaceId, PlaceId, OpClassId) {
        let mut b = ModelBuilder::<Tok, ()>::new();
        let s1 = b.stage("L1", 1);
        let s2 = b.stage("L2", 1);
        let p1 = b.place("P1", s1);
        let p2 = b.place("P2", s2);
        let (c, _) = b.class_net("Only");
        (b, p1, p2, c)
    }

    #[test]
    fn minimal_model_builds() {
        let (mut b, p1, p2, c) = two_place_builder();
        let end = b.end_place();
        b.transition(c, "u2").from(p1).to(p2).done();
        b.transition(c, "u3").from(p2).to(end).done();
        b.source("fetch").to(p1).produce(move |_m, _fx| Some(Tok(c))).done();
        let m = b.build().expect("valid model");
        assert_eq!(m.transition_count(), 2);
        assert_eq!(m.source_count(), 1);
        assert_eq!(m.find_transition("u2").unwrap().index(), 0);
        assert_eq!(m.find_place("P2"), Some(p2));
        assert!(m.is_end_place(end));
        assert!(!m.is_end_place(p1));
    }

    #[test]
    fn no_classes_is_an_error() {
        let b = ModelBuilder::<Tok, ()>::new();
        assert_eq!(b.build().unwrap_err(), BuildError::NoOpClasses);
    }

    #[test]
    fn zero_capacity_is_an_error() {
        let mut b = ModelBuilder::<Tok, ()>::new();
        let s = b.stage("bad", 0);
        let _ = b.place("p", s);
        b.class_net("c");
        assert!(matches!(b.build().unwrap_err(), BuildError::ZeroCapacity { .. }));
    }

    #[test]
    fn duplicate_priority_is_an_error() {
        let (mut b, p1, p2, c) = two_place_builder();
        b.transition(c, "a").from(p1).to(p2).priority(3).done();
        b.transition(c, "b").from(p1).to(p2).priority(3).done();
        assert!(matches!(b.build().unwrap_err(), BuildError::DuplicatePriority { .. }));
    }

    #[test]
    fn distinct_priorities_are_fine_across_subnets() {
        let mut b = ModelBuilder::<Tok, ()>::new();
        let s1 = b.stage("L1", 1);
        let p1 = b.place("P1", s1);
        let end = b.end_place();
        let (c1, _) = b.class_net("A");
        let (c2, _) = b.class_net("B");
        b.transition(c1, "ta").from(p1).to(end).priority(0).done();
        b.transition(c2, "tb").from(p1).to(end).priority(0).done();
        assert!(b.build().is_ok(), "same priority in different sub-nets is unambiguous");
    }

    #[test]
    fn duplicate_stage_name_is_an_error() {
        let mut b = ModelBuilder::<Tok, ()>::new();
        b.stage("X", 1);
        b.stage("X", 2);
        b.class_net("c");
        assert!(matches!(b.build().unwrap_err(), BuildError::DuplicateName { kind: "stage", .. }));
    }

    #[test]
    #[should_panic(expected = "needs .from(place)")]
    fn transition_without_input_panics() {
        let (mut b, _p1, p2, c) = two_place_builder();
        b.transition(c, "t").to(p2).done();
    }

    #[test]
    fn analysis_is_attached() {
        let (mut b, p1, p2, c) = two_place_builder();
        let end = b.end_place();
        b.transition(c, "a").from(p1).to(p2).done();
        b.transition(c, "b").from(p2).to(end).done();
        let m = b.build().unwrap();
        // end place evaluated first, then P2, then P1.
        let order: Vec<usize> = m.analysis().order().iter().map(|p| p.index()).collect();
        let pos_p1 = order.iter().position(|&i| i == p1.index()).unwrap();
        let pos_p2 = order.iter().position(|&i| i == p2.index()).unwrap();
        assert!(pos_p2 < pos_p1);
        assert_eq!(m.analysis().two_list_count(), 0);
    }
}
