//! Simulation statistics.
//!
//! Cycle-accurate simulators exist to produce performance metrics — cycle
//! counts, CPI, utilization (paper, Section 1). The engine maintains a
//! [`Stats`] block with cheap counters; per-transition and per-place
//! breakdowns support the utilization reports.

use crate::ids::{PlaceId, TransitionId};

/// Counters maintained by [`crate::engine::Engine`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Simulated cycles executed.
    pub cycles: u64,
    /// Instruction tokens that reached an `end`-stage place.
    pub retired: u64,
    /// Instruction tokens created by sources.
    pub generated: u64,
    /// Instruction tokens created by `Fx::emit` (micro-ops).
    pub emitted: u64,
    /// Tokens removed by flushes (squashes).
    pub flushed: u64,
    /// Reservation tokens created.
    pub reservations: u64,
    /// Register reservations force-released at retire time (model leaks).
    pub leaked_reservations: u64,
    /// Guard evaluations that returned false.
    pub guard_fails: u64,
    /// Enabling attempts rejected for lack of destination capacity.
    pub capacity_blocks: u64,
    /// Ready instruction tokens that found no enabled transition this cycle.
    pub stalls: u64,
    /// Tokens committed from pending to live storage (two-list places).
    pub two_list_commits: u64,
    /// Fire count per transition.
    pub fires: Vec<u64>,
    /// Fire count per source.
    pub source_fires: Vec<u64>,
    /// Per-place stall counts (ready token, nothing fired).
    pub place_stalls: Vec<u64>,
    /// Per-place cumulative occupancy (token-cycles), for utilization.
    pub occupancy: Vec<u64>,
}

/// Host-side scheduler counters: how much per-cycle work the engine
/// actually performed versus skipped.
///
/// These are deliberately **not** part of [`Stats`]. `Stats` describes the
/// simulated machine and is bit-identical between the activity-driven
/// scheduler and the exhaustive-sweep oracle (that identity is the
/// correctness contract, enforced by the differential tests). `SchedStats`
/// describes the *host execution strategy* — the two schedulers do
/// different amounts of work by design, so these counters live in their
/// own block where they can differ freely. They are still deterministic
/// for a fixed engine configuration, so batch/sweep determinism checks may
/// include them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Places scanned for enabled transitions (one per processed place per
    /// cycle, or per fixpoint pass).
    pub place_visits: u64,
    /// Non-empty places skipped because no resident token becomes ready
    /// before the place's wake cycle. The exhaustive sweep would have
    /// scanned these; an all-zero value under the activity scheduler means
    /// the workload never goes quiescent.
    pub place_skips: u64,
    /// Tokens examined during place scans.
    pub token_visits: u64,
    /// Token examinations avoided by place skips (tokens resident in
    /// skipped places).
    pub token_visits_skipped: u64,
    /// Candidate-transition evaluations performed (enabling checks).
    pub trans_visits: u64,
    /// Dependent transitions of skipped places that were not reconsidered
    /// (from the compiled place→transitions reverse index; one count per
    /// dependent per skip).
    pub trans_visits_skipped: u64,
    /// Reservation-expiry scans performed.
    pub expiry_scans: u64,
    /// Reservation-expiry scans skipped because no reservation in the
    /// place can have expired yet.
    pub expiry_skips: u64,
    /// Guard evaluations dispatched through the micro-op IR interpreter
    /// (including fused ready/acquire checks). Together with
    /// `guard_hook_evals` this makes the dispatch refactor observable:
    /// an IR-lowered model shows its synthesized guards here instead of
    /// in the closure counter.
    pub guard_ir_evals: u64,
    /// Guard evaluations dispatched through `Box<dyn Fn>` closures (the
    /// hook path — user-supplied custom guards, or everything on a
    /// closure-lowered model).
    pub guard_hook_evals: u64,
    /// Firings that went through a fused `CheckReady`+`AcquireOperands`
    /// pair: the acquire latched operands from the sources the passing
    /// guard had just memoized instead of re-probing the scoreboard.
    pub actions_fused: u64,
    /// Firings dispatched through a compiled superblock: the (place,
    /// class)-indexed direct-threaded fast path instead of the generic
    /// candidate walk and per-op interpreters.
    pub superblocks_entered: u64,
    /// Micro-ops interpreted inside superblock firings (fused
    /// ready/acquire pairs count as two ops).
    pub ops_inlined: u64,
    /// Tokens that entered a compiled chain: a superblock firing whose
    /// destination is the head of a fusion-legal chain link parked a
    /// dispatch cursor on the destination place instead of leaving the
    /// next hop to the generic place scan.
    pub chains_entered: u64,
    /// Chain links dispatched through a parked cursor: the place's sweep
    /// slot fired the pre-resolved successor block directly, eliding the
    /// token snapshot walk, class lookup and superblock table lookup (and
    /// their `place_visits`/`token_visits`/`trans_visits`/
    /// `superblocks_entered` accounting, which
    /// [`SchedStats::dispatch_normalized`] folds back).
    pub chain_links_fired: u64,
}

impl SchedStats {
    /// Accumulates `other` into `self` (exhaustive destructuring, like
    /// [`Stats::merge`]: a new counter that is not merged is a compile
    /// error).
    pub fn merge(&mut self, other: &SchedStats) {
        let SchedStats {
            place_visits,
            place_skips,
            token_visits,
            token_visits_skipped,
            trans_visits,
            trans_visits_skipped,
            expiry_scans,
            expiry_skips,
            guard_ir_evals,
            guard_hook_evals,
            actions_fused,
            superblocks_entered,
            ops_inlined,
            chains_entered,
            chain_links_fired,
        } = other;
        self.place_visits += place_visits;
        self.place_skips += place_skips;
        self.token_visits += token_visits;
        self.token_visits_skipped += token_visits_skipped;
        self.trans_visits += trans_visits;
        self.trans_visits_skipped += trans_visits_skipped;
        self.expiry_scans += expiry_scans;
        self.expiry_skips += expiry_skips;
        self.guard_ir_evals += guard_ir_evals;
        self.guard_hook_evals += guard_hook_evals;
        self.actions_fused += actions_fused;
        self.superblocks_entered += superblocks_entered;
        self.ops_inlined += ops_inlined;
        self.chains_entered += chains_entered;
        self.chain_links_fired += chain_links_fired;
    }

    /// Total guard evaluations, independent of dispatch representation.
    pub fn guard_evals(&self) -> u64 {
        self.guard_ir_evals + self.guard_hook_evals
    }

    /// A copy with the dispatch-representation counters folded away:
    /// `guard_ir_evals` merged into `guard_hook_evals`; each
    /// `chain_links_fired` folded back into the `place_visits`,
    /// `token_visits` and `trans_visits` a cursor dispatch elides (one of
    /// each per fired link); and `actions_fused`, `superblocks_entered`,
    /// `ops_inlined`, `chains_entered` and `chain_links_fired` zeroed.
    /// An IR-lowered model, its closure-lowered twin, the superblocks-off
    /// per-op oracle, and the chains-off superblock oracle must agree on
    /// *this* view bit-for-bit (the oracle tests compare it); the raw
    /// counters differ by design — that difference is the refactor's
    /// observability.
    pub fn dispatch_normalized(&self) -> SchedStats {
        let mut s = self.clone();
        s.guard_hook_evals += s.guard_ir_evals;
        s.guard_ir_evals = 0;
        s.place_visits += s.chain_links_fired;
        s.token_visits += s.chain_links_fired;
        s.trans_visits += s.chain_links_fired;
        s.actions_fused = 0;
        s.superblocks_entered = 0;
        s.ops_inlined = 0;
        s.chains_entered = 0;
        s.chain_links_fired = 0;
        s
    }

    /// Fraction of place visits avoided: `skips / (visits + skips)`, or
    /// 0.0 before any cycle ran.
    pub fn place_skip_ratio(&self) -> f64 {
        let total = self.place_visits + self.place_skips;
        if total == 0 {
            0.0
        } else {
            self.place_skips as f64 / total as f64
        }
    }
}

impl Stats {
    pub(crate) fn new(n_transitions: usize, n_sources: usize, n_places: usize) -> Self {
        Stats {
            fires: vec![0; n_transitions],
            source_fires: vec![0; n_sources],
            place_stalls: vec![0; n_places],
            occupancy: vec![0; n_places],
            ..Default::default()
        }
    }

    /// Accumulates `other` into `self`, summing every counter and
    /// element-wise summing the per-entity vectors (shorter vectors are
    /// padded, so stats from differently sized models can be aggregated).
    ///
    /// Used by [`crate::batch::merge_stats`] to aggregate per-job results;
    /// fold in job order to keep aggregates bit-reproducible.
    pub fn merge(&mut self, other: &Stats) {
        // Exhaustive destructuring (no `..`): adding a Stats field without
        // merging it must be a compile error, not a silently-dropped
        // counter in every batch aggregate.
        let Stats {
            cycles,
            retired,
            generated,
            emitted,
            flushed,
            reservations,
            leaked_reservations,
            guard_fails,
            capacity_blocks,
            stalls,
            two_list_commits,
            fires,
            source_fires,
            place_stalls,
            occupancy,
        } = other;
        self.cycles += cycles;
        self.retired += retired;
        self.generated += generated;
        self.emitted += emitted;
        self.flushed += flushed;
        self.reservations += reservations;
        self.leaked_reservations += leaked_reservations;
        self.guard_fails += guard_fails;
        self.capacity_blocks += capacity_blocks;
        self.stalls += stalls;
        self.two_list_commits += two_list_commits;
        fn add_vec(into: &mut Vec<u64>, from: &[u64]) {
            if into.len() < from.len() {
                into.resize(from.len(), 0);
            }
            for (a, b) in into.iter_mut().zip(from) {
                *a += b;
            }
        }
        add_vec(&mut self.fires, fires);
        add_vec(&mut self.source_fires, source_fires);
        add_vec(&mut self.place_stalls, place_stalls);
        add_vec(&mut self.occupancy, occupancy);
    }

    /// Cycles per instruction.
    ///
    /// Returns `None` until at least one instruction has retired.
    pub fn cpi(&self) -> Option<f64> {
        if self.retired == 0 {
            None
        } else {
            Some(self.cycles as f64 / self.retired as f64)
        }
    }

    /// Instructions per cycle.
    ///
    /// Returns `None` until at least one cycle has executed.
    pub fn ipc(&self) -> Option<f64> {
        if self.cycles == 0 {
            None
        } else {
            Some(self.retired as f64 / self.cycles as f64)
        }
    }

    /// Fire count of one transition.
    pub fn fires_of(&self, t: TransitionId) -> u64 {
        self.fires[t.index()]
    }

    /// Stall count of one place.
    pub fn stalls_of(&self, p: PlaceId) -> u64 {
        self.place_stalls[p.index()]
    }

    /// Mean occupancy of one place (tokens per cycle).
    pub fn mean_occupancy(&self, p: PlaceId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy[p.index()] as f64 / self.cycles as f64
        }
    }

    /// A compact human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "cycles={} retired={} cpi={} generated={} emitted={} flushed={} stalls={}",
            self.cycles,
            self.retired,
            self.cpi().map_or_else(|| "n/a".to_string(), |c| format!("{c:.3}")),
            self.generated,
            self.emitted,
            self.flushed,
            self.stalls,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_and_ipc() {
        let mut s = Stats::new(2, 1, 3);
        assert_eq!(s.cpi(), None);
        assert_eq!(s.ipc(), None);
        s.cycles = 100;
        s.retired = 50;
        assert_eq!(s.cpi(), Some(2.0));
        assert_eq!(s.ipc(), Some(0.5));
    }

    #[test]
    fn summary_mentions_key_counters() {
        let mut s = Stats::new(0, 0, 0);
        s.cycles = 7;
        let txt = s.summary();
        assert!(txt.contains("cycles=7"));
        assert!(txt.contains("cpi=n/a"));
    }

    #[test]
    fn occupancy_mean() {
        let mut s = Stats::new(0, 0, 2);
        s.cycles = 10;
        s.occupancy[1] = 25;
        assert_eq!(s.mean_occupancy(PlaceId::from_index(1)), 2.5);
        assert_eq!(s.mean_occupancy(PlaceId::from_index(0)), 0.0);
    }
}
