//! Format-stability and robustness tests for [`rcpn::artifact`].
//!
//! Two halves:
//!
//! * **Golden fixture** — a committed encoded artifact
//!   (`tests/fixtures/golden-v2.rcpn`) for a fixed spec + config. Any
//!   change to the wire encoding that is not accompanied by a
//!   [`FORMAT_VERSION`] bump fails loudly here, and the *committed*
//!   bytes (not a fresh encode) must still decode and simulate the
//!   pinned trace. Re-bless intentional format changes with
//!   `RCPN_BLESS=1 cargo test -p rcpn --test artifact_format`.
//! * **Robustness** — truncations, single-byte flips, section-tag
//!   corruption, version/magic/spec-hash mismatches, unknown hook keys
//!   and trailing bytes must each produce the matching typed
//!   [`ArtifactError`] (with a usable rendered message) and never panic.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use rcpn::artifact::{inspect, ArtifactError, HookRegistry, FORMAT_VERSION, HEADER_LEN};
use rcpn::engine::TraceEvent;
use rcpn::prelude::*;
use rcpn::spec::PipelineSpec;

/// Token payload: a class plus an immediate the named hooks key on.
#[derive(Debug, Clone)]
struct Tok {
    class: OpClassId,
    imm: u32,
}

impl InstrData for Tok {
    fn op_class(&self) -> OpClassId {
        self.class
    }
}

#[derive(Debug, Default)]
struct Feed {
    q: RefCell<VecDeque<Tok>>,
    retired: Cell<u32>,
}

/// A small fixed two-class pipeline exercising every named-hook kind:
/// transition guard and action, context action with flushes, source
/// guard and producer, and a squash handler.
fn golden_spec() -> PipelineSpec<Tok, Feed> {
    let mut s: PipelineSpec<Tok, Feed> = PipelineSpec::new("golden");
    s.stage("F", 1);
    s.latch("pf", "F");
    s.stage("X", 2);
    s.latch("px", "X");
    s.redirect("r", "px");
    {
        let a = s.class("A");
        a.step("px").guard_named("t.ready", |m, t: &Tok| t.imm % 2 == 1 || m.cycle % 4 == 0);
        a.step("end").act_named("t.retire", |m, _t, _fx| {
            m.res.retired.set(m.res.retired.get() + 1);
        });
    }
    {
        let b = s.class("B");
        b.step("px");
        b.step("end");
        b.flushes("r").act_ctx_named("t.maybe_flush", |_m, t, fx, cx| {
            if t.imm % 3 == 0 {
                for &pl in &cx.flush {
                    fx.flush(pl);
                }
            }
        });
    }
    s.on_squash_named("t.squash", |m, _t| m.res.retired.set(m.res.retired.get()));
    s.source("fetch")
        .to("pf")
        .guard_named("t.fetch_ok", |_m| true)
        .produce_named("t.feed", |m: &mut Machine<Feed>, _fx| m.res.q.borrow_mut().pop_front());
    s
}

/// The registry [`golden_spec`] artifacts decode against.
fn golden_registry() -> HookRegistry<Tok, Feed> {
    let mut r: HookRegistry<Tok, Feed> = HookRegistry::new();
    r.guard("t.ready", |_args| Box::new(|m, t| t.imm % 2 == 1 || m.cycle % 4 == 0));
    r.action("t.retire", |_args| Box::new(|m, _t, _fx| m.res.retired.set(m.res.retired.get() + 1)));
    r.action("t.maybe_flush", |args| {
        let flush = args.flush.clone();
        Box::new(move |_m, t, fx| {
            if t.imm % 3 == 0 {
                for &pl in &flush {
                    fx.flush(pl);
                }
            }
        })
    });
    r.source_guard("t.fetch_ok", |_args| Box::new(|_m| true));
    r.source_action("t.feed", |_args| Box::new(|m, _fx| m.res.q.borrow_mut().pop_front()));
    r.squash("t.squash", |_args| Box::new(|m, _t| m.res.retired.set(m.res.retired.get())));
    r
}

fn golden_machine() -> Machine<Feed> {
    let feed = Feed::default();
    let (ca, cb) = (OpClassId::from_index(0), OpClassId::from_index(1));
    feed.q.borrow_mut().extend(
        [(0u32, false), (1, true), (3, true), (5, false), (2, false), (9, true), (7, false)]
            .into_iter()
            .map(|(imm, is_b)| Tok { class: if is_b { cb } else { ca }, imm }),
    );
    Machine::new(RegisterFile::new(), feed)
}

/// Fresh spec hash + compiled artifact bytes for the golden spec under a
/// fixed (traced) engine config.
fn golden_artifact() -> (u64, Vec<u8>) {
    let spec_hash = golden_spec().content_hash();
    let model = golden_spec().lower().expect("golden spec lowers");
    let cfg = EngineConfig { trace: true, ..Default::default() };
    let compiled = CompiledModel::compile_with(model, cfg);
    let bytes = compiled.to_artifact_bytes(spec_hash).expect("golden model serializes");
    (spec_hash, bytes)
}

/// Runs a compiled golden model and folds the outcome into comparable
/// facts: the full trace, final cycle, and retire count.
fn simulate(compiled: &CompiledModel<Tok, Feed>) -> (Vec<TraceEvent>, u64, u32) {
    let mut e = compiled.instantiate(golden_machine());
    e.run(60);
    let retired = e.machine().res.retired.get();
    (e.take_trace(), e.cycle(), retired)
}

/// FNV-1a-64 (the artifact layer's own checksum, reimplemented
/// independently here so the tests can re-seal deliberately corrupted
/// payloads).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Recomputes and stores the payload checksum after a deliberate payload
/// edit, so decoding proceeds past the checksum gate.
fn reseal(bytes: &mut [u8]) {
    let c = fnv1a(&bytes[HEADER_LEN..]);
    bytes[16..24].copy_from_slice(&c.to_le_bytes());
}

fn decode(bytes: &[u8], expected: Option<u64>) -> Result<CompiledModel<Tok, Feed>, ArtifactError> {
    CompiledModel::from_artifact_bytes(bytes, expected, &golden_registry())
}

// ---------------------------------------------------------------------
// Golden fixture
// ---------------------------------------------------------------------

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden-v2.rcpn");
/// [`PipelineSpec::content_hash`] of [`golden_spec`] at bless time.
const GOLDEN_SPEC_HASH: u64 = 0x7af9_d0ff_66dd_59a5;
/// FNV-1a over the `Debug` rendering of every trace event, one per line.
const GOLDEN_TRACE_FNV: u64 = 0xeb20_5252_ed03_1d6d;
/// Final cycle and retire count of the pinned simulation.
const GOLDEN_CYCLES: u64 = 60;
const GOLDEN_RETIRED: u32 = 2;

fn trace_digest(trace: &[TraceEvent]) -> u64 {
    let mut s = String::new();
    for ev in trace {
        s.push_str(&format!("{ev:?}\n"));
    }
    fnv1a(s.as_bytes())
}

#[test]
fn golden_artifact_bytes_are_stable() {
    let (spec_hash, bytes) = golden_artifact();
    if std::env::var("RCPN_BLESS").is_ok() {
        std::fs::write(GOLDEN_PATH, &bytes).expect("write golden fixture");
        let model = decode(&bytes, Some(spec_hash)).expect("fresh artifact decodes");
        let (trace, cycles, retired) = simulate(&model);
        eprintln!(
            "blessed {GOLDEN_PATH}:\n  GOLDEN_SPEC_HASH = {spec_hash:#018x}\n  \
             GOLDEN_TRACE_FNV = {:#018x}\n  GOLDEN_CYCLES = {cycles}\n  \
             GOLDEN_RETIRED = {retired}",
            trace_digest(&trace),
        );
    }
    assert_eq!(
        spec_hash, GOLDEN_SPEC_HASH,
        "the golden spec's content hash drifted: either the spec in this file changed \
         (revert it) or spec hashing changed (a cache-compatibility break — re-bless \
         with RCPN_BLESS=1 and call it out in the changelog)"
    );
    let committed = std::fs::read(GOLDEN_PATH).expect("committed golden fixture exists");
    assert_eq!(
        bytes, committed,
        "the artifact encoding changed for an identical spec and config while \
         FORMAT_VERSION is still {FORMAT_VERSION}: that silently invalidates every \
         existing cache entry. Bump rcpn::artifact::FORMAT_VERSION and re-bless this \
         fixture with RCPN_BLESS=1"
    );
}

#[test]
fn committed_golden_artifact_still_simulates_the_pinned_trace() {
    let committed = std::fs::read(GOLDEN_PATH).expect("committed golden fixture exists");
    let info = inspect(&committed).expect("committed fixture parses");
    assert_eq!(info.format_version, FORMAT_VERSION);
    assert!(info.checksum_ok, "committed fixture checksum must hold");
    let model = decode(&committed, Some(GOLDEN_SPEC_HASH)).expect("committed fixture decodes");
    let (trace, cycles, retired) = simulate(&model);
    assert_eq!(cycles, GOLDEN_CYCLES, "pinned final cycle");
    assert_eq!(retired, GOLDEN_RETIRED, "pinned retire count");
    assert_eq!(trace_digest(&trace), GOLDEN_TRACE_FNV, "pinned trace digest");
}

// ---------------------------------------------------------------------
// Robustness: every corruption is a typed error, never a panic
// ---------------------------------------------------------------------

#[test]
fn every_truncation_is_a_typed_error() {
    let (spec_hash, bytes) = golden_artifact();
    for len in 0..bytes.len() {
        let err = decode(&bytes[..len], Some(spec_hash))
            .expect_err("every strict prefix must fail to decode");
        assert!(
            matches!(err, ArtifactError::Truncated { .. } | ArtifactError::Checksum { .. }),
            "prefix of {len} bytes: unexpected {err:?}"
        );
        // And the generic-free parse must agree (modulo checksum, which
        // `inspect` reports instead of enforcing).
        if let Err(e) = inspect(&bytes[..len]) {
            assert!(
                matches!(e, ArtifactError::Truncated { .. }),
                "inspect of {len}-byte prefix: unexpected {e:?}"
            );
        }
    }
}

#[test]
fn every_single_byte_flip_is_a_typed_error() {
    let (spec_hash, bytes) = golden_artifact();
    for i in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0xff;
        let err = decode(&mutated, Some(spec_hash))
            .expect_err("a flipped byte must never decode silently");
        // Which typed error depends on where the byte lives (magic,
        // version, spec hash, checksum word, payload); all are errors.
        drop(err);
    }
}

#[test]
fn flipping_a_byte_in_each_section_body_trips_the_checksum() {
    let (spec_hash, bytes) = golden_artifact();
    let info = inspect(&bytes).expect("artifact parses");
    for sec in &info.sections {
        if sec.len == 0 {
            continue;
        }
        let mut mutated = bytes.clone();
        mutated[sec.offset] ^= 0x5a;
        let err = decode(&mutated, Some(spec_hash)).expect_err("corrupt body must not decode");
        assert!(
            matches!(err, ArtifactError::Checksum { .. }),
            "section {}: expected a checksum error, got {err:?}",
            sec.name
        );
        assert!(err.to_string().contains("checksum mismatch"), "message: {err}");
    }
}

#[test]
fn corrupting_each_section_tag_is_reported_by_section() {
    let (spec_hash, bytes) = golden_artifact();
    let info = inspect(&bytes).expect("artifact parses");
    for sec in &info.sections {
        let mut mutated = bytes.clone();
        mutated[sec.offset - 5] = 0xee; // the section's tag byte
        reseal(&mut mutated);
        let err = decode(&mutated, Some(spec_hash)).expect_err("bad tag must not decode");
        match &err {
            ArtifactError::Corrupt { section, detail } => {
                assert_eq!(*section, sec.name);
                assert!(detail.contains("section tag"), "detail: {detail}");
            }
            other => panic!("section {}: expected Corrupt, got {other:?}", sec.name),
        }
        assert!(err.to_string().contains("section is corrupt"), "message: {err}");
    }
}

#[test]
fn version_mismatch_is_typed_and_actionable() {
    let (spec_hash, mut bytes) = golden_artifact();
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    let err = decode(&bytes, Some(spec_hash)).expect_err("future version must not decode");
    assert_eq!(err, ArtifactError::Version { found: 99, expected: FORMAT_VERSION });
    let msg = err.to_string();
    assert!(msg.contains("format version 99"), "message: {msg}");
    assert!(msg.contains("recompile"), "message must say what to do: {msg}");
}

#[test]
fn bad_magic_is_typed() {
    let (spec_hash, mut bytes) = golden_artifact();
    bytes[0..4].copy_from_slice(b"JUNK");
    let err = decode(&bytes, Some(spec_hash)).expect_err("foreign file must not decode");
    assert_eq!(err, ArtifactError::BadMagic { found: *b"JUNK" });
    assert!(err.to_string().contains("not an rcpn artifact"), "message: {err}");
}

#[test]
fn spec_hash_mismatch_is_typed() {
    let (spec_hash, bytes) = golden_artifact();
    let err = decode(&bytes, Some(spec_hash ^ 1))
        .expect_err("an artifact for another spec must not decode");
    assert_eq!(err, ArtifactError::SpecHash { found: spec_hash, expected: spec_hash ^ 1 });
    assert!(err.to_string().contains("built from spec"), "message: {err}");
    // Without an expectation the same bytes decode fine.
    decode(&bytes, None).expect("hash check is opt-in");
}

#[test]
fn unknown_hook_keys_are_typed() {
    let (spec_hash, bytes) = golden_artifact();
    let empty: HookRegistry<Tok, Feed> = HookRegistry::new();
    let err = CompiledModel::from_artifact_bytes(&bytes, Some(spec_hash), &empty)
        .expect_err("no registry entries: decode must fail");
    match &err {
        ArtifactError::UnknownHook { key, .. } => {
            assert!(key.starts_with("t."), "key: {key}");
        }
        other => panic!("expected UnknownHook, got {other:?}"),
    }
    assert!(err.to_string().contains("unregistered"), "message: {err}");
}

#[test]
fn trailing_bytes_are_typed() {
    let (spec_hash, mut bytes) = golden_artifact();
    bytes.extend_from_slice(&[1, 2, 3]);
    reseal(&mut bytes);
    let err = decode(&bytes, Some(spec_hash)).expect_err("trailing bytes must not decode");
    assert_eq!(err, ArtifactError::TrailingBytes { len: 3 });
    assert!(err.to_string().contains("3 trailing bytes"), "message: {err}");
}

#[test]
fn unnamed_closures_fail_encoding_with_the_entity_name() {
    // The same pipeline but with one anonymous guard: serialization must
    // refuse, naming the offending transition.
    let mut s = golden_spec();
    s.class("C").step("px").guard(|_m, t: &Tok| t.imm == 0);
    let spec_hash = s.content_hash();
    let model = s.lower().expect("spec lowers");
    let compiled = CompiledModel::compile_with(model, EngineConfig::default());
    let err =
        compiled.to_artifact_bytes(spec_hash).expect_err("anonymous closures must not serialize");
    match &err {
        ArtifactError::UnnamedClosure { entity } => {
            assert!(entity.contains("guard"), "entity: {entity}");
        }
        other => panic!("expected UnnamedClosure, got {other:?}"),
    }
    assert!(err.to_string().contains("without a registry name"), "message: {err}");
}

#[test]
fn roundtrip_of_the_golden_model_is_bit_identical() {
    let (spec_hash, bytes) = golden_artifact();
    let model = golden_spec().lower().expect("golden spec lowers");
    let fresh =
        CompiledModel::compile_with(model, EngineConfig { trace: true, ..Default::default() });
    let reloaded = decode(&bytes, Some(spec_hash)).expect("artifact decodes");
    assert_eq!(simulate(&fresh), simulate(&reloaded), "fresh vs reloaded simulation");
}
