//! Behavioral tests for cross-place chain dispatch: partial-chain
//! progress when a downstream stage is occupied (the parked cursor must
//! replay the generic stall bookkeeping bit-identically), the
//! interference bailout (a guard reading an intermediate place blocks
//! link formation), and counter honesty with chains disabled.
//!
//! The processor crates pin the same contract on the real ARM models
//! (`spec_oracle`); these tests pin it on minimal hand-built pipelines
//! where a divergence localizes to a single link.

use std::cell::RefCell;
use std::collections::VecDeque;

use rcpn::compiled::CompiledModel;
use rcpn::prelude::*;

/// Opcode-only token: chains care about `(place, class)` routing, not
/// operands.
#[derive(Debug, Clone)]
struct Tok {
    class: OpClassId,
}

impl InstrData for Tok {
    fn op_class(&self) -> OpClassId {
        self.class
    }
    fn src_operands(&self) -> &[Operand] {
        &[]
    }
    fn src_operands_mut(&mut self) -> &mut [Operand] {
        &mut []
    }
    fn dst_count(&self) -> usize {
        0
    }
    fn dst_operand(&self, _i: usize) -> &Operand {
        unreachable!("no destinations")
    }
    fn dst_operand_mut(&mut self, _i: usize) -> &mut Operand {
        unreachable!("no destinations")
    }
}

#[derive(Debug, Default)]
struct Feed {
    q: RefCell<VecDeque<Tok>>,
}

fn machine(n: usize) -> Machine<Feed> {
    let feed = Feed::default();
    feed.q.borrow_mut().extend((0..n).map(|_| Tok { class: OpClassId::from_index(0) }));
    Machine::new(RegisterFile::new(), feed)
}

/// P1 -> P2 -> P3 -> end, every transition single-candidate and
/// hook-free, so superblocks form at all three places. `slow_exec` gives
/// the P2 -> P3 move a 2-cycle delay: tokens then occupy S3 long enough
/// that the cursor parked at P2 finds the downstream stage full and must
/// take the generic-fallback path. `observer` adds a transition whose
/// guard reads P2 — the interference that must sever the P1 -> P2 link.
fn pipeline(slow_exec: bool, observer: bool) -> Model<Tok, Feed> {
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let s1 = b.stage("S1", 1);
    let s2 = b.stage("S2", 1);
    let s3 = b.stage("S3", 1);
    let p1 = b.place("P1", s1);
    let p2 = b.place("P2", s2);
    let p3 = b.place("P3", s3);
    let end = b.end_place();
    let (c, _) = b.class_net("C");
    b.transition(c, "issue").from(p1).to(p2).done();
    let exec = b.transition(c, "exec").from(p2).to(p3);
    if slow_exec {
        exec.delay(2).done()
    } else {
        exec.done()
    };
    b.transition(c, "wb").from(p3).to(end).done();
    if observer {
        // A parallel path whose issue guard reads P2 (forwarding-style
        // interference). Its source never produces, so the runtime
        // behavior of the main pipe is unchanged — only chain formation
        // may react.
        let s4 = b.stage("S4", 1);
        let p4 = b.place("P4", s4);
        b.transition(c, "spy").from(p4).to(end).reads_state(p2).done();
        b.source("idle").to(p4).produce(|_m, _fx| None).done();
    }
    b.source("feed").to(p1).produce(|m, _fx| m.res.q.borrow_mut().pop_front()).done();
    b.build().expect("pipeline validates")
}

struct Outcome {
    trace: Vec<rcpn::engine::TraceEvent>,
    stats: Stats,
    sched: SchedStats,
}

fn run(model: Model<Tok, Feed>, chains: bool, n: usize) -> (usize, usize, Outcome) {
    let cfg = EngineConfig { trace: true, chains, ..Default::default() };
    let compiled = CompiledModel::compile_with(model, cfg);
    let (entries, links) = (compiled.chains(), compiled.chain_links());
    let mut e = compiled.instantiate(machine(n));
    e.run(120);
    let o = Outcome { trace: e.take_trace(), stats: e.stats().clone(), sched: e.sched().clone() };
    assert_eq!(o.stats.retired, n as u64, "workload must drain");
    (entries, links, o)
}

fn assert_identical(a: &Outcome, b: &Outcome, what: &str) {
    assert_eq!(a.trace, b.trace, "{what}: trace");
    assert_eq!(a.stats, b.stats, "{what}: Stats");
    assert_eq!(
        a.sched.dispatch_normalized(),
        b.sched.dispatch_normalized(),
        "{what}: normalized SchedStats"
    );
}

/// A chain makes partial progress when the next stage is occupied: the
/// 2-cycle exec keeps S3 full, so cursors parked at P2 repeatedly fail
/// validation-or-guard and must replay the exact stall bookkeeping the
/// generic sweep would have produced — stalls and all counters stay
/// bit-identical to the chains-off oracle, while successful links still
/// fire on the cycles where the stage has drained.
#[test]
fn partial_chain_progress_with_downstream_stage_occupied() {
    let (_, _, on) = run(pipeline(true, false), true, 8);
    let (_, _, off) = run(pipeline(true, false), false, 8);
    assert_identical(&on, &off, "occupied-stage chains on/off");
    assert!(on.stats.stalls > 0, "the slow exec must force capacity stalls");
    assert!(on.sched.chains_entered > 0, "cursors must be parked");
    assert!(on.sched.chain_links_fired > 0, "drained cycles must fire through cursors");
    assert_eq!(
        on.sched.place_visits + on.sched.chain_links_fired,
        off.sched.place_visits,
        "each fired link elides exactly one place visit; each failed cursor replays it"
    );
    assert_eq!(off.sched.chains_entered, 0);
    assert_eq!(off.sched.chain_links_fired, 0);
}

/// Interference bailout: a guard that reads an intermediate place keeps
/// that place out of any chain *interior*. With the observer reading P2,
/// the P1 -> P2 link must be severed (a token at P2 is observable state
/// the chain may not skip past), while the P2 -> P3 link survives —
/// and execution stays bit-identical either way.
#[test]
fn guard_reading_intermediate_place_blocks_fusion() {
    let (_, links_free, _) = run(pipeline(false, false), true, 6);
    assert_eq!(links_free, 2, "unobserved pipe links P1->P2 and P2->P3");

    let (entries, links_observed, on) = run(pipeline(false, true), true, 6);
    assert_eq!(links_observed, 1, "observed P2 must sever the link into it");
    assert!(entries > 0, "guard reads do not outlaw chain heads");
    let (_, _, off) = run(pipeline(false, true), false, 6);
    assert_identical(&on, &off, "observed-pipe chains on/off");
    assert!(on.sched.chain_links_fired > 0, "the surviving link must still fire");
}

/// Counter honesty: with `chains: false` the compiler must emit no chain
/// tables and the engine must report zero chain activity, while the
/// superblock oracle still runs — and the default twin shows both
/// counters alive.
#[test]
fn chains_off_reports_zero_chain_activity() {
    let (entries, links, off) = run(pipeline(false, false), false, 6);
    assert_eq!(entries, 0, "no entry table when chains are off");
    assert_eq!(links, 0, "no links when chains are off");
    assert_eq!(off.sched.chains_entered, 0);
    assert_eq!(off.sched.chain_links_fired, 0);
    assert!(off.sched.superblocks_entered > 0, "superblocks stay on without chains");

    let (entries, links, on) = run(pipeline(false, false), true, 6);
    assert!(entries > 0 && links > 0);
    assert!(on.sched.chains_entered > 0);
    assert!(on.sched.chain_links_fired > 0);
    assert_identical(&on, &off, "smooth-pipe chains on/off");
}
