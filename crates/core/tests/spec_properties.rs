//! Property tests for the spec layer: random valid [`PipelineSpec`]s —
//! random stage counts, capacities, delays, forwarding sets, alternative
//! edges, reservation arcs — must lower successfully, carry a coherent
//! static analysis, and drive engines that are deterministic both across
//! rebuilds and across batch worker counts (1 vs 8), since a lowered
//! model is exactly as batchable as a hand-wired one. The second half
//! pins the dispatch refactor: random specs over a *lowerable* operand
//! policy must simulate bit-identically whether their read steps compile
//! to micro-op IR ([`Lowering::Auto`]) or to closures
//! ([`Lowering::Closures`]), and — on the IR side — whether hook-free
//! transitions dispatch through compiled superblocks or the per-op
//! interpreter. The final block extends the differential through the
//! artifact layer: a random spec whose closures all carry registry
//! names must serialize to [`rcpn::artifact`] bytes, reload against a
//! hook registry, and simulate bit-identically — fresh compile vs
//! reload vs reload-of-a-re-encode — under every table mode and both
//! schedulers.

use std::cell::RefCell;
use std::collections::VecDeque;

use proptest::prelude::*;
use rcpn::batch::BatchRunner;
use rcpn::prelude::*;
use rcpn::spec::{Forward, OperandPolicy, PipelineSpec, SquashOrder};

/// Token payload: a class plus an immediate guards key on.
#[derive(Debug, Clone)]
struct Tok {
    class: OpClassId,
    imm: u32,
}

impl InstrData for Tok {
    fn op_class(&self) -> OpClassId {
        self.class
    }
}

/// Per-engine program feed.
#[derive(Debug, Default)]
struct Feed {
    program: RefCell<VecDeque<Tok>>,
}

/// A deterministic toy operand policy: "operands" are ready unless the
/// token's immediate and the cycle parity collide — enough to create
/// data-hazard-like stalls without a register file.
struct ParityOperands;
impl OperandPolicy<Tok, Feed> for ParityOperands {
    fn ready(&self, m: &Machine<Feed>, t: &Tok, fwd: &[PlaceId]) -> bool {
        t.imm % 3 != 0 || m.cycle % 2 == u64::from(!fwd.is_empty())
    }
    fn acquire(&self, _m: &mut Machine<Feed>, t: &mut Tok, _fx: &mut Fx<Tok>, _f: &[PlaceId]) {
        t.imm = t.imm.rotate_left(1);
    }
}

/// The random spec shape.
#[derive(Debug, Clone)]
struct Shape {
    n_stages: usize,
    caps: Vec<u32>,
    delays: Vec<u32>,
    forward_last: bool,
    read_forward: bool,
    skip: Option<usize>,
    reserve: Option<(usize, u32)>,
    redirect: bool,
    front_first: bool,
    width: u32,
    program: Vec<(bool, u32)>,
}

fn build_spec(shape: &Shape) -> PipelineSpec<Tok, Feed> {
    let n = shape.n_stages;
    let latch = |i: usize| format!("P{i}");
    let mut s = PipelineSpec::new("generated");
    for i in 0..n {
        s.stage(&format!("S{i}"), shape.caps[i % shape.caps.len()]);
        let name = latch(i);
        s.latch_with_delay(&name, &format!("S{i}"), shape.delays[i % shape.delays.len()]);
    }
    if shape.forward_last {
        s.forwards(&[&latch(n - 1)]);
    }
    s.hazard_policy(if shape.front_first {
        SquashOrder::FrontFirst
    } else {
        SquashOrder::NearestFirst
    });
    s.operand_policy(ParityOperands);
    if shape.redirect && n >= 2 {
        s.redirect("r", &latch(n - 1));
    }

    // Class A: the plain spine.
    {
        let a = s.class("A");
        for i in 1..n {
            a.step(&latch(i));
        }
        a.step("end");
    }

    // Class B: a read step, an optional skip alternative, an optional
    // reservation arc and an optional flushing retire.
    {
        let fw =
            if shape.forward_last && shape.read_forward { Forward::All } else { Forward::None };
        let b = s.class("B");
        if n >= 2 {
            b.step(&latch(1)).read(fw);
        }
        if let Some(k) = shape.skip {
            if n >= 3 {
                let dest = 2 + k % (n - 2).max(1);
                b.alt(&latch(dest.min(n - 1))).priority(7).guard(|_m, t| t.imm % 5 == 0);
            }
        }
        for i in 2..n {
            b.step(&latch(i));
        }
        b.step("end");
        if let Some((p, expire)) = shape.reserve {
            b.reserve(&latch(p % n), expire + 1);
        }
        if shape.redirect && n >= 2 {
            b.flushes("r").act_ctx(|_m, t, fx, cx| {
                if t.imm % 7 == 0 {
                    for &pl in &cx.flush {
                        fx.flush(pl);
                    }
                }
            });
        }
    }

    let width = shape.width;
    s.source("fetch")
        .to(&latch(0))
        .width(width)
        .produce(|m: &mut Machine<Feed>, _fx| m.res.program.borrow_mut().pop_front());
    s
}

fn machine_for(shape: &Shape) -> Machine<Feed> {
    let feed = Feed::default();
    let (ca, cb) = (OpClassId::from_index(0), OpClassId::from_index(1));
    feed.program.borrow_mut().extend(
        shape.program.iter().map(|&(is_b, imm)| Tok { class: if is_b { cb } else { ca }, imm }),
    );
    Machine::new(RegisterFile::new(), feed)
}

/// Token with real register operands, for the IR-vs-closure differential.
#[derive(Debug, Clone)]
struct RegTok {
    class: OpClassId,
    imm: u32,
    /// Pre-resolved condition for the `when_cond` alternative.
    pass: bool,
    annulled: bool,
    srcs: [Operand; 2],
    dst: Operand,
}

impl InstrData for RegTok {
    fn op_class(&self) -> OpClassId {
        self.class
    }
    fn cond_passes(&self) -> bool {
        self.pass
    }
    fn annulled(&self) -> bool {
        self.annulled
    }
    fn set_annulled(&mut self) {
        self.annulled = true;
    }
    fn src_operands(&self) -> &[Operand] {
        &self.srcs
    }
    fn src_operands_mut(&mut self) -> &mut [Operand] {
        &mut self.srcs
    }
    fn dst_count(&self) -> usize {
        1
    }
    fn dst_operand(&self, i: usize) -> &Operand {
        assert_eq!(i, 0);
        &self.dst
    }
    fn dst_operand_mut(&mut self, i: usize) -> &mut Operand {
        assert_eq!(i, 0);
        &mut self.dst
    }
}

#[derive(Debug, Default)]
struct RegFeed {
    q: RefCell<VecDeque<RegTok>>,
}

/// The standard scoreboard discipline in closure form; `lowers_to_ir`
/// lets [`Lowering::Auto`] compile the very same semantics to
/// `CheckReady`/`AcquireOperands` micro-ops.
struct ScoreboardPolicy;
impl OperandPolicy<RegTok, RegFeed> for ScoreboardPolicy {
    fn ready(&self, m: &Machine<RegFeed>, t: &RegTok, fwd: &[PlaceId]) -> bool {
        t.srcs.iter().all(|s| s.can_read(&m.regs) || fwd.iter().any(|&p| s.can_read_in(&m.regs, p)))
            && t.dst.can_write(&m.regs)
    }
    fn acquire(
        &self,
        m: &mut Machine<RegFeed>,
        t: &mut RegTok,
        fx: &mut Fx<RegTok>,
        fwd: &[PlaceId],
    ) {
        for s in &mut t.srcs {
            if s.can_read(&m.regs) {
                s.read(&m.regs);
            } else if let Some(_p) = fwd.iter().find(|&&p| s.can_read_in(&m.regs, p)) {
                s.read_fwd(&m.regs);
            }
        }
        let tok = fx.token();
        t.dst.reserve_write(&mut m.regs, tok, PlaceId::from_index(0));
    }
    fn lowers_to_ir(&self) -> bool {
        true
    }
}

/// Shape of a random register-operand spec.
#[derive(Debug, Clone)]
struct RegShape {
    n_stages: usize,
    caps: Vec<u32>,
    forward: bool,
    skip: bool,
    /// Class B gets a `when_cond(false)` + `annuls()` alternative.
    cond_skip: bool,
    /// Class A re-publishes its result from the first post-read latch.
    publish: bool,
    /// Class B's retire carries a static `flushes_always` redirect.
    static_flush: bool,
    width: u32,
    /// (is_class_b, dst, s1, s2, imm) per instruction, registers mod 4.
    program: Vec<(bool, u8, u8, u8, u32)>,
}

fn build_reg_spec(shape: &RegShape, lowering: Lowering) -> PipelineSpec<RegTok, RegFeed> {
    let n = shape.n_stages;
    let latch = |i: usize| format!("P{i}");
    let mut s = PipelineSpec::new("reg-generated");
    for i in 0..n {
        s.stage(&format!("S{i}"), shape.caps[i % shape.caps.len()]);
        s.latch(&latch(i), &format!("S{i}"));
    }
    s.lowering(lowering);
    if shape.forward {
        s.forwards(&[&latch(1.min(n - 1))]);
    }
    s.operand_policy(ScoreboardPolicy);
    if shape.static_flush {
        s.redirect("rs", &latch(n - 1));
    }

    // Class A: read step with a publish-on-issue read_then (exercises the
    // CallHook composition under IR lowering), then the spine, then a
    // writeback retire.
    {
        let fw = if shape.forward { Forward::All } else { Forward::None };
        let a = s.class("A");
        a.step(&latch(1.min(n - 1))).read_then(fw, |m, t, fx| {
            let v = t.srcs[0].value().wrapping_add(t.srcs[1].value()).wrapping_add(t.imm);
            let tok = fx.token();
            t.dst.set(&mut m.regs, tok, v);
        });
        for i in 2..n {
            let st = a.step(&latch(i));
            // Re-publishing the latched result is a no-op semantically
            // (the read step already published) but compiles to a bare
            // `Publish` micro-op — a superblockable action.
            if shape.publish && i == 2 {
                st.publish();
            }
        }
        a.step("end").act(|m, t, fx| t.dst.writeback(&mut m.regs, fx.token()));
    }

    // Class B: operand-less spine with an optional guarded skip, an
    // optional condition-checked annul alternative and an optional
    // statically flushing retire.
    {
        let b = s.class("B");
        b.step(&latch(1.min(n - 1)));
        if shape.skip && n >= 3 {
            b.alt("end").priority(9).guard(|_m, t| t.imm % 3 == 0);
        }
        if shape.cond_skip {
            b.alt("end").priority(8).when_cond(false).annuls();
        }
        for i in 2..n {
            b.step(&latch(i));
        }
        let e = b.step("end");
        if shape.static_flush {
            e.flushes_always("rs");
        }
    }

    s.source("feed")
        .to(&latch(0))
        .width(shape.width)
        .produce(|m: &mut Machine<RegFeed>, _fx| m.res.q.borrow_mut().pop_front());
    s
}

fn reg_machine(shape: &RegShape) -> Machine<RegFeed> {
    let mut rf = RegisterFile::new();
    let regs = rf.add_bank("r", 4);
    let feed = RegFeed::default();
    {
        let mut q = feed.q.borrow_mut();
        let (ca, cb) = (OpClassId::from_index(0), OpClassId::from_index(1));
        for &(is_b, d, s1, s2, imm) in &shape.program {
            let pass = imm % 2 == 0;
            q.push_back(if is_b {
                RegTok {
                    class: cb,
                    imm,
                    pass,
                    annulled: false,
                    srcs: [Operand::Absent, Operand::Absent],
                    dst: Operand::Absent,
                }
            } else {
                RegTok {
                    class: ca,
                    imm,
                    pass,
                    annulled: false,
                    srcs: [
                        Operand::reg(regs[s1 as usize % 4]),
                        Operand::reg(regs[s2 as usize % 4]),
                    ],
                    dst: Operand::reg(regs[d as usize % 4]),
                }
            });
        }
    }
    let mut m = Machine::new(rf, feed);
    for (i, &r) in regs.iter().enumerate() {
        m.regs.poke(r, 10 * i as u32 + 1);
    }
    m
}

/// The same pipeline as [`build_reg_spec`] under [`Lowering::Auto`], but
/// every escape-hatch closure is attached through the `_named` spec API
/// with a `test.*` key, so the compiled model serializes to an artifact
/// (the synthesized capabilities — `when_cond`, `annuls`, `publish`,
/// `flushes_always`, the scoreboard read steps — are pure IR and need no
/// names).
fn build_named_reg_spec(shape: &RegShape) -> PipelineSpec<RegTok, RegFeed> {
    let n = shape.n_stages;
    let latch = |i: usize| format!("P{i}");
    let mut s = PipelineSpec::new("reg-named");
    for i in 0..n {
        s.stage(&format!("S{i}"), shape.caps[i % shape.caps.len()]);
        s.latch(&latch(i), &format!("S{i}"));
    }
    if shape.forward {
        s.forwards(&[&latch(1.min(n - 1))]);
    }
    s.operand_policy(ScoreboardPolicy);
    if shape.static_flush {
        s.redirect("rs", &latch(n - 1));
    }
    {
        let fw = if shape.forward { Forward::All } else { Forward::None };
        let a = s.class("A");
        a.step(&latch(1.min(n - 1))).read_then_named(fw, "test.pub_add", |m, t, fx| {
            let v = t.srcs[0].value().wrapping_add(t.srcs[1].value()).wrapping_add(t.imm);
            let tok = fx.token();
            t.dst.set(&mut m.regs, tok, v);
        });
        for i in 2..n {
            let st = a.step(&latch(i));
            if shape.publish && i == 2 {
                st.publish();
            }
        }
        a.step("end").act_named("test.writeback", |m, t, fx| {
            t.dst.writeback(&mut m.regs, fx.token());
        });
    }
    {
        let b = s.class("B");
        b.step(&latch(1.min(n - 1)));
        if shape.skip && n >= 3 {
            b.alt("end").priority(9).guard_named("test.skip_mod3", |_m, t| t.imm % 3 == 0);
        }
        if shape.cond_skip {
            b.alt("end").priority(8).when_cond(false).annuls();
        }
        for i in 2..n {
            b.step(&latch(i));
        }
        let e = b.step("end");
        if shape.static_flush {
            e.flushes_always("rs");
        }
    }
    s.source("feed")
        .to(&latch(0))
        .width(shape.width)
        .produce_named("test.feed", |m: &mut Machine<RegFeed>, _fx| {
            m.res.q.borrow_mut().pop_front()
        });
    s
}

/// The registry [`build_named_reg_spec`] artifacts decode against: one
/// factory per `test.*` key, rebuilding the exact closures the spec
/// attaches.
fn roundtrip_registry() -> HookRegistry<RegTok, RegFeed> {
    let mut r: HookRegistry<RegTok, RegFeed> = HookRegistry::new();
    r.action("test.pub_add", |_args| {
        Box::new(|m, t, fx| {
            let v = t.srcs[0].value().wrapping_add(t.srcs[1].value()).wrapping_add(t.imm);
            let tok = fx.token();
            t.dst.set(&mut m.regs, tok, v);
        })
    });
    r.action("test.writeback", |_args| {
        Box::new(|m, t, fx| t.dst.writeback(&mut m.regs, fx.token()))
    });
    r.guard("test.skip_mod3", |_args| Box::new(|_m, t| t.imm % 3 == 0));
    r.source_action("test.feed", |_args| Box::new(|m, _fx| m.res.q.borrow_mut().pop_front()));
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random specs lower, the analysis is coherent, and two independent
    /// lowerings simulate bit-identically (lowering is deterministic).
    #[test]
    fn random_specs_lower_and_simulate_deterministically(
        n_stages in 2usize..=5,
        caps in proptest::collection::vec(1u32..=2, 1..=3),
        delays in proptest::collection::vec(0u32..=2, 1..=3),
        forward_last in any::<bool>(),
        read_forward in any::<bool>(),
        skip_raw in 0usize..4,
        use_skip in any::<bool>(),
        reserve_raw in (0usize..5, 0u32..=2),
        use_reserve in any::<bool>(),
        redirect in any::<bool>(),
        front_first in any::<bool>(),
        width in 1u32..=2,
        program in proptest::collection::vec((any::<bool>(), 0u32..64), 1..24),
    ) {
        let shape = Shape {
            n_stages, caps, delays, forward_last, read_forward,
            skip: use_skip.then_some(skip_raw),
            reserve: use_reserve.then_some(reserve_raw),
            redirect, front_first, width, program,
        };
        let model = build_spec(&shape).lower().expect("generated spec lowers");
        // Analysis coherence: the evaluation order covers every place
        // exactly once.
        let mut seen = vec![false; model.place_count()];
        for &p in model.analysis().order() {
            prop_assert!(!seen[p.index()], "place {p:?} evaluated twice");
            seen[p.index()] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "evaluation order misses places");
        prop_assert_eq!(model.op_class_count(), 2);

        // Rebuild determinism: two independent lowerings, same simulation.
        let runs: Vec<(Stats, SchedStats)> = (0..2)
            .map(|_| {
                let model = build_spec(&shape).lower().expect("lowers");
                let mut e = Engine::with_config(model, machine_for(&shape), EngineConfig::default());
                e.run(200);
                (e.stats().clone(), e.sched().clone())
            })
            .collect();
        prop_assert_eq!(&runs[0].0, &runs[1].0, "stats must not depend on the lowering run");
        prop_assert_eq!(&runs[0].1, &runs[1].1);
    }

    /// A lowered model batches like a hand-wired one: per-job stats are
    /// bit-identical between 1 and 8 workers over a shared compiled
    /// artifact.
    #[test]
    fn lowered_models_batch_deterministically(
        n_stages in 2usize..=4,
        forward_last in any::<bool>(),
        skip_raw in 0usize..4,
        use_skip in any::<bool>(),
        programs in proptest::collection::vec(
            proptest::collection::vec((any::<bool>(), 0u32..64), 1..12),
            2..6,
        ),
    ) {
        let shape = Shape {
            n_stages,
            caps: vec![1],
            delays: vec![0, 1],
            forward_last,
            read_forward: forward_last,
            skip: use_skip.then_some(skip_raw),
            reserve: None,
            redirect: true,
            front_first: true,
            width: 1,
            program: Vec::new(),
        };
        let model = build_spec(&shape).lower().expect("lowers");
        let compiled = CompiledModel::compile(model);
        let job = |_idx: usize, program: &Vec<(bool, u32)>| {
            let shape = Shape { program: program.clone(), ..shape.clone() };
            let mut e = compiled.instantiate(machine_for(&shape));
            e.run(150);
            (e.stats().clone(), e.sched().clone())
        };
        let serial = BatchRunner::new(1).run(&programs, job);
        let parallel = BatchRunner::new(8).run(&programs, job);
        prop_assert_eq!(serial, parallel, "batched lowered models must be deterministic");
    }

    /// The dispatch differential: a random spec over the lowerable
    /// scoreboard policy — including the synthesized `when_cond`,
    /// `publish`, `annuls` and `flushes_always` step capabilities — must
    /// simulate bit-identically across four compiled variants: micro-op
    /// IR with chained superblock dispatch (the default), IR with
    /// superblocks but no cross-place chains (`chains: false`), IR with
    /// the per-op interpreter (`superblocks: false`) and the closure
    /// lowering. Identity covers trace, `Stats`, dispatch-normalized
    /// `SchedStats` and architectural registers; the raw counters prove
    /// each variant ran its own path.
    #[test]
    fn random_specs_chains_superblock_per_op_and_closures_bit_identically(
        n_stages in 2usize..=5,
        caps in proptest::collection::vec(1u32..=2, 1..=3),
        forward in any::<bool>(),
        skip in any::<bool>(),
        cond_skip in any::<bool>(),
        publish in any::<bool>(),
        static_flush in any::<bool>(),
        width in 1u32..=2,
        program in proptest::collection::vec(
            (any::<bool>(), 0u8..4, 0u8..4, 0u8..4, 0u32..64),
            1..20,
        ),
    ) {
        let shape = RegShape {
            n_stages, caps, forward, skip, cond_skip, publish, static_flush, width, program,
        };
        let mut outcomes = Vec::new();
        for (lowering, superblocks, chains) in [
            (Lowering::Auto, true, true),
            (Lowering::Auto, true, false),
            (Lowering::Auto, false, false),
            (Lowering::Closures, false, false),
        ] {
            let model = build_reg_spec(&shape, lowering).lower().expect("reg spec lowers");
            let cfg = EngineConfig { trace: true, superblocks, chains, ..Default::default() };
            let compiled = CompiledModel::compile_with(model, cfg);
            let is_auto = lowering == Lowering::Auto;
            prop_assert_eq!(
                compiled.ir_transitions() > 0,
                is_auto,
                "IR transitions iff Auto lowering"
            );
            if superblocks && n_stages >= 3 {
                // The class-A spine always has a single-candidate
                // hook-free mid transition, so formation must trigger.
                prop_assert!(compiled.superblocks() > 0, "spine must form a superblock");
            }
            if !superblocks {
                prop_assert_eq!(compiled.superblocks(), 0, "sb tables only when enabled");
            }
            if !chains {
                prop_assert_eq!(compiled.chains(), 0, "chain tables only when enabled");
                prop_assert_eq!(compiled.chain_links(), 0, "chain links only when enabled");
            }
            let mut e = compiled.instantiate(reg_machine(&shape));
            e.run(120);
            let regs: Vec<u32> =
                (0..4).map(|i| e.machine().regs.value_of(RegId::from_index(i))).collect();
            outcomes.push((e.take_trace(), e.stats().clone(), e.sched().clone(), regs));
        }
        let (ch, sb, po, cl) = (&outcomes[0], &outcomes[1], &outcomes[2], &outcomes[3]);
        for (name, o) in [("superblocks", sb), ("per-op", po), ("closures", cl)] {
            prop_assert_eq!(&ch.0, &o.0, "chains vs {}: trace", name);
            prop_assert_eq!(&ch.1, &o.1, "chains vs {}: Stats", name);
            prop_assert_eq!(
                ch.2.dispatch_normalized(),
                o.2.dispatch_normalized(),
                "chains vs {}: normalized SchedStats", name
            );
            prop_assert_eq!(&ch.3, &o.3, "chains vs {}: architectural state", name);
            prop_assert_eq!(o.2.chains_entered, 0, "{} must not park chain cursors", name);
            prop_assert_eq!(o.2.chain_links_fired, 0, "{} must not fire chain links", name);
        }
        for (name, o) in [("per-op", po), ("closures", cl)] {
            prop_assert_eq!(o.2.superblocks_entered, 0, "{} must not enter superblocks", name);
            prop_assert_eq!(o.2.ops_inlined, 0, "{} must not inline ops", name);
        }
        prop_assert_eq!(cl.2.guard_ir_evals, 0, "closure lowering must not run IR");
        // If any class-A instruction issued, the IR variants ran IR guards.
        if ch.1.fires.first().copied().unwrap_or(0) > 0 {
            prop_assert!(ch.2.guard_ir_evals > 0, "IR lowering must use the IR interpreter");
            prop_assert!(ch.2.actions_fused > 0, "read steps must fuse");
        }
    }
}

proptest! {
    // Each case compiles, encodes, decodes twice and simulates three
    // times per {table mode × scheduler} cell; fewer cases keep the
    // suite's runtime in line with the other differentials.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The artifact round-trip differential: for a random fully-named
    /// spec, a fresh compile, a reload of its artifact, and a reload of
    /// the reloaded model's *re-encoded* artifact must simulate
    /// bit-identically (trace, `Stats`, `SchedStats`, architectural
    /// registers) under every table mode and both schedulers — and the
    /// re-encoded bytes must equal the original encoding, pinning the
    /// codec as deterministic and lossless.
    #[test]
    fn random_specs_roundtrip_through_artifacts_bit_identically(
        n_stages in 2usize..=4,
        caps in proptest::collection::vec(1u32..=2, 1..=3),
        forward in any::<bool>(),
        skip in any::<bool>(),
        cond_skip in any::<bool>(),
        publish in any::<bool>(),
        static_flush in any::<bool>(),
        width in 1u32..=2,
        program in proptest::collection::vec(
            (any::<bool>(), 0u8..4, 0u8..4, 0u8..4, 0u32..64),
            1..12,
        ),
    ) {
        let shape = RegShape {
            n_stages, caps, forward, skip, cond_skip, publish, static_flush, width, program,
        };
        let registry = roundtrip_registry();
        let spec_hash = build_named_reg_spec(&shape).content_hash();
        for table_mode in [TableMode::PerPlaceClass, TableMode::PerPlace, TableMode::FullScan] {
            for scheduler in [SchedulerMode::ActivityDriven, SchedulerMode::Exhaustive] {
                let cfg = EngineConfig { table_mode, scheduler, trace: true, ..Default::default() };
                let model =
                    build_named_reg_spec(&shape).lower().expect("named reg spec lowers");
                let fresh = CompiledModel::compile_with(model, cfg);
                let bytes =
                    fresh.to_artifact_bytes(spec_hash).expect("fully named model serializes");
                let reloaded =
                    CompiledModel::from_artifact_bytes(&bytes, Some(spec_hash), &registry)
                        .expect("artifact decodes");
                let rebytes =
                    reloaded.to_artifact_bytes(spec_hash).expect("reloaded model re-encodes");
                prop_assert_eq!(
                    &bytes, &rebytes,
                    "re-encoding a reloaded artifact must be byte-identical ({:?}/{:?})",
                    table_mode, scheduler
                );
                let rereloaded =
                    CompiledModel::from_artifact_bytes(&rebytes, Some(spec_hash), &registry)
                        .expect("re-encoded artifact decodes");
                let mut runs = Vec::new();
                for compiled in [&fresh, &reloaded, &rereloaded] {
                    let mut e = compiled.instantiate(reg_machine(&shape));
                    e.run(120);
                    let regs: Vec<u32> = (0..4)
                        .map(|i| e.machine().regs.value_of(RegId::from_index(i)))
                        .collect();
                    runs.push((e.take_trace(), e.stats().clone(), e.sched().clone(), regs));
                }
                let fresh_run = &runs[0];
                for (name, run) in [("reload", &runs[1]), ("re-reload", &runs[2])] {
                    prop_assert_eq!(
                        &fresh_run.0, &run.0,
                        "fresh vs {}: trace ({:?}/{:?})", name, table_mode, scheduler
                    );
                    prop_assert_eq!(&fresh_run.1, &run.1, "fresh vs {}: Stats", name);
                    prop_assert_eq!(&fresh_run.2, &run.2, "fresh vs {}: SchedStats", name);
                    prop_assert_eq!(
                        fresh_run.2.dispatch_normalized(), run.2.dispatch_normalized(),
                        "fresh vs {}: normalized SchedStats", name
                    );
                    prop_assert_eq!(
                        &fresh_run.3, &run.3,
                        "fresh vs {}: architectural state", name
                    );
                }
            }
        }
    }
}
