//! Property-based tests on the RCPN core data structures: the register
//! scoreboard's hazard discipline and the static analysis' ordering
//! guarantees hold for arbitrary inputs.

use proptest::prelude::*;
use rcpn::ids::{PlaceId, TokenId};
use rcpn::reg::{Operand, RegisterFile};

fn tid(n: u32) -> TokenId {
    // TokenIds normally come from the engine pool; for scoreboard-only
    // tests any distinct ids work.
    let mut pool = rcpn::token::TokenPool::<u32>::new();
    let mut last = None;
    for _ in 0..=n {
        last = Some(pool.alloc(
            rcpn::token::TokenKind::Instruction,
            Some(0),
            PlaceId::from_index(0),
            0,
            0,
        ));
    }
    last.expect("allocated at least one")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// reserve → publish → writeback always restores readability and
    /// commits the value, for any register count and register choice.
    #[test]
    fn reserve_writeback_roundtrip(n_regs in 1usize..24, pick in 0usize..24, v in any::<u32>()) {
        let pick = pick % n_regs;
        let mut rf = RegisterFile::new();
        let regs = rf.add_bank("r", n_regs);
        let t = tid(1);
        let mut op = Operand::reg(regs[pick]);
        prop_assert!(op.can_write(&rf));
        op.reserve_write(&mut rf, t, PlaceId::from_index(0));
        prop_assert!(!op.can_read(&rf));
        prop_assert!(!op.can_write(&rf));
        op.set(&mut rf, t, v);
        op.writeback(&mut rf, t);
        prop_assert!(op.can_read(&rf), "writeback restores readability");
        prop_assert_eq!(rf.value_of(regs[pick]), v);
        prop_assert_eq!(rf.reserved_cells(), 0);
        // Untouched registers keep their reset value.
        for (k, &r) in regs.iter().enumerate() {
            if k != pick {
                prop_assert_eq!(rf.value_of(r), 0);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A random interleaving of reservations and releases never leaves the
    /// scoreboard inconsistent: released registers read their last
    /// committed value; live reservations always block readers/writers.
    #[test]
    fn scoreboard_consistency(ops in proptest::collection::vec((0usize..8, 0u8..3, any::<u32>()), 1..64)) {
        let mut rf = RegisterFile::new();
        let regs = rf.add_bank("r", 8);
        // Model state: committed value per register, live writer token.
        let mut committed = [0u32; 8];
        let mut writer: [Option<TokenId>; 8] = [None; 8];
        let mut next_tok = 0u32;

        for (r, action, v) in ops {
            let reg = regs[r];
            match action {
                // Try to reserve.
                0 => {
                    if writer[r].is_none() {
                        next_tok += 1;
                        let t = tid(next_tok);
                        rf.reserve_write(reg, t, PlaceId::from_index(0));
                        writer[r] = Some(t);
                    }
                }
                // Publish + writeback if reserved.
                1 => {
                    if let Some(t) = writer[r].take() {
                        rf.publish(reg, t, v);
                        rf.writeback(reg, t, v);
                        committed[r] = v;
                    }
                }
                // Squash if reserved.
                _ => {
                    if let Some(t) = writer[r].take() {
                        rf.release(t);
                    }
                }
            }
            // Invariants after every step.
            for k in 0..8 {
                if writer[k].is_some() {
                    prop_assert!(!rf.readable(regs[k]), "r{} reserved but readable", k);
                    prop_assert!(!rf.writable(regs[k]));
                } else {
                    prop_assert!(rf.readable(regs[k]), "r{} free but blocked", k);
                    prop_assert_eq!(rf.value_of(regs[k]), committed[k], "r{} value", k);
                }
            }
        }
        // Total reservations in the scoreboard match the model.
        let live = writer.iter().filter(|w| w.is_some()).count();
        prop_assert_eq!(rf.reserved_cells(), live);
    }

    /// The analysis' evaluation order is a valid reverse-topological order
    /// for arbitrary acyclic nets: every transition's destination is
    /// evaluated before its input.
    #[test]
    fn order_is_reverse_topological(edges in proptest::collection::vec((0usize..12, 0usize..12), 0..40)) {
        use rcpn::builder::ModelBuilder;
        use rcpn::ids::OpClassId;
        use rcpn::token::InstrData;

        #[derive(Debug)]
        struct Tok(OpClassId);
        impl InstrData for Tok {
            fn op_class(&self) -> OpClassId { self.0 }
        }

        // Build a DAG by only keeping forward edges (i < j).
        let mut b = ModelBuilder::<Tok, ()>::new();
        let stages: Vec<_> = (0..12).map(|i| b.stage(&format!("S{i}"), 2)).collect();
        let places: Vec<_> =
            stages.iter().enumerate().map(|(i, &s)| b.place(&format!("P{i}"), s)).collect();
        let (c, _) = b.class_net("C");
        let mut used = std::collections::HashSet::new();
        let mut kept: Vec<(usize, usize)> = Vec::new();
        for (k, (a, bb)) in edges.into_iter().enumerate() {
            let (lo, hi) = (a.min(bb), a.max(bb));
            if lo == hi || !used.insert((lo, hi)) {
                continue;
            }
            b.transition(c, &format!("t{k}"))
                .from(places[lo])
                .to(places[hi])
                .priority(k as u32)
                .done();
            kept.push((lo, hi));
        }
        let model = b.build().expect("acyclic net builds");
        let analysis = model.analysis();
        let mut pos = vec![0usize; model.place_count()];
        for (i, p) in analysis.order().iter().enumerate() {
            pos[p.index()] = i;
        }
        for (lo, hi) in kept {
            prop_assert!(
                pos[places[hi].index()] < pos[places[lo].index()],
                "dest P{} must be evaluated before input P{}", hi, lo
            );
        }
        prop_assert_eq!(analysis.two_list_count(), 0, "a DAG without references needs no two-list");
    }
}
