//! Tests of the model → compile → run seam: one compiled artifact must
//! instantiate independent, identically behaving engines, and every
//! compiled lookup variant must simulate the identical token game.

use rcpn::compiled::CompiledModel;
use rcpn::engine::{EngineConfig, TableMode, TraceEvent};
use rcpn::ids::OpClassId;
use rcpn::model::{Machine, Model};
use rcpn::prelude::*;

#[derive(Debug)]
struct Tok(OpClassId);
impl InstrData for Tok {
    fn op_class(&self) -> OpClassId {
        self.0
    }
}

/// Resources: a countdown feed plus a retire counter.
#[derive(Debug)]
struct Feed {
    left: u32,
    count: u64,
    done: u64,
}

/// The crate-level doctest pipeline, enriched with a second class so the
/// per-(place, class) tables are non-trivial: `Short` tokens retire from
/// P1, `Long` tokens take P1 → P2 → end.
fn doctest_pipeline(tokens: u32) -> (Model<Tok, Feed>, Machine<Feed>) {
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let l1 = b.stage("L1", 1);
    let l2 = b.stage("L2", 1);
    let p1 = b.place("decode", l1);
    let p2 = b.place("execute", l2);
    let end = b.end_place();
    let (short, _) = b.class_net("Short");
    let (long, _) = b.class_net("Long");
    b.transition(short, "retire_short")
        .from(p1)
        .to(end)
        .action(|m, _d, _fx| m.res.done += 1)
        .done();
    b.transition(long, "issue").from(p1).to(p2).done();
    b.transition(long, "retire_long").from(p2).to(end).action(|m, _d, _fx| m.res.done += 1).done();
    b.source("fetch")
        .to(p1)
        .produce(move |m, _fx| {
            if m.res.left == 0 {
                return None;
            }
            m.res.left -= 1;
            m.res.count += 1;
            Some(Tok(if m.res.count % 3 == 1 { short } else { long }))
        })
        .done();
    let model = b.build().expect("pipeline builds");
    let machine = Machine::new(RegisterFile::new(), Feed { left: tokens, count: 0, done: 0 });
    (model, machine)
}

fn fresh_machine(tokens: u32) -> Machine<Feed> {
    Machine::new(RegisterFile::new(), Feed { left: tokens, count: 0, done: 0 })
}

/// One compiled model, instantiated twice, must yield two fully
/// independent engines with identical cycle-by-cycle statistics.
#[test]
fn one_compiled_model_two_identical_independent_engines() {
    let (model, machine) = doctest_pipeline(500);
    let compiled = CompiledModel::compile(model);
    let mut a = compiled.instantiate(machine);
    let mut b = compiled.instantiate(fresh_machine(500));

    // Step in lockstep; the full stats blocks must agree every cycle.
    for cycle in 0..2_000 {
        a.step();
        b.step();
        assert_eq!(a.stats(), b.stats(), "stats diverged at cycle {cycle}");
        assert_eq!(a.cycle(), b.cycle());
        assert_eq!(a.live_tokens(), b.live_tokens());
    }
    assert_eq!(a.stats().retired, 500, "everything retires");
    assert_eq!(a.machine().res.done, b.machine().res.done);

    // Independence: running one engine further must not disturb the other.
    let b_stats = b.stats().clone();
    a.run(100);
    assert_eq!(b.stats(), &b_stats, "sibling engine state leaked");
    assert_eq!(b.cycle(), 2_000);
}

/// Instantiation must be repeatable after earlier instances were dropped
/// and the artifact must be shareable via cheap clones.
#[test]
fn compiled_model_outlives_instances() {
    let (model, machine) = doctest_pipeline(50);
    let compiled = CompiledModel::compile(model);
    let first = {
        let mut e = compiled.instantiate(machine);
        e.run(1_000);
        e.stats().retired
    };
    let clone = compiled.clone();
    let mut e = clone.instantiate(fresh_machine(50));
    e.run(1_000);
    assert_eq!(e.stats().retired, first);
}

/// An engine hands back a usable handle to its compiled artifact.
#[test]
fn engine_exposes_its_compiled_artifact() {
    let (model, machine) = doctest_pipeline(20);
    let mut a = Engine::new(model, machine);
    let compiled = a.compiled();
    a.run(200);
    let mut b = compiled.instantiate(fresh_machine(20));
    b.run(200);
    assert_eq!(a.stats(), b.stats());
}

/// Regression for the compiled lookup variants: PerPlaceClass, PerPlace
/// and FullScan must retire the identical token stream (same events, same
/// order, same cycles) on the doctest pipeline.
#[test]
fn all_table_modes_retire_identical_token_streams() {
    let trace_of = |mode: TableMode| {
        let (model, machine) = doctest_pipeline(200);
        let cfg = EngineConfig { table_mode: mode, trace: true, ..EngineConfig::default() };
        let mut e = CompiledModel::compile_with(model, cfg).instantiate(machine);
        e.run(1_000);
        assert_eq!(e.stats().retired, 200, "{mode:?} retires everything");
        let trace = e.take_trace();
        assert!(!trace.is_empty());
        (e.stats().clone(), trace)
    };

    let (ref_stats, ref_trace) = trace_of(TableMode::PerPlaceClass);
    let retirements = |t: &[TraceEvent]| {
        t.iter()
            .filter_map(|ev| match *ev {
                TraceEvent::Retired { cycle, place, seq } => Some((cycle, place, seq)),
                _ => None,
            })
            .collect::<Vec<_>>()
    };
    for mode in [TableMode::PerPlace, TableMode::FullScan] {
        let (stats, trace) = trace_of(mode);
        assert_eq!(stats.cycles, ref_stats.cycles, "{mode:?} cycle count");
        assert_eq!(stats.retired, ref_stats.retired, "{mode:?} retirement count");
        assert_eq!(
            retirements(&trace),
            retirements(&ref_trace),
            "{mode:?} must retire the same tokens at the same cycles"
        );
        assert_eq!(trace, ref_trace, "{mode:?} full event stream");
    }
}

/// The fixpoint (two-list-everywhere) compiled variant also reproduces
/// the reference timing on the doctest pipeline.
#[test]
fn fixpoint_variant_matches_reference_timing() {
    let run = |two_list: bool| {
        let (model, machine) = doctest_pipeline(200);
        let cfg = EngineConfig { two_list_everywhere: two_list, ..EngineConfig::default() };
        let mut e = CompiledModel::compile_with(model, cfg).instantiate(machine);
        e.run(2_000);
        (e.stats().cycles, e.stats().retired)
    };
    assert_eq!(run(false), run(true));
}
