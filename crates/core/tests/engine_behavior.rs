//! Behavioral tests of the RCPN engine on small hand-built models.
//!
//! These tests pin down the cycle-level semantics the processor models rely
//! on: lockstep pipeline advance, structural hazards via stage capacity,
//! data hazards via the register model, forwarding through two-list places,
//! reservation tokens, flushes, micro-op emission, priorities, and the
//! equivalence of the optimized and unoptimized engine configurations.

use rcpn::engine::TraceEvent;
use rcpn::prelude::*;

/// Minimal instruction payload: a class plus three operands.
#[derive(Debug, Clone)]
struct Tok {
    class: OpClassId,
    dst: Operand,
    src: Operand,
    imm: u32,
}

impl Tok {
    fn plain(class: OpClassId) -> Self {
        Tok { class, dst: Operand::Absent, src: Operand::Absent, imm: 0 }
    }
}

impl InstrData for Tok {
    fn op_class(&self) -> OpClassId {
        self.class
    }
}

/// Program feed: the machine resource is a list of payloads to fetch.
#[derive(Debug, Default)]
struct Feed {
    program: std::cell::RefCell<std::collections::VecDeque<Tok>>,
}

fn feed_source(b: &mut ModelBuilder<Tok, Feed>, dest: PlaceId) {
    b.source("fetch")
        .to(dest)
        .produce(|m: &mut Machine<Feed>, _fx| m.res.program.borrow_mut().pop_front())
        .done();
}

/// Three-place linear pipeline: fetch -> p1 -> p2 -> end.
fn linear_model() -> (Model<Tok, Feed>, PlaceId, PlaceId, OpClassId) {
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let l1 = b.stage("L1", 1);
    let l2 = b.stage("L2", 1);
    let p1 = b.place("p1", l1);
    let p2 = b.place("p2", l2);
    let end = b.end_place();
    let (c, _) = b.class_net("Alu");
    b.transition(c, "t12").from(p1).to(p2).done();
    b.transition(c, "t2e").from(p2).to(end).done();
    feed_source(&mut b, p1);
    (b.build().unwrap(), p1, p2, c)
}

fn run_linear(n_instr: usize, cycles: u64) -> Engine<Tok, Feed> {
    let (model, _, _, c) = linear_model();
    let feed = Feed::default();
    feed.program.borrow_mut().extend((0..n_instr).map(|_| Tok::plain(c)));
    let mut e = Engine::new(model, Machine::new(RegisterFile::new(), feed));
    e.run(cycles);
    e
}

#[test]
fn pipeline_fills_and_streams_one_per_cycle() {
    let e = run_linear(50, 60);
    // Fill latency 2 (fetch at end of cycle 0; p1 fires cycle 1; retire
    // cycle 2), then one retirement per cycle.
    assert_eq!(e.stats().retired, 50);
    assert_eq!(e.stats().generated, 50);
    assert_eq!(e.stats().stalls, 0, "no hazards in an empty-guard pipeline");
}

#[test]
fn first_retirement_happens_at_cycle_two() {
    let (model, _, _, c) = linear_model();
    let feed = Feed::default();
    feed.program.borrow_mut().push_back(Tok::plain(c));
    let mut e = Engine::with_config(
        model,
        Machine::new(RegisterFile::new(), feed),
        EngineConfig { trace: true, ..Default::default() },
    );
    e.run(10);
    let trace = e.take_trace();
    let retire = trace
        .iter()
        .find_map(|ev| match ev {
            TraceEvent::Retired { cycle, .. } => Some(*cycle),
            _ => None,
        })
        .expect("instruction retires");
    assert_eq!(retire, 2);
}

#[test]
fn structural_hazard_stalls_upstream() {
    // p2's consumer is guarded shut for the first 5 cycles: the pipeline
    // backs up, fetch stops, and nothing is lost.
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let l1 = b.stage("L1", 1);
    let l2 = b.stage("L2", 1);
    let p1 = b.place("p1", l1);
    let p2 = b.place("p2", l2);
    let end = b.end_place();
    let (c, _) = b.class_net("Alu");
    b.transition(c, "t12").from(p1).to(p2).done();
    b.transition(c, "t2e").from(p2).to(end).guard(|m, _| m.cycle >= 5).done();
    feed_source(&mut b, p1);
    let model = b.build().unwrap();

    let feed = Feed::default();
    feed.program.borrow_mut().extend((0..10).map(|_| Tok::plain(c)));
    let mut e = Engine::new(model, Machine::new(RegisterFile::new(), feed));
    e.run(30);
    assert_eq!(e.stats().retired, 10);
    assert!(e.stats().capacity_blocks > 0, "p1 tokens must have been capacity-blocked");
    assert!(e.stats().guard_fails > 0);
    // Retirements can start at cycle 5 at the earliest; 10 instructions
    // stream out in 10 consecutive cycles, so all are done by cycle 15.
    assert!(e.cycle() >= 15);
}

#[test]
fn stage_capacity_is_shared_between_places() {
    // Two places on one stage with capacity 1: a token parked in place A
    // blocks entry into place B of the same stage.
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let l1 = b.stage("L1", 1);
    let shared = b.stage("SH", 1);
    let p1 = b.place("p1", l1);
    let pa = b.place("pa", shared);
    let pb = b.place("pb", shared);
    let end = b.end_place();
    let (ca, _) = b.class_net("A");
    let (cb, _) = b.class_net("B");
    // Class A parks in pa forever (no exit transition).
    b.transition(ca, "ta").from(p1).to(pa).done();
    // Class B tries to enter pb.
    b.transition(cb, "tb").from(p1).to(pb).done();
    b.transition(cb, "tb2").from(pb).to(end).done();
    feed_source(&mut b, p1);
    let model = b.build().unwrap();

    let feed = Feed::default();
    feed.program.borrow_mut().push_back(Tok::plain(ca));
    feed.program.borrow_mut().push_back(Tok::plain(cb));
    let mut e = Engine::new(model, Machine::new(RegisterFile::new(), feed));
    e.run(20);
    assert_eq!(e.stats().retired, 0, "class B never enters the shared stage");
    assert_eq!(e.tokens_in(pa), 1);
    assert_eq!(e.tokens_in(pb), 0);
    assert!(e.stats().capacity_blocks > 0);
}

#[test]
fn raw_dependency_stalls_and_forwarding_shortens_it() {
    // Rebuild the hazard model inline with a correct writeback action.
    fn build(with_forwarding: bool, wb_delay: u32) -> (Model<Tok, Feed>, OpClassId) {
        let mut b = ModelBuilder::<Tok, Feed>::new();
        let l1 = b.stage("L1", 1);
        let l2 = b.stage("L2", 1);
        let l3 = b.stage("L3", 4);
        let p1 = b.place("D", l1);
        let p2 = b.place("E", l2);
        let p3 = b.place_with_delay("WB", l3, wb_delay);
        let end = b.end_place();
        let (c, _) = b.class_net("Alu");

        b.transition(c, "d_read")
            .from(p1)
            .to(p2)
            .priority(0)
            .guard(|m, t: &Tok| t.src.can_read(&m.regs) && t.dst.can_write(&m.regs))
            .action(move |m, t, fx| {
                t.src.read(&m.regs);
                let tok = fx.token();
                t.dst.reserve_write(&mut m.regs, tok, PlaceId::from_index(0));
            })
            .done();
        if with_forwarding {
            b.transition(c, "d_fwd")
                .from(p1)
                .to(p2)
                .priority(1)
                .reads_state(p3)
                .guard(move |m, t: &Tok| t.src.can_read_in(&m.regs, p3) && t.dst.can_write(&m.regs))
                .action(move |m, t, fx| {
                    t.src.read_fwd(&m.regs);
                    let tok = fx.token();
                    t.dst.reserve_write(&mut m.regs, tok, PlaceId::from_index(0));
                })
                .done();
        }
        b.transition(c, "e_exec")
            .from(p2)
            .to(p3)
            .action(|m, t, fx| {
                let v = t.src.value().wrapping_add(t.imm);
                let tok = fx.token();
                t.dst.set(&mut m.regs, tok, v);
            })
            .done();
        b.transition(c, "we_wb")
            .from(p3)
            .to(end)
            .action(|m, t, fx| {
                let tok = fx.token();
                t.dst.writeback(&mut m.regs, tok);
            })
            .done();
        feed_source(&mut b, p1);
        (b.build().unwrap(), c)
    }

    fn run(with_forwarding: bool) -> (u64, u32) {
        let (model, c) = build(with_forwarding, 3);
        assert!(
            model.analysis().is_two_list(model.find_place("WB").unwrap()) == with_forwarding,
            "WB is two-list exactly when the feedback arc exists"
        );
        let mut rf = RegisterFile::new();
        let regs = rf.add_bank("r", 4);
        let feed = Feed::default();
        // r1 = r0 + 5 ; r2 = r1 + 1  (RAW on r1)
        feed.program.borrow_mut().push_back(Tok {
            class: c,
            dst: Operand::reg(regs[1]),
            src: Operand::reg(regs[0]),
            imm: 5,
        });
        feed.program.borrow_mut().push_back(Tok {
            class: c,
            dst: Operand::reg(regs[2]),
            src: Operand::reg(regs[1]),
            imm: 1,
        });
        let mut e = Engine::new(model, Machine::new(rf, feed));
        let outcome = e.run(60);
        assert_eq!(outcome, RunOutcome::CycleLimit);
        assert_eq!(e.stats().retired, 2, "both instructions retire");
        // Find the cycle where everything is done: use stats.
        let r2 = e.machine().regs.find("r2").map(|r| e.machine().regs.value_of(r)).unwrap();
        (e.stats().stalls, r2)
    }

    let (stalls_plain, r2_plain) = run(false);
    let (stalls_fwd, r2_fwd) = run(true);
    assert_eq!(r2_plain, 6, "architectural result without forwarding");
    assert_eq!(r2_fwd, 6, "forwarding must not change the architectural result");
    assert!(
        stalls_fwd < stalls_plain,
        "forwarding shortens the RAW stall: {stalls_fwd} vs {stalls_plain}"
    );
}

#[test]
fn forwarding_is_not_visible_in_the_same_cycle() {
    // The two-list WB place must delay forwarding visibility by one cycle:
    // the consumer cannot pick up a value computed in the very same cycle.
    // With wb_delay large, instruction 2's d_fwd can fire no earlier than
    // one cycle after instruction 1 entered WB.
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let l1 = b.stage("L1", 2);
    let l2 = b.stage("L2", 2);
    let l3 = b.stage("L3", 2);
    let p1 = b.place("D", l1);
    let p2 = b.place("E", l2);
    let p3 = b.place_with_delay("WB", l3, 10);
    let end = b.end_place();
    let (c, _) = b.class_net("Alu");
    // Atomics, not Rc<Cell>: model closures are Send + Sync so compiled
    // models can be shared across batch workers.
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let fired_fwd_at = Arc::new(AtomicU64::new(u64::MAX));
    let entered_wb_at = Arc::new(AtomicU64::new(u64::MAX));

    b.transition(c, "d_read")
        .from(p1)
        .to(p2)
        .priority(0)
        .guard(|m, t: &Tok| t.src.can_read(&m.regs) && t.dst.can_write(&m.regs))
        .action(|m, t, fx| {
            t.src.read(&m.regs);
            let tok = fx.token();
            t.dst.reserve_write(&mut m.regs, tok, PlaceId::from_index(0));
        })
        .done();
    {
        let fired_fwd_at = fired_fwd_at.clone();
        b.transition(c, "d_fwd")
            .from(p1)
            .to(p2)
            .priority(1)
            .reads_state(p3)
            .guard(move |m, t: &Tok| t.src.can_read_in(&m.regs, p3) && t.dst.can_write(&m.regs))
            .action(move |m, t, fx| {
                t.src.read_fwd(&m.regs);
                let tok = fx.token();
                t.dst.reserve_write(&mut m.regs, tok, PlaceId::from_index(0));
                fired_fwd_at.store(m.cycle, Ordering::Relaxed);
            })
            .done();
    }
    {
        let entered_wb_at = entered_wb_at.clone();
        b.transition(c, "e_exec")
            .from(p2)
            .to(p3)
            .action(move |m, t, fx| {
                let v = t.src.value().wrapping_add(t.imm);
                let tok = fx.token();
                t.dst.set(&mut m.regs, tok, v);
                // first producer only
                let _ = entered_wb_at.compare_exchange(
                    u64::MAX,
                    m.cycle,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            })
            .done();
    }
    b.transition(c, "we_wb")
        .from(p3)
        .to(end)
        .action(|m, t, fx| {
            let tok = fx.token();
            t.dst.writeback(&mut m.regs, tok);
        })
        .done();
    feed_source(&mut b, p1);
    let model = b.build().unwrap();

    let mut rf = RegisterFile::new();
    let regs = rf.add_bank("r", 4);
    let feed = Feed::default();
    feed.program.borrow_mut().push_back(Tok {
        class: c,
        dst: Operand::reg(regs[1]),
        src: Operand::reg(regs[0]),
        imm: 5,
    });
    feed.program.borrow_mut().push_back(Tok {
        class: c,
        dst: Operand::reg(regs[2]),
        src: Operand::reg(regs[1]),
        imm: 1,
    });
    let mut e = Engine::new(model, Machine::new(rf, feed));
    e.run(40);
    let fired = fired_fwd_at.load(Ordering::Relaxed);
    let entered = entered_wb_at.load(Ordering::Relaxed);
    assert_ne!(fired, u64::MAX, "forwarding path must have been used");
    assert!(
        fired > entered,
        "forwarding fired at {fired} but the value entered WB at {entered} — same-cycle \
         forwarding through a two-list place is illegal",
    );
}

#[test]
fn reservation_token_stalls_fetch_for_one_cycle() {
    // Branch sub-net: issuing a branch deposits a reservation token in p1,
    // disabling fetch for exactly one cycle (paper, Section 3.2).
    // Models are not Clone (they hold closures), so build per run.
    fn build() -> Model<Tok, Feed> {
        let mut b = ModelBuilder::<Tok, Feed>::new();
        let l1 = b.stage("L1", 1);
        let l2 = b.stage("L2", 1);
        let p1 = b.place("p1", l1);
        let p2 = b.place("p2", l2);
        let end = b.end_place();
        let (alu, _) = b.class_net("Alu");
        let (br, _) = b.class_net("Branch");
        b.transition(alu, "a12").from(p1).to(p2).done();
        b.transition(alu, "a2e").from(p2).to(end).done();
        b.transition(br, "b12").from(p1).to(p2).done();
        b.transition(br, "b2e").from(p2).to(end).reserve(p1, 1).done();
        feed_source(&mut b, p1);
        b.build().unwrap()
    }
    let completion_cycles = |with_branch: bool| -> (u64, u64) {
        let model = build();
        let alu = OpClassId::from_index(0);
        let br = OpClassId::from_index(1);
        let feed = Feed::default();
        for i in 0..8 {
            let class = if with_branch && i == 3 { br } else { alu };
            feed.program.borrow_mut().push_back(Tok::plain(class));
        }
        let mut e = Engine::new(model, Machine::new(RegisterFile::new(), feed));
        let mut cycles = 0u64;
        while e.stats().retired < 8 && cycles < 100 {
            e.step();
            cycles += 1;
        }
        (cycles, e.stats().reservations)
    };
    let (plain, res_plain) = completion_cycles(false);
    let (with_branch, res_branch) = completion_cycles(true);
    assert_eq!(res_plain, 0);
    assert_eq!(res_branch, 1);
    assert_eq!(
        with_branch,
        plain + 1,
        "one branch inserts exactly one fetch bubble (reservation for 1 cycle)"
    );
}

#[test]
fn flush_squashes_younger_instructions_and_releases_reservations() {
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let l1 = b.stage("L1", 1);
    let l2 = b.stage("L2", 1);
    let p1 = b.place("p1", l1);
    let p2 = b.place("p2", l2);
    let end = b.end_place();
    let (alu, _) = b.class_net("Alu");
    let (br, _) = b.class_net("Branch");
    b.transition(alu, "a12")
        .from(p1)
        .to(p2)
        .guard(|m, t: &Tok| t.dst.can_write(&m.regs))
        .action(|m, t, fx| {
            let tok = fx.token();
            t.dst.reserve_write(&mut m.regs, tok, PlaceId::from_index(0));
        })
        .done();
    b.transition(alu, "a2e")
        .from(p2)
        .to(end)
        .action(|m, t, fx| {
            let tok = fx.token();
            t.dst.set(&mut m.regs, tok, 1);
            t.dst.writeback(&mut m.regs, tok);
        })
        .done();
    b.transition(br, "b12").from(p1).to(p2).done();
    // Taken branch: flush the fetch latch.
    let p1c = p1;
    b.transition(br, "b2e").from(p2).to(end).action(move |_m, _t, fx| fx.flush(p1c)).done();
    feed_source(&mut b, p1);
    let model = b.build().unwrap();

    let mut rf = RegisterFile::new();
    let regs = rf.add_bank("r", 4);
    let feed = Feed::default();
    // branch; alu (will be squashed while sitting in p1 with a reservation
    // it has not made yet — it reserves in a12, so squash happens in p1
    // before reservation; to test release we also check reserved_cells).
    feed.program.borrow_mut().push_back(Tok::plain(br));
    feed.program.borrow_mut().push_back(Tok {
        class: alu,
        dst: Operand::reg(regs[1]),
        src: Operand::Absent,
        imm: 0,
    });
    let mut e = Engine::new(model, Machine::new(rf, feed));
    e.run(20);
    assert_eq!(e.stats().flushed, 1, "the younger ALU instruction was squashed");
    assert_eq!(e.stats().retired, 1, "only the branch retires");
    assert_eq!(e.machine().regs.reserved_cells(), 0, "no reservation leaks");
    assert_eq!(e.live_tokens(), 0);
}

#[test]
fn emitted_micro_ops_flow_through_their_subnet() {
    // A LoadStoreMultiple-style class: the parent emits two micro-ops that
    // flow through the Load sub-net while the parent retires.
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let l1 = b.stage("L1", 4);
    let p1 = b.place("p1", l1);
    let end = b.end_place();
    let (ldm, _) = b.class_net("LdM");
    let (ld, _) = b.class_net("Ld");
    let p1c = p1;
    b.transition(ldm, "explode")
        .from(p1)
        .to(end)
        .action(move |_m, t, fx| {
            for _ in 0..t.imm {
                fx.emit(Tok::plain(OpClassId::from_index(1)), p1c, 1);
            }
        })
        .done();
    b.transition(ld, "ld").from(p1).to(end).done();
    feed_source(&mut b, p1);
    let model = b.build().unwrap();

    let feed = Feed::default();
    feed.program.borrow_mut().push_back(Tok { imm: 3, ..Tok::plain(ldm) });
    let mut e = Engine::new(model, Machine::new(RegisterFile::new(), feed));
    e.run(20);
    assert_eq!(e.stats().emitted, 3);
    assert_eq!(e.stats().retired, 4, "parent + three micro-ops");
}

#[test]
fn priorities_select_alternatives_deterministically() {
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let l1 = b.stage("L1", 1);
    let p1 = b.place("p1", l1);
    let end_a = b.final_place("end_a");
    let end_b = b.final_place("end_b");
    let (c, _) = b.class_net("Alu");
    // Both always enabled; priority 0 must win every time.
    let t_hi = b.transition(c, "hi").from(p1).to(end_a).priority(0).done();
    let t_lo = b.transition(c, "lo").from(p1).to(end_b).priority(1).done();
    feed_source(&mut b, p1);
    let model = b.build().unwrap();

    let feed = Feed::default();
    feed.program.borrow_mut().extend((0..10).map(|_| Tok::plain(c)));
    let mut e = Engine::new(model, Machine::new(RegisterFile::new(), feed));
    e.run(20);
    assert_eq!(e.stats().fires_of(t_hi), 10);
    assert_eq!(e.stats().fires_of(t_lo), 0);
}

#[test]
fn token_delay_overrides_place_delay() {
    // Memory-style variable latency: the transition assigns t.delay (paper
    // Fig. 5, transition M).
    fn build(delay: u32) -> (Model<Tok, Feed>, OpClassId) {
        let mut b = ModelBuilder::<Tok, Feed>::new();
        let l1 = b.stage("L1", 1);
        let l2 = b.stage("L2", 1);
        let p1 = b.place("p1", l1);
        let p2 = b.place("p2", l2);
        let end = b.end_place();
        let (c, _) = b.class_net("Mem");
        b.transition(c, "m")
            .from(p1)
            .to(p2)
            .action(move |_m, _t, fx| fx.set_token_delay(delay))
            .done();
        b.transition(c, "wb").from(p2).to(end).done();
        feed_source(&mut b, p1);
        (b.build().unwrap(), c)
    }
    let retire_cycle = |delay: u32| -> u64 {
        let (model, c) = build(delay);
        let feed = Feed::default();
        feed.program.borrow_mut().push_back(Tok::plain(c));
        let mut e = Engine::with_config(
            model,
            Machine::new(RegisterFile::new(), feed),
            EngineConfig { trace: true, ..Default::default() },
        );
        e.run(30);
        e.take_trace()
            .iter()
            .find_map(|ev| match ev {
                TraceEvent::Retired { cycle, .. } => Some(*cycle),
                _ => None,
            })
            .expect("retired")
    };
    let fast = retire_cycle(1);
    let slow = retire_cycle(4);
    assert_eq!(slow - fast, 3, "extra memory latency delays retirement 1:1");
}

#[test]
fn extra_input_join_consumes_side_tokens() {
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let l1 = b.stage("L1", 2);
    let side_stage = b.stage("SIDE", 4);
    let p1 = b.place("p1", l1);
    let side = b.place("side", side_stage);
    let end = b.end_place();
    let (c, _) = b.class_net("Alu");
    let (parked, _) = b.class_net("Parked");
    let _ = parked;
    b.transition(c, "t").from(p1).to(end).extra_input(side).done();
    feed_source(&mut b, p1);
    let model = b.build().unwrap();

    let feed = Feed::default();
    feed.program.borrow_mut().push_back(Tok::plain(c));
    feed.program.borrow_mut().push_back(Tok::plain(c));
    let mut e = Engine::new(model, Machine::new(RegisterFile::new(), feed));
    // One resource token in the side place: only one instruction passes.
    e.inject(Tok::plain(OpClassId::from_index(1)), side);
    e.run(20);
    assert_eq!(e.stats().retired, 1, "join: one side token admits one instruction");
    assert_eq!(e.tokens_in(side), 0);
}

#[test]
fn halt_stops_the_run() {
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let l1 = b.stage("L1", 1);
    let p1 = b.place("p1", l1);
    let end = b.end_place();
    let (c, _) = b.class_net("Alu");
    b.transition(c, "t")
        .from(p1)
        .to(end)
        .action(|_m, t, fx| {
            if t.imm == 99 {
                fx.halt();
            }
        })
        .done();
    feed_source(&mut b, p1);
    let model = b.build().unwrap();

    let feed = Feed::default();
    feed.program.borrow_mut().push_back(Tok::plain(c));
    feed.program.borrow_mut().push_back(Tok { imm: 99, ..Tok::plain(c) });
    feed.program.borrow_mut().push_back(Tok::plain(c));
    let mut e = Engine::new(model, Machine::new(RegisterFile::new(), feed));
    let outcome = e.run(100);
    assert_eq!(outcome, RunOutcome::Halted);
    assert_eq!(e.stats().retired, 2, "the instruction after the halt never runs");
    assert!(e.cycle() < 100);
}

#[test]
fn all_engine_configs_agree_on_timing_for_structural_models() {
    fn build() -> Model<Tok, Feed> {
        let mut b = ModelBuilder::<Tok, Feed>::new();
        let l1 = b.stage("L1", 1);
        let l2 = b.stage("L2", 2);
        let l3 = b.stage("L3", 1);
        let p1 = b.place("p1", l1);
        let p2 = b.place("p2", l2);
        let p3 = b.place("p3", l3);
        let end = b.end_place();
        let (short, _) = b.class_net("Short");
        let (long, _) = b.class_net("Long");
        b.transition(short, "s1e").from(p1).to(end).done();
        b.transition(long, "l12").from(p1).to(p2).done();
        b.transition(long, "l23").from(p2).to(p3).done();
        b.transition(long, "l3e").from(p3).to(end).done();
        feed_source(&mut b, p1);
        b.build().unwrap()
    }
    fn program(feed: &Feed) {
        let short = OpClassId::from_index(0);
        let long = OpClassId::from_index(1);
        for i in 0..40 {
            let class = if i % 3 == 0 { short } else { long };
            feed.program.borrow_mut().push_back(Tok::plain(class));
        }
    }
    let mut results = Vec::new();
    for cfg in [
        EngineConfig::default(),
        EngineConfig { table_mode: TableMode::PerPlace, ..Default::default() },
        EngineConfig { table_mode: TableMode::FullScan, ..Default::default() },
        EngineConfig { two_list_everywhere: true, ..Default::default() },
    ] {
        let feed = Feed::default();
        program(&feed);
        let mut e = Engine::with_config(build(), Machine::new(RegisterFile::new(), feed), cfg);
        let mut cycles = 0u64;
        while e.stats().retired < 40 && cycles < 500 {
            e.step();
            cycles += 1;
        }
        results.push((cycles, e.stats().retired));
    }
    assert!(
        results.windows(2).all(|w| w[0] == w[1]),
        "all configurations must produce identical timing: {results:?}"
    );
}

#[test]
fn occupancy_stats_accumulate() {
    let (model, p1, _, c) = linear_model();
    let feed = Feed::default();
    feed.program.borrow_mut().extend((0..10).map(|_| Tok::plain(c)));
    let mut e = Engine::with_config(
        model,
        Machine::new(RegisterFile::new(), feed),
        EngineConfig { collect_occupancy: true, ..Default::default() },
    );
    e.run(20);
    assert!(e.stats().mean_occupancy(p1) > 0.0);
}

#[test]
fn cpn_conversion_matches_rcpn_timing_on_fig2_pipeline() {
    // Figure 2 pipeline: P1 (stage L1) feeds either U4 (short path, to end)
    // or U2->U3 via P2 (stage L2). Structural-only model, convertible.
    fn build() -> Model<Tok, Feed> {
        let mut b = ModelBuilder::<Tok, Feed>::new();
        let l1 = b.stage("L1", 1);
        let l2 = b.stage("L2", 1);
        let p1 = b.place("P1", l1);
        let p2 = b.place("P2", l2);
        let end = b.end_place();
        let (short, _) = b.class_net("Short");
        let (long, _) = b.class_net("Long");
        b.transition(short, "U4").from(p1).to(end).done();
        b.transition(long, "U2").from(p1).to(p2).done();
        b.transition(long, "U3").from(p2).to(end).done();
        feed_source(&mut b, p1);
        b.build().unwrap()
    }

    let short = OpClassId::from_index(0);
    let long = OpClassId::from_index(1);
    let program: Vec<OpClassId> = (0..30).map(|i| if i % 4 == 1 { short } else { long }).collect();

    // RCPN run with trace.
    let feed = Feed::default();
    for &c in &program {
        feed.program.borrow_mut().push_back(Tok::plain(c));
    }
    let mut e = Engine::with_config(
        build(),
        Machine::new(RegisterFile::new(), feed),
        EngineConfig { trace: true, ..Default::default() },
    );
    e.run(200);
    assert_eq!(e.stats().retired, 30);
    let mut rcpn_retires: Vec<u64> = e
        .take_trace()
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Retired { cycle, .. } => Some(*cycle),
            _ => None,
        })
        .collect();
    rcpn_retires.sort_unstable();

    // CPN run.
    let model = build();
    let mut cpn = rcpn::cpn::convert(&model, &program).expect("structural model converts");
    cpn.run(200);
    assert_eq!(cpn.stats().retired, 30, "CPN retires the same instruction count");
    let mut cpn_retires = cpn.retire_log().to_vec();
    cpn_retires.sort_unstable();
    assert_eq!(rcpn_retires, cpn_retires, "cycle-accurate agreement RCPN vs CPN");

    // The CPN encoding is strictly larger — the paper's Figure 1/2 claim.
    let cmp = rcpn::cpn::compare_sizes(&model).unwrap();
    assert!(cmp.cpn_places > cmp.rcpn_places);
    assert!(cmp.cpn_arcs > cmp.rcpn_arcs);

    // And the CPN interpreter does far more searching than firing.
    assert!(cpn.stats().scans > cpn.stats().fires * 2);
}

#[test]
fn leaked_reservations_are_counted_and_released() {
    // A model that reserves but never writes back: the engine must clean up
    // at retire time and count the leak.
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let l1 = b.stage("L1", 1);
    let p1 = b.place("p1", l1);
    let end = b.end_place();
    let (c, _) = b.class_net("Alu");
    b.transition(c, "t")
        .from(p1)
        .to(end)
        .action(|m, t, fx| {
            let tok = fx.token();
            t.dst.reserve_write(&mut m.regs, tok, PlaceId::from_index(0));
        })
        .done();
    feed_source(&mut b, p1);
    let model = b.build().unwrap();

    let mut rf = RegisterFile::new();
    let regs = rf.add_bank("r", 2);
    let feed = Feed::default();
    feed.program.borrow_mut().push_back(Tok {
        class: c,
        dst: Operand::reg(regs[1]),
        src: Operand::Absent,
        imm: 0,
    });
    let mut e = Engine::new(model, Machine::new(rf, feed));
    e.run(10);
    assert_eq!(e.stats().leaked_reservations, 1);
    assert_eq!(e.machine().regs.reserved_cells(), 0);
}
