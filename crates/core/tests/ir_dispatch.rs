//! Behavioral tests for the micro-op IR dispatch path: per-op semantics,
//! the fold/fusion pass, bit-identity between the IR, fused-IR and
//! closure representations of the same model, and program validation.
//!
//! The processor crates pin the same contract on the real ARM models
//! (`spec_oracle`); these tests pin it on minimal hand-built models where
//! a divergence localizes to a single micro-op.

use std::cell::RefCell;
use std::collections::VecDeque;

use rcpn::compiled::CompiledModel;
use rcpn::error::BuildError;
use rcpn::prelude::*;

/// Token with one destination and two sources — enough for RAW/WAW
/// hazards and forwarding.
#[derive(Debug, Clone)]
struct Tok {
    class: OpClassId,
    srcs: [Operand; 2],
    dst: Operand,
}

impl InstrData for Tok {
    fn op_class(&self) -> OpClassId {
        self.class
    }
    fn src_operands(&self) -> &[Operand] {
        &self.srcs
    }
    fn src_operands_mut(&mut self) -> &mut [Operand] {
        &mut self.srcs
    }
    fn dst_count(&self) -> usize {
        1
    }
    fn dst_operand(&self, i: usize) -> &Operand {
        assert_eq!(i, 0);
        &self.dst
    }
    fn dst_operand_mut(&mut self, i: usize) -> &mut Operand {
        assert_eq!(i, 0);
        &mut self.dst
    }
}

/// Per-engine program feed.
#[derive(Debug, Default)]
struct Feed {
    q: RefCell<VecDeque<Tok>>,
}

fn feed_machine(n: usize) -> Machine<Feed> {
    let mut rf = RegisterFile::new();
    let regs = rf.add_bank("r", 4);
    let feed = Feed::default();
    {
        let mut q = feed.q.borrow_mut();
        for i in 0..n {
            // tok i: dst r[(i+2)%4] <- r[i%4] + r[(i+1)%4]; the rolling
            // pattern creates RAW hazards resolved via forwarding and WAW
            // hazards resolved by stalling.
            q.push_back(Tok {
                class: OpClassId::from_index(0),
                srcs: [Operand::reg(regs[i % 4]), Operand::reg(regs[(i + 1) % 4])],
                dst: Operand::reg(regs[(i + 2) % 4]),
            });
        }
    }
    let mut m = Machine::new(rf, feed);
    for (i, &r) in regs.iter().enumerate() {
        m.regs.poke(r, i as u32 + 1);
    }
    m
}

/// How the three-stage test pipeline represents its issue (read) step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    /// `[CheckReady]` guard + `[AcquireOperands]` action — fuses.
    IrFused,
    /// `[CheckReady, CallHook(true)]` guard — same semantics, unfusable.
    IrUnfused,
    /// The closure twin of the same discipline.
    Closure,
}

/// P1 --issue--> P2 --exec--> P3 --wb--> end, forwarding from P3.
fn pipeline(flavor: Flavor) -> Model<Tok, Feed> {
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let s1 = b.stage("S1", 1);
    let s2 = b.stage("S2", 1);
    let s3 = b.stage("S3", 1);
    let p1 = b.place("P1", s1);
    let p2 = b.place("P2", s2);
    let p3 = b.place("P3", s3);
    let end = b.end_place();
    let (alu, _) = b.class_net("Alu");
    let mask = rcpn::ir::place_mask(&[p3]).expect("small net");

    let true_hook = b.hook_guard(|_m, _t| true);
    let tb = b.transition(alu, "issue").from(p1).to(p2).reads_state(p3);
    match flavor {
        Flavor::IrFused => tb
            .guard_ir(Program::new(vec![MicroOp::CheckReady { fwd_mask: mask }]))
            .action_ir(Program::new(vec![MicroOp::AcquireOperands { fwd_mask: mask }]))
            .done(),
        Flavor::IrUnfused => tb
            .guard_ir(Program::new(vec![
                MicroOp::CheckReady { fwd_mask: mask },
                MicroOp::CallHook(true_hook),
            ]))
            .action_ir(Program::new(vec![MicroOp::AcquireOperands { fwd_mask: mask }]))
            .done(),
        Flavor::Closure => tb
            .guard(move |m, t: &Tok| {
                t.srcs.iter().all(|s| s.can_read(&m.regs) || s.can_read_in(&m.regs, p3))
                    && t.dst.can_write(&m.regs)
            })
            .action(move |m, t, fx| {
                for s in &mut t.srcs {
                    if s.can_read(&m.regs) {
                        s.read(&m.regs);
                    } else {
                        s.read_fwd(&m.regs);
                    }
                }
                let tok = fx.token();
                t.dst.reserve_write(&mut m.regs, tok, PlaceId::from_index(0));
            })
            .done(),
    };
    b.transition(alu, "exec")
        .from(p2)
        .to(p3)
        .action(|m, t, fx| {
            let v = t.srcs[0].value().wrapping_add(t.srcs[1].value());
            let tok = fx.token();
            t.dst.set(&mut m.regs, tok, v);
        })
        .done();
    b.transition(alu, "wb")
        .from(p3)
        .to(end)
        .action(|m, t, fx| t.dst.writeback(&mut m.regs, fx.token()))
        .done();
    b.source("feed").to(p1).produce(|m, _fx| m.res.q.borrow_mut().pop_front()).done();
    b.build().expect("pipeline validates")
}

struct Outcome {
    trace: Vec<rcpn::engine::TraceEvent>,
    stats: Stats,
    sched: SchedStats,
    regs: Vec<u32>,
}

fn run(compiled: &CompiledModel<Tok, Feed>, n_toks: usize, cycles: u64) -> Outcome {
    let mut e = compiled.instantiate(feed_machine(n_toks));
    e.run(cycles);
    let regs = (0..4).map(|i| e.machine().regs.value_of(RegId::from_index(i))).collect();
    Outcome { trace: e.take_trace(), stats: e.stats().clone(), sched: e.sched().clone(), regs }
}

fn traced(cfg: EngineConfig) -> EngineConfig {
    EngineConfig { trace: true, ..cfg }
}

/// The heart of the refactor: the IR representation (fused and unfused)
/// and the closure representation of the same read step simulate
/// bit-identically — trace, `Stats`, normalized `SchedStats` and final
/// architectural state — while the raw dispatch counters expose which
/// representation ran.
#[test]
fn ir_fused_unfused_and_closure_read_steps_are_bit_identical() {
    let compile =
        |f: Flavor| CompiledModel::compile_with(pipeline(f), traced(EngineConfig::default()));
    let fused = compile(Flavor::IrFused);
    let unfused = compile(Flavor::IrUnfused);
    let closure = compile(Flavor::Closure);

    assert_eq!(fused.fused_transitions(), 1, "the CheckReady+Acquire pair must fuse");
    assert_eq!(unfused.fused_transitions(), 0, "a two-op guard must not fuse");
    assert!(unfused.ir_transitions() > 0);
    assert_eq!(closure.ir_transitions(), 0);

    let (a, b, c) = (run(&fused, 12, 60), run(&unfused, 12, 60), run(&closure, 12, 60));
    assert!(a.stats.retired >= 12, "workload must drain: {}", a.stats.summary());
    assert!(a.stats.guard_fails > 0, "hazards must exercise the guard-fail path");

    for (name, o) in [("unfused", &b), ("closure", &c)] {
        assert_eq!(a.trace, o.trace, "fused vs {name}: trace");
        assert_eq!(a.stats, o.stats, "fused vs {name}: Stats");
        assert_eq!(
            a.sched.dispatch_normalized(),
            o.sched.dispatch_normalized(),
            "fused vs {name}: normalized SchedStats"
        );
        assert_eq!(a.regs, o.regs, "fused vs {name}: architectural state");
    }

    assert!(a.sched.actions_fused > 0, "fused acquires must fire");
    assert_eq!(a.sched.actions_fused, a.stats.fires[0], "every issue fire is fused");
    assert_eq!(b.sched.actions_fused, 0);
    assert!(a.sched.guard_ir_evals > 0 && b.sched.guard_ir_evals > 0);
    assert_eq!(c.sched.guard_ir_evals, 0);
    assert_eq!(a.sched.guard_evals(), c.sched.guard_evals());
}

/// The identity holds under every compiled variant, not just the default.
#[test]
fn ir_vs_closure_identity_across_table_modes_and_schedulers() {
    let configs = [
        EngineConfig { table_mode: TableMode::PerPlace, ..Default::default() },
        EngineConfig { table_mode: TableMode::FullScan, ..Default::default() },
        EngineConfig { two_list_everywhere: true, ..Default::default() },
        EngineConfig { scheduler: SchedulerMode::Exhaustive, ..Default::default() },
    ];
    for cfg in configs {
        let a = run(
            &CompiledModel::compile_with(pipeline(Flavor::IrFused), traced(cfg.clone())),
            9,
            50,
        );
        let b = run(
            &CompiledModel::compile_with(pipeline(Flavor::Closure), traced(cfg.clone())),
            9,
            50,
        );
        assert_eq!(a.trace, b.trace, "{cfg:?}");
        assert_eq!(a.stats, b.stats, "{cfg:?}");
        assert_eq!(a.regs, b.regs, "{cfg:?}");
    }
}

/// Operand-less payload for the single-op chains.
#[derive(Debug)]
struct Plain;
impl InstrData for Plain {
    fn op_class(&self) -> OpClassId {
        OpClassId::from_index(0)
    }
}

/// Builds a trivial two-place chain whose single mid transition carries
/// `prog` as its IR action.
fn chain_with_action(prog: Program) -> Model<Plain, u64> {
    let mut b = ModelBuilder::<Plain, u64>::new();
    let s1 = b.stage("S1", 1);
    let s2 = b.stage("S2", 1);
    let p1 = b.place("P1", s1);
    let p2 = b.place("P2", s2);
    let end = b.end_place();
    let (c, _) = b.class_net("C");
    b.transition(c, "mid").from(p1).to(p2).action_ir(prog).done();
    b.transition(c, "out").from(p2).to(end).done();
    b.source("src")
        .to(p1)
        .produce(|m, _fx| {
            m.res += 1;
            (m.res <= 4).then_some(Plain)
        })
        .done();
    b.build().expect("chain validates")
}

#[test]
fn set_delay_op_extends_destination_residency() {
    // Without SetDelay a token needs 1 cycle in P2; with SetDelay(4) it
    // parks 4 cycles, which shows up as later retirement.
    let fast = chain_with_action(Program::new(vec![]));
    let slow = chain_with_action(Program::new(vec![MicroOp::SetDelay(4)]));
    let run = |model: Model<Plain, u64>| {
        let mut e = Engine::new(model, Machine::new(RegisterFile::new(), 0u64));
        e.run(30);
        e.stats().clone()
    };
    let (f, s) = (run(fast), run(slow));
    assert_eq!(f.retired, s.retired, "delay changes timing, not outcome");
    // Occupancy proxy: more total cycles where tokens sit in flight means
    // the stalled pipe backs up into stalls.
    assert!(s.stalls > f.stalls, "longer residency must back the pipe up: {f:?} vs {s:?}");
}

#[test]
fn emit_redirect_op_flushes_places_like_fx_flush() {
    // The mid transition squashes P1 every time it fires: with a
    // capacity-4 front stage and a width-2 source, younger tokens are
    // resident behind the firing one and get flushed.
    let mut b = ModelBuilder::<Plain, u64>::new();
    let s1 = b.stage("S1", 4);
    let s2 = b.stage("S2", 1);
    let p1 = b.place("P1", s1);
    let p2 = b.place("P2", s2);
    let end = b.end_place();
    let (c, _) = b.class_net("C");
    b.transition(c, "mid")
        .from(p1)
        .to(p2)
        .action_ir(Program::new(vec![MicroOp::EmitRedirect { flush: Box::from([p1]) }]))
        .done();
    b.transition(c, "out").from(p2).to(end).done();
    b.source("src")
        .to(p1)
        .width(2)
        .produce(|m, _fx| {
            m.res += 1;
            Some(Plain)
        })
        .done();
    let model = b.build().expect("validates");
    let mut e = Engine::new(model, Machine::new(RegisterFile::new(), 0u64));
    e.run(40);
    assert!(e.stats().flushed > 0, "EmitRedirect must squash: {}", e.stats().summary());
    assert_eq!(
        e.stats().generated,
        e.stats().retired + e.stats().flushed + e.live_tokens() as u64,
        "every token either retires, is squashed, or is in flight"
    );
}

#[test]
fn reserve_res_op_matches_static_reservation_arc() {
    // Twin models: a ResArc `.reserve(p2, 3)` vs an IR `ReserveRes` with
    // the same target — identical Stats (including reservation counts and
    // the capacity blocks the occupied destination stage causes: the next
    // mid firing is rejected until the reservation expires).
    let build = |via_ir: bool| {
        let mut b = ModelBuilder::<Plain, u64>::new();
        let s1 = b.stage("S1", 1);
        let s2 = b.stage("S2", 1);
        let p1 = b.place("P1", s1);
        let p2 = b.place("P2", s2);
        let end = b.end_place();
        let (c, _) = b.class_net("C");
        let tb = b.transition(c, "mid").from(p1).to(p2);
        if via_ir {
            tb.action_ir(Program::new(vec![MicroOp::ReserveRes { place: p2, expire: 3 }])).done();
        } else {
            tb.reserve(p2, 3).done();
        }
        b.transition(c, "out").from(p2).to(end).done();
        b.source("src")
            .to(p1)
            .produce(|m, _fx| {
                m.res += 1;
                Some(Plain)
            })
            .done();
        let model = b.build().expect("validates");
        let mut e = Engine::new(model, Machine::new(RegisterFile::new(), 0u64));
        e.run(50);
        e.stats().clone()
    };
    let (ir, arc) = (build(true), build(false));
    assert!(ir.reservations > 0, "reservations must be created");
    assert!(ir.capacity_blocks > 0, "the occupied stage must block the source-fed place");
    assert_eq!(ir, arc, "ReserveRes must be bit-identical to the static ResArc");
}

#[test]
fn release_res_op_frees_the_scoreboard() {
    // Every token reserves r0 at issue; ReleaseRes on the mid transition
    // releases it, so the next token can issue immediately. Without the
    // release, each token would hold r0 to retirement and the guard would
    // serialize harder.
    let build = |release: bool| {
        let mut b = ModelBuilder::<Tok, Feed>::new();
        let s1 = b.stage("S1", 1);
        let s2 = b.stage("S2", 1);
        let p1 = b.place("P1", s1);
        let p2 = b.place("P2", s2);
        let end = b.end_place();
        let (c, _) = b.class_net("Alu");
        let issue = b
            .transition(c, "issue")
            .from(p1)
            .to(p2)
            .guard_ir(Program::new(vec![MicroOp::CheckReady { fwd_mask: 0 }]))
            .action_ir(Program::new(vec![MicroOp::AcquireOperands { fwd_mask: 0 }]));
        issue.done();
        let ops = if release { vec![MicroOp::ReleaseRes] } else { vec![] };
        b.transition(c, "out").from(p2).to(end).action_ir(Program::new(ops)).done();
        b.source("feed").to(p1).produce(|m, _fx| m.res.q.borrow_mut().pop_front()).done();
        let model = b.build().expect("validates");
        let m = feed_machine(0);
        {
            let mut q = m.res.q.borrow_mut();
            let r0 = m.regs.find("r0").unwrap();
            for _ in 0..5 {
                q.push_back(Tok {
                    class: OpClassId::from_index(0),
                    srcs: [Operand::Absent, Operand::Absent],
                    dst: Operand::reg(r0),
                });
            }
        }
        let mut e = Engine::new(model, m);
        e.run(40);
        (e.stats().clone(), e.machine().regs.reserved_cells())
    };
    let (with, cells_with) = build(true);
    let (without, cells_without) = build(false);
    assert_eq!(cells_with, 0, "ReleaseRes must leave no reservations behind");
    assert_eq!(cells_without, 0, "retire releases leftovers (leak counter)");
    assert!(without.leaked_reservations > 0, "without ReleaseRes the retire path force-releases");
    assert_eq!(with.leaked_reservations, 0, "ReleaseRes cleans up before retirement");
    assert_eq!(with.retired, without.retired);
}

#[test]
fn write_back_op_commits_destinations() {
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let s1 = b.stage("S1", 1);
    let p1 = b.place("P1", s1);
    let end = b.end_place();
    let (c, _) = b.class_net("Alu");
    let exec_hook = b.hook_action(|m, t: &mut Tok, fx| {
        let v = t.srcs[0].value().wrapping_mul(10);
        let tok = fx.token();
        t.dst.set(&mut m.regs, tok, v);
    });
    b.transition(c, "all")
        .from(p1)
        .to(end)
        .guard_ir(Program::new(vec![MicroOp::CheckReady { fwd_mask: 0 }]))
        .action_ir(Program::new(vec![
            MicroOp::AcquireOperands { fwd_mask: 0 },
            MicroOp::CallHook(exec_hook),
            MicroOp::WriteBack,
        ]))
        .done();
    b.source("feed").to(p1).produce(|m, _fx| m.res.q.borrow_mut().pop_front()).done();
    let model = b.build().expect("validates");
    let mut m = feed_machine(0);
    {
        let r0 = m.regs.find("r0").unwrap();
        let r1 = m.regs.find("r1").unwrap();
        m.regs.poke(r0, 7);
        m.res.q.borrow_mut().push_back(Tok {
            class: OpClassId::from_index(0),
            srcs: [Operand::reg(r0), Operand::Absent],
            dst: Operand::reg(r1),
        });
    }
    let mut e = Engine::new(model, m);
    e.run(10);
    assert_eq!(e.stats().retired, 1);
    let r1 = e.machine().regs.find("r1").unwrap();
    assert_eq!(e.machine().regs.value_of(r1), 70, "acquire → hook → writeback pipeline");
    assert_eq!(e.machine().regs.reserved_cells(), 0, "WriteBack must clear the reservation");
    assert_eq!(e.stats().leaked_reservations, 0);
}

/// How the exec step makes its result bypassable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PublishFlavor {
    /// `Operand::set` in a closure-style hook — latch + publish at once.
    SetClosure,
    /// `Operand::set_value` in the hook, then a `Publish` micro-op.
    SetValueThenPublishOp,
    /// `Operand::set_value` only — the result is never published, so
    /// consumers must wait for the register-file commit at writeback.
    NoPublish,
}

/// The [`pipeline`] shape with the exec step's publish discipline split
/// out — compute into the latch, optionally publish, write back at retire
/// — and a pass-through stage between exec and writeback so publishing
/// opens a real forwarding window before the register-file commit.
fn publish_pipeline(flavor: PublishFlavor) -> Model<Tok, Feed> {
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let s1 = b.stage("S1", 1);
    let s2 = b.stage("S2", 1);
    let s3 = b.stage("S3", 1);
    let s4 = b.stage("S4", 1);
    let p1 = b.place("P1", s1);
    let p2 = b.place("P2", s2);
    let p3 = b.place("P3", s3);
    let p4 = b.place("P4", s4);
    let end = b.end_place();
    let (alu, _) = b.class_net("Alu");
    let mask = rcpn::ir::place_mask(&[p3, p4]).expect("small net");
    let compute = b.hook_action(|_m, t: &mut Tok, _fx| {
        let v = t.srcs[0].value().wrapping_add(t.srcs[1].value());
        t.dst.set_value(v);
    });
    b.transition(alu, "issue")
        .from(p1)
        .to(p2)
        .reads_state(p3)
        .guard_ir(Program::new(vec![MicroOp::CheckReady { fwd_mask: mask }]))
        .action_ir(Program::new(vec![MicroOp::AcquireOperands { fwd_mask: mask }]))
        .done();
    let exec = b.transition(alu, "exec").from(p2).to(p3);
    match flavor {
        PublishFlavor::SetClosure => exec
            .action(|m, t, fx| {
                let v = t.srcs[0].value().wrapping_add(t.srcs[1].value());
                let tok = fx.token();
                t.dst.set(&mut m.regs, tok, v);
            })
            .done(),
        PublishFlavor::SetValueThenPublishOp => {
            exec.action_ir(Program::new(vec![MicroOp::CallHook(compute), MicroOp::Publish])).done()
        }
        PublishFlavor::NoPublish => {
            exec.action_ir(Program::new(vec![MicroOp::CallHook(compute)])).done()
        }
    };
    b.transition(alu, "mem").from(p3).to(p4).done();
    b.transition(alu, "wb")
        .from(p4)
        .to(end)
        .action(|m, t, fx| t.dst.writeback(&mut m.regs, fx.token()))
        .done();
    b.source("feed").to(p1).produce(|m, _fx| m.res.q.borrow_mut().pop_front()).done();
    b.build().expect("pipeline validates")
}

/// The `Publish` op is the exact publish half of `Operand::set`: a
/// `set_value` hook followed by `Publish` simulates bit-identically to a
/// closure doing `set`, while omitting the publish keeps results correct
/// but kills forwarding (consumers stall until the writeback commit).
#[test]
fn publish_op_matches_closure_publish_and_enables_forwarding() {
    let compile = |f: PublishFlavor| {
        CompiledModel::compile_with(publish_pipeline(f), traced(EngineConfig::default()))
    };
    let a = run(&compile(PublishFlavor::SetClosure), 12, 80);
    let b = run(&compile(PublishFlavor::SetValueThenPublishOp), 12, 80);
    // The unpublished pipe serializes on the register file, so give it
    // enough cycles to drain.
    let c = run(&compile(PublishFlavor::NoPublish), 12, 160);

    assert_eq!(a.trace, b.trace, "Publish op vs closure set: trace");
    assert_eq!(a.stats, b.stats, "Publish op vs closure set: Stats");
    assert_eq!(a.regs, b.regs, "Publish op vs closure set: architectural state");

    assert_eq!(a.stats.retired, c.stats.retired, "publishing never changes results");
    assert_eq!(a.regs, c.regs, "publishing never changes results");
    assert!(
        c.stats.stalls > a.stats.stalls,
        "without Publish, consumers must wait for writeback: {} vs {}",
        c.stats.stalls,
        a.stats.stalls
    );
}

/// Condition-checked payload for the `CheckCond`/`Annul` path.
#[derive(Debug, Clone)]
struct CondTok {
    pass: bool,
}

impl InstrData for CondTok {
    fn op_class(&self) -> OpClassId {
        OpClassId::from_index(0)
    }
    fn cond_passes(&self) -> bool {
        self.pass
    }
    fn set_annulled(&mut self) {}
}

/// `CheckCond` guards route tokens by their pre-resolved condition —
/// `expect: false` selects the annul path — and a single-candidate
/// `CheckCond` transition dispatches through a superblock, bit-identically
/// to the per-op interpreter.
#[test]
fn check_cond_routes_tokens_and_superblocks_stay_bit_identical() {
    let build = || {
        let mut b = ModelBuilder::<CondTok, RefCell<VecDeque<bool>>>::new();
        let s1 = b.stage("S1", 1);
        let s2 = b.stage("S2", 1);
        let p1 = b.place("P1", s1);
        let p2 = b.place("P2", s2);
        let end = b.end_place();
        let (c, _) = b.class_net("C");
        // Condition failed: annul and retire immediately (tid 0).
        b.transition(c, "skip")
            .from(p1)
            .to(end)
            .priority(0)
            .guard_ir(Program::new(vec![MicroOp::CheckCond { expect: false }]))
            .action_ir(Program::new(vec![MicroOp::Annul]))
            .done();
        // Condition passed: advance (tid 1).
        b.transition(c, "adv")
            .from(p1)
            .to(p2)
            .priority(1)
            .guard_ir(Program::new(vec![MicroOp::CheckCond { expect: true }]))
            .done();
        // Single candidate with a CheckCond guard: forms a superblock
        // with a non-empty guard range (tid 2).
        b.transition(c, "out")
            .from(p2)
            .to(end)
            .guard_ir(Program::new(vec![MicroOp::CheckCond { expect: true }]))
            .done();
        b.source("feed")
            .to(p1)
            .produce(|m, _fx| m.res.borrow_mut().pop_front().map(|pass| CondTok { pass }))
            .done();
        b.build().expect("validates")
    };
    let feed: Vec<bool> = (0..10).map(|i| i % 3 != 0).collect();
    let n_pass = feed.iter().filter(|&&p| p).count() as u64;
    let n_fail = feed.len() as u64 - n_pass;
    let outcome = |superblocks: bool| {
        let cfg = traced(EngineConfig { superblocks, ..Default::default() });
        let compiled = CompiledModel::compile_with(build(), cfg);
        assert_eq!(
            compiled.superblocks() > 0,
            superblocks,
            "sb tables must exist iff superblocks are enabled"
        );
        let mut e = compiled
            .instantiate(Machine::new(RegisterFile::new(), RefCell::new(feed.clone().into())));
        e.run(60);
        assert_eq!(e.stats().fires[0], n_fail, "skip fires once per failed condition");
        assert_eq!(e.stats().fires[1], n_pass, "adv fires once per passed condition");
        assert_eq!(e.stats().fires[2], n_pass, "out fires once per advanced token");
        assert_eq!(e.stats().retired, n_pass + n_fail);
        (e.take_trace(), e.stats().clone(), e.sched().clone())
    };
    let (sb_trace, sb_stats, sb_sched) = outcome(true);
    let (po_trace, po_stats, po_sched) = outcome(false);
    assert_eq!(sb_trace, po_trace, "superblocks must not change the trace");
    assert_eq!(sb_stats, po_stats, "superblocks must not change Stats");
    assert_eq!(sb_sched.dispatch_normalized(), po_sched.dispatch_normalized());
    assert_eq!(
        sb_sched.superblocks_entered + sb_sched.chain_links_fired,
        n_pass,
        "out dispatches through its superblock, directly or via a parked chain cursor"
    );
    assert!(sb_sched.ops_inlined >= n_pass, "the CheckCond guard op is interpreted inline");
    assert_eq!(po_sched.superblocks_entered, 0);
    assert_eq!(po_sched.chain_links_fired, 0, "no superblocks means no chains");
    assert_eq!(po_sched.ops_inlined, 0);
}

#[test]
fn invalid_programs_are_build_errors() {
    let build = |guard: Option<Program>, action: Option<Program>| {
        let mut b = ModelBuilder::<Plain, u64>::new();
        let s1 = b.stage("S1", 1);
        let p1 = b.place("P1", s1);
        let end = b.end_place();
        let (c, _) = b.class_net("C");
        let mut tb = b.transition(c, "t").from(p1).to(end);
        if let Some(g) = guard {
            tb = tb.guard_ir(g);
        }
        if let Some(a) = action {
            tb = tb.action_ir(a);
        }
        tb.done();
        b.source("s").to(p1).produce(|_m, _fx| None).done();
        b.build()
    };
    // Mutating op in a guard program.
    let e = build(Some(Program::new(vec![MicroOp::AcquireOperands { fwd_mask: 0 }])), None)
        .unwrap_err();
    assert!(matches!(e, BuildError::InvalidProgram { .. }), "{e}");
    assert!(e.to_string().contains("non-guard op"), "{e}");
    // CheckReady in an action program.
    let e = build(None, Some(Program::new(vec![MicroOp::CheckReady { fwd_mask: 0 }]))).unwrap_err();
    assert!(e.to_string().contains("non-action op"), "{e}");
    // Dangling hook indices, both tables.
    let e = build(Some(Program::new(vec![MicroOp::CallHook(3)])), None).unwrap_err();
    assert!(e.to_string().contains("hook 3"), "{e}");
    let e = build(None, Some(Program::new(vec![MicroOp::CallHook(0)]))).unwrap_err();
    assert!(e.to_string().contains("hook 0"), "{e}");
    // Dangling place in a program op.
    let e = build(
        None,
        Some(Program::new(vec![MicroOp::ReserveRes { place: PlaceId::from_index(99), expire: 1 }])),
    )
    .unwrap_err();
    assert!(matches!(e, BuildError::UnknownPlace { .. }), "{e}");
    // An acquire without a matching CheckReady guard would silently latch
    // stale operand values in release builds; both the unguarded and the
    // mask-mismatched forms are rejected at build time.
    let e = build(None, Some(Program::new(vec![MicroOp::AcquireOperands { fwd_mask: 1 }])))
        .unwrap_err();
    assert!(e.to_string().contains("requires a CheckReady"), "{e}");
    let e = build(
        Some(Program::new(vec![MicroOp::CheckReady { fwd_mask: 2 }])),
        Some(Program::new(vec![MicroOp::AcquireOperands { fwd_mask: 1 }])),
    )
    .unwrap_err();
    assert!(e.to_string().contains("requires a CheckReady"), "{e}");
}

/// A reservation into a place the compile step does not know as a
/// reservation target would never be released by the expiry scan; the
/// engine rejects it loudly (always, not only in debug builds) instead
/// of silently wedging the stage.
#[test]
#[should_panic(expected = "not a compiled reservation target")]
fn fx_reserve_into_unknown_place_panics() {
    let mut b = ModelBuilder::<Plain, u64>::new();
    let s1 = b.stage("S1", 1);
    let s2 = b.stage("S2", 1);
    let p1 = b.place("P1", s1);
    let p2 = b.place("P2", s2);
    let end = b.end_place();
    let (c, _) = b.class_net("C");
    // Closure action reserving p2, which no ResArc or ReserveRes names.
    b.transition(c, "mid").from(p1).to(p2).action(move |_m, _t, fx| fx.reserve(p2, 3)).done();
    b.transition(c, "out").from(p2).to(end).done();
    b.source("s").to(p1).produce(|_m, _fx| Some(Plain)).done();
    let model = b.build().expect("validates");
    let mut e = Engine::new(model, Machine::new(RegisterFile::new(), 0u64));
    e.run(10);
}

#[test]
fn empty_ir_programs_compile_to_no_guard_no_action() {
    // An empty guard program and an action that folds to nothing must
    // leave the transition guardless/actionless — `has_guard`/`has_action`
    // stay honest, which the engine's skip paths rely on.
    let mut b = ModelBuilder::<Plain, u64>::new();
    let s1 = b.stage("S1", 1);
    let p1 = b.place("P1", s1);
    let end = b.end_place();
    let (c, _) = b.class_net("C");
    b.transition(c, "t")
        .from(p1)
        .to(end)
        .guard_ir(Program::new(vec![]))
        .action_ir(Program::new(vec![MicroOp::EmitRedirect { flush: Box::from([]) }]))
        .done();
    b.source("s")
        .to(p1)
        .produce(|m, _fx| {
            m.res += 1;
            (m.res <= 3).then_some(Plain)
        })
        .done();
    let model = b.build().expect("validates");
    let compiled = CompiledModel::compile(model);
    assert_eq!(compiled.ir_transitions(), 0, "both programs fold away entirely");
    let mut e = compiled.instantiate(Machine::new(RegisterFile::new(), 0u64));
    e.run(10);
    assert_eq!(e.stats().retired, 3);
    assert_eq!(e.sched().guard_ir_evals, 0, "a dropped guard is never evaluated");
}
