//! Differential property test: the activity-driven scheduler against the
//! exhaustive-sweep oracle.
//!
//! Random small pipeline models × random programs are executed under both
//! [`SchedulerMode`]s, for every candidate-table mode and for the
//! two-list-everywhere fixpoint scheme. The contract is *bit-identity of
//! everything simulated*: the full trace (generation, firing, retirement
//! and flush events, in order) and the complete [`Stats`] block must not
//! depend on the scheduler — skipped work must be provably work that
//! would have had no effect.
//!
//! The generated models deliberately exercise every wake-up path of the
//! dirty-place worklist: multi-cycle place delays and data-dependent
//! token delays (timer wake-ups), machine-state guards that flip with the
//! cycle counter (stall re-arming), join transitions with extra inputs,
//! reservation arcs (expiry scans), micro-op emission and flushes
//! (mid-cycle re-dirtying), and stage-capacity back-pressure.

use std::cell::RefCell;
use std::collections::VecDeque;

use proptest::prelude::*;
use rcpn::engine::TraceEvent;
use rcpn::prelude::*;

/// Instruction payload: a class plus an immediate the guards/actions key on.
#[derive(Debug, Clone)]
struct Tok {
    class: OpClassId,
    imm: u32,
}

impl InstrData for Tok {
    fn op_class(&self) -> OpClassId {
        self.class
    }
}

/// Program feed (per-engine resource; refilled per run from the spec).
#[derive(Debug, Default)]
struct Feed {
    program: RefCell<VecDeque<Tok>>,
}

/// A randomly generated model + program, deterministic to rebuild (model
/// closures are pure functions of the spec, so two builds simulate
/// identically).
#[derive(Debug, Clone)]
struct Spec {
    /// Pipeline depth: one place per stage, 2..=4.
    n_stages: usize,
    /// Stage capacities, 1..=2.
    caps: Vec<u32>,
    /// Place delays, 0..=2.
    delays: Vec<u32>,
    /// Class-B alternative edges `place i → place j` (`j == n_stages`
    /// means the end place).
    skips: Vec<(usize, usize)>,
    /// When nonzero: class-B spine transitions carry the machine-state
    /// guard `cycle % guard_every != 0` (flips every few cycles).
    guard_every: u32,
    /// Class B's first transition overrides the token delay with
    /// `imm % 4` (data-dependent latency — the parked-token case).
    token_delays: bool,
    /// Class B's final transition deposits a reservation token into
    /// place `.0` expiring after `.1` cycles.
    reserve: Option<(usize, u32)>,
    /// Class A's final transition emits a follow-up micro-op for tokens
    /// with `imm % 4 == 0` (terminates: the emitted token gets `imm + 1`).
    emit: bool,
    /// When nonzero: class-B retirement flushes place 0 for tokens with
    /// `imm % flush_every == 0`.
    flush_every: u32,
    /// The program: `(is_class_b, imm)` per instruction.
    program: Vec<(bool, u32)>,
    /// Fetch width, 1..=2.
    width: u32,
}

fn build_model(spec: &Spec) -> (Model<Tok, Feed>, OpClassId, OpClassId) {
    let n = spec.n_stages;
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let stages: Vec<_> =
        (0..n).map(|i| b.stage(&format!("S{i}"), spec.caps[i % spec.caps.len()])).collect();
    let places: Vec<_> = (0..n)
        .map(|i| {
            b.place_with_delay(&format!("P{i}"), stages[i], spec.delays[i % spec.delays.len()])
        })
        .collect();
    let end = b.end_place();
    let (ca, _) = b.class_net("A");
    let (cb, _) = b.class_net("B");
    let dest = |j: usize| if j >= n { end } else { places[j] };

    // Class A spine, with optional terminating micro-op emission.
    for i in 0..n {
        let t = b.transition(ca, &format!("a{i}")).from(places[i]).to(dest(i + 1)).priority(0);
        let t = if i + 1 == n && spec.emit {
            let p0 = places[0];
            t.action(move |_m, tok, fx| {
                if tok.imm % 4 == 0 {
                    fx.emit(Tok { class: tok.class, imm: tok.imm + 1 }, p0, 1);
                }
            })
        } else {
            t
        };
        t.done();
    }

    // Class B spine: cycle-flipping guards, data-dependent delay, a
    // reservation arc and a conditional flush at the end.
    for i in 0..n {
        let mut t = b.transition(cb, &format!("b{i}")).from(places[i]).to(dest(i + 1)).priority(0);
        if spec.guard_every > 0 {
            let ge = u64::from(spec.guard_every);
            t = t.guard(move |m, _tok| m.cycle % ge != 0);
        }
        if i == 0 && spec.token_delays {
            t = t.action(|_m, tok, fx| fx.set_token_delay(tok.imm % 4));
        }
        if i + 1 == n {
            if let Some((rp, expire)) = spec.reserve {
                t = t.reserve(places[rp % n], expire);
            }
            if spec.flush_every > 0 {
                let fe = spec.flush_every;
                let p0 = places[0];
                t = t.action(move |_m, tok, fx| {
                    if tok.imm % fe == 0 {
                        fx.flush(p0);
                    }
                });
            }
        }
        t.done();
    }

    // Class-B alternative edges (skips), guarded on the token. The first
    // one is a join: it additionally consumes the oldest ready token of
    // the next place (exercising the extra-input miss → stall → re-arm
    // wake-up path).
    for (k, &(i, j)) in spec.skips.iter().enumerate() {
        let (i, j) = (i % n, (j % (n + 1)).max(i + 1));
        let mut t = b
            .transition(cb, &format!("skip{k}"))
            .from(places[i])
            .to(dest(j))
            .priority(1 + k as u32)
            .guard(|_m, tok: &Tok| tok.imm % 3 == 0);
        if k == 0 {
            t = t.extra_input(places[(i + 1) % n]);
        }
        t.done();
    }

    b.source("fetch")
        .to(places[0])
        .width(spec.width)
        .produce(|m: &mut Machine<Feed>, _fx| m.res.program.borrow_mut().pop_front())
        .done();

    (b.build().expect("generated spec must be a valid model"), ca, cb)
}

/// Runs the spec under `cfg` for a fixed cycle budget, returning the full
/// trace and statistics.
fn run_spec(spec: &Spec, mut cfg: EngineConfig) -> (Vec<TraceEvent>, Stats, SchedStats) {
    cfg.trace = true;
    let (model, ca, cb) = build_model(spec);
    let feed = Feed::default();
    feed.program.borrow_mut().extend(
        spec.program.iter().map(|&(is_b, imm)| Tok { class: if is_b { cb } else { ca }, imm }),
    );
    let mut e = Engine::with_config(model, Machine::new(RegisterFile::new(), feed), cfg);
    e.run(300);
    let trace = e.take_trace();
    (trace, e.stats().clone(), e.sched().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random models + random programs simulate bit-identically under the
    /// activity-driven scheduler and the exhaustive oracle, across all
    /// candidate-table modes and the two-list-everywhere fixpoint scheme.
    #[test]
    fn activity_scheduler_is_bit_identical_to_exhaustive_oracle(
        n_stages in 2usize..=4,
        caps in proptest::collection::vec(1u32..=2, 1..=4),
        delays in proptest::collection::vec(0u32..=2, 1..=4),
        skips in proptest::collection::vec((0usize..4, 1usize..=4), 0..3),
        guard_every in 0u32..=4,
        token_delays in any::<bool>(),
        reserve_raw in (0usize..4, 0u32..=3),
        use_reserve in any::<bool>(),
        emit in any::<bool>(),
        flush_every in 0u32..=5,
        program in proptest::collection::vec((any::<bool>(), 0u32..64), 1..32),
        width in 1u32..=2,
    ) {
        let spec = Spec {
            n_stages,
            caps,
            delays,
            skips,
            guard_every: if guard_every < 2 { 0 } else { guard_every },
            token_delays,
            reserve: use_reserve.then_some(reserve_raw),
            emit,
            flush_every: if flush_every < 2 { 0 } else { flush_every },
            program,
            width,
        };
        let configs = [
            EngineConfig::default(),
            EngineConfig { table_mode: TableMode::PerPlace, ..Default::default() },
            EngineConfig { table_mode: TableMode::FullScan, ..Default::default() },
            EngineConfig { two_list_everywhere: true, ..Default::default() },
        ];
        for base in configs {
            let act = run_spec(
                &spec,
                EngineConfig { scheduler: SchedulerMode::ActivityDriven, ..base.clone() },
            );
            let exh = run_spec(
                &spec,
                EngineConfig { scheduler: SchedulerMode::Exhaustive, ..base.clone() },
            );
            prop_assert_eq!(
                &act.0, &exh.0,
                "trace diverged under {:?} for {:?}", base, spec
            );
            prop_assert_eq!(
                &act.1, &exh.1,
                "stats diverged under {:?} for {:?}", base, spec
            );
            // The oracle, by definition, never skips; the activity
            // scheduler never visits more than the oracle.
            prop_assert_eq!(exh.2.place_skips, 0);
            prop_assert!(
                act.2.place_visits + act.2.place_skips <= exh.2.place_visits,
                "activity visits+skips {} exceed oracle visits {}",
                act.2.place_visits + act.2.place_skips, exh.2.place_visits
            );
        }
    }

    /// The compiled reverse index is exactly the input/extra-input arcs of
    /// the model — the dependency structure the worklist reasons about.
    #[test]
    fn dependents_index_matches_model_arcs(
        n_stages in 2usize..=4,
        skips in proptest::collection::vec((0usize..4, 1usize..=4), 0..3),
    ) {
        let spec = Spec {
            n_stages,
            caps: vec![2],
            delays: vec![0],
            skips,
            guard_every: 0,
            token_delays: false,
            reserve: None,
            emit: false,
            flush_every: 0,
            program: vec![(false, 0)],
            width: 1,
        };
        let (model, _, _) = build_model(&spec);
        let compiled = CompiledModel::compile(model);
        for p in compiled.model().place_ids() {
            let deps = compiled.dependents_of(p);
            prop_assert!(deps.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
            for t in compiled.model().transition_ids() {
                let td = compiled.model().transition(t);
                let is_dep = td.input() == p || td.extra_inputs().contains(&p);
                prop_assert_eq!(
                    deps.contains(&t), is_dep,
                    "place {:?} vs transition {:?}", p, t
                );
            }
        }
    }
}
