//! Prints the activity-driven scheduler's sparsity counters and the
//! guard-dispatch counters for each RCPN simulator over the benchmark
//! kernels: how many place scans, token examinations and
//! candidate-transition evaluations the dirty-place worklist skipped
//! relative to the exhaustive Figure-8 sweep (which is also run, as the
//! 0%-skip reference), how guard evaluations split between the micro-op
//! IR interpreter (`ir`, with `fused` ready/acquire fires) and the
//! closure hook path (`hook`), how many firings dispatched through a
//! compiled superblock (`sblocks`, with `inlined` micro-ops interpreted
//! on the fast path), and how many rode a cross-place chain cursor
//! (`chains` parked, `links` fired) — the chains-off, per-op and
//! closure-lowered StrongARM rows are the successively weaker dispatch
//! references.
//!
//! ```text
//! cargo run --release -p rcpn-bench --example sparsity
//! ```

use rcpn_bench::{compiled_sim, Simulator, MAX_CYCLES};
use workloads::{Kernel, Workload};

fn main() {
    println!(
        "{:<32}{:>10}{:>13}{:>11}{:>8}{:>12}{:>11}{:>11}{:>12}{:>12}{:>9}{:>9}{:>10}",
        "simulator/kernel",
        "cycles",
        "place_visits",
        "skips",
        "ratio",
        "guard_ir",
        "guard_hook",
        "fused",
        "sblocks",
        "inlined",
        "chains",
        "links",
        "trans"
    );
    for sim in [
        Simulator::RcpnStrongArm,
        Simulator::RcpnXScale,
        Simulator::RcpnStrongArmExhaustive,
        Simulator::RcpnStrongArmClosure,
        Simulator::RcpnStrongArmPerOp,
        Simulator::RcpnStrongArmChainsOff,
    ] {
        let compiled = compiled_sim(sim).expect("RCPN simulator");
        for kernel in Kernel::ALL {
            let size = (kernel.bench_size() / 20).max(kernel.test_size());
            let w = Workload::build(kernel, size);
            let mut s = compiled.instantiate(&w.program);
            let r = s.run(MAX_CYCLES);
            assert_eq!(r.exit, Some(w.expected), "{}/{}", sim.name(), kernel);
            let sc = s.sched();
            if sim == Simulator::RcpnStrongArmClosure {
                assert_eq!(sc.guard_ir_evals, 0, "closure row must not dispatch through IR");
            } else {
                assert!(sc.guard_ir_evals > 0, "IR row must dispatch through IR");
            }
            if matches!(sim, Simulator::RcpnStrongArmClosure | Simulator::RcpnStrongArmPerOp) {
                assert_eq!(sc.superblocks_entered, 0, "oracle row must not enter superblocks");
                assert_eq!(sc.ops_inlined, 0);
            } else {
                // Superblock formation is lookup- and scheduler-independent:
                // the exhaustive-sweep row dispatches through them too.
                assert!(sc.superblocks_entered > 0, "IR row must dispatch superblocks");
                assert!(sc.ops_inlined > 0, "superblock firings must interpret inline ops");
            }
            if matches!(
                sim,
                Simulator::RcpnStrongArmClosure
                    | Simulator::RcpnStrongArmPerOp
                    | Simulator::RcpnStrongArmChainsOff
            ) {
                assert_eq!(sc.chains_entered, 0, "oracle row must not park chain cursors");
                assert_eq!(sc.chain_links_fired, 0);
            } else {
                // Chain formation is likewise scheduler-independent.
                assert!(sc.chains_entered > 0, "default row must park chain cursors");
                assert!(sc.chain_links_fired > 0, "default row must fire chain links");
            }
            println!(
                "{:<32}{:>10}{:>13}{:>11}{:>7.1}%{:>12}{:>11}{:>11}{:>12}{:>12}{:>9}{:>9}{:>10}",
                format!("{}/{}", sim.name(), kernel.name()),
                r.cycles,
                sc.place_visits,
                sc.place_skips,
                100.0 * sc.place_skip_ratio(),
                sc.guard_ir_evals,
                sc.guard_hook_evals,
                sc.actions_fused,
                sc.superblocks_entered,
                sc.ops_inlined,
                sc.chains_entered,
                sc.chain_links_fired,
                sc.trans_visits,
            );
        }
    }
}
