//! Prints the activity-driven scheduler's sparsity counters for each
//! RCPN simulator over the benchmark kernels: how many place scans,
//! token examinations and candidate-transition evaluations the
//! dirty-place worklist skipped relative to the exhaustive Figure-8
//! sweep (which is also run, as the 0%-skip reference).
//!
//! ```text
//! cargo run --release -p rcpn-bench --example sparsity
//! ```

use rcpn_bench::{compiled_sim, Simulator, MAX_CYCLES};
use workloads::{Kernel, Workload};

fn main() {
    println!(
        "{:<32}{:>10}{:>14}{:>12}{:>8}{:>14}{:>14}",
        "simulator/kernel",
        "cycles",
        "place_visits",
        "skips",
        "ratio",
        "trans_visits",
        "trans_skips"
    );
    for sim in [Simulator::RcpnStrongArm, Simulator::RcpnXScale, Simulator::RcpnStrongArmExhaustive]
    {
        let compiled = compiled_sim(sim).expect("RCPN simulator");
        for kernel in Kernel::ALL {
            let size = (kernel.bench_size() / 20).max(kernel.test_size());
            let w = Workload::build(kernel, size);
            let mut s = compiled.instantiate(&w.program);
            let r = s.run(MAX_CYCLES);
            assert_eq!(r.exit, Some(w.expected), "{}/{}", sim.name(), kernel);
            let sc = s.sched();
            println!(
                "{:<32}{:>10}{:>14}{:>12}{:>7.1}%{:>14}{:>14}",
                format!("{}/{}", sim.name(), kernel.name()),
                r.cycles,
                sc.place_visits,
                sc.place_skips,
                100.0 * sc.place_skip_ratio(),
                sc.trans_visits,
                sc.trans_visits_skipped,
            );
        }
    }
}
