//! Figure 10 — simulation performance of the three simulators over the six
//! benchmarks. Criterion reports time per run; throughput is configured in
//! simulated cycles, so the `thrpt` column reads directly in cycles/second
//! (the paper's Mcycles/s metric).
//!
//! ```text
//! cargo bench -p rcpn-bench --bench fig10_performance
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcpn_bench::{compiled_sim, measure, measure_compiled, Simulator};
use std::time::Duration;
use workloads::{Kernel, Workload};

/// Bench-size divisor: keeps a full Criterion sweep (3 sims × 6 kernels ×
/// samples) within minutes while still simulating ≥100k cycles per run.
const SCALE_DIV: usize = 20;

fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for kernel in Kernel::ALL {
        let size = (kernel.bench_size() / SCALE_DIV).max(kernel.test_size());
        let w = Workload::build(kernel, size);
        // One calibration run per simulator gives the cycle count for the
        // throughput scale (deterministic, identical every run).
        // The exhaustive-scheduler StrongARM rides along so the recorded
        // baseline captures both engines (activity-driven vs oracle).
        for sim in Simulator::FIG10 {
            // RCPN simulators are compiled once per (model, kernel) entry;
            // each iteration instantiates and runs the shared artifact —
            // the model → compile → run pipeline as the paper intends it.
            let compiled = compiled_sim(sim);
            let run = |w: &Workload| match &compiled {
                Some(c) => measure_compiled(c, w),
                None => measure(sim, w),
            };
            let cycles = run(&w).cycles;
            group.throughput(Throughput::Elements(cycles));
            group.bench_function(format!("{}/{}", sim.name(), kernel.name()), |b| {
                b.iter(|| {
                    let m = run(&w);
                    assert_eq!(m.cycles, cycles, "deterministic simulation");
                    m.cycles
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
