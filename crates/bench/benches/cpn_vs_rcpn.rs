//! Figure 1/2's performance claim — the same pipeline simulated by the
//! RCPN engine vs its standard-CPN lowering under a generic
//! enabled-transition search. Both simulate the identical token game
//! (equality is asserted in the integration tests); the CPN interpreter
//! pays the search cost RCPN's static tables eliminate.
//!
//! ```text
//! cargo bench -p rcpn-bench --bench cpn_vs_rcpn
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcpn::builder::ModelBuilder;
use rcpn::engine::Engine;
use rcpn::ids::OpClassId;
use rcpn::model::Machine;
use rcpn::reg::RegisterFile;
use rcpn::token::InstrData;
use std::time::Duration;

#[derive(Debug)]
struct Tok(OpClassId);
impl InstrData for Tok {
    fn op_class(&self) -> OpClassId {
        self.0
    }
}

#[derive(Debug)]
struct Feed {
    left: u32,
    count: u64,
}

fn build_model() -> rcpn::model::Model<Tok, Feed> {
    let mut b = ModelBuilder::<Tok, Feed>::new();
    let l1 = b.stage("L1", 1);
    let l2 = b.stage("L2", 1);
    let p1 = b.place("P1", l1);
    let p2 = b.place("P2", l2);
    let end = b.end_place();
    let (short, _) = b.class_net("Short");
    let (long, _) = b.class_net("Long");
    b.transition(short, "U4").from(p1).to(end).done();
    b.transition(long, "U2").from(p1).to(p2).done();
    b.transition(long, "U3").from(p2).to(end).done();
    b.source("U1")
        .to(p1)
        .produce(move |m, _fx| {
            if m.res.left == 0 {
                return None;
            }
            m.res.left -= 1;
            m.res.count += 1;
            Some(Tok(if m.res.count % 4 == 1 { short } else { long }))
        })
        .done();
    b.build().expect("fig2 model")
}

const TOKENS: u32 = 20_000;

fn rcpn_run() -> u64 {
    let model = build_model();
    let mut e =
        Engine::new(model, Machine::new(RegisterFile::new(), Feed { left: TOKENS, count: 0 }));
    e.run(3 * u64::from(TOKENS));
    assert_eq!(e.stats().retired, u64::from(TOKENS));
    e.stats().cycles
}

fn cpn_run() -> u64 {
    let model = build_model();
    let program: Vec<OpClassId> =
        (0..TOKENS).map(|i| OpClassId::from_index(if i % 4 == 0 { 0 } else { 1 })).collect();
    let mut net = rcpn::cpn::convert(&model, &program).expect("structural model converts");
    net.run(3 * u64::from(TOKENS));
    assert_eq!(net.stats().retired, u64::from(TOKENS));
    net.stats().cycles
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpn_vs_rcpn");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    let cycles = rcpn_run();
    group.throughput(Throughput::Elements(cycles));
    group.bench_function("rcpn-engine", |b| b.iter(rcpn_run));
    group.bench_function("cpn-interpreter", |b| b.iter(cpn_run));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
