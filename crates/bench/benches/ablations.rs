//! Section 4 ablations — each RCPN optimization toggled on the StrongARM
//! simulator: sorted transition tables (per-place-class / per-place / full
//! scan), reverse-topological single-list evaluation vs two-list
//! everywhere, and the decode/token cache.
//!
//! Simulated timing is identical across configurations (asserted); only
//! simulator speed changes. Throughput is in simulated cycles.
//!
//! ```text
//! cargo bench -p rcpn-bench --bench ablations
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcpn_bench::{ablation_configs, measure_ablation};
use std::time::Duration;
use workloads::{Kernel, Workload};

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    let w = Workload::build(Kernel::Crc, Kernel::Crc.bench_size() / 20);
    let reference = measure_ablation(&w, Default::default(), true).cycles;
    for (name, cfg, decode_cache) in ablation_configs() {
        let cycles = measure_ablation(&w, cfg.clone(), decode_cache).cycles;
        assert_eq!(cycles, reference, "{name} must not change simulated time");
        group.throughput(Throughput::Elements(cycles));
        group.bench_function(name, |b| {
            b.iter(|| measure_ablation(&w, cfg.clone(), decode_cache).cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
