//! Regenerates the paper's tables and figures on this machine.
//!
//! ```text
//! cargo run -p rcpn-bench --release --bin figures -- all
//! cargo run -p rcpn-bench --release --bin figures -- fig10 --scale 0.2
//! cargo run -p rcpn-bench --release --bin figures -- fig10 --cache .rcpn-cache
//! ```
//!
//! Subcommands: `fig10` (simulation performance), `fig11` (CPI), `fig2`
//! (RCPN vs CPN model size), `ablations` (Section 4 optimizations),
//! `effort` (Section 5 model statistics), `all`. With `--cache DIR`,
//! `fig10` reloads each RCPN simulator from the artifact cache instead of
//! recompiling its model (compiling and storing on a first run).

use processors::sim::{CaSim, ProcModel};
use rcpn::artifact::ArtifactCache;
use rcpn_bench::{
    ablation_configs, average, compiled_sim_cached, measure, measure_ablation, measure_compiled,
    suite, Simulator,
};
use workloads::{Kernel, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut cache_dir: Option<String> = None;
    let mut cmds: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it.next().and_then(|s| s.parse().ok()).expect("--scale needs a number");
            }
            "--cache" => {
                cache_dir = Some(it.next().expect("--cache needs a directory").clone());
            }
            c => cmds.push(c.to_string()),
        }
    }
    if cmds.is_empty() {
        cmds.push("all".to_string());
    }
    let cache = cache_dir.map(|d| ArtifactCache::open(d).expect("open artifact cache"));
    for c in &cmds {
        match c.as_str() {
            "fig10" => fig10(scale, cache.as_ref()),
            "fig11" => fig11(scale),
            "fig2" => fig2(),
            "ablations" => ablations(scale),
            "effort" => effort(),
            "all" => {
                fig2();
                effort();
                fig11(scale);
                ablations(scale);
                fig10(scale, cache.as_ref());
            }
            other => {
                eprintln!("unknown figure {other:?}; try fig10|fig11|fig2|ablations|effort|all");
                std::process::exit(2);
            }
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn bench_names() -> Vec<&'static str> {
    Kernel::ALL.iter().map(|k| k.name()).chain(["Average"]).collect()
}

fn print_table(rows: &[(&str, Vec<f64>)], prec: usize) {
    print!("{:<22}", "");
    for n in bench_names() {
        print!("{n:>10}");
    }
    println!();
    for (label, values) in rows {
        let mut values = values.clone();
        values.push(average(&values));
        print!("{label:<22}");
        for v in values {
            print!("{v:>10.prec$}");
        }
        println!();
    }
}

/// Figure 10: simulation performance (million simulated cycles per host
/// second) of the baseline and every RCPN-generated simulator. With a
/// cache, each RCPN simulator is compiled (or reloaded) once per process
/// and shared across the kernel columns.
fn fig10(scale: f64, cache: Option<&ArtifactCache>) {
    header("Figure 10 — Simulation performance (Mcycles/s)");
    println!("(workload scale {scale}; paper: SimpleScalar ~0.6, RCPN-XScale ~8.2, RCPN-StrongArm ~12.2 on a P4/1.8GHz)");
    let ws = suite(scale);
    let mut rows = Vec::new();
    for sim in Simulator::FIG10 {
        let cached =
            cache.and_then(|c| compiled_sim_cached(sim, c).expect("artifact cache reload"));
        let values: Vec<f64> = ws
            .iter()
            .map(|w| match &cached {
                Some(compiled) => measure_compiled(compiled, w).mcps(),
                None => measure(sim, w).mcps(),
            })
            .collect();
        rows.push((sim.name(), values));
    }
    if let Some(c) = cache {
        println!(
            "artifact cache {}: {} hits, {} misses, {} bypasses",
            c.dir().display(),
            c.hits(),
            c.misses(),
            c.bypasses(),
        );
    }
    print_table(&rows, 2);
    let avg_of = |name: &str| {
        let (_, values) = rows.iter().find(|(n, _)| *n == name).expect("fig10 row exists");
        average(values)
    };
    let base = avg_of(Simulator::Baseline.name());
    print!("speedup vs baseline: ");
    for proc in ProcModel::ALL {
        print!("  {} {:.1}x", proc.figure_name(), avg_of(proc.figure_name()) / base);
    }
    println!("   (paper: ~14x / ~20x, \"order of magnitude\")");
    let sa = avg_of(Simulator::RcpnStrongArm.name());
    let sa_exh = avg_of(Simulator::RcpnStrongArmExhaustive.name());
    println!("activity-driven scheduler vs exhaustive sweep (StrongARM): {:.2}x", sa / sa_exh);
}

/// Figure 11: CPI of the baseline vs the RCPN StrongARM simulator.
fn fig11(scale: f64) {
    header("Figure 11 — Cycles per instruction (CPI)");
    println!("(paper: SimpleScalar avg ~1.8, RCPN-StrongArm avg ~2.0, ~10% apart)");
    let ws = suite(scale);
    let mut rows = Vec::new();
    for sim in [Simulator::Baseline, Simulator::RcpnStrongArm] {
        let values: Vec<f64> = ws.iter().map(|w| measure(sim, w).cpi()).collect();
        rows.push((sim.name(), values));
    }
    print_table(&rows, 2);
    let delta = 100.0 * (average(&rows[1].1) / average(&rows[0].1) - 1.0);
    println!("RCPN-StrongArm CPI is {delta:+.1}% vs baseline (paper: ~+10%)");
}

/// Figure 1/2: model complexity of RCPN vs the equivalent CPN.
fn fig2() {
    header("Figure 1/2 — RCPN vs CPN model size (Fig. 2 pipeline)");
    // The paper's Figure 2 pipeline: L1 feeds U4 (short) or U2->L2->U3.
    use rcpn::builder::ModelBuilder;
    use rcpn::ids::OpClassId;
    use rcpn::token::InstrData;

    #[derive(Debug)]
    struct Tok(OpClassId);
    impl InstrData for Tok {
        fn op_class(&self) -> OpClassId {
            self.0
        }
    }

    let mut b = ModelBuilder::<Tok, ()>::new();
    let l1 = b.stage("L1", 1);
    let l2 = b.stage("L2", 1);
    let p1 = b.place("P1", l1);
    let p2 = b.place("P2", l2);
    let end = b.end_place();
    let (short, _) = b.class_net("Short");
    let (long, _) = b.class_net("Long");
    b.transition(short, "U4").from(p1).to(end).done();
    b.transition(long, "U2").from(p1).to(p2).done();
    b.transition(long, "U3").from(p2).to(end).done();
    b.source("U1").to(p1).produce(move |_m, _fx| Some(Tok(long))).done();
    let model = b.build().expect("fig2 model");
    let cmp = rcpn::cpn::compare_sizes(&model).expect("structural model converts");
    println!("{:<14}{:>8}{:>13}{:>8}", "", "places", "transitions", "arcs");
    println!(
        "{:<14}{:>8}{:>13}{:>8}",
        "RCPN", cmp.rcpn_places, cmp.rcpn_transitions, cmp.rcpn_arcs
    );
    println!("{:<14}{:>8}{:>13}{:>8}", "CPN", cmp.cpn_places, cmp.cpn_transitions, cmp.cpn_arcs);
    println!(
        "CPN needs {:+} places (capacity/back-edge machinery) and {:+} arcs",
        cmp.cpn_places as i64 - cmp.rcpn_places as i64,
        cmp.cpn_arcs as i64 - cmp.rcpn_arcs as i64
    );
}

/// Section 4 ablations: each optimization toggled on the StrongARM model.
fn ablations(scale: f64) {
    header("Section 4 ablations — StrongARM simulator speed (Mcycles/s)");
    let ws: Vec<Workload> = [Kernel::Crc, Kernel::G721]
        .iter()
        .map(|&k| {
            let size = ((k.bench_size() as f64 * scale) as usize).max(k.test_size());
            Workload::build(k, size)
        })
        .collect();
    print!("{:<22}", "");
    for w in &ws {
        print!("{:>10}", w.kernel.name());
    }
    println!("{:>10}", "avg");
    for (name, cfg, dec) in ablation_configs() {
        let values: Vec<f64> =
            ws.iter().map(|w| measure_ablation(w, cfg.clone(), dec).mcps()).collect();
        print!("{name:<22}");
        for v in &values {
            print!("{v:>10.2}");
        }
        println!("{:>10.2}", average(&values));
    }
}

/// Section 5 model statistics (the machine-checkable part of the "model
/// effort" discussion: sub-net and class counts, net sizes).
fn effort() {
    header("Section 5 — model statistics");
    let w = Workload::build(Kernel::Crc, 64);
    for model in ProcModel::ALL {
        let name = model.figure_name();
        let sim = CaSim::with_config(model, &w.program, &model.default_config());
        let m = sim.engine.model();
        let a = m.analysis();
        println!(
            "{name:<16} sub-nets={} op-classes={} places={} transitions={} sources={} two-list={} (flow cycles {}, feedback {})",
            m.subnet_count(),
            m.op_class_count(),
            m.place_count(),
            m.transition_count(),
            m.source_count(),
            a.two_list_count(),
            a.flow_cycle_places(),
            a.feedback_places(),
        );
    }
    println!("(paper: six operation classes; six sub-nets in the StrongARM model;");
    println!(
        " development effort 1 man-day StrongARM / 3 man-days XScale is not machine-reproducible)"
    );
}
