//! Batched sweep over the full {kernel × table-mode × engine-config}
//! matrix, serial vs parallel, with a determinism check.
//!
//! ```text
//! cargo run --bin sweep                    # test-size matrix, host threads
//! cargo run --bin sweep -- --scale 0.2     # larger workloads
//! cargo run --bin sweep -- --workers 4     # explicit worker count
//! cargo run --bin sweep -- --out BENCH_sweep.json
//! cargo run --bin sweep -- --cache .rcpn-cache   # reuse compiled artifacts
//! ```
//!
//! Every engine variant is compiled once; the batch runners instantiate
//! engines from the shared artifacts. With `--cache DIR`, variants are
//! reloaded from the artifact cache when possible (compiled and stored on
//! a miss; the closure-lowered ablation row is unserializable and always
//! bypasses), and the hit/miss/bypass counters land in the JSON summary.
//! The binary always runs the matrix twice — once on one worker, once on N
//! — asserts the two runs are bit-identical, and records the wall-clock
//! comparison in the JSON file.

use rcpn::artifact::ArtifactCache;
use rcpn::batch::BatchRunner;
use rcpn_bench::sweep::{render_json, Sweep};

fn main() {
    let mut scale = 0.0f64;
    // Floor of 2 so the recorded run exercises the thread pool even on a
    // single-CPU host (the speedup column then honestly reports ~1x).
    let mut workers = BatchRunner::host_parallel().workers().max(2);
    let mut out = Some("BENCH_sweep.json".to_string());
    let mut cache_dir: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it.next().and_then(|s| s.parse().ok()).expect("--scale needs a number");
            }
            "--workers" => {
                workers = it.next().and_then(|s| s.parse().ok()).expect("--workers needs a count");
            }
            "--out" => {
                out = Some(it.next().expect("--out needs a path").clone());
            }
            "--no-out" => out = None,
            "--cache" => {
                cache_dir = Some(it.next().expect("--cache needs a directory").clone());
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; try --scale N | --workers N | --out PATH | \
                     --no-out | --cache DIR"
                );
                std::process::exit(2);
            }
        }
    }

    let cache = cache_dir.map(|d| ArtifactCache::open(d).expect("open artifact cache"));
    let t0 = std::time::Instant::now();
    let sweep = match &cache {
        Some(c) => Sweep::new_cached(scale, c).expect("cached sweep build"),
        None => Sweep::new(scale),
    };
    println!(
        "matrix: {} engine variants x {} workloads = {} jobs (compiled in {:.2}s)",
        sweep.variants.len(),
        sweep.workloads.len(),
        sweep.len(),
        t0.elapsed().as_secs_f64(),
    );
    if let Some(c) = &cache {
        println!(
            "artifact cache {}: {} hits, {} misses, {} bypasses",
            c.dir().display(),
            c.hits(),
            c.misses(),
            c.bypasses(),
        );
    }

    let serial = sweep.run(&BatchRunner::new(1));
    let parallel = sweep.run(&BatchRunner::new(workers));
    assert!(
        serial.simulation_identical(&parallel),
        "parallel sweep diverged from the serial run — determinism is broken"
    );
    // Engine knobs are speed knobs: identical timing across the whole
    // axis, and the activity-driven scheduler bit-matches its oracle.
    sweep.assert_cross_engine_identity(&serial);

    println!("{:<34}{:>12}{:>12}{:>10}", "", "cycles", "instrs", "cpi");
    for row in &parallel.rows {
        println!(
            "{:<34}{:>12}{:>12}{:>10.3}",
            format!("{}/{}", row.variant, row.kernel),
            row.cycles,
            row.instrs,
            row.cycles as f64 / row.instrs as f64,
        );
    }
    println!(
        "\n{} jobs, {} total simulated cycles, merged stats bit-identical at 1 and {} workers",
        parallel.rows.len(),
        parallel.total_cycles(),
        parallel.workers,
    );
    println!(
        "serial {:.3}s  parallel {:.3}s ({} workers)  speedup {:.2}x",
        serial.wall_seconds,
        parallel.wall_seconds,
        parallel.workers,
        serial.wall_seconds / parallel.wall_seconds,
    );

    if let Some(path) = out {
        std::fs::write(&path, render_json(&serial, &parallel, cache.as_ref()))
            .expect("write sweep record");
        println!("recorded {path}");
    }
}
