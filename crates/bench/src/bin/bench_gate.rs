//! CI bench-regression gate: a short fig10 run compared against the
//! committed `BENCH_fig10.json` baseline.
//!
//! ```text
//! cargo run --release -p rcpn-bench --bin bench_gate -- \
//!     --baseline BENCH_fig10.json --out bench_fig10_fresh.json \
//!     --tolerance 0.35 --normalize
//! ```
//!
//! Measures every (simulator × kernel) pair of the fig10 matrix at a
//! reduced workload size, writes the fresh measurements as JSON lines in
//! the same house format as the baseline, and **fails (exit 1)** if any
//! pair regresses more than `--tolerance` against the baseline.
//!
//! Two comparison modes:
//!
//! * absolute (default): fresh cycles/sec vs the baseline's recorded
//!   cycles/sec. Meaningful when the two runs share hardware (a developer
//!   re-running on the reference machine).
//! * `--normalize` (what CI uses): each side's rates are first divided by
//!   its own SimpleScalar-Arm average from the *same* record, so the gate
//!   compares the RCPN engines' speed *relative to the interpretive
//!   baseline built from the same tree*. This cancels host-speed
//!   differences between the CI runner and the machine that recorded the
//!   baseline. The blind spot is deliberate and documented: a slowdown
//!   hitting the RCPN engines and SimpleScalar equally (shared `isa`/`mem`
//!   code, global codegen flags) normalizes away — the gate targets the
//!   RCPN hot loop, which SimpleScalar does not share.
//!
//! What the tolerance can and cannot catch: at 35% the gate trips on
//! gross hot-loop regressions — an accidental `two_list_everywhere`-style
//! fixpoint on the default path, a debug-assert left in release, a
//! per-token allocation. It can **not** detect the activity scheduler
//! silently degenerating into the exhaustive sweep (that delta is only a
//! few percent on these saturated kernels); the `place_skips > 0`
//! assertions in the test suite and the per-row skip counters in
//! `BENCH_sweep.json` are the detectors for that.
//!
//! Exit codes: 0 ok, 1 regression, 2 usage/IO/coverage error. Benches
//! missing from the baseline are reported un-gated, but if more than half
//! of the measured rows have no baseline entry the gate refuses to pass
//! (exit 2) — a silently shrunken gate is worse than a failing one. The
//! record format written here must stay parseable by [`baseline_cps`];
//! the same format is produced by the vendored criterion shim's
//! `CRITERION_JSON` writer (`vendor/criterion/src/lib.rs`), which is what
//! generates the committed baseline.

use rcpn_bench::{compiled_sim, measure, measure_compiled, Measurement, Simulator};
use workloads::{Kernel, Workload};

/// The fig10 dispatch-ablation rows (chained-superblock default vs
/// chains-off vs per-op vs closure interpreters). These measure the
/// dispatch refactors, so — unlike ordinary rows, which degrade to "not
/// gated" when missing from the baseline — losing *their* baseline
/// coverage is a hard error.
const DISPATCH_ORACLES: [&str; 3] =
    ["RCPN-StrongArm-Closure/", "RCPN-StrongArm-PerOp/", "RCPN-StrongArm-ChainsOff/"];

/// One measured (simulator, kernel) pair.
struct Row {
    bench: String,
    cycles: u64,
    mean_ns: u128,
    min_ns: u128,
    samples: usize,
    /// Cycles per host second, from the best (minimum-time) sample.
    cps: f64,
}

fn main() {
    let mut baseline_path = "BENCH_fig10.json".to_string();
    let mut out_path: Option<String> = Some("bench_fig10_fresh.json".to_string());
    let mut tolerance = 0.35f64;
    let mut scale_div = 40usize;
    let mut samples = 3usize;
    let mut normalize = false;
    let mut history_path: Option<String> = Some("BENCH_history.jsonl".to_string());
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{a} needs {what}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--baseline" => baseline_path = next("a path").clone(),
            "--out" => out_path = Some(next("a path").clone()),
            "--no-out" => out_path = None,
            "--history" => history_path = Some(next("a path").clone()),
            "--no-history" => history_path = None,
            "--normalize" => normalize = true,
            "--tolerance" => {
                tolerance = next("a fraction").parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance needs a number like 0.35");
                    std::process::exit(2);
                })
            }
            "--scale-div" => {
                scale_div = next("a divisor").parse().unwrap_or_else(|_| {
                    eprintln!("--scale-div needs an integer");
                    std::process::exit(2);
                })
            }
            "--samples" => {
                samples = next("a count").parse().unwrap_or_else(|_| {
                    eprintln!("--samples needs an integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; try --baseline PATH | --out PATH | --no-out | \
                     --history PATH | --no-history | --normalize | --tolerance F | \
                     --scale-div N | --samples N"
                );
                std::process::exit(2);
            }
        }
    }
    let samples = samples.max(1);

    let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });

    let rows = run_matrix(scale_div, samples);

    if let Some(path) = &out_path {
        let mut out = String::new();
        for r in &rows {
            let mean_cps = r.cycles as f64 / (r.mean_ns as f64 / 1e9);
            out.push_str(&format!(
                "{{\"group\":\"fig10\",\"bench\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\
                 \"samples\":{},\"throughput\":\"elements\",\"throughput_per_iter\":{},\
                 \"per_sec_mean\":{mean_cps:.1},\"per_sec_best\":{:.1}}}\n",
                r.bench, r.mean_ns, r.min_ns, r.samples, r.cycles, r.cps,
            ));
        }
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("fresh measurements recorded in {path}");
    }

    // Reference rates for --normalize: each side's SimpleScalar-Arm
    // average over the kernels both sides actually have.
    let ss_name = Simulator::Baseline.name();
    let (fresh_ref, base_ref) = if normalize {
        let mut f = Vec::new();
        let mut b = Vec::new();
        for r in rows.iter().filter(|r| r.bench.starts_with(ss_name)) {
            if let Some(base) = baseline_cps(&baseline, &r.bench) {
                f.push(r.cps);
                b.push(base);
            }
        }
        if f.is_empty() {
            // Fail closed: an explicitly requested normalization that
            // cannot normalize would silently degrade into a cross-host
            // absolute comparison — the exact failure mode --normalize
            // exists to prevent.
            eprintln!(
                "--normalize needs {ss_name} rows in both the fresh run and {baseline_path}, \
                 and found none in common — refusing to gate un-normalized"
            );
            std::process::exit(2);
        } else {
            (f.iter().sum::<f64>() / f.len() as f64, b.iter().sum::<f64>() / b.len() as f64)
        }
    } else {
        (1.0, 1.0)
    };

    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut ungated_dispatch: Vec<&str> = Vec::new();
    println!(
        "{:<38}{:>14}{:>14}{:>9}  gate (tolerance {:.0}%{})",
        "bench",
        "baseline c/s",
        "fresh c/s",
        "ratio",
        tolerance * 100.0,
        if normalize { ", normalized to SimpleScalar-Arm" } else { "" },
    );
    for r in &rows {
        let Some(base_cps) = baseline_cps(&baseline, &r.bench) else {
            if DISPATCH_ORACLES.iter().any(|n| r.bench.starts_with(n)) {
                ungated_dispatch.push(&r.bench);
            }
            println!(
                "{:<38}{:>14}{:>14.0}{:>9}  (no baseline entry — not gated)",
                r.bench, "-", r.cps, "-"
            );
            continue;
        };
        compared += 1;
        // Under --normalize both sides are scaled by their own
        // SimpleScalar reference, so `ratio` reads "relative speed vs
        // relative speed" and host throughput cancels.
        let ratio = (r.cps / fresh_ref) / (base_cps / base_ref);
        let fail = ratio < 1.0 - tolerance;
        if fail {
            regressions += 1;
        }
        println!(
            "{:<38}{:>14.0}{:>14.0}{:>8.2}x  {}",
            r.bench,
            base_cps,
            r.cps,
            ratio,
            if fail { "REGRESSION" } else { "ok" }
        );
    }
    if compared * 2 < rows.len() {
        eprintln!(
            "only {compared}/{} measured benches have baseline entries in {baseline_path} — \
             the gate's coverage has silently shrunk (format drift or stale baseline); \
             refusing to pass",
            rows.len()
        );
        std::process::exit(2);
    }
    if !ungated_dispatch.is_empty() {
        eprintln!(
            "dispatch-ablation rows lost baseline coverage in {baseline_path}: {} — \
             the superblock/per-op/closure comparison would go unmeasured; refusing to pass",
            ungated_dispatch.join(", ")
        );
        std::process::exit(2);
    }
    if regressions > 0 {
        eprintln!("{regressions} bench(es) regressed more than {:.0}%", tolerance * 100.0);
        std::process::exit(1);
    }
    if let Some(path) = &history_path {
        append_history(path, &rows);
    }
    println!("bench gate passed ({compared} benches within tolerance)");
}

/// Appends a one-line JSON record of a passing run — the UTC date, the
/// dispatch mode the default rows ran under, and each default
/// RCPN-StrongArm kernel's best cycles/sec — to `BENCH_history.jsonl`,
/// so perf drift across commits stays greppable without re-running old
/// trees. Best-effort: a failure to append warns but never fails the
/// gate.
fn append_history(path: &str, rows: &[Row]) {
    let dispatch =
        if rcpn::engine::EngineConfig::default().chains { "chains" } else { "superblocks" };
    let prefix = format!("{}/", Simulator::RcpnStrongArm.name());
    let per: Vec<String> = rows
        .iter()
        .filter_map(|r| r.bench.strip_prefix(&prefix).map(|k| format!("\"{k}\":{:.1}", r.cps)))
        .collect();
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_date(secs);
    let line = format!(
        "{{\"date\":\"{y:04}-{m:02}-{d:02}\",\"dispatch\":\"{dispatch}\",\
         \"per_sec_best\":{{{}}}}}\n",
        per.join(",")
    );
    use std::io::Write;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    match appended {
        Ok(()) => println!("history appended to {path}"),
        Err(e) => eprintln!("warning: cannot append history to {path}: {e}"),
    }
}

/// Unix seconds to a (year, month, day) civil date — the workspace
/// vendors no date crate, so this is the standard days-from-epoch
/// conversion (Gregorian, era-based).
fn civil_date(secs: u64) -> (i64, u32, u32) {
    let z = (secs / 86_400) as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Measures the fig10 matrix ([`Simulator::FIG10`] × all six kernels) at
/// `bench_size / scale_div`, keeping the best of `samples` runs. Each
/// RCPN model is compiled once for the whole matrix (the compiled-model
/// seam); only simulation is ever timed.
fn run_matrix(scale_div: usize, samples: usize) -> Vec<Row> {
    let artifacts: Vec<_> = Simulator::FIG10.iter().map(|&sim| compiled_sim(sim)).collect();
    let mut rows = Vec::new();
    for kernel in Kernel::ALL {
        let size = (kernel.bench_size() / scale_div.max(1)).max(kernel.test_size());
        let w = Workload::build(kernel, size);
        for (sim, compiled) in Simulator::FIG10.into_iter().zip(&artifacts) {
            let run = || -> Measurement {
                match compiled {
                    Some(c) => measure_compiled(c, &w),
                    None => measure(sim, &w),
                }
            };
            let mut best: Option<Measurement> = None;
            let mut total_ns: u128 = 0;
            for _ in 0..samples {
                let m = run();
                total_ns += (m.seconds * 1e9) as u128;
                if best.is_none_or(|b| m.seconds < b.seconds) {
                    best = Some(m);
                }
            }
            let best = best.expect("samples >= 1");
            let min_ns = (best.seconds * 1e9) as u128;
            rows.push(Row {
                bench: format!("{}/{}", sim.name(), kernel.name()),
                cycles: best.cycles,
                mean_ns: total_ns / samples as u128,
                min_ns,
                samples,
                cps: best.cycles as f64 / best.seconds,
            });
        }
    }
    rows
}

/// Extracts the cycles/sec rate for `bench` from the baseline's JSON
/// lines (house format; key-based hand-parsing — this workspace vendors
/// no serde, and looking fields up by key keeps reordering harmless).
/// Prefers `per_sec_best` (the min-time sample, robust to CI-runner
/// preemption outliers) and falls back to `per_sec_mean` for records
/// written before that field existed.
fn baseline_cps(baseline: &str, bench: &str) -> Option<f64> {
    let needle = format!("\"bench\":\"{bench}\"");
    let line =
        baseline.lines().find(|l| l.contains(&needle) && l.contains("\"group\":\"fig10\""))?;
    let field = |key: &str| -> Option<f64> {
        let start = line.find(key)? + key.len();
        let rest = &line[start..];
        let end = rest.find(['}', ','])?;
        rest[..end].trim().parse().ok()
    };
    field("\"per_sec_best\":").or_else(|| field("\"per_sec_mean\":"))
}
