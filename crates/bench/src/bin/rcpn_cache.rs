//! Inspects, validates and garbage-collects an RCPN artifact cache
//! directory (as populated by `sweep --cache` / `figures --cache`, or any
//! [`rcpn::artifact::ArtifactCache`] user).
//!
//! ```text
//! rcpn-cache ls DIR         # one line per entry: header + section layout facts
//! rcpn-cache validate DIR   # exit 0 iff every entry is well-formed (verbose)
//! rcpn-cache gc DIR         # delete entries this build can no longer load
//! ```
//!
//! `validate` checks each `.rcpn` file end to end: magic, format version,
//! payload checksum, section layout, and that the file name matches the
//! `(spec hash, engine config, format version)` cache key derived from
//! the decoded header. `gc` removes exactly the entries `validate` would
//! reject — stale format versions, corruption, misnamed files — so a
//! cache survives format bumps without manual cleanup.

use std::path::Path;
use std::process::ExitCode;

use rcpn::artifact::{inspect, ArtifactCache, ArtifactError, ArtifactInfo, FORMAT_VERSION};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, dir) = match args.as_slice() {
        [c, d] => (c.as_str(), d.as_str()),
        _ => {
            eprintln!("usage: rcpn-cache <ls|validate|gc> DIR");
            return ExitCode::from(2);
        }
    };
    let cache = match ArtifactCache::open(dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rcpn-cache: {e}");
            return ExitCode::FAILURE;
        }
    };
    let entries = match cache.entries() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("rcpn-cache: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "ls" => ls(&entries),
        "validate" => validate(&entries, false),
        "gc" => validate(&entries, true),
        other => {
            eprintln!("unknown command {other:?}; try ls | validate | gc");
            ExitCode::from(2)
        }
    }
}

/// Full validation of one entry: decodable header/layout, checksum, and a
/// file name that matches the cache key its header implies.
fn check(path: &Path) -> Result<ArtifactInfo, ArtifactError> {
    let bytes = std::fs::read(path)
        .map_err(|e| ArtifactError::Io { path: path.to_path_buf(), detail: e.to_string() })?;
    let info = inspect(&bytes)?;
    if !info.checksum_ok {
        return Err(ArtifactError::Checksum {
            computed: 0, // inspect() only reports the mismatch, not the recomputed value
            stored: info.stored_checksum,
        });
    }
    let expect_stem = ArtifactCache::entry_stem(info.spec_hash, &info.config);
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default();
    if stem != expect_stem {
        return Err(ArtifactError::Io {
            path: path.to_path_buf(),
            detail: format!("file name does not match its cache key {expect_stem}.rcpn"),
        });
    }
    Ok(info)
}

fn config_summary(info: &ArtifactInfo) -> String {
    let c = &info.config;
    format!(
        "tables={:?} sched={:?} two-list={} superblocks={} trace={}",
        c.table_mode, c.scheduler, c.two_list_everywhere, c.superblocks, c.trace
    )
}

fn ls(entries: &[std::path::PathBuf]) -> ExitCode {
    println!("format version {FORMAT_VERSION}; {} entr{}", entries.len(), plural(entries.len()));
    // Column names are the `ArtifactInfo` field names, so ls output,
    // rustdoc, and the bench-record cache fields all speak one
    // vocabulary.
    println!("path  format_version  spec_hash  total_len  config  sections");
    for path in entries {
        match check(path) {
            Ok(info) => {
                let sections: Vec<String> =
                    info.sections.iter().map(|s| format!("{}:{}", s.name, s.len)).collect();
                println!(
                    "{}  v{} spec={:016x} {} bytes  {}\n  sections {}",
                    path.display(),
                    info.format_version,
                    info.spec_hash,
                    info.total_len,
                    config_summary(&info),
                    sections.join(" "),
                );
            }
            Err(e) => println!("{}  INVALID: {e}", path.display()),
        }
    }
    ExitCode::SUCCESS
}

fn validate(entries: &[std::path::PathBuf], gc: bool) -> ExitCode {
    let mut bad = 0usize;
    for path in entries {
        match check(path) {
            Ok(info) => {
                println!(
                    "ok      {}  v{} spec={:016x}",
                    path.display(),
                    info.format_version,
                    info.spec_hash
                );
            }
            Err(e) => {
                bad += 1;
                if gc {
                    match std::fs::remove_file(path) {
                        Ok(()) => println!("removed {}  ({e})", path.display()),
                        Err(io) => {
                            eprintln!("rcpn-cache: cannot remove {}: {io}", path.display());
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    println!("INVALID {}  {e}", path.display());
                }
            }
        }
    }
    if gc {
        println!("{bad} entr{} removed, {} kept", plural(bad), entries.len() - bad);
        ExitCode::SUCCESS
    } else if bad == 0 {
        println!("{} entr{} valid", entries.len(), plural(entries.len()));
        ExitCode::SUCCESS
    } else {
        println!("{bad} of {} entr{} invalid", entries.len(), plural(entries.len()));
        ExitCode::FAILURE
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}
