//! Runs a real ELF binary on the generated cycle-accurate simulators.
//!
//! ```text
//! rcpn-run FILE.elf                          # all registry models
//! rcpn-run FILE.elf --model xscale           # one model
//! rcpn-run FILE.elf --cache .rcpn-cache      # reload compiled models from disk
//! rcpn-run FILE.elf --expect 55edf412        # exit checksum gate (exit 1 on mismatch)
//! rcpn-run FILE.elf --input data.bin         # bytes served to `swi #4` (GETC)
//! rcpn-run FILE.elf --max-cycles 100000000   # cycle budget (default 1e9)
//! ```
//!
//! The image goes through [`rcpn_loader::load_elf`] — same loader, same
//! derived memory layout as every harness — and each selected
//! [`ProcModel`] registry variant runs it to completion, printing the
//! architectural result, the engine [`Stats`](rcpn::stats::Stats) and the
//! scheduler [`SchedStats`](rcpn::stats::SchedStats). With `--cache`,
//! compiled models come from the artifact
//! cache, so repeat runs recompile nothing.

use std::process::ExitCode;

use processors::sim::{CompiledSim, ProcModel};
use rcpn::artifact::ArtifactCache;
use rcpn_loader::{load_elf, LoadedImage};

struct Args {
    file: String,
    model: Option<String>,
    cache: Option<String>,
    input: Option<String>,
    expect: Option<u32>,
    max_cycles: u64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rcpn-run FILE.elf [--model LABEL|all] [--cache DIR] \
         [--input FILE] [--expect HEX] [--max-cycles N]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        file: String::new(),
        model: None,
        cache: None,
        input: None,
        expect: None,
        max_cycles: 1_000_000_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => args.model = Some(it.next().ok_or_else(usage)?),
            "--cache" => args.cache = Some(it.next().ok_or_else(usage)?),
            "--input" => args.input = Some(it.next().ok_or_else(usage)?),
            "--expect" => {
                let hex = it.next().ok_or_else(usage)?;
                let v = u32::from_str_radix(hex.trim_start_matches("0x"), 16).map_err(|e| {
                    eprintln!("rcpn-run: --expect {hex:?} is not a hex word: {e}");
                    ExitCode::from(2)
                })?;
                args.expect = Some(v);
            }
            "--max-cycles" => {
                let n = it.next().ok_or_else(usage)?;
                args.max_cycles = n.parse().map_err(|e| {
                    eprintln!("rcpn-run: --max-cycles {n:?}: {e}");
                    ExitCode::from(2)
                })?;
            }
            "--help" | "-h" => return Err(usage()),
            other if args.file.is_empty() && !other.starts_with('-') => args.file = other.into(),
            other => {
                eprintln!("rcpn-run: unexpected argument {other:?}");
                return Err(usage());
            }
        }
    }
    if args.file.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

fn select_models(arg: Option<&str>) -> Result<Vec<ProcModel>, ExitCode> {
    match arg {
        None | Some("all") => Ok(ProcModel::ALL.to_vec()),
        Some(label) => match ProcModel::ALL.into_iter().find(|m| m.label() == label) {
            Some(m) => Ok(vec![m]),
            None => {
                let known: Vec<&str> = ProcModel::ALL.iter().map(|m| m.label()).collect();
                eprintln!("rcpn-run: unknown model {label:?}; known: {}", known.join(", "));
                Err(ExitCode::from(2))
            }
        },
    }
}

fn describe(image: &LoadedImage) {
    let p = &image.program;
    println!(
        "image: base {:#x}  entry {:#x}  {} bytes  {} labels",
        p.base,
        p.entry,
        p.size_bytes(),
        p.labels.len()
    );
    for (i, s) in image.segments.iter().enumerate() {
        let perm = |bit: u32, c: char| if s.flags & bit != 0 { c } else { '-' };
        println!(
            "  PT_LOAD[{i}] vaddr {:#x} filesz {} memsz {} {}{}{}",
            s.vaddr,
            s.filesz,
            s.memsz,
            perm(rcpn_loader::elf::PF_R, 'r'),
            perm(rcpn_loader::elf::PF_W, 'w'),
            perm(rcpn_loader::elf::PF_X, 'x'),
        );
    }
    println!(
        "layout: mem {} KiB  stack top {:#x} (derived from the image)",
        image.layout.mem_bytes / 1024,
        image.layout.stack_top
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let bytes = match std::fs::read(&args.file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("rcpn-run: {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let image = match load_elf(&bytes) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("rcpn-run: {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    describe(&image);
    let input = match &args.input {
        Some(path) => match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("rcpn-run: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Vec::new(),
    };
    let models = match select_models(args.model.as_deref()) {
        Ok(m) => m,
        Err(code) => return code,
    };
    let cache = match &args.cache {
        Some(dir) => match ArtifactCache::open(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("rcpn-run: cache {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let mut failed = false;
    for model in models {
        let config = model.default_config();
        let compiled = match &cache {
            Some(c) => match CompiledSim::load_or_compile(model, &config, c) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("rcpn-run: {}: {e}", model.label());
                    failed = true;
                    continue;
                }
            },
            None => CompiledSim::new(model, &config),
        };
        let mut sim = compiled.instantiate_image(&image);
        if !input.is_empty() {
            sim.set_input(input.clone());
        }
        let result = sim.run(args.max_cycles);
        let stats = sim.engine.stats();
        let sched = sim.sched();
        println!("--- {} ---", model.figure_name());
        match (&result.fault, result.exit) {
            (Some(fault), _) => {
                println!("FAULT: {fault}");
                failed = true;
            }
            (None, Some(exit)) => {
                println!(
                    "exit {exit:#010x}  cycles {}  instrs {}  cpi {:.3}",
                    result.cycles,
                    result.instrs,
                    result.cpi()
                );
                if let Some(want) = args.expect {
                    if exit == want {
                        println!("checksum matches --expect {want:#010x}");
                    } else {
                        println!("CHECKSUM MISMATCH: expected {want:#010x}, got {exit:#010x}");
                        failed = true;
                    }
                }
            }
            (None, None) => {
                println!("NO EXIT within {} cycles", args.max_cycles);
                failed = true;
            }
        }
        if !sim.output().is_empty() {
            println!("output: {} bytes", sim.output().len());
        }
        if sim.unknown_swis() > 0 {
            println!(
                "warning: {} system call(s) hit no implementation (unknown SWI) — \
                 results may be incomplete",
                sim.unknown_swis()
            );
        }
        println!(
            "stats: retired {}  flushed {}  stalls {}  guard-fails {}",
            stats.retired, stats.flushed, stats.stalls, stats.guard_fails
        );
        println!(
            "sched: place visits {} skips {}  superblocks {}  ops inlined {}",
            sched.place_visits, sched.place_skips, sched.superblocks_entered, sched.ops_inlined
        );
    }
    if let Some(c) = &cache {
        println!(
            "cache: {} hit(s), {} miss(es), {} bypass(es)",
            c.hits(),
            c.misses(),
            c.bypasses()
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
