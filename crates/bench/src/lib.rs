//! # rcpn-bench — the measurement harness for the paper's figures
//!
//! Everything here exists to produce *honest* numbers: model compilation
//! stays outside every timed region, and every timed run must exit with
//! its workload's gold checksum before its time is reported — a
//! mis-simulating configuration is a panic, never a data point. Recorded
//! results land in the repo-root `BENCH_*.json` files; `README.md` maps
//! each file to the paper figure or claim it reproduces.
//!
//! Helpers shared by the Criterion benches and the `figures`/`sweep`
//! binaries: timed runs of each simulator over each benchmark, the table
//! generators for Figure 10 (simulation performance in Mcycles/s),
//! Figure 11 (CPI), the Figure 1/2 model-size comparison, the Section 4
//! optimization ablations, and the Section 5 model-effort summary — plus
//! the [`sweep`] module, which batches the full
//! {kernel × table-mode × engine-config} job matrix across worker threads
//! on the compiled-model seam and records `BENCH_sweep.json`.

pub mod record;
pub mod sweep;

use std::time::Instant;

use arm_isa::iss::Iss;
use baseline_sim::SsArm;
use processors::res::SimConfig;
use processors::sim::{CompiledSim, ProcModel};
use rcpn::artifact::{ArtifactCache, ArtifactError};
use rcpn::engine::{EngineConfig, SchedulerMode, TableMode};
use workloads::Workload;

/// Cycle budget nothing should ever hit.
pub const MAX_CYCLES: u64 = 4_000_000_000;

/// One timed simulator run.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instrs: u64,
    /// Host seconds.
    pub seconds: f64,
}

impl Measurement {
    /// Million simulated cycles per host second (Figure 10's metric).
    pub fn mcps(&self) -> f64 {
        self.cycles as f64 / self.seconds / 1.0e6
    }

    /// Cycles per instruction (Figure 11's metric).
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.instrs as f64
    }
}

/// Which simulator to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Simulator {
    /// The SimpleScalar-style baseline (the paper's comparator).
    Baseline,
    /// RCPN-generated XScale.
    RcpnXScale,
    /// RCPN-generated StrongARM.
    RcpnStrongArm,
    /// RCPN-generated SuperARM (the spec-defined seven-stage core).
    RcpnSuperArm,
    /// RCPN-generated StrongARM running the exhaustive-sweep scheduler
    /// oracle (same simulation, no activity skipping) — recorded alongside
    /// the default engine so the scheduler's speedup is a measured number.
    RcpnStrongArmExhaustive,
    /// RCPN-generated StrongARM with spec lowering forced to
    /// [`rcpn::spec::Lowering::Closures`] — the pre-IR `Box<dyn Fn>`
    /// dispatch, recorded alongside the default (IR) engine so the
    /// micro-op-IR win is a measured number, kernel by kernel.
    RcpnStrongArmClosure,
    /// RCPN-generated StrongARM compiled with
    /// [`EngineConfig::superblocks`] off — IR lowering but per-op
    /// dispatch through the candidate walk, recorded alongside the
    /// default (superblock) engine so the superblock win is a measured
    /// number, kernel by kernel.
    RcpnStrongArmPerOp,
    /// RCPN-generated StrongARM compiled with [`EngineConfig::chains`]
    /// off — superblock dispatch but no cross-place chain cursors,
    /// recorded alongside the default (chained) engine so the chain win
    /// is a measured number, kernel by kernel.
    RcpnStrongArmChainsOff,
    /// The functional ISS (no timing; context number).
    FunctionalIss,
}

impl Simulator {
    /// The Figure 10 measurement matrix: the paper's simulators, every
    /// [`ProcModel`] of the processor registry, plus the
    /// exhaustive-scheduler oracle. The fig10 bench, the `figures` table,
    /// and the `bench_gate` CI gate all iterate this list, so it is the
    /// single source of truth for which rows exist in `BENCH_fig10.json`
    /// — extending it extends all three in lockstep (and the
    /// registry-guard test fails if a `ProcModel` is missing here).
    pub const FIG10: [Simulator; 8] = [
        Simulator::Baseline,
        Simulator::RcpnXScale,
        Simulator::RcpnStrongArm,
        Simulator::RcpnSuperArm,
        Simulator::RcpnStrongArmExhaustive,
        Simulator::RcpnStrongArmClosure,
        Simulator::RcpnStrongArmPerOp,
        Simulator::RcpnStrongArmChainsOff,
    ];

    /// For RCPN-backed simulators: the processor-registry model plus the
    /// scheduler it runs — the single place a [`Simulator`] row is tied
    /// to a [`ProcModel`]. `None` for the non-RCPN comparators.
    pub fn rcpn_config(self) -> Option<(ProcModel, SchedulerMode)> {
        match self {
            Simulator::RcpnXScale => Some((ProcModel::XScale, SchedulerMode::ActivityDriven)),
            Simulator::RcpnStrongArm => Some((ProcModel::StrongArm, SchedulerMode::ActivityDriven)),
            Simulator::RcpnSuperArm => Some((ProcModel::SuperArm, SchedulerMode::ActivityDriven)),
            Simulator::RcpnStrongArmExhaustive => {
                Some((ProcModel::StrongArm, SchedulerMode::Exhaustive))
            }
            Simulator::RcpnStrongArmClosure
            | Simulator::RcpnStrongArmPerOp
            | Simulator::RcpnStrongArmChainsOff => {
                Some((ProcModel::StrongArm, SchedulerMode::ActivityDriven))
            }
            Simulator::Baseline | Simulator::FunctionalIss => None,
        }
    }

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Simulator::Baseline => "SimpleScalar-Arm",
            Simulator::RcpnStrongArmExhaustive => "RCPN-StrongArm-Exhaustive",
            Simulator::RcpnStrongArmClosure => "RCPN-StrongArm-Closure",
            Simulator::RcpnStrongArmPerOp => "RCPN-StrongArm-PerOp",
            Simulator::RcpnStrongArmChainsOff => "RCPN-StrongArm-ChainsOff",
            Simulator::FunctionalIss => "Functional-ISS",
            rcpn => rcpn.rcpn_config().expect("RCPN simulator").0.figure_name(),
        }
    }
}

/// Runs one simulator over one workload, timed, verifying the checksum.
///
/// # Panics
///
/// Panics if the simulation does not exit with the gold checksum — a
/// mis-simulating benchmark must never be timed.
pub fn measure(sim: Simulator, w: &Workload) -> Measurement {
    if let Some(compiled) = compiled_sim(sim) {
        return measure_compiled(&compiled, w);
    }
    match sim {
        Simulator::Baseline => {
            let mut s = SsArm::new(&w.program);
            let t0 = Instant::now();
            let r = s.run(MAX_CYCLES);
            let seconds = t0.elapsed().as_secs_f64();
            assert_eq!(r.exit, Some(w.expected), "baseline/{}", w.kernel);
            Measurement { cycles: r.cycles, instrs: r.instrs, seconds }
        }
        Simulator::FunctionalIss => {
            let mut s = Iss::from_program(&w.program);
            let t0 = Instant::now();
            s.run(u64::MAX).expect("iss clean");
            let seconds = t0.elapsed().as_secs_f64();
            assert_eq!(s.exit_code(), w.expected, "iss/{}", w.kernel);
            Measurement { cycles: s.instr_count(), instrs: s.instr_count(), seconds }
        }
        rcpn => unreachable!("{rcpn:?} is RCPN-backed and measured above"),
    }
}

/// The processor model and full simulator configuration an RCPN-backed
/// [`Simulator`] compiles with, or `None` for the non-RCPN comparators.
fn rcpn_sim_config(sim: Simulator) -> Option<(ProcModel, SimConfig)> {
    let (proc, scheduler) = sim.rcpn_config()?;
    let mut config = proc.default_config();
    config.engine.scheduler = scheduler;
    if sim == Simulator::RcpnStrongArmClosure {
        // The closure row reproduces the pre-IR engine wholesale:
        // `Box<dyn Fn>` dispatch and no superblocks (pass-through steps
        // would otherwise still form guardless blocks).
        config.lowering = rcpn::spec::Lowering::Closures;
        config.engine.superblocks = false;
        config.engine.chains = false;
    }
    if sim == Simulator::RcpnStrongArmPerOp {
        // Chains link superblocks, so the per-op row turns both off.
        config.engine.superblocks = false;
        config.engine.chains = false;
    }
    if sim == Simulator::RcpnStrongArmChainsOff {
        config.engine.chains = false;
    }
    Some((proc, config))
}

/// The compiled (generated) simulator for an RCPN-backed [`Simulator`],
/// or `None` for the non-RCPN comparators. Build it once and pass it to
/// [`measure_compiled`] to keep model compilation out of the timed region
/// and out of per-iteration bench loops.
pub fn compiled_sim(sim: Simulator) -> Option<CompiledSim> {
    let (proc, config) = rcpn_sim_config(sim)?;
    Some(CompiledSim::new(proc, &config))
}

/// Like [`compiled_sim`], but served through an artifact cache: a hit
/// reloads the stored artifact instead of recompiling, a miss compiles
/// and stores, and the closure-lowered ablation row (unserializable)
/// compiles without touching the store. `Ok(None)` for the non-RCPN
/// comparators.
///
/// # Errors
///
/// Propagates any [`ArtifactError`] other than a decode failure (which
/// falls back to a fresh compile) — in practice I/O errors writing the
/// cache directory.
pub fn compiled_sim_cached(
    sim: Simulator,
    cache: &ArtifactCache,
) -> Result<Option<CompiledSim>, ArtifactError> {
    match rcpn_sim_config(sim) {
        Some((proc, config)) => CompiledSim::load_or_compile(proc, &config, cache).map(Some),
        None => Ok(None),
    }
}

/// Runs one instantiation of a compiled simulator over one workload,
/// timed, verifying the checksum. Only the simulation itself is inside
/// the timed region — neither model compilation nor per-program
/// instantiation — matching how the baseline and ablation paths
/// construct their simulators before starting the clock.
///
/// # Panics
///
/// Panics if the simulation does not exit with the gold checksum.
pub fn measure_compiled(compiled: &CompiledSim, w: &Workload) -> Measurement {
    let mut s = compiled.instantiate(&w.program);
    let t0 = Instant::now();
    let r = s.run(MAX_CYCLES);
    let seconds = t0.elapsed().as_secs_f64();
    assert_eq!(r.exit, Some(w.expected), "{}/{}", compiled.model().figure_name(), w.kernel);
    Measurement { cycles: r.cycles, instrs: r.instrs, seconds }
}

/// The ablation configurations, with labels: engine config plus the
/// decode-cache flag.
pub fn ablation_configs() -> Vec<(&'static str, EngineConfig, bool)> {
    vec![
        ("full-optimizations", EngineConfig::default(), true),
        (
            "tables:per-place",
            EngineConfig { table_mode: TableMode::PerPlace, ..Default::default() },
            true,
        ),
        (
            "tables:full-scan",
            EngineConfig { table_mode: TableMode::FullScan, ..Default::default() },
            true,
        ),
        (
            "two-list-everywhere",
            EngineConfig { two_list_everywhere: true, ..Default::default() },
            true,
        ),
        (
            "sched:exhaustive",
            EngineConfig { scheduler: SchedulerMode::Exhaustive, ..Default::default() },
            true,
        ),
        (
            "dispatch:per-op",
            EngineConfig { superblocks: false, chains: false, ..Default::default() },
            true,
        ),
        ("dispatch:chains-off", EngineConfig { chains: false, ..Default::default() }, true),
        ("no-decode-cache", EngineConfig::default(), false),
    ]
}

/// Runs one ablation row (engine config + decode-cache flag), timed.
///
/// # Panics
///
/// Panics if the run does not exit with the gold checksum.
pub fn measure_ablation(w: &Workload, engine: EngineConfig, decode_cache: bool) -> Measurement {
    let config = SimConfig { engine, decode_cache, ..SimConfig::strongarm() };
    let mut s = CompiledSim::new(ProcModel::StrongArm, &config).instantiate(&w.program);
    let t0 = Instant::now();
    let r = s.run(MAX_CYCLES);
    let seconds = t0.elapsed().as_secs_f64();
    assert_eq!(r.exit, Some(w.expected), "ablation/{}", w.kernel);
    Measurement { cycles: r.cycles, instrs: r.instrs, seconds }
}

/// Builds the benchmark suite at a size scale: 1.0 = the paper-style bench
/// sizes, smaller for quick runs.
pub fn suite(scale: f64) -> Vec<Workload> {
    Workload::suite(scale)
}

/// Arithmetic mean (the paper's "Average" bars).
pub fn average(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Kernel;

    #[test]
    fn measurement_math() {
        let m = Measurement { cycles: 2_000_000, instrs: 1_000_000, seconds: 0.5 };
        assert!((m.mcps() - 4.0).abs() < 1e-9);
        assert!((m.cpi() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn small_measurements_run() {
        let w = Workload::build(Kernel::Crc, 64);
        for sim in Simulator::FIG10.into_iter().chain([Simulator::FunctionalIss]) {
            let m = measure(sim, &w);
            assert!(m.cycles > 0);
        }
    }

    /// The registry guard: a processor added to [`ProcModel::ALL`] must
    /// appear on every measurement harness — the fig10 matrix (bench,
    /// figures table, CI gate) and the sweep engine axis. This is what
    /// makes "new processor silently missing from a harness" a test
    /// failure instead of a data gap.
    #[test]
    fn processor_registry_reaches_every_harness() {
        for proc in ProcModel::ALL {
            assert!(
                Simulator::FIG10.iter().any(|s| s.rcpn_config().map(|(p, _)| p) == Some(proc)),
                "{proc:?} missing from the fig10 matrix"
            );
            assert!(
                crate::sweep::engine_axis().iter().any(|v| v.proc == proc),
                "{proc:?} missing from the sweep engine axis"
            );
        }
    }

    #[test]
    fn ablations_change_speed_never_simulated_time() {
        let w = Workload::build(Kernel::Crc, 64);
        let base = measure_ablation(&w, EngineConfig::default(), true);
        for (name, cfg, dec) in ablation_configs() {
            let m = measure_ablation(&w, cfg, dec);
            assert_eq!(m.cycles, base.cycles, "{name}");
        }
    }

    #[test]
    fn average_is_arithmetic() {
        assert!((average(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
