//! Parsing and diffing of sweep records (the `BENCH_sweep.json` house
//! format) — the observability half of the serving story.
//!
//! A sweep record is JSON lines: one flat `"group":"sweep"` object per
//! job plus one `"group":"sweep-summary"` object. The objects are flat —
//! every value is a string, a number, or a bool — so this module carries
//! its own small parser instead of a JSON dependency (the build
//! environment is offline; see `vendor/README.md` for the policy).
//!
//! [`SweepDiff::between`] compares two records the way a perf-watching
//! human would:
//!
//! * **added/removed rows** — variant/kernel coverage drift between the
//!   two records (informational, not a regression by itself);
//! * **simulation drift** — `cycles`/`instrs` changes on a shared row.
//!   These are *model* changes, reported unconditionally: the simulated
//!   machine ticked differently, which a speed knob must never cause;
//! * **rate deltas** — `mcps` changes beyond a relative tolerance
//!   (host-timing noise makes exact rate comparison meaningless);
//! * **counter deltas** — every other integer field (`place_visits`,
//!   `superblocks_entered`, cache counters, …), aggregated per variant.
//!   Counters are collected *generically*: a future sweep field flows
//!   into diffs without touching this module.
//!
//! `rcpn-serve sweep-diff` is the CLI over this module; CI diffs the
//! committed record against itself and asserts [`SweepDiff::is_zero`].

use std::collections::BTreeMap;

/// One flat JSON value in a record line.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A number written as a bare integer (no `.` or exponent) — how
    /// the house renderer writes counters. The lexical distinction
    /// matters: `"cpi":2.0` is a rate that happens to be whole, not a
    /// counter, and must not flow into counter diffs.
    Int(u64),
    /// A number written with a fraction or exponent.
    Float(f64),
    /// A JSON bool.
    Bool(bool),
}

impl Value {
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(n) => Some(*n),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }
}

/// Record-parsing failure: the line number (1-based) and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for RecordError {}

fn err(line: usize, detail: impl Into<String>) -> RecordError {
    RecordError { line, detail: detail.into() }
}

/// Parses one flat JSON object (`{"key":value,...}` — string, number and
/// bool values only, which is all the house format emits).
fn parse_flat_object(line: usize, text: &str) -> Result<BTreeMap<String, Value>, RecordError> {
    let mut map = BTreeMap::new();
    let b = text.trim().as_bytes();
    let mut i = 0usize;
    let eat = |i: &mut usize, b: &[u8], want: u8| -> Result<(), RecordError> {
        if b.get(*i) == Some(&want) {
            *i += 1;
            Ok(())
        } else {
            Err(err(line, format!("expected {:?} at byte {}", want as char, i)))
        }
    };
    let parse_string = |i: &mut usize, b: &[u8]| -> Result<String, RecordError> {
        if b.get(*i) != Some(&b'"') {
            return Err(err(line, format!("expected string at byte {i}")));
        }
        *i += 1;
        let start = *i;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    let s = std::str::from_utf8(&b[start..*i])
                        .map_err(|_| err(line, "invalid utf-8 in string"))?
                        .to_string();
                    *i += 1;
                    return Ok(s);
                }
                // The house renderer never escapes; reject rather than
                // mis-parse if that ever changes.
                b'\\' => return Err(err(line, "escape sequences are not supported")),
                _ => *i += 1,
            }
        }
        Err(err(line, "unterminated string"))
    };
    eat(&mut i, b, b'{')?;
    if b.get(i) == Some(&b'}') {
        return Ok(map);
    }
    loop {
        let key = parse_string(&mut i, b)?;
        eat(&mut i, b, b':')?;
        let value = match b.get(i) {
            Some(&b'"') => Value::Str(parse_string(&mut i, b)?),
            Some(&b't') if b[i..].starts_with(b"true") => {
                i += 4;
                Value::Bool(true)
            }
            Some(&b'f') if b[i..].starts_with(b"false") => {
                i += 5;
                Value::Bool(false)
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = i;
                while b.get(i).is_some_and(|c| {
                    c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).expect("ascii digits");
                if text.bytes().all(|c| c.is_ascii_digit()) {
                    Value::Int(
                        text.parse::<u64>()
                            .map_err(|_| err(line, format!("bad integer {text:?}")))?,
                    )
                } else {
                    Value::Float(
                        text.parse::<f64>()
                            .map_err(|_| err(line, format!("bad number {text:?}")))?,
                    )
                }
            }
            _ => return Err(err(line, format!("unsupported value for key {key:?}"))),
        };
        map.insert(key, value);
        match b.get(i) {
            Some(&b',') => i += 1,
            Some(&b'}') => {
                i += 1;
                break;
            }
            _ => return Err(err(line, format!("expected ',' or '}}' at byte {i}"))),
        }
    }
    if b[i..].iter().any(|c| !c.is_ascii_whitespace()) {
        return Err(err(line, "trailing bytes after object"));
    }
    Ok(map)
}

/// One `"group":"sweep"` row, keyed by (`variant`, `kernel`, `size`).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordRow {
    /// Engine-variant label, e.g. `"strongarm/tables:per-place-class"`.
    pub variant: String,
    /// Kernel name, e.g. `"crc"`.
    pub kernel: String,
    /// Workload size.
    pub size: u64,
    /// Simulated cycles — part of the timing model, diffed exactly.
    pub cycles: u64,
    /// Retired instructions — part of the timing model, diffed exactly.
    pub instrs: u64,
    /// Simulation rate in millions of cycles per second (host timing;
    /// diffed with a tolerance).
    pub mcps: f64,
    /// Every other integer field on the row (scheduler counters and any
    /// future additions), collected generically.
    pub counters: BTreeMap<String, u64>,
}

/// The `"group":"sweep-summary"` row.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordSummary {
    /// Number of jobs in the sweep.
    pub jobs: u64,
    /// Artifact-cache hits during sweep construction (0 when the record
    /// predates caching or ran cacheless).
    pub cache_hits: u64,
    /// Artifact-cache misses.
    pub cache_misses: u64,
    /// Artifact-cache bypasses.
    pub cache_bypasses: u64,
    /// Whether the serial and parallel runs were bit-identical.
    pub identical: bool,
}

/// A parsed sweep record: per-job rows plus the summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// The `"sweep"` rows, in file order.
    pub rows: Vec<RecordRow>,
    /// The `"sweep-summary"` row.
    pub summary: RecordSummary,
}

impl SweepRecord {
    /// Parses a JSON-lines sweep record (the exact format
    /// [`crate::sweep::render_json`] emits). Lines of other `"group"`s
    /// are ignored so mixed bench logs still parse.
    ///
    /// # Errors
    ///
    /// [`RecordError`] naming the first malformed line, or the absence
    /// of a `"sweep-summary"` row.
    pub fn parse(text: &str) -> Result<SweepRecord, RecordError> {
        let mut rows = Vec::new();
        let mut summary = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let obj = parse_flat_object(line, raw)?;
            let group = obj.get("group").and_then(Value::as_str).unwrap_or("");
            match group {
                "sweep" => rows.push(Self::row_from(line, &obj)?),
                "sweep-summary" => summary = Some(Self::summary_from(line, &obj)?),
                _ => {}
            }
        }
        let summary =
            summary.ok_or_else(|| err(text.lines().count(), "no sweep-summary row found"))?;
        Ok(SweepRecord { rows, summary })
    }

    fn row_from(line: usize, obj: &BTreeMap<String, Value>) -> Result<RecordRow, RecordError> {
        let get_u64 = |key: &str| {
            obj.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| err(line, format!("missing integer field {key:?}")))
        };
        let bench = obj
            .get("bench")
            .and_then(Value::as_str)
            .ok_or_else(|| err(line, "missing string field \"bench\""))?;
        let (variant, kernel) = bench
            .rsplit_once('/')
            .ok_or_else(|| err(line, format!("bench {bench:?} is not variant/kernel")))?;
        let mcps = obj
            .get("mcps")
            .and_then(Value::as_f64)
            .ok_or_else(|| err(line, "missing number field \"mcps\""))?;
        // Core keys identify the row and its timing; every *other*
        // integer field is a counter and flows into the diff generically.
        const CORE: &[&str] = &["size", "cycles", "instrs"];
        let counters = obj
            .iter()
            .filter(|(k, v)| !CORE.contains(&k.as_str()) && v.as_u64().is_some())
            .map(|(k, v)| (k.clone(), v.as_u64().expect("filtered to u64")))
            .collect();
        Ok(RecordRow {
            variant: variant.to_string(),
            kernel: kernel.to_string(),
            size: get_u64("size")?,
            cycles: get_u64("cycles")?,
            instrs: get_u64("instrs")?,
            mcps,
            counters,
        })
    }

    fn summary_from(
        line: usize,
        obj: &BTreeMap<String, Value>,
    ) -> Result<RecordSummary, RecordError> {
        let opt_u64 = |key: &str| obj.get(key).and_then(Value::as_u64).unwrap_or(0);
        Ok(RecordSummary {
            jobs: obj
                .get("jobs")
                .and_then(Value::as_u64)
                .ok_or_else(|| err(line, "missing integer field \"jobs\""))?,
            cache_hits: opt_u64("cache_hits"),
            cache_misses: opt_u64("cache_misses"),
            cache_bypasses: opt_u64("cache_bypasses"),
            identical: obj
                .get("identical")
                .and_then(|v| match v {
                    Value::Bool(b) => Some(*b),
                    _ => None,
                })
                .unwrap_or(true),
        })
    }
}

/// One shared row whose simulated timing changed between records — a
/// *model* change, reported unconditionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingDrift {
    /// `variant/kernel@size` row key.
    pub row: String,
    /// Old and new cycle counts.
    pub cycles: (u64, u64),
    /// Old and new instruction counts.
    pub instrs: (u64, u64),
}

/// One shared row whose simulation *rate* moved beyond tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct RateDelta {
    /// `variant/kernel@size` row key.
    pub row: String,
    /// Old and new mcps.
    pub mcps: (f64, f64),
    /// Signed relative change, `new/old - 1`.
    pub relative: f64,
}

/// One per-variant counter whose aggregate changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Engine-variant label.
    pub variant: String,
    /// Counter name (e.g. `"superblocks_entered"`).
    pub counter: String,
    /// Old and new per-variant totals.
    pub totals: (u64, u64),
}

/// The structured difference between two sweep records.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepDiff {
    /// Row keys present only in the new record.
    pub added: Vec<String>,
    /// Row keys present only in the old record.
    pub removed: Vec<String>,
    /// Shared rows whose cycles/instrs changed (simulation drift).
    pub timing: Vec<TimingDrift>,
    /// Shared rows whose mcps moved beyond the tolerance.
    pub rates: Vec<RateDelta>,
    /// Per-variant counter aggregates that changed (shared rows only, so
    /// coverage drift doesn't masquerade as counter drift).
    pub counters: Vec<CounterDelta>,
    /// Old and new summary cache counters `(hits, misses, bypasses)`.
    pub cache: ((u64, u64, u64), (u64, u64, u64)),
    /// The relative mcps tolerance the diff was computed with.
    pub tolerance: f64,
}

fn row_key(r: &RecordRow) -> String {
    format!("{}/{}@{}", r.variant, r.kernel, r.size)
}

impl SweepDiff {
    /// Diffs two parsed records. `tolerance` is the relative `mcps`
    /// change to ignore (e.g. `0.10` = ±10%; host-timing noise between
    /// two runs on a busy machine easily reaches several percent).
    pub fn between(old: &SweepRecord, new: &SweepRecord, tolerance: f64) -> SweepDiff {
        let old_rows: BTreeMap<String, &RecordRow> =
            old.rows.iter().map(|r| (row_key(r), r)).collect();
        let new_rows: BTreeMap<String, &RecordRow> =
            new.rows.iter().map(|r| (row_key(r), r)).collect();

        let added =
            new_rows.keys().filter(|k| !old_rows.contains_key(*k)).cloned().collect::<Vec<_>>();
        let removed =
            old_rows.keys().filter(|k| !new_rows.contains_key(*k)).cloned().collect::<Vec<_>>();

        let mut timing = Vec::new();
        let mut rates = Vec::new();
        // (variant, counter) → (old total, new total), shared rows only.
        let mut totals: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        for (key, o) in &old_rows {
            let Some(n) = new_rows.get(key) else { continue };
            if o.cycles != n.cycles || o.instrs != n.instrs {
                timing.push(TimingDrift {
                    row: key.clone(),
                    cycles: (o.cycles, n.cycles),
                    instrs: (o.instrs, n.instrs),
                });
            }
            if o.mcps > 0.0 {
                let relative = n.mcps / o.mcps - 1.0;
                if relative.abs() > tolerance {
                    rates.push(RateDelta { row: key.clone(), mcps: (o.mcps, n.mcps), relative });
                }
            }
            for (counter, &v) in &o.counters {
                totals.entry((o.variant.clone(), counter.clone())).or_default().0 += v;
            }
            for (counter, &v) in &n.counters {
                totals.entry((n.variant.clone(), counter.clone())).or_default().1 += v;
            }
        }
        let counters = totals
            .into_iter()
            .filter(|(_, (a, b))| a != b)
            .map(|((variant, counter), totals)| CounterDelta { variant, counter, totals })
            .collect();

        let cache = (
            (old.summary.cache_hits, old.summary.cache_misses, old.summary.cache_bypasses),
            (new.summary.cache_hits, new.summary.cache_misses, new.summary.cache_bypasses),
        );
        SweepDiff { added, removed, timing, rates, counters, cache, tolerance }
    }

    /// True when the records agree on everything the diff inspects:
    /// same row set, identical timing, no rate move beyond tolerance,
    /// identical counter aggregates. (Summary cache counters are
    /// reported but do not affect zero-ness — a warm and a cold run of
    /// the same code legitimately differ there.)
    pub fn is_zero(&self) -> bool {
        self.added.is_empty()
            && self.removed.is_empty()
            && self.timing.is_empty()
            && self.rates.is_empty()
            && self.counters.is_empty()
    }

    /// Renders the diff as a human-readable report. A zero diff renders
    /// as the single line `sweep-diff: no differences ...` (CI greps for
    /// this).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_zero() {
            out.push_str(&format!(
                "sweep-diff: no differences (mcps tolerance ±{:.0}%)\n",
                self.tolerance * 100.0
            ));
            return out;
        }
        if !self.added.is_empty() {
            out.push_str(&format!("added rows ({}):\n", self.added.len()));
            for k in &self.added {
                out.push_str(&format!("  + {k}\n"));
            }
        }
        if !self.removed.is_empty() {
            out.push_str(&format!("removed rows ({}):\n", self.removed.len()));
            for k in &self.removed {
                out.push_str(&format!("  - {k}\n"));
            }
        }
        if !self.timing.is_empty() {
            out.push_str(&format!(
                "SIMULATION DRIFT ({} rows — the timing model changed):\n",
                self.timing.len()
            ));
            for t in &self.timing {
                out.push_str(&format!(
                    "  ! {}: cycles {} -> {}, instrs {} -> {}\n",
                    t.row, t.cycles.0, t.cycles.1, t.instrs.0, t.instrs.1
                ));
            }
        }
        if !self.rates.is_empty() {
            out.push_str(&format!(
                "rate deltas beyond ±{:.0}% ({} rows):\n",
                self.tolerance * 100.0,
                self.rates.len()
            ));
            for r in &self.rates {
                out.push_str(&format!(
                    "  {} {}: {:.2} -> {:.2} mcps ({:+.1}%)\n",
                    if r.relative < 0.0 { "▼" } else { "▲" },
                    r.row,
                    r.mcps.0,
                    r.mcps.1,
                    r.relative * 100.0
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("counter deltas ({}):\n", self.counters.len()));
            for c in &self.counters {
                let (a, b) = c.totals;
                out.push_str(&format!("  {} {}: {} -> {}\n", c.variant, c.counter, a, b));
            }
        }
        let (oc, nc) = self.cache;
        if oc != nc {
            out.push_str(&format!(
                "cache counters: {}h/{}m/{}b -> {}h/{}m/{}b (informational)\n",
                oc.0, oc.1, oc.2, nc.0, nc.1, nc.2
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"group\":\"sweep\",\"bench\":\"strongarm/tables:per-place-class/crc\",",
        "\"size\":40,\"cycles\":1000,\"instrs\":500,\"cpi\":2.0,",
        "\"job_seconds\":0.001,\"mcps\":1.0,\"place_visits\":77,\"superblocks_entered\":3}\n",
        "{\"group\":\"sweep\",\"bench\":\"strongarm/tables:per-place-class/adpcm\",",
        "\"size\":16,\"cycles\":2000,\"instrs\":900,\"cpi\":2.2,",
        "\"job_seconds\":0.002,\"mcps\":1.0,\"place_visits\":50,\"superblocks_entered\":2}\n",
        "{\"group\":\"sweep-summary\",\"jobs\":2,\"workers\":2,\"total_cycles\":3000,",
        "\"total_retired\":1400,\"serial_seconds\":0.003,\"parallel_seconds\":0.002,",
        "\"speedup\":1.5,\"cache_hits\":1,\"cache_misses\":1,\"cache_bypasses\":0,",
        "\"identical\":true}\n",
    );

    #[test]
    fn parses_the_house_format() {
        let rec = SweepRecord::parse(SAMPLE).unwrap();
        assert_eq!(rec.rows.len(), 2);
        assert_eq!(rec.rows[0].variant, "strongarm/tables:per-place-class");
        assert_eq!(rec.rows[0].kernel, "crc");
        assert_eq!(rec.rows[0].size, 40);
        assert_eq!(rec.rows[0].cycles, 1000);
        assert_eq!(rec.rows[0].counters["place_visits"], 77);
        // cpi/job_seconds/mcps are floats, not counters.
        assert!(!rec.rows[0].counters.contains_key("cpi"));
        assert_eq!(rec.summary.jobs, 2);
        assert_eq!(rec.summary.cache_hits, 1);
        assert!(rec.summary.identical);
    }

    #[test]
    fn self_diff_is_zero() {
        let rec = SweepRecord::parse(SAMPLE).unwrap();
        let diff = SweepDiff::between(&rec, &rec, 0.10);
        assert!(diff.is_zero());
        assert!(diff.render().starts_with("sweep-diff: no differences"));
    }

    #[test]
    fn committed_record_parses_and_self_diffs_to_zero() {
        let text =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json"))
                .expect("committed BENCH_sweep.json");
        let rec = SweepRecord::parse(&text).unwrap();
        assert_eq!(rec.rows.len() as u64, rec.summary.jobs);
        assert!(rec.summary.identical);
        assert!(SweepDiff::between(&rec, &rec, 0.10).is_zero());
    }

    #[test]
    fn detects_timing_drift_and_counter_deltas() {
        let rec = SweepRecord::parse(SAMPLE).unwrap();
        let mut new = rec.clone();
        new.rows[0].cycles += 1;
        new.rows[1].counters.insert("place_visits".to_string(), 51);
        let diff = SweepDiff::between(&rec, &new, 0.10);
        assert!(!diff.is_zero());
        assert_eq!(diff.timing.len(), 1);
        assert_eq!(diff.timing[0].cycles, (1000, 1001));
        assert_eq!(diff.counters.len(), 1);
        assert_eq!(diff.counters[0].counter, "place_visits");
        assert_eq!(diff.counters[0].totals, (127, 128));
        let report = diff.render();
        assert!(report.contains("SIMULATION DRIFT"));
    }

    #[test]
    fn rate_moves_respect_tolerance() {
        let rec = SweepRecord::parse(SAMPLE).unwrap();
        let mut new = rec.clone();
        new.rows[0].mcps = 1.05; // +5%
        assert!(SweepDiff::between(&rec, &new, 0.10).is_zero());
        let diff = SweepDiff::between(&rec, &new, 0.01);
        assert_eq!(diff.rates.len(), 1);
        assert!((diff.rates[0].relative - 0.05).abs() < 1e-9);
    }

    #[test]
    fn added_and_removed_rows_are_reported() {
        let rec = SweepRecord::parse(SAMPLE).unwrap();
        let mut new = rec.clone();
        let mut extra = new.rows[0].clone();
        extra.kernel = "go".to_string();
        new.rows.push(extra);
        new.rows.remove(1);
        let diff = SweepDiff::between(&rec, &new, 0.10);
        assert_eq!(diff.added, vec!["strongarm/tables:per-place-class/go@40"]);
        assert_eq!(diff.removed, vec!["strongarm/tables:per-place-class/adpcm@16"]);
        // Coverage drift alone must not produce counter deltas.
        assert!(diff.counters.is_empty());
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let e = SweepRecord::parse("{\"group\":\"sweep\",\"bench\":\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = SweepRecord::parse("{\"group\":\"x\"}\n").unwrap_err();
        assert!(e.detail.contains("no sweep-summary"));
    }
}
