//! Sweep-style batched evaluation over the compiled-model seam.
//!
//! The dominant use of a fast cycle-accurate simulator is not one run but
//! a *sweep*: many configurations × many workloads, evaluated together
//! (design-space exploration, regression matrices). This module enumerates
//! that job matrix — {kernel × table-mode × engine-config}, with both
//! processor models on the engine axis — compiles each engine variant
//! **once**, and fans the jobs across a [`BatchRunner`], each worker
//! instantiating its engine from the shared compiled artifact.
//!
//! Determinism is the load-bearing property: a [`SweepRun`]'s per-job
//! statistics and its merged aggregate are bit-identical between a serial
//! run and a parallel run at any worker count. `cargo run --bin sweep`
//! drives this module, checks that invariant end to end, and records the
//! measured serial-vs-parallel wall clock in `BENCH_sweep.json`.

use std::time::Instant;

use processors::res::SimConfig;
use processors::sim::{CompiledSim, ProcModel};
use rcpn::artifact::{ArtifactCache, ArtifactError};
use rcpn::batch::{merge_stats, BatchRunner};
use rcpn::engine::{EngineConfig, SchedulerMode, TableMode};
use rcpn::spec::Lowering;
use rcpn::stats::{SchedStats, Stats};
use workloads::{Kernel, Workload};

use crate::MAX_CYCLES;

/// One point on the engine axis of the sweep matrix: a processor model
/// compiled under one engine configuration.
#[derive(Debug, Clone)]
pub struct EngineVariant {
    /// Row label, e.g. `"strongarm/tables:full-scan"`.
    pub label: String,
    /// The processor model.
    pub proc: ProcModel,
    /// The engine configuration the model is compiled with.
    pub engine: EngineConfig,
    /// How spec-synthesized read steps are lowered (the dispatch axis:
    /// micro-op IR by default, closures for the ablation row).
    pub lowering: Lowering,
}

impl EngineVariant {
    /// A variant labeled `"<proc>/<mode>"`.
    pub fn new(proc: ProcModel, mode: &str, engine: EngineConfig) -> Self {
        EngineVariant {
            label: format!("{}/{mode}", proc.label()),
            proc,
            engine,
            lowering: Lowering::Auto,
        }
    }

    /// [`EngineVariant::new`] with an explicit spec-lowering mode.
    pub fn with_lowering(proc: ProcModel, mode: &str, lowering: Lowering) -> Self {
        EngineVariant {
            label: format!("{}/{mode}", proc.label()),
            proc,
            engine: EngineConfig::default(),
            lowering,
        }
    }

    /// The simulator configuration for this variant (model defaults with
    /// the variant's engine config and lowering mode).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            engine: self.engine.clone(),
            lowering: self.lowering,
            ..self.proc.default_config()
        }
    }
}

/// The default engine axis: every registered processor model
/// ([`ProcModel::ALL`]) × every candidate-table mode, the
/// exhaustive-sweep scheduler oracle on every model (so every sweep
/// records both the activity-driven engine and its oracle), plus the
/// two-list-everywhere evaluation scheme on StrongARM.
pub fn engine_axis() -> Vec<EngineVariant> {
    let modes = [
        ("tables:per-place-class", TableMode::PerPlaceClass),
        ("tables:per-place", TableMode::PerPlace),
        ("tables:full-scan", TableMode::FullScan),
    ];
    let mut axis = Vec::new();
    for proc in ProcModel::ALL {
        for (name, mode) in modes {
            let engine = EngineConfig { table_mode: mode, ..Default::default() };
            axis.push(EngineVariant::new(proc, name, engine));
        }
        axis.push(EngineVariant::new(
            proc,
            "sched:exhaustive",
            EngineConfig { scheduler: SchedulerMode::Exhaustive, ..Default::default() },
        ));
    }
    axis.push(EngineVariant::new(
        ProcModel::StrongArm,
        "two-list-everywhere",
        EngineConfig { two_list_everywhere: true, ..Default::default() },
    ));
    // The dispatch ablations: the same StrongARM spec lowered to closures
    // instead of micro-op IR, and IR lowering with superblock dispatch
    // disabled (per-op candidate-walk interpretation). Speed knobs only —
    // the cross-engine identity check pins both cycle-identical to the IR
    // rows.
    axis.push(EngineVariant {
        label: format!("{}/dispatch:closures", ProcModel::StrongArm.label()),
        proc: ProcModel::StrongArm,
        // The pre-IR engine wholesale: no superblocks either (pass-through
        // steps would otherwise still form guardless blocks).
        engine: EngineConfig { superblocks: false, chains: false, ..Default::default() },
        lowering: Lowering::Closures,
    });
    axis.push(EngineVariant::new(
        ProcModel::StrongArm,
        "dispatch:per-op",
        EngineConfig { superblocks: false, chains: false, ..Default::default() },
    ));
    axis.push(EngineVariant::new(
        ProcModel::StrongArm,
        "dispatch:chains-off",
        EngineConfig { chains: false, ..Default::default() },
    ));
    axis
}

/// A fully enumerated sweep: the two axes, the per-variant compiled
/// artifacts, and the flat job list.
///
/// Compilation happens exactly once per engine variant, in [`Sweep::new`];
/// running the sweep (serially or in parallel, any number of times) only
/// instantiates engines from the shared artifacts.
pub struct Sweep {
    /// The engine axis.
    pub variants: Vec<EngineVariant>,
    /// One compiled simulator per variant (index-aligned with `variants`).
    pub artifacts: Vec<CompiledSim>,
    /// The workload axis.
    pub workloads: Vec<Workload>,
    /// The job matrix, row-major over (variant, workload) indices. Job
    /// numbering is fixed by this enumeration order, which is what the
    /// deterministic-merge invariant is anchored to.
    pub jobs: Vec<(usize, usize)>,
}

impl Sweep {
    /// Enumerates the full default matrix — [`engine_axis`] × all six
    /// kernels at `scale` — and compiles every engine variant.
    pub fn new(scale: f64) -> Sweep {
        Sweep::with(engine_axis(), Workload::matrix(&Kernel::ALL, &[scale]))
    }

    /// Enumerates an explicit matrix and compiles its engine variants.
    pub fn with(variants: Vec<EngineVariant>, workloads: Vec<Workload>) -> Sweep {
        let artifacts =
            variants.iter().map(|v| CompiledSim::new(v.proc, &v.sim_config())).collect();
        let jobs =
            (0..variants.len()).flat_map(|v| (0..workloads.len()).map(move |w| (v, w))).collect();
        Sweep { variants, artifacts, workloads, jobs }
    }

    /// [`Sweep::new`] with engine variants reloaded from (or stored into)
    /// an artifact cache instead of recompiled — see
    /// [`Sweep::with_cached`].
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when a freshly compiled artifact cannot be
    /// stored into the cache.
    pub fn new_cached(scale: f64, cache: &ArtifactCache) -> Result<Sweep, ArtifactError> {
        Sweep::with_cached(engine_axis(), Workload::matrix(&Kernel::ALL, &[scale]), cache)
    }

    /// [`Sweep::with`], but each engine variant goes through
    /// [`CompiledSim::load_or_compile`]: reloaded from `cache` when a
    /// valid artifact exists, compiled and stored otherwise.
    /// Unserializable variants (closure lowering) are compiled directly
    /// and counted as cache bypasses. Read the cache's hit/miss/bypass
    /// counters afterwards to see what happened; [`render_json`] records
    /// them in the sweep summary.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when a freshly compiled artifact cannot be
    /// stored into the cache.
    pub fn with_cached(
        variants: Vec<EngineVariant>,
        workloads: Vec<Workload>,
        cache: &ArtifactCache,
    ) -> Result<Sweep, ArtifactError> {
        let artifacts = variants
            .iter()
            .map(|v| CompiledSim::load_or_compile(v.proc, &v.sim_config(), cache))
            .collect::<Result<Vec<_>, _>>()?;
        let jobs =
            (0..variants.len()).flat_map(|v| (0..workloads.len()).map(move |w| (v, w))).collect();
        Ok(Sweep { variants, artifacts, workloads, jobs })
    }

    /// Assembles a sweep over *already compiled* artifacts — no
    /// compilation, no cache traffic. This is the constructor the
    /// `rcpn-serve` job server uses to record a sweep from the models it
    /// warmed at bind time: the variants supply the row labels, the
    /// index-aligned artifacts supply the engines.
    ///
    /// # Panics
    ///
    /// Panics if `variants` and `artifacts` are not the same length —
    /// the two axes must be index-aligned.
    pub fn over_artifacts(
        variants: Vec<EngineVariant>,
        artifacts: Vec<CompiledSim>,
        workloads: Vec<Workload>,
    ) -> Sweep {
        assert_eq!(variants.len(), artifacts.len(), "variants and artifacts must be index-aligned");
        let jobs =
            (0..variants.len()).flat_map(|v| (0..workloads.len()).map(move |w| (v, w))).collect();
        Sweep { variants, artifacts, workloads, jobs }
    }

    /// Number of jobs in the matrix.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every job of the matrix on `runner`, returning per-job rows in
    /// job order plus the deterministic merged aggregate.
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails to exit with its gold checksum — a
    /// mis-simulating configuration must never be reported.
    pub fn run(&self, runner: &BatchRunner) -> SweepRun {
        let t0 = Instant::now();
        let rows = runner.run(&self.jobs, |_idx, &(v, w)| {
            let workload = &self.workloads[w];
            let mut sim = self.artifacts[v].instantiate(&workload.program);
            let job_t0 = Instant::now();
            let r = sim.run(MAX_CYCLES);
            let seconds = job_t0.elapsed().as_secs_f64();
            assert_eq!(
                r.exit,
                Some(workload.expected),
                "{}/{} exited with the wrong checksum",
                self.variants[v].label,
                workload.kernel,
            );
            SweepRow {
                variant: self.variants[v].label.clone(),
                kernel: workload.kernel,
                size: workload.size,
                cycles: r.cycles,
                instrs: r.instrs,
                seconds,
                stats: sim.engine.stats().clone(),
                sched: sim.sched().clone(),
            }
        });
        let wall_seconds = t0.elapsed().as_secs_f64();
        let merged = merge_stats(rows.iter().map(|r| &r.stats));
        SweepRun { rows, merged, wall_seconds, workers: runner.workers() }
    }
}

impl Sweep {
    /// Panics unless the engine axis was a pure *speed* axis for this
    /// run: every variant of the same processor model must simulate each
    /// workload to identical cycle and instruction counts, and the
    /// `sched:exhaustive` oracle rows must be bit-identical in their full
    /// [`Stats`] block to their activity-driven default siblings
    /// (`tables:per-place-class`). The sweep binary runs this on the full
    /// matrix before recording results.
    pub fn assert_cross_engine_identity(&self, run: &SweepRun) {
        let nw = self.workloads.len();
        let row = |v: usize, w: usize| &run.rows[v * nw + w];
        let proc_of = |label: &str| label.split('/').next().unwrap_or("").to_string();
        let find = |label: &str| self.variants.iter().position(|v| v.label == label);
        for w in 0..nw {
            let kernel = self.workloads[w].kernel;
            let mut per_proc: Vec<(String, u64, u64, String)> = Vec::new();
            for (v, variant) in self.variants.iter().enumerate() {
                let r = row(v, w);
                let proc = proc_of(&variant.label);
                match per_proc.iter().find(|(p, ..)| *p == proc) {
                    None => per_proc.push((proc, r.cycles, r.instrs, variant.label.clone())),
                    Some((_, cycles, instrs, first)) => assert_eq!(
                        (r.cycles, r.instrs),
                        (*cycles, *instrs),
                        "{}/{kernel} diverged from {first}/{kernel}: engine knobs must never \
                         change simulated timing",
                        variant.label,
                    ),
                }
            }
            for proc in ProcModel::ALL.map(ProcModel::label) {
                let (Some(act), Some(exh)) = (
                    find(&format!("{proc}/tables:per-place-class")),
                    find(&format!("{proc}/sched:exhaustive")),
                ) else {
                    continue;
                };
                assert_eq!(
                    row(act, w).stats,
                    row(exh, w).stats,
                    "{proc}/{kernel}: activity-driven Stats diverged from the exhaustive oracle"
                );
            }
        }
    }
}

/// One completed job of a sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Engine-variant label of the job.
    pub variant: String,
    /// Workload kernel of the job.
    pub kernel: Kernel,
    /// Workload problem size.
    pub size: usize,
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instrs: u64,
    /// Host seconds of this job alone (noisy under parallel execution; use
    /// [`SweepRun::wall_seconds`] for throughput comparisons).
    pub seconds: f64,
    /// The engine's full statistics block.
    pub stats: Stats,
    /// The engine's scheduler counters (evaluated vs skipped work;
    /// deterministic per variant, so included in the identity check).
    pub sched: SchedStats,
}

/// The result of running a [`Sweep`]: rows in job order, the merged
/// aggregate, and the wall clock of the whole batch.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Per-job results, in job order (independent of worker scheduling).
    pub rows: Vec<SweepRow>,
    /// All row stats merged in job order.
    pub merged: Stats,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Worker count the batch ran with.
    pub workers: usize,
}

impl SweepRun {
    /// True when `self` and `other` simulated the exact same thing:
    /// per-job cycles, instruction counts and full statistics blocks are
    /// bit-identical, and so are the merged aggregates. Wall-clock fields
    /// are ignored — that is where the two runs are *supposed* to differ.
    pub fn simulation_identical(&self, other: &SweepRun) -> bool {
        self.rows.len() == other.rows.len()
            && self.merged == other.merged
            && self.rows.iter().zip(&other.rows).all(|(a, b)| {
                a.variant == b.variant
                    && a.kernel == b.kernel
                    && a.size == b.size
                    && a.cycles == b.cycles
                    && a.instrs == b.instrs
                    && a.stats == b.stats
                    && a.sched == b.sched
            })
    }

    /// Total simulated cycles across the batch.
    pub fn total_cycles(&self) -> u64 {
        self.merged.cycles
    }
}

/// Renders the sweep record as JSON lines (the `BENCH_*.json` house
/// format): one `"sweep"` row per job, then one `"sweep-summary"` row
/// with the serial-vs-parallel wall-clock measurement and — when the
/// sweep was built through an artifact cache — the cache's
/// hit/miss/bypass counters.
///
/// Per-job rows (and their `job_seconds`/`mcps` timing) come from the
/// **serial** run: under parallel execution the workers time-share cores,
/// so parallel per-job clocks would understate real single-run speed.
/// The two runs' simulation results are asserted identical elsewhere; the
/// parallel run contributes only its wall clock and worker count.
pub fn render_json(
    serial: &SweepRun,
    parallel: &SweepRun,
    cache: Option<&ArtifactCache>,
) -> String {
    let mut out = String::new();
    for row in &serial.rows {
        let mcps = row.cycles as f64 / row.seconds / 1.0e6;
        let cpi = row.cycles as f64 / row.instrs as f64;
        out.push_str(&format!(
            "{{\"group\":\"sweep\",\"bench\":\"{}/{}\",\"size\":{},\"cycles\":{},\
             \"instrs\":{},\"cpi\":{:.4},\"job_seconds\":{:.6},\"mcps\":{:.3},\
             \"place_visits\":{},\"place_skips\":{},\"trans_visits\":{},\
             \"trans_visits_skipped\":{},\"guard_ir_evals\":{},\"guard_hook_evals\":{},\
             \"actions_fused\":{},\"superblocks_entered\":{},\"ops_inlined\":{},\
             \"chains_entered\":{},\"chain_links_fired\":{}}}\n",
            row.variant,
            row.kernel,
            row.size,
            row.cycles,
            row.instrs,
            cpi,
            row.seconds,
            mcps,
            row.sched.place_visits,
            row.sched.place_skips,
            row.sched.trans_visits,
            row.sched.trans_visits_skipped,
            row.sched.guard_ir_evals,
            row.sched.guard_hook_evals,
            row.sched.actions_fused,
            row.sched.superblocks_entered,
            row.sched.ops_inlined,
            row.sched.chains_entered,
            row.sched.chain_links_fired,
        ));
    }
    let speedup = serial.wall_seconds / parallel.wall_seconds;
    let cache_fields = cache.map_or(String::new(), |c| {
        format!(
            ",\"cache_hits\":{},\"cache_misses\":{},\"cache_bypasses\":{}",
            c.hits(),
            c.misses(),
            c.bypasses(),
        )
    });
    out.push_str(&format!(
        "{{\"group\":\"sweep-summary\",\"jobs\":{},\"workers\":{},\"total_cycles\":{},\
         \"total_retired\":{},\"serial_seconds\":{:.6},\"parallel_seconds\":{:.6},\
         \"speedup\":{:.3}{cache_fields},\"identical\":{}}}\n",
        parallel.rows.len(),
        parallel.workers,
        parallel.total_cycles(),
        parallel.merged.retired,
        serial.wall_seconds,
        parallel.wall_seconds,
        speedup,
        serial.simulation_identical(parallel),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> Sweep {
        // Two variants × two kernels: enough to exercise the matrix
        // without dominating test time.
        let variants = vec![
            EngineVariant::new(ProcModel::StrongArm, "tables:per-place-class", Default::default()),
            EngineVariant::new(
                ProcModel::StrongArm,
                "tables:full-scan",
                EngineConfig { table_mode: TableMode::FullScan, ..Default::default() },
            ),
        ];
        Sweep::with(variants, Workload::matrix(&[Kernel::Crc, Kernel::Adpcm], &[0.0]))
    }

    #[test]
    fn matrix_is_row_major_over_variants_then_workloads() {
        let s = tiny_sweep();
        assert_eq!(s.len(), 4);
        assert_eq!(s.jobs, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let s = tiny_sweep();
        let serial = s.run(&BatchRunner::new(1));
        let parallel = s.run(&BatchRunner::new(4));
        assert!(serial.simulation_identical(&parallel));
        // Table mode is a speed knob, never a timing-model knob: both
        // variants must simulate the same cycle counts.
        assert_eq!(serial.rows[0].cycles, serial.rows[2].cycles);
        assert_eq!(serial.rows[1].cycles, serial.rows[3].cycles);
    }

    /// The full default axis passes the cross-engine identity check on a
    /// small workload slice (the sweep binary re-asserts it on the full
    /// matrix every run).
    #[test]
    fn full_axis_cross_engine_identity_on_test_sizes() {
        let s = Sweep::with(engine_axis(), Workload::matrix(&[Kernel::Crc], &[0.0]));
        let run = s.run(&BatchRunner::new(2));
        s.assert_cross_engine_identity(&run);
        // Every registered processor model carries an oracle variant on
        // the axis.
        for proc in ProcModel::ALL.map(ProcModel::label) {
            assert!(s.variants.iter().any(|v| v.label == format!("{proc}/sched:exhaustive")));
        }
    }

    #[test]
    fn exhaustive_oracle_simulates_identically_and_skips_nothing() {
        let variants = vec![
            EngineVariant::new(ProcModel::StrongArm, "tables:per-place-class", Default::default()),
            EngineVariant::new(
                ProcModel::StrongArm,
                "sched:exhaustive",
                EngineConfig { scheduler: SchedulerMode::Exhaustive, ..Default::default() },
            ),
        ];
        let s = Sweep::with(variants, Workload::matrix(&[Kernel::Crc], &[0.0]));
        let run = s.run(&BatchRunner::new(1));
        assert_eq!(run.rows[0].cycles, run.rows[1].cycles, "scheduler is a speed knob only");
        assert_eq!(run.rows[0].stats, run.rows[1].stats, "Stats are scheduler-independent");
        assert!(run.rows[0].sched.place_skips > 0, "activity variant shows sparsity");
        assert_eq!(run.rows[1].sched.place_skips, 0, "the oracle never skips");
    }

    /// The dispatch axis is a speed knob only: the closure-lowered row
    /// simulates identically to the IR row, with the counters proving
    /// which dispatch each one ran.
    #[test]
    fn dispatch_closures_row_is_identical_with_zero_ir_activity() {
        let variants = vec![
            EngineVariant::new(ProcModel::StrongArm, "tables:per-place-class", Default::default()),
            EngineVariant {
                label: "strongarm/dispatch:closures".to_string(),
                proc: ProcModel::StrongArm,
                engine: EngineConfig { superblocks: false, ..Default::default() },
                lowering: Lowering::Closures,
            },
        ];
        let s = Sweep::with(variants, Workload::matrix(&[Kernel::Crc], &[0.0]));
        let run = s.run(&BatchRunner::new(1));
        let (ir, cl) = (&run.rows[0], &run.rows[1]);
        assert_eq!(ir.cycles, cl.cycles, "lowering must never change simulated timing");
        assert_eq!(ir.stats, cl.stats);
        assert_eq!(ir.sched.dispatch_normalized(), cl.sched.dispatch_normalized());
        assert!(ir.sched.guard_ir_evals > 0, "IR row must run the IR interpreter");
        assert!(ir.sched.actions_fused > 0, "IR row must fuse read steps");
        assert_eq!(cl.sched.guard_ir_evals, 0, "closure row must not run IR");
        assert_eq!(cl.sched.actions_fused, 0);
        assert_eq!(cl.sched.superblocks_entered, 0, "closure guards block superblock formation");
    }

    /// The superblock axis is a speed knob only: the per-op row simulates
    /// identically to the superblock (default) row, with the counters
    /// proving which dispatch each one ran.
    #[test]
    fn dispatch_per_op_row_is_identical_with_zero_superblock_activity() {
        let variants = vec![
            EngineVariant::new(ProcModel::StrongArm, "tables:per-place-class", Default::default()),
            EngineVariant::new(
                ProcModel::StrongArm,
                "dispatch:per-op",
                EngineConfig { superblocks: false, ..Default::default() },
            ),
        ];
        let s = Sweep::with(variants, Workload::matrix(&[Kernel::Crc], &[0.0]));
        let run = s.run(&BatchRunner::new(1));
        let (sb, po) = (&run.rows[0], &run.rows[1]);
        assert_eq!(sb.cycles, po.cycles, "superblocks must never change simulated timing");
        assert_eq!(sb.stats, po.stats);
        assert_eq!(sb.sched.dispatch_normalized(), po.sched.dispatch_normalized());
        assert!(sb.sched.superblocks_entered > 0, "default row must dispatch superblocks");
        assert!(sb.sched.ops_inlined > 0);
        assert_eq!(po.sched.superblocks_entered, 0, "per-op row must not form superblocks");
        assert_eq!(po.sched.ops_inlined, 0);
    }

    /// The chain axis is a speed knob only: the chains-off row simulates
    /// identically to the chained (default) row, with the counters
    /// proving which dispatch each one ran.
    #[test]
    fn dispatch_chains_off_row_is_identical_with_zero_chain_activity() {
        let variants = vec![
            EngineVariant::new(ProcModel::StrongArm, "tables:per-place-class", Default::default()),
            EngineVariant::new(
                ProcModel::StrongArm,
                "dispatch:chains-off",
                EngineConfig { chains: false, ..Default::default() },
            ),
        ];
        let s = Sweep::with(variants, Workload::matrix(&[Kernel::Crc], &[0.0]));
        let run = s.run(&BatchRunner::new(1));
        let (ch, off) = (&run.rows[0], &run.rows[1]);
        assert_eq!(ch.cycles, off.cycles, "chains must never change simulated timing");
        assert_eq!(ch.stats, off.stats);
        assert_eq!(ch.sched.dispatch_normalized(), off.sched.dispatch_normalized());
        assert!(ch.sched.chains_entered > 0, "default row must park chain cursors");
        assert!(ch.sched.chain_links_fired > 0, "default row must fire chain links");
        assert!(off.sched.superblocks_entered > 0, "chains-off keeps superblock dispatch");
        assert_eq!(off.sched.chains_entered, 0, "chains-off row must not form chains");
        assert_eq!(off.sched.chain_links_fired, 0);
    }

    #[test]
    fn json_record_has_one_line_per_job_plus_summary() {
        let s = tiny_sweep();
        let run = s.run(&BatchRunner::new(2));
        let serial = s.run(&BatchRunner::new(1));
        let json = render_json(&serial, &run, None);
        assert_eq!(json.lines().count(), s.len() + 1);
        assert!(json.contains("\"group\":\"sweep-summary\""));
        assert!(json.contains("\"identical\":true"));
        assert!(!json.contains("cache_hits"), "no cache fields without a cache");
    }

    /// A cached sweep populates the artifact cache on its first build
    /// (misses + one bypass for the unserializable closure row), reloads
    /// 100% on the second, and both simulate bit-identically to an
    /// uncached compile.
    #[test]
    fn cached_sweep_reloads_bit_identically() {
        let dir = std::env::temp_dir().join(format!("rcpn-sweep-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let variants = || {
            vec![
                EngineVariant::new(
                    ProcModel::StrongArm,
                    "tables:per-place-class",
                    Default::default(),
                ),
                EngineVariant {
                    label: "strongarm/dispatch:closures".to_string(),
                    proc: ProcModel::StrongArm,
                    engine: EngineConfig { superblocks: false, ..Default::default() },
                    lowering: Lowering::Closures,
                },
            ]
        };
        let workloads = || Workload::matrix(&[Kernel::Crc], &[0.0]);
        let fresh = Sweep::with(variants(), workloads()).run(&BatchRunner::new(1));

        let cache = ArtifactCache::open(&dir).expect("cache dir");
        let first = Sweep::with_cached(variants(), workloads(), &cache).expect("populate");
        assert_eq!((cache.hits(), cache.misses(), cache.bypasses()), (0, 1, 1));
        let second = Sweep::with_cached(variants(), workloads(), &cache).expect("reload");
        assert_eq!((cache.hits(), cache.misses(), cache.bypasses()), (1, 1, 2));

        let from_store = first.run(&BatchRunner::new(1));
        let from_reload = second.run(&BatchRunner::new(1));
        assert!(fresh.simulation_identical(&from_store), "stored compile diverged");
        assert!(fresh.simulation_identical(&from_reload), "reloaded artifact diverged");

        let json = render_json(&from_reload, &from_reload, Some(&cache));
        assert!(json.contains("\"cache_hits\":1"));
        assert!(json.contains("\"cache_misses\":1"));
        assert!(json.contains("\"cache_bypasses\":2"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
