//! The artifact acceptance gate: for **all three ARM processor models**
//! on **all six Fig. 10 kernels**, a simulator reloaded from a saved
//! artifact must be bit-identical to the freshly compiled one — same
//! trace, same `Stats`, same `SchedStats`, same architectural result —
//! and the artifact must round-trip through the content-addressed cache
//! with the expected hit/miss accounting.

use processors::sim::{CompiledSim, ProcModel};
use rcpn::artifact::ArtifactCache;
use rcpn::engine::TraceEvent;
use rcpn::stats::{SchedStats, Stats};
use workloads::{Kernel, Workload};

/// One simulator's observable outcome on one workload.
#[derive(Debug, PartialEq)]
struct Outcome {
    exit: Option<u32>,
    cycles: u64,
    instrs: u64,
    trace: Vec<TraceEvent>,
    stats: Stats,
    sched: SchedStats,
}

fn run(sim: &CompiledSim, w: &Workload) -> Outcome {
    let mut s = sim.instantiate(&w.program);
    let r = s.run(1_000_000);
    Outcome {
        exit: r.exit,
        cycles: r.cycles,
        instrs: r.instrs,
        trace: s.engine.take_trace(),
        stats: s.engine.stats().clone(),
        sched: s.engine.sched().clone(),
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rcpn-artifact-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Every `(ARM model, fig10 kernel)` cell: save → load → bit-identical.
#[test]
fn all_models_all_kernels_reload_bit_identically() {
    let dir = scratch_dir("save-load");
    let workloads: Vec<Workload> =
        Kernel::ALL.iter().map(|&k| Workload::build(k, k.test_size())).collect();
    assert_eq!(workloads.len(), 6, "the fig10 kernel suite has six benchmarks");
    for model in ProcModel::ALL {
        let mut config = model.default_config();
        config.engine.trace = true;
        let fresh = CompiledSim::new(model, &config);
        let path = dir.join(format!("{}.rcpn", model.figure_name()));
        fresh.save(&path).expect("ARM model serializes");
        let reloaded = CompiledSim::load(model, &config, &path).expect("artifact reloads");
        for w in &workloads {
            let a = run(&fresh, w);
            let b = run(&reloaded, w);
            assert_eq!(
                a.exit,
                Some(w.expected),
                "{}/{}: fresh run must pass the gold checksum",
                model.figure_name(),
                w.kernel
            );
            assert_eq!(a, b, "{}/{}: reloaded != fresh", model.figure_name(), w.kernel);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The cache path: first acquisition is a miss (stored), second is a hit
/// (reloaded), and the reloaded simulator matches the fresh compile on
/// every kernel.
#[test]
fn cache_reload_is_bit_identical_and_counted() {
    let dir = scratch_dir("cache");
    let cache = ArtifactCache::open(&dir).expect("open cache");
    let workloads: Vec<Workload> =
        Kernel::ALL.iter().map(|&k| Workload::build(k, k.test_size())).collect();
    for (i, model) in ProcModel::ALL.into_iter().enumerate() {
        let config = model.default_config();
        let first = CompiledSim::load_or_compile(model, &config, &cache).expect("compile+store");
        let second = CompiledSim::load_or_compile(model, &config, &cache).expect("reload");
        let n = i as u64 + 1;
        assert_eq!((cache.hits(), cache.misses()), (n, n), "{}: one miss then one hit", n);
        let fresh = CompiledSim::new(model, &config);
        for w in &workloads {
            let a = run(&fresh, w);
            assert_eq!(a, run(&first, w), "{}/{}: stored != fresh", model.figure_name(), w.kernel);
            assert_eq!(a, run(&second, w), "{}/{}: cached != fresh", model.figure_name(), w.kernel);
        }
    }
    assert_eq!(cache.bypasses(), 0, "default ARM configs are fully serializable");
    std::fs::remove_dir_all(&dir).ok();
}
