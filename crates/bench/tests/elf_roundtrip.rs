//! The image-subsystem acceptance gate: for **all three ARM processor
//! models** on **all six Fig. 10 kernels**, the ELF round trip
//! `assemble → to_elf_bytes → load_elf → run` must be **bit-identical**
//! to the in-process path — same trace, same `Stats`, same `SchedStats`,
//! same final registers, same architectural result — and a committed
//! golden `.elf` driven through the artifact cache (the `rcpn-run` path)
//! must reproduce its kernel's gold checksum.

use arm_isa::program::MemLayout;
use processors::sim::{CaSim, CompiledSim, ProcModel};
use rcpn::artifact::ArtifactCache;
use rcpn::engine::TraceEvent;
use rcpn::stats::{SchedStats, Stats};
use rcpn_loader::{load_elf, ProgramToElf};
use workloads::{Kernel, Workload};

/// One simulator's complete observable outcome on one workload: the
/// architectural result, the microarchitectural record, and the final
/// register file.
#[derive(Debug, PartialEq)]
struct Outcome {
    exit: Option<u32>,
    cycles: u64,
    instrs: u64,
    trace: Vec<TraceEvent>,
    stats: Stats,
    sched: SchedStats,
    regs: [u32; 15],
}

fn outcome(mut sim: CaSim) -> Outcome {
    let r = sim.run(50_000_000);
    let mut regs = [0u32; 15];
    for (n, slot) in regs.iter_mut().enumerate() {
        *slot = sim.reg(n);
    }
    Outcome {
        exit: r.exit,
        cycles: r.cycles,
        instrs: r.instrs,
        trace: sim.engine.take_trace(),
        stats: sim.engine.stats().clone(),
        sched: sim.engine.sched().clone(),
        regs,
    }
}

/// Every `(ARM model, fig10 kernel)` cell: the ELF-round-tripped image is
/// bit-identical to the in-process program.
#[test]
fn all_models_all_kernels_roundtrip_bit_identically() {
    let workloads: Vec<Workload> =
        Kernel::ALL.iter().map(|&k| Workload::build(k, k.test_size())).collect();
    assert_eq!(workloads.len(), 6, "the fig10 kernel suite has six benchmarks");
    for model in ProcModel::ALL {
        let mut config = model.default_config();
        config.engine.trace = true;
        let sim = CompiledSim::new(model, &config);
        for w in &workloads {
            let image = load_elf(&w.program.to_elf_bytes()).expect("writer output loads");
            assert_eq!(image.program, w.program, "{}: program drift", w.kernel);
            assert_eq!(
                image.layout,
                MemLayout::default(),
                "{}: fig10 images must derive the historical layout",
                w.kernel
            );
            let direct = outcome(sim.instantiate(&w.program));
            let via_elf = outcome(sim.instantiate_image(&image));
            assert_eq!(
                direct.exit,
                Some(w.expected),
                "{}/{}: in-process run must pass the gold checksum",
                model.figure_name(),
                w.kernel
            );
            assert_eq!(
                direct,
                via_elf,
                "{}/{}: ELF round trip != in-process",
                model.figure_name(),
                w.kernel
            );
        }
    }
}

/// The `rcpn-run` path on committed binaries: load each golden `.elf`
/// from `crates/workloads/fixtures/`, run it through the artifact cache,
/// and require the kernel's gold checksum.
#[test]
fn committed_fixtures_reproduce_gold_checksums_through_the_cache() {
    let dir = std::env::temp_dir().join(format!("rcpn-elf-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let cache = ArtifactCache::open(&dir).expect("open cache");
    let fixtures = concat!(env!("CARGO_MANIFEST_DIR"), "/../workloads/fixtures");
    for model in ProcModel::ALL {
        let config = model.default_config();
        let sim = CompiledSim::load_or_compile(model, &config, &cache).expect("compile or reload");
        for &kernel in Kernel::ALL.iter() {
            let w = Workload::build(kernel, kernel.test_size());
            let path = format!("{fixtures}/{}.elf", kernel.name());
            let bytes = std::fs::read(&path)
                .unwrap_or_else(|e| panic!("missing fixture {path} ({e}); see the bless flow"));
            let image = load_elf(&bytes).expect("committed fixture loads");
            let mut run = sim.instantiate_image(&image);
            let result = run.run(50_000_000);
            assert_eq!(result.fault, None, "{}/{kernel}: faulted", model.figure_name());
            assert_eq!(
                result.exit,
                Some(w.expected),
                "{}/{kernel}: committed .elf no longer reproduces the gold checksum",
                model.figure_name()
            );
            assert_eq!(run.unknown_swis(), 0, "{}/{kernel}: unknown SWIs", model.figure_name());
        }
    }
    assert_eq!(cache.misses(), 3, "one compile per registry model");
    std::fs::remove_dir_all(&dir).ok();
}
