//! Co-simulation: the cycle-accurate RCPN models must produce exactly the
//! architectural results of the functional ISS (gold model) — same exit
//! code, same registers, same output bytes — on programs exercising every
//! operation class and hazard type.

use arm_isa::asm::assemble;
use arm_isa::iss::Iss;
use arm_isa::program::Program;
use processors::sim::{CaSim, ProcModel};

/// Runs a program on the ISS and every registered CA model; checks
/// architectural agreement and returns the (strongarm, xscale) results
/// (the pair the timing-relationship assertions reason about).
fn cosim(src: &str) -> (processors::SimResult, processors::SimResult) {
    let program: Program = assemble(src).expect("assembles");

    let mut iss = Iss::from_program(&program);
    iss.run(2_000_000).expect("ISS runs clean");
    assert!(iss.halted(), "gold model must exit");

    let mut results = Vec::new();
    for proc in ProcModel::ALL {
        let name = proc.label();
        let mut ca = CaSim::with_config(proc, &program, &proc.default_config());
        let result = ca.run(20_000_000);
        assert_eq!(result.fault, None, "{name} faulted");
        assert_eq!(result.exit, Some(iss.exit_code()), "{name} exit code differs from ISS");
        assert_eq!(ca.output(), iss.output(), "{name} output differs");
        for r in 0..13 {
            assert_eq!(
                ca.reg(r),
                iss.regs[r],
                "{name} r{r} differs from ISS (iss={:#x} ca={:#x})",
                iss.regs[r],
                ca.reg(r)
            );
        }
        assert_eq!(result.instrs, iss.instr_count(), "{name} instruction count differs from ISS");
        results.push((proc, result));
    }
    let pick = |target: ProcModel| {
        results.iter().find(|(p, _)| *p == target).expect("registry model ran").1.clone()
    };
    (pick(ProcModel::StrongArm), pick(ProcModel::XScale))
}

#[test]
fn straightline_alu() {
    let (sa, xs) = cosim(
        "mov r0, #10
         add r0, r0, #32
         sub r1, r0, #2
         orr r0, r0, r1
         eor r0, r0, r1, lsl #2
         swi #0",
    );
    assert!(sa.cycles > 0 && xs.cycles > sa.cycles, "deeper pipe takes longer to drain");
}

#[test]
fn raw_hazard_chain() {
    cosim(
        "mov r0, #1
         add r1, r0, r0
         add r2, r1, r1
         add r3, r2, r2
         add r0, r3, r3
         swi #0",
    );
}

#[test]
fn flags_and_conditionals() {
    cosim(
        "mov r0, #5
         cmp r0, #5
         moveq r1, #1
         movne r1, #2
         cmp r0, #9
         addlt r1, r1, #10
         addge r1, r1, #100
         mov r0, r1
         swi #0",
    );
}

#[test]
fn loops_and_branches() {
    let (sa, _) = cosim(
        "    mov r0, #0
             mov r1, #50
        top: add r0, r0, r1
             subs r1, r1, #1
             bne top
             swi #0",
    );
    // 50 iterations of 3 instructions plus prologue: CPI must be sane.
    assert!(sa.cpi() > 1.0 && sa.cpi() < 6.0, "cpi = {}", sa.cpi());
}

#[test]
fn function_call_and_return() {
    cosim(
        "    mov r0, #3
             bl double
             bl double
             swi #0
        double:
             add r0, r0, r0
             mov pc, lr",
    );
}

#[test]
fn memory_roundtrip() {
    cosim(
        "    ldr r1, =buf
             mov r0, #11
             str r0, [r1]
             mov r2, #22
             str r2, [r1, #4]
             ldr r3, [r1]
             ldr r4, [r1, #4]
             add r0, r3, r4
             swi #0
        buf: .space 16",
    );
}

#[test]
fn byte_and_halfword_access() {
    cosim(
        "    ldr r1, =data
             ldrb r0, [r1]
             ldrb r2, [r1, #1]
             add r0, r0, r2
             ldrh r3, [r1, #2]
             add r0, r0, r3
             ldrsb r4, [r1, #4]
             add r0, r0, r4
             ldrsh r5, [r1, #6]
             add r0, r0, r5
             strh r0, [r1, #8]
             ldrh r6, [r1, #8]
             mov r0, r6
             swi #0
        data: .byte 5, 7
             .half 300
             .byte 0xFF, 0      ; -1 as signed byte
             .half 0x8000       ; negative as signed halfword
             .space 8",
    );
}

#[test]
fn pre_post_index_writeback() {
    cosim(
        "    ldr r1, =arr
             mov r0, #0
             mov r2, #4
        lp:  ldr r3, [r1], #4
             add r0, r0, r3
             subs r2, r2, #1
             bne lp
             ldr r4, [r1, #-16]!
             add r0, r0, r4
             swi #0
        arr: .word 10, 20, 30, 40",
    );
}

#[test]
fn block_transfers() {
    cosim(
        "    mov r0, #1
             mov r1, #2
             mov r2, #3
             mov r3, #4
             ldr r4, =save
             stmia r4, {r0-r3}
             mov r0, #0
             mov r1, #0
             mov r2, #0
             mov r3, #0
             ldmia r4, {r0-r3}
             add r0, r0, r1
             add r0, r0, r2
             add r0, r0, r3
             swi #0
        save: .space 16",
    );
}

#[test]
fn push_pop_calls() {
    cosim(
        "    mov r0, #7
             bl f
             swi #0
        f:   push {r4, lr}
             mov r4, r0
             bl g
             add r0, r0, r4
             pop {r4, pc}
        g:   add r0, r0, #1
             mov pc, lr",
    );
}

#[test]
fn multiplies() {
    cosim(
        "    mov r0, #7
             mov r1, #6
             mul r2, r0, r1
             mla r3, r0, r1, r2
             mov r4, #0xFF
             orr r4, r4, r4, lsl #8 ; 0xFFFF
             umull r5, r6, r4, r4
             add r0, r2, r3
             add r0, r0, r5
             add r0, r0, r6
             swi #0",
    );
}

#[test]
fn long_dependent_memory_chain() {
    // Pointer chasing: every load depends on the previous one.
    cosim(
        "    ldr r1, =n0
             mov r0, #0
             mov r2, #3
        lp:  ldr r1, [r1]
             subs r2, r2, #1
             bne lp
             ldr r0, [r1, #4]
             swi #0
        n0:  .word n1, 0
        n1:  .word n2, 0
        n2:  .word n3, 0
        n3:  .word n3, 99",
    );
}

#[test]
fn store_load_forwarding_through_memory() {
    cosim(
        "    ldr r1, =slot
             mov r0, #123
             str r0, [r1]
             ldr r2, [r1]
             add r0, r2, #1
             swi #0
        slot: .word 0",
    );
}

#[test]
fn output_syscalls() {
    let (_, _) = cosim(
        "    mov r0, #'h'
             swi #1
             mov r0, #'i'
             swi #1
             mov r0, #42
             swi #2
             mov r0, #0
             swi #0",
    );
}

/// The value-returning semihosting calls (`swi #4` GETC, `swi #6` BRK)
/// through the cycle-accurate pipelines: the r0 write must participate in
/// the scoreboard (the `add` right after each call is a RAW hazard on the
/// SWI's destination), and every model must agree with the ISS.
/// `swi #5` (CLOCK) is excluded: its value is timing-model-dependent by
/// design and is covered by `clock_swi_is_monotonic_and_model_dependent`.
#[test]
fn input_and_brk_syscalls() {
    let src = "   mov r4, #0
             loop:
             swi #4
             cmn r0, #1
             beq done
             add r4, r4, r0
             b loop
             done:
             mov r0, #0
             swi #6
             add r5, r0, #128
             mov r0, r5
             swi #6
             add r6, r0, #0
             mov r0, r4
             swi #0";
    let program: Program = assemble(src).expect("assembles");
    let input = b"\x05\x07\x0B".to_vec();

    let mut iss = Iss::from_program(&program);
    iss.set_input(input.clone());
    iss.run(2_000_000).expect("ISS runs clean");
    assert!(iss.halted());
    assert_eq!(iss.exit_code(), 0x17, "checksum of the input bytes");

    for proc in ProcModel::ALL {
        let name = proc.label();
        let mut ca = CaSim::with_config(proc, &program, &proc.default_config());
        ca.set_input(input.clone());
        let result = ca.run(20_000_000);
        assert_eq!(result.fault, None, "{name} faulted");
        assert_eq!(result.exit, Some(iss.exit_code()), "{name} exit differs");
        assert_eq!(ca.unknown_swis(), 0, "{name} saw no unknown SWIs");
        for r in 0..13 {
            assert_eq!(ca.reg(r), iss.regs[r], "{name} r{r} differs from ISS");
        }
        assert_eq!(ca.res().brk, iss.brk(), "{name} break position differs");
    }
}

/// `swi #5` reads the simulator clock: monotonically increasing within a
/// run, and *different* across timing models (cycles on the CA pipelines,
/// instructions on the ISS) — divergence here is the documented contract.
#[test]
fn clock_swi_is_monotonic_and_model_dependent() {
    let src = "   swi #5
             mov r4, r0
             swi #5
             sub r0, r0, r4
             swi #0";
    let program: Program = assemble(src).expect("assembles");
    let mut iss = Iss::from_program(&program);
    iss.run(1_000).expect("ISS runs clean");
    assert_eq!(iss.exit_code(), 2, "ISS clock is retired instructions: two apart");
    for proc in ProcModel::ALL {
        let mut ca = CaSim::with_config(proc, &program, &proc.default_config());
        let result = ca.run(1_000_000);
        assert_eq!(result.fault, None, "{} faulted", proc.label());
        let delta = result.exit.expect("exits");
        assert!(delta > 0, "{}: clock must advance between reads", proc.label());
    }
}

/// Unknown SWIs are counted — not silent — on every model and the ISS.
#[test]
fn unknown_swis_are_counted_everywhere() {
    let src = "   swi #99
             swi #200
             mov r0, #3
             swi #0";
    let program: Program = assemble(src).expect("assembles");
    let mut iss = Iss::from_program(&program);
    iss.run(1_000).expect("ISS runs clean");
    assert_eq!(iss.exit_code(), 3);
    assert_eq!(iss.unknown_swis(), 2);
    for proc in ProcModel::ALL {
        let mut ca = CaSim::with_config(proc, &program, &proc.default_config());
        let result = ca.run(1_000_000);
        assert_eq!(result.exit, Some(3), "{}", proc.label());
        assert_eq!(ca.unknown_swis(), 2, "{} must count unknown SWIs", proc.label());
    }
}

#[test]
fn shift_by_register_and_rrx() {
    cosim(
        "    mov r0, #1
             mov r1, #4
             mov r2, r0, lsl r1     ; 16
             movs r3, r2, lsr #1    ; 8, C=0
             mov r4, r2, rrx        ; 8
             add r0, r2, r3
             add r0, r0, r4
             swi #0",
    );
}

#[test]
fn xscale_out_of_order_completion_preserves_results() {
    // A load (long miss path) followed by independent ALU work: completion
    // is out of order on XScale but architectural state must match.
    cosim(
        "    ldr r1, =data
             ldr r2, [r1]        ; memory pipe
             mov r3, #5          ; completes earlier in X pipe
             add r4, r3, #6
             add r0, r2, r4
             swi #0
        data: .word 1000",
    );
}

#[test]
fn dense_hazard_mix() {
    // A stress mix: every class, every hazard family, in a loop.
    cosim(
        "    ldr r4, =table
             mov r5, #0          ; checksum
             mov r6, #8          ; iterations
        loop:
             ldr r0, [r4], #4
             add r1, r0, r0, lsl #2
             mul r2, r1, r0
             str r2, [r4, #28]
             ldr r3, [r4, #28]
             cmp r3, r2
             addeq r5, r5, r3
             subs r6, r6, #1
             bne loop
             mov r0, r5
             swi #0
        table: .word 1, 2, 3, 4, 5, 6, 7, 8
             .space 64",
    );
}
