//! The StrongARM (SA-110) RCPN model: a classic five-stage pipeline
//! (Fetch, Issue/Decode, Execute, Buffer/Memory, Writeback), predict-
//! not-taken front end, forwarding from the E- and M-stage latches.
//!
//! The model is a [`PipelineSpec`]: four latches, the forwarding set, two
//! redirect rules, and one path per operation class — the paper's claim
//! that a processor is *described* and the simulator *generated*. The six
//! class sub-nets ("there are six RCPN sub-nets in the StrongArm model")
//! fall out of the six paths; the ready/acquire wiring is synthesized by
//! [`ArmOperandPolicy`]. The closure-wired original survives as the
//! `legacy` test oracle: the spec-generated model is pinned bit-identical
//! to it (trace, `Stats`, `SchedStats`) in `crate::spec_oracle`.

use arm_isa::program::Program;
use rcpn::compiled::CompiledModel;
use rcpn::engine::Engine;
use rcpn::spec::{Forward, PipelineSpec, SquashOrder};

use crate::armtok::{ArmClass, ArmTok};
use crate::registry::keys;
use crate::res::{ArmRes, SimConfig};
use crate::semantics::*;

/// Builds a StrongARM cycle-accurate engine for `program`.
///
/// Convenience over [`compile`] + [`ArmRes::machine`]; build the compiled
/// model once and instantiate it per program when running many programs.
///
/// # Panics
///
/// Panics if the internal model fails validation (a bug, not a user
/// error).
pub fn build(program: &Program, config: &SimConfig) -> Engine<ArmTok, ArmRes> {
    compile(config).instantiate(ArmRes::machine(program, config))
}

/// The StrongARM pipeline description: latches F/D/E/M on stages L1–L4,
/// forwarding from E and M, redirects resolved leaving D (`exec`: ALU PC
/// writes, branches) and leaving E (`mem`: loads into PC), one path per
/// [`ArmClass`].
pub fn spec() -> PipelineSpec<ArmTok, ArmRes> {
    let mut s = PipelineSpec::new("StrongARM");
    s.stage("L1", 1).stage("L2", 1).stage("L3", 1).stage("L4", 1);
    s.latch("F", "L1").latch("D", "L2").latch("E", "L3").latch("M", "L4");
    s.forwards(&["E", "M"]);
    s.hazard_policy(SquashOrder::FrontFirst);
    s.operand_policy(ArmOperandPolicy);
    s.redirect("exec", "D"); // resolved leaving D: squash F
    s.redirect("mem", "E"); // resolved leaving E: squash F, D

    s.class(ArmClass::DataProc.name())
        .step("D")
        .read(Forward::All)
        .step("E")
        .flushes("exec")
        .act_ctx_named(keys::EXEC_DATAPROC, |m, t, fx, cx| exec_dataproc(m, t, fx, &cx.flush))
        .step("M")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::Mul.name())
        .step("D")
        .read(Forward::All)
        .step("E")
        .act_named(keys::EXEC_MUL, exec_mul)
        .step("M")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::LdSt.name())
        .step("D")
        .read(Forward::All)
        .step("E")
        .act_named(keys::EXEC_ADDR, exec_addr)
        .step("M")
        .flushes("mem")
        .act_ctx_named(keys::EXEC_MEM, |m, t, fx, cx| exec_mem(m, t, fx, &cx.flush))
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::LdStM.name())
        .step("D")
        .read_then_named(Forward::All, keys::EXEC_BLOCK_ADDR, exec_block_addr)
        // Condition failed: the whole block transfer is a one-cycle bubble.
        .alt("end")
        .priority(0)
        .guard_named(keys::COND_FAIL, |m, t| !cond_passes(m, t))
        .annuls()
        .act_named(keys::LDM_SKIP, |m, t, _fx| {
            clear_serialize(m, t);
            m.res.instr_done += 1;
        })
        // Issue one micro-op per cycle; the continuation re-enters D.
        .step("E")
        .priority(1)
        .reads_forward()
        .guard_ctx_named(keys::LDM_UOP_READY, |m, t, cx| ldm_uop_ready(m, t, &cx.fwd))
        .act_ctx_named(keys::LDM_UOP_ISSUE, |m, t, fx, cx| {
            ldm_uop_issue(m, t, fx, &cx.fwd, cx.from)
        })
        .step("M")
        .flushes("mem")
        .act_ctx_named(keys::EXEC_MEM, |m, t, fx, cx| exec_mem(m, t, fx, &cx.flush))
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::Branch.name())
        .step("D")
        .read(Forward::None)
        .step("E")
        .flushes("exec")
        .act_ctx_named(keys::EXEC_BRANCH, |m, t, fx, cx| exec_branch(m, t, fx, &cx.flush))
        .step("M")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::System.name())
        .step("D")
        .read(Forward::All)
        .step("E")
        .flushes("exec")
        .act_ctx_named(keys::EXEC_SYSTEM, |m, t, fx, cx| exec_system(m, t, fx, &cx.flush))
        .step("M")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.source("fetch")
        .to("F")
        .guard_named(keys::FETCH_READY, fetch_ready)
        .produce_named(keys::FETCH_PRODUCE, fetch_produce);
    s.on_squash_named(keys::CLEAR_SERIALIZE, clear_serialize);
    s
}

/// Compiles the StrongARM model into its generated-simulator artifact.
///
/// The model structure is program-independent (the program image lives in
/// the machine resources), so one compiled model can instantiate engines
/// for any number of programs.
///
/// # Panics
///
/// Panics if the spec fails to lower or the model fails validation (a
/// bug, not a user error).
pub fn compile(config: &SimConfig) -> CompiledModel<ArmTok, ArmRes> {
    let mut s = spec();
    s.lowering(config.lowering);
    let model = s.lower().expect("StrongARM spec lowers");
    CompiledModel::compile_with(model, config.engine.clone())
}

/// The original closure-wired StrongARM model, kept verbatim as the
/// differential oracle for the spec lowering (`crate::spec_oracle` pins
/// bit-identity of trace, `Stats` and `SchedStats`).
#[cfg(test)]
pub(crate) mod legacy {
    use rcpn::builder::ModelBuilder;
    use rcpn::compiled::CompiledModel;
    use rcpn::ids::{OpClassId, PlaceId};

    use crate::armtok::{ArmClass, ArmTok};
    use crate::res::{ArmRes, SimConfig};
    use crate::semantics::*;

    /// Compiles the hand-wired StrongARM model.
    pub fn compile(config: &SimConfig) -> CompiledModel<ArmTok, ArmRes> {
        let mut b = ModelBuilder::<ArmTok, ArmRes>::new();

        // Pipeline latches (stages) and the instruction states (places).
        let l1 = b.stage("L1", 1);
        let l2 = b.stage("L2", 1);
        let l3 = b.stage("L3", 1);
        let l4 = b.stage("L4", 1);
        let p_f = b.place("F", l1); // fetched, awaiting issue
        let p_d = b.place("D", l2); // issued, operands read
        let p_e = b.place("E", l3); // executed
        let p_m = b.place("M", l4); // memory done / buffered
        let end = b.end_place();

        // Operation classes, in ArmClass order.
        let classes: Vec<OpClassId> =
            ArmClass::ALL.iter().map(|c| b.class_net(c.name()).0).collect();
        for (i, c) in classes.iter().enumerate() {
            assert_eq!(c.index(), i, "class ids must follow ArmClass order");
        }

        // Forwarding sources: the E-output and M-output latches.
        let fwd: [PlaceId; 2] = [p_e, p_m];
        let flush_e: [PlaceId; 1] = [p_f]; // redirect resolved at execute
        let flush_m: [PlaceId; 2] = [p_f, p_d]; // redirect resolved at memory

        // --- DataProc -----------------------------------------------------
        {
            let c = classes[ArmClass::DataProc as usize];
            b.transition(c, "dp_issue")
                .from(p_f)
                .to(p_d)
                .reads_state(p_e)
                .reads_state(p_m)
                .guard(move |m, t| ready(m, t, &fwd))
                .action(move |m, t, fx| acquire(m, t, fx, &fwd))
                .done();
            b.transition(c, "dp_exec")
                .from(p_d)
                .to(p_e)
                .action(move |m, t, fx| exec_dataproc(m, t, fx, &flush_e))
                .done();
            b.transition(c, "dp_mem").from(p_e).to(p_m).done();
            b.transition(c, "dp_wb").from(p_m).to(end).action(exec_writeback).done();
        }

        // --- Mul ----------------------------------------------------------
        {
            let c = classes[ArmClass::Mul as usize];
            b.transition(c, "mul_issue")
                .from(p_f)
                .to(p_d)
                .reads_state(p_e)
                .reads_state(p_m)
                .guard(move |m, t| ready(m, t, &fwd))
                .action(move |m, t, fx| acquire(m, t, fx, &fwd))
                .done();
            b.transition(c, "mul_exec").from(p_d).to(p_e).action(exec_mul).done();
            b.transition(c, "mul_mem").from(p_e).to(p_m).done();
            b.transition(c, "mul_wb").from(p_m).to(end).action(exec_writeback).done();
        }

        // --- LoadStore ----------------------------------------------------
        {
            let c = classes[ArmClass::LdSt as usize];
            b.transition(c, "ld_issue")
                .from(p_f)
                .to(p_d)
                .reads_state(p_e)
                .reads_state(p_m)
                .guard(move |m, t| ready(m, t, &fwd))
                .action(move |m, t, fx| acquire(m, t, fx, &fwd))
                .done();
            b.transition(c, "ld_addr").from(p_d).to(p_e).action(exec_addr).done();
            b.transition(c, "ld_mem")
                .from(p_e)
                .to(p_m)
                .action(move |m, t, fx| exec_mem(m, t, fx, &flush_m))
                .done();
            b.transition(c, "ld_wb").from(p_m).to(end).action(exec_writeback).done();
        }

        // --- LoadStoreMultiple --------------------------------------------
        {
            let c = classes[ArmClass::LdStM as usize];
            b.transition(c, "ldm_issue")
                .from(p_f)
                .to(p_d)
                .reads_state(p_e)
                .reads_state(p_m)
                .guard(move |m, t| ready(m, t, &fwd))
                .action(move |m, t, fx| {
                    acquire(m, t, fx, &fwd);
                    exec_block_addr(m, t, fx);
                })
                .done();
            // Condition failed: the whole block transfer is a one-cycle
            // bubble.
            b.transition(c, "ldm_skip")
                .from(p_d)
                .to(end)
                .priority(0)
                .guard(|m, t| !cond_passes(m, t))
                .action(|m, t, fx| {
                    annul(m, t, fx);
                    m.res.instr_done += 1;
                })
                .done();
            // Issue one micro-op per cycle; the continuation token
            // re-enters D.
            let p_d_cont = p_d;
            b.transition(c, "ldm_uop")
                .from(p_d)
                .to(p_e)
                .priority(1)
                .reads_state(p_e)
                .reads_state(p_m)
                .guard(move |m, t| ldm_uop_ready(m, t, &fwd))
                .action(move |m, t, fx| ldm_uop_issue(m, t, fx, &fwd, p_d_cont))
                .done();
            b.transition(c, "ldm_mem")
                .from(p_e)
                .to(p_m)
                .action(move |m, t, fx| exec_mem(m, t, fx, &flush_m))
                .done();
            b.transition(c, "ldm_wb").from(p_m).to(end).action(exec_writeback).done();
        }

        // --- Branch -------------------------------------------------------
        {
            let c = classes[ArmClass::Branch as usize];
            b.transition(c, "br_issue")
                .from(p_f)
                .to(p_d)
                .guard(|m, t| ready(m, t, &[]))
                .action(|m, t, fx| acquire(m, t, fx, &[]))
                .done();
            b.transition(c, "br_exec")
                .from(p_d)
                .to(p_e)
                .action(move |m, t, fx| exec_branch(m, t, fx, &flush_e))
                .done();
            b.transition(c, "br_mem").from(p_e).to(p_m).done();
            b.transition(c, "br_wb").from(p_m).to(end).action(exec_writeback).done();
        }

        // --- System -------------------------------------------------------
        {
            let c = classes[ArmClass::System as usize];
            b.transition(c, "sys_issue")
                .from(p_f)
                .to(p_d)
                .reads_state(p_e)
                .reads_state(p_m)
                .guard(move |m, t| ready(m, t, &fwd))
                .action(move |m, t, fx| acquire(m, t, fx, &fwd))
                .done();
            b.transition(c, "sys_exec")
                .from(p_d)
                .to(p_e)
                .action(move |m, t, fx| exec_system(m, t, fx, &flush_e))
                .done();
            b.transition(c, "sys_mem").from(p_e).to(p_m).done();
            b.transition(c, "sys_wb").from(p_m).to(end).action(exec_writeback).done();
        }

        // --- Instruction-independent sub-net (fetch) ----------------------
        b.source("fetch").to(p_f).guard(fetch_ready).produce(fetch_produce).done();

        b.on_squash(clear_serialize);

        let model = b.build().expect("StrongARM model validates");
        CompiledModel::compile_with(model, config.engine.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_has_six_subnets_and_two_list_on_forward_latches() {
        let p = arm_isa::asm::assemble("mov r0, #1\nswi #0\n").unwrap();
        let engine = build(&p, &SimConfig::strongarm());
        let model = engine.model();
        // Six class sub-nets, as the paper reports for StrongARM.
        assert_eq!(model.subnet_count(), 6);
        assert_eq!(model.op_class_count(), 6);
        // The forwarded latches E and M are two-list; F and D are not.
        let analysis = model.analysis();
        assert!(analysis.is_two_list(model.find_place("E").unwrap()));
        assert!(analysis.is_two_list(model.find_place("M").unwrap()));
        assert!(!analysis.is_two_list(model.find_place("F").unwrap()));
        assert!(!analysis.is_two_list(model.find_place("D").unwrap()));
    }

    #[test]
    fn spec_classes_follow_armclass_order() {
        let model = spec().lower().expect("lowers");
        for c in ArmClass::ALL {
            assert_eq!(model.op_class(c.id()).name(), c.name());
        }
    }
}
