//! The StrongARM (SA-110) RCPN model: a classic five-stage pipeline
//! (Fetch, Issue/Decode, Execute, Buffer/Memory, Writeback), predict-
//! not-taken front end, forwarding from the E- and M-stage latches.
//!
//! The model is laid out exactly like the paper describes its StrongARM
//! case study: one instruction-independent source (fetch) plus six
//! class sub-nets ("there are six RCPN sub-nets in the StrongArm model"),
//! each mirroring the path its instructions take through the latches
//! L1–L4.

use arm_isa::program::Program;
use memsys::Memory;
use rcpn::builder::ModelBuilder;
use rcpn::compiled::CompiledModel;
use rcpn::engine::Engine;
use rcpn::ids::{OpClassId, PlaceId};
use rcpn::reg::Operand;

use crate::armtok::{reg_id, ArmClass, ArmTok};
use crate::res::{ArmRes, SimConfig};
use crate::semantics::*;

/// Builds a StrongARM cycle-accurate engine for `program`.
///
/// Convenience over [`compile`] + [`ArmRes::machine`]; build the compiled
/// model once and instantiate it per program when running many programs.
///
/// # Panics
///
/// Panics if the internal model fails validation (a bug, not a user
/// error).
pub fn build(program: &Program, config: &SimConfig) -> Engine<ArmTok, ArmRes> {
    compile(config).instantiate(ArmRes::machine(program, config))
}

/// Compiles the StrongARM model into its generated-simulator artifact.
///
/// The model structure is program-independent (the program image lives in
/// the machine resources), so one compiled model can instantiate engines
/// for any number of programs.
///
/// # Panics
///
/// Panics if the internal model fails validation (a bug, not a user
/// error).
pub fn compile(config: &SimConfig) -> CompiledModel<ArmTok, ArmRes> {
    let mut b = ModelBuilder::<ArmTok, ArmRes>::new();

    // Pipeline latches (stages) and the instruction states (places).
    let l1 = b.stage("L1", 1);
    let l2 = b.stage("L2", 1);
    let l3 = b.stage("L3", 1);
    let l4 = b.stage("L4", 1);
    let p_f = b.place("F", l1); // fetched, awaiting issue
    let p_d = b.place("D", l2); // issued, operands read
    let p_e = b.place("E", l3); // executed
    let p_m = b.place("M", l4); // memory done / buffered
    let end = b.end_place();

    // Operation classes, in ArmClass order.
    let classes: Vec<OpClassId> = ArmClass::ALL.iter().map(|c| b.class_net(c.name()).0).collect();
    for (i, c) in classes.iter().enumerate() {
        assert_eq!(c.index(), i, "class ids must follow ArmClass order");
    }

    // Forwarding sources: the E-output and M-output latches.
    let fwd: [PlaceId; 2] = [p_e, p_m];
    let flush_e: [PlaceId; 1] = [p_f]; // redirect resolved at execute
    let flush_m: [PlaceId; 2] = [p_f, p_d]; // redirect resolved at memory

    // --- DataProc ---------------------------------------------------------
    {
        let c = classes[ArmClass::DataProc as usize];
        b.transition(c, "dp_issue")
            .from(p_f)
            .to(p_d)
            .reads_state(p_e)
            .reads_state(p_m)
            .guard(move |m, t| ready(m, t, &fwd))
            .action(move |m, t, fx| acquire(m, t, fx, &fwd))
            .done();
        b.transition(c, "dp_exec")
            .from(p_d)
            .to(p_e)
            .action(move |m, t, fx| exec_dataproc(m, t, fx, &flush_e))
            .done();
        b.transition(c, "dp_mem").from(p_e).to(p_m).done();
        b.transition(c, "dp_wb").from(p_m).to(end).action(exec_writeback).done();
    }

    // --- Mul ---------------------------------------------------------------
    {
        let c = classes[ArmClass::Mul as usize];
        b.transition(c, "mul_issue")
            .from(p_f)
            .to(p_d)
            .reads_state(p_e)
            .reads_state(p_m)
            .guard(move |m, t| ready(m, t, &fwd))
            .action(move |m, t, fx| acquire(m, t, fx, &fwd))
            .done();
        b.transition(c, "mul_exec").from(p_d).to(p_e).action(exec_mul).done();
        b.transition(c, "mul_mem").from(p_e).to(p_m).done();
        b.transition(c, "mul_wb").from(p_m).to(end).action(exec_writeback).done();
    }

    // --- LoadStore ----------------------------------------------------------
    {
        let c = classes[ArmClass::LdSt as usize];
        b.transition(c, "ld_issue")
            .from(p_f)
            .to(p_d)
            .reads_state(p_e)
            .reads_state(p_m)
            .guard(move |m, t| ready(m, t, &fwd))
            .action(move |m, t, fx| acquire(m, t, fx, &fwd))
            .done();
        b.transition(c, "ld_addr").from(p_d).to(p_e).action(exec_addr).done();
        b.transition(c, "ld_mem")
            .from(p_e)
            .to(p_m)
            .action(move |m, t, fx| exec_mem(m, t, fx, &flush_m))
            .done();
        b.transition(c, "ld_wb").from(p_m).to(end).action(exec_writeback).done();
    }

    // --- LoadStoreMultiple ---------------------------------------------------
    {
        let c = classes[ArmClass::LdStM as usize];
        b.transition(c, "ldm_issue")
            .from(p_f)
            .to(p_d)
            .reads_state(p_e)
            .reads_state(p_m)
            .guard(move |m, t| ready(m, t, &fwd))
            .action(move |m, t, fx| {
                acquire(m, t, fx, &fwd);
                exec_block_addr(m, t, fx);
            })
            .done();
        // Condition failed: the whole block transfer is a one-cycle bubble.
        b.transition(c, "ldm_skip")
            .from(p_d)
            .to(end)
            .priority(0)
            .guard(|m, t| !cond_passes(m, t))
            .action(|m, t, fx| {
                annul(m, t, fx);
                m.res.instr_done += 1;
            })
            .done();
        // Issue one micro-op per cycle; the continuation token re-enters D
        // ("a token may stay in one stage and produce multiple tokens").
        let p_d_cont = p_d;
        b.transition(c, "ldm_uop")
            .from(p_d)
            .to(p_e)
            .priority(1)
            .reads_state(p_e)
            .reads_state(p_m)
            .guard(move |m, t| {
                let spec = t.dec.mem.expect("block token");
                let r = nth_reg(t.dec.reg_list, t.uop);
                if spec.load {
                    r.is_pc() || m.regs.writable(reg_id(r))
                } else if r.is_pc() {
                    true
                } else {
                    obtainable(&Operand::reg(reg_id(r)), &m.regs, &fwd)
                }
            })
            .action(move |m, t, fx| {
                let spec = t.dec.mem.expect("block token");
                let r = nth_reg(t.dec.reg_list, t.uop);
                let tok = fx.token();
                if spec.load {
                    if r.is_pc() {
                        t.writes_pc = true;
                    } else {
                        t.dst = Operand::reg(reg_id(r));
                        t.dst.reserve_write(&mut m.regs, tok, PlaceId::from_index(0));
                    }
                } else {
                    let mut op = if r.is_pc() {
                        Operand::imm(t.pc.wrapping_add(8))
                    } else {
                        Operand::reg(reg_id(r))
                    };
                    obtain(&mut op, &m.regs, &fwd);
                    t.srcs[2] = op;
                }
                if t.uop + 1 < t.dec.n_uops {
                    let mut cont = t.clone();
                    // The serialization travels with the last micro-op.
                    t.serialize_pending = false;
                    cont.uop = t.uop + 1;
                    cont.addr = t.addr.wrapping_add(4);
                    cont.dst = Operand::Absent;
                    cont.dst2 = Operand::Absent;
                    cont.srcs = [Operand::Absent; 4];
                    cont.writes_pc = false;
                    fx.emit(cont, p_d_cont, 1);
                }
            })
            .done();
        b.transition(c, "ldm_mem")
            .from(p_e)
            .to(p_m)
            .action(move |m, t, fx| exec_mem(m, t, fx, &flush_m))
            .done();
        b.transition(c, "ldm_wb").from(p_m).to(end).action(exec_writeback).done();
    }

    // --- Branch --------------------------------------------------------------
    {
        let c = classes[ArmClass::Branch as usize];
        b.transition(c, "br_issue")
            .from(p_f)
            .to(p_d)
            .guard(|m, t| ready(m, t, &[]))
            .action(|m, t, fx| acquire(m, t, fx, &[]))
            .done();
        b.transition(c, "br_exec")
            .from(p_d)
            .to(p_e)
            .action(move |m, t, fx| exec_branch(m, t, fx, &flush_e))
            .done();
        b.transition(c, "br_mem").from(p_e).to(p_m).done();
        b.transition(c, "br_wb").from(p_m).to(end).action(exec_writeback).done();
    }

    // --- System ----------------------------------------------------------------
    {
        let c = classes[ArmClass::System as usize];
        b.transition(c, "sys_issue")
            .from(p_f)
            .to(p_d)
            .reads_state(p_e)
            .reads_state(p_m)
            .guard(move |m, t| ready(m, t, &fwd))
            .action(move |m, t, fx| acquire(m, t, fx, &fwd))
            .done();
        b.transition(c, "sys_exec")
            .from(p_d)
            .to(p_e)
            .action(move |m, t, fx| exec_system(m, t, fx, &flush_e))
            .done();
        b.transition(c, "sys_mem").from(p_e).to(p_m).done();
        b.transition(c, "sys_wb").from(p_m).to(end).action(exec_writeback).done();
    }

    // --- Instruction-independent sub-net (fetch) --------------------------------
    b.source("fetch")
        .to(p_f)
        .guard(|m| m.res.exit.is_none() && m.res.fault.is_none() && m.res.pending_serialize == 0)
        .produce(|m, fx| {
            let pc = m.res.pc;
            let lat = m.res.icache.access(pc);
            let word = m.res.mem.read32(pc);
            let dec = m.res.dec_cache.lookup(pc, word);
            let mut tok = dec.instantiate(pc);
            let mut next = pc.wrapping_add(4);
            if dec.class == ArmClass::Branch {
                if let Some(btb) = &mut m.res.btb {
                    if let Some(target) = btb.predict_target(pc) {
                        next = target;
                        tok.pred_target = Some(target);
                    }
                }
            }
            m.res.pc = next;
            if dec.serialize {
                m.res.pending_serialize += 1;
                tok.serialize_pending = true;
            }
            fx.set_token_delay(lat);
            Some(tok)
        })
        .done();

    b.on_squash(clear_serialize);

    let model = b.build().expect("StrongARM model validates");
    CompiledModel::compile_with(model, config.engine.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_has_six_subnets_and_two_list_on_forward_latches() {
        let p = arm_isa::asm::assemble("mov r0, #1\nswi #0\n").unwrap();
        let engine = build(&p, &SimConfig::strongarm());
        let model = engine.model();
        // Six class sub-nets, as the paper reports for StrongARM.
        assert_eq!(model.subnet_count(), 6);
        assert_eq!(model.op_class_count(), 6);
        // The forwarded latches E and M are two-list; F and D are not.
        let analysis = model.analysis();
        assert!(analysis.is_two_list(model.find_place("E").unwrap()));
        assert!(analysis.is_two_list(model.find_place("M").unwrap()));
        assert!(!analysis.is_two_list(model.find_place("F").unwrap()));
        assert!(!analysis.is_two_list(model.find_place("D").unwrap()));
    }
}
