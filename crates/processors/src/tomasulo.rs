//! A Tomasulo-style reservation-station machine, the extension the paper
//! points to ("RCPN model of the Tomasulo algorithm ... detailed in our
//! technical report").
//!
//! The model demonstrates two RCPN capabilities the in-order ARM pipelines
//! do not exercise:
//!
//! * **Stage capacity > 1** — the reservation-station stage holds several
//!   instruction tokens at once ("a pipeline stage is a latch, reservation
//!   station or any other storage element").
//! * **Out-of-order issue** — `Process(p)` walks every token in the
//!   station each cycle; any token whose operands are ready fires,
//!   regardless of program order. Older blocked instructions simply stall
//!   in place (counted in the stall statistics).
//!
//! Functional units: a 1-cycle adder and a 3-cycle multiplier, modeled as
//! single-capacity stages with place delays. WAW/WAR hazards are fenced by
//! the register scoreboard (the technical report's full model adds
//! renaming; the demo keeps the single-writer discipline).

use rcpn::builder::ModelBuilder;
use rcpn::engine::{Engine, EngineConfig};
use rcpn::ids::{OpClassId, PlaceId, RegId};
use rcpn::model::Machine;
use rcpn::reg::{Operand, RegisterFile};
use rcpn::token::InstrData;

/// Operation kind: which functional unit the instruction needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuOp {
    /// 1-cycle addition.
    Add,
    /// 3-cycle multiplication.
    Mul,
}

/// A three-address instruction for the demo machine.
#[derive(Debug, Clone, Copy)]
pub struct RsInstr {
    /// Functional unit.
    pub op: FuOp,
    /// Destination register.
    pub d: u8,
    /// Source registers.
    pub s1: u8,
    /// Second source register.
    pub s2: u8,
}

/// Token payload.
#[derive(Debug, Clone)]
pub struct RsTok {
    class: OpClassId,
    d: Operand,
    s1: Operand,
    s2: Operand,
}

impl InstrData for RsTok {
    fn op_class(&self) -> OpClassId {
        self.class
    }
}

/// Resources: the program feed.
#[derive(Debug)]
pub struct RsRes {
    /// Dispatch index.
    pub pc: usize,
    /// The program.
    pub program: Vec<RsInstr>,
}

/// Builds the reservation-station machine with `rs_entries` station slots.
///
/// # Panics
///
/// Panics if the model fails validation.
pub fn build(program: Vec<RsInstr>, n_regs: usize, rs_entries: u32) -> Engine<RsTok, RsRes> {
    build_with(program, n_regs, rs_entries, EngineConfig::default())
}

/// [`build`] with an explicit engine configuration (e.g. tracing on, so
/// tests can pin the out-of-order issue order event by event).
///
/// # Panics
///
/// Panics if the model fails validation.
pub fn build_with(
    program: Vec<RsInstr>,
    n_regs: usize,
    rs_entries: u32,
    cfg: EngineConfig,
) -> Engine<RsTok, RsRes> {
    let mut b = ModelBuilder::<RsTok, RsRes>::new();

    let s_dec = b.stage("DEC", 1);
    let s_rs = b.stage("RS", rs_entries);
    let s_add = b.stage("FU_ADD", 1);
    let s_mul = b.stage("FU_MUL", 1);
    let p_dec = b.place("DEC", s_dec);
    let p_rs = b.place("RS", s_rs);
    let p_add = b.place("ADD", s_add);
    // The multiplier's latency is its place delay (3 cycles of residency).
    let p_mul = b.place_with_delay("MUL", s_mul, 3);
    let end = b.end_place();

    let (alu, _) = b.class_net("AddClass");
    let (mul, _) = b.class_net("MulClass");

    // Allocate: in program order (DEC has capacity 1), each instruction
    // claims its destination — Tomasulo's rename-at-dispatch, expressed
    // with the single-writer scoreboard. Without this in-order step a
    // younger reader could miss an older writer entirely.
    for (class, name) in [(alu, "alloc_add"), (mul, "alloc_mul")] {
        b.transition(class, name)
            .from(p_dec)
            .to(p_rs)
            .guard(|m, t: &RsTok| t.d.can_write(&m.regs))
            .action(|m, t, fx| {
                let tok = fx.token();
                t.d.reserve_write(&mut m.regs, tok, PlaceId::from_index(0));
            })
            .done();
    }

    // Issue from the station when both operands are ready — tokens behind
    // a blocked one are free to go (out-of-order issue).
    b.transition(alu, "issue_add")
        .from(p_rs)
        .to(p_add)
        .guard(|m, t: &RsTok| t.s1.can_read(&m.regs) && t.s2.can_read(&m.regs))
        .action(|m, t, _fx| {
            t.s1.read(&m.regs);
            t.s2.read(&m.regs);
        })
        .done();
    b.transition(alu, "add_wb")
        .from(p_add)
        .to(end)
        .action(|m, t, fx| {
            let v = t.s1.value().wrapping_add(t.s2.value());
            let tok = fx.token();
            t.d.set(&mut m.regs, tok, v);
            t.d.writeback(&mut m.regs, tok);
        })
        .done();

    b.transition(mul, "issue_mul")
        .from(p_rs)
        .to(p_mul)
        .guard(|m, t: &RsTok| t.s1.can_read(&m.regs) && t.s2.can_read(&m.regs))
        .action(|m, t, _fx| {
            t.s1.read(&m.regs);
            t.s2.read(&m.regs);
        })
        .done();
    b.transition(mul, "mul_wb")
        .from(p_mul)
        .to(end)
        .action(|m, t, fx| {
            let v = t.s1.value().wrapping_mul(t.s2.value());
            let tok = fx.token();
            t.d.set(&mut m.regs, tok, v);
            t.d.writeback(&mut m.regs, tok);
        })
        .done();

    // Dispatch: one instruction per cycle through decode (the source's
    // built-in capacity check provides the backpressure).
    b.source("dispatch")
        .to(p_dec)
        .produce(move |m, _fx| {
            let instr = *m.res.program.get(m.res.pc)?;
            m.res.pc += 1;
            Some(RsTok {
                class: OpClassId::from_index(match instr.op {
                    FuOp::Add => 0,
                    FuOp::Mul => 1,
                }),
                d: Operand::reg(RegId::from_index(instr.d as usize)),
                s1: Operand::reg(RegId::from_index(instr.s1 as usize)),
                s2: Operand::reg(RegId::from_index(instr.s2 as usize)),
            })
        })
        .done();

    let model = b.build().expect("tomasulo model validates");
    let mut rf = RegisterFile::new();
    rf.add_bank("r", n_regs);
    let machine = Machine::new(rf, RsRes { pc: 0, program });
    Engine::with_config(model, machine, cfg)
}

/// Runs to drain; returns (cycles, final registers).
pub fn run_program(
    program: Vec<RsInstr>,
    n_regs: usize,
    rs_entries: u32,
    max_cycles: u64,
) -> (u64, Vec<u32>) {
    let mut engine = build(program, n_regs, rs_entries);
    let mut idle = 0;
    while engine.cycle() < max_cycles && idle < 3 {
        engine.step();
        if engine.live_tokens() == 0 {
            idle += 1;
        } else {
            idle = 0;
        }
    }
    let regs = (0..n_regs).map(|i| engine.machine().regs.value_of(RegId::from_index(i))).collect();
    (engine.cycle(), regs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(d: u8, s1: u8, s2: u8) -> RsInstr {
        RsInstr { op: FuOp::Add, d, s1, s2 }
    }
    fn mul(d: u8, s1: u8, s2: u8) -> RsInstr {
        RsInstr { op: FuOp::Mul, d, s1, s2 }
    }

    fn with_inits(inits: &[(usize, u32)], program: Vec<RsInstr>) -> (u64, Vec<u32>) {
        let mut engine = build(program, 8, 4);
        for &(r, v) in inits {
            engine.machine_mut().regs.poke(RegId::from_index(r), v);
        }
        let mut idle = 0;
        while engine.cycle() < 1000 && idle < 3 {
            engine.step();
            if engine.live_tokens() == 0 {
                idle += 1;
            } else {
                idle = 0;
            }
        }
        let regs = (0..8).map(|i| engine.machine().regs.value_of(RegId::from_index(i))).collect();
        (engine.cycle(), regs)
    }

    #[test]
    fn computes_dependent_chain() {
        // r3 = r1 * r2 ; r4 = r3 + r1 ; r5 = r4 + r4
        let (_c, regs) =
            with_inits(&[(1, 3), (2, 4)], vec![mul(3, 1, 2), add(4, 3, 1), add(5, 4, 4)]);
        assert_eq!(regs[3], 12);
        assert_eq!(regs[4], 15);
        assert_eq!(regs[5], 30);
    }

    #[test]
    fn independent_add_issues_past_blocked_dependent_add() {
        // Program order: mul r3 <- r1*r2 (3 cycles); add r4 <- r3+r1
        // (blocked on r3); add r5 <- r1+r2 (independent, issues OOO).
        let program = vec![mul(3, 1, 2), add(4, 3, 1), add(5, 1, 2)];
        let mut engine = build(program, 8, 4);
        engine.machine_mut().regs.poke(RegId::from_index(1), 10);
        engine.machine_mut().regs.poke(RegId::from_index(2), 20);
        let mut r5_done = 0u64;
        let mut r4_done = 0u64;
        for _ in 0..100 {
            engine.step();
            let m = engine.machine();
            if r5_done == 0 && m.regs.value_of(RegId::from_index(5)) == 30 {
                r5_done = engine.cycle();
            }
            if r4_done == 0 && m.regs.value_of(RegId::from_index(4)) == 210 {
                r4_done = engine.cycle();
            }
        }
        assert!(r5_done > 0 && r4_done > 0);
        assert!(
            r5_done < r4_done,
            "the younger independent add (done {r5_done}) must complete before \
             the older dependent add (done {r4_done}) — out-of-order issue"
        );
    }

    /// Pins the out-of-order issue *trace*, not just the end state: with
    /// `mul r3 <- r1*r2` blocking `add r4 <- r3+r1` on r3, the younger
    /// independent `add r5 <- r1+r2` must be the first instruction to
    /// issue out of the station — `issue_add` fires for seq 2 while the
    /// older seq-1 add is still parked. This is the regression guard for
    /// the demo's one claim; if scheduler or dispatch changes ever
    /// serialize the station, the fired-event sequence shifts and this
    /// fails with the exact divergent event.
    #[test]
    fn out_of_order_issue_trace_is_pinned() {
        use rcpn::engine::TraceEvent;
        let program = vec![mul(3, 1, 2), add(4, 3, 1), add(5, 1, 2)];
        let cfg = EngineConfig { trace: true, ..Default::default() };
        let mut engine = build_with(program, 8, 4, cfg);
        engine.machine_mut().regs.poke(RegId::from_index(1), 10);
        engine.machine_mut().regs.poke(RegId::from_index(2), 20);
        for _ in 0..40 {
            engine.step();
        }
        let model_names: Vec<String> = {
            let m = engine.model();
            m.transition_ids().map(|t| m.transition(t).name().to_string()).collect()
        };
        let fired: Vec<(String, u64)> = engine
            .take_trace()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Fired { transition, seq, .. } => {
                    Some((model_names[transition.index()].clone(), seq))
                }
                _ => None,
            })
            .collect();
        // Allocation (in-order, one per cycle through DEC), then issue:
        // the mul (seq 0) first, then the *younger* independent add
        // (seq 2) overtakes the blocked dependent add (seq 1), which
        // only issues after the mul writes back. (Places evaluate in
        // reverse topological order, so a station token can issue in the
        // same cycle a younger one is still being allocated behind it.)
        let expect: &[(&str, u64)] = &[
            ("alloc_mul", 0),
            ("issue_mul", 0),
            ("alloc_add", 1),
            ("alloc_add", 2),
            ("issue_add", 2), // <-- seq 2 issues before seq 1: out-of-order
            ("mul_wb", 0),
            ("add_wb", 2),
            ("issue_add", 1),
            ("add_wb", 1),
        ];
        let got: Vec<(&str, u64)> = fired.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        assert_eq!(got, expect, "out-of-order issue trace changed");
    }

    #[test]
    fn station_capacity_backpressures_dispatch() {
        // Four dependent multiplies occupy the station; dispatch of the
        // fifth instruction must wait (source capacity check).
        let program = vec![
            mul(2, 1, 1),
            mul(3, 2, 2),
            mul(4, 3, 3),
            mul(5, 4, 4),
            add(6, 1, 1),
            add(7, 1, 1),
        ];
        let mut engine = build(program, 8, 4);
        engine.machine_mut().regs.poke(RegId::from_index(1), 2);
        let mut idle = 0;
        while engine.cycle() < 1000 && idle < 3 {
            engine.step();
            if engine.live_tokens() == 0 {
                idle += 1;
            } else {
                idle = 0;
            }
        }
        let r = |i: usize| engine.machine().regs.value_of(RegId::from_index(i));
        assert_eq!(r(2), 4);
        assert_eq!(r(3), 16);
        assert_eq!(r(4), 256);
        assert_eq!(r(5), 65536);
        assert_eq!(r(6), 4);
        assert_eq!(r(7), 4);
        assert!(engine.stats().stalls > 0, "dependent tokens stalled in the station");
    }

    #[test]
    fn overlap_beats_serial_latency() {
        // 4 independent muls (3 cycles each) on one multiplier + 4
        // independent adds: with OOO issue the adds fill the adder while
        // muls stream through the multiplier.
        let program = vec![mul(2, 1, 1), mul(3, 1, 1), add(4, 1, 1), add(5, 1, 1)];
        let (cycles, regs) = with_inits(&[(1, 5)], program);
        assert_eq!(regs[2], 25);
        assert_eq!(regs[4], 10);
        // Serial execution would need ~2*muls*4 + adds; overlap keeps it
        // well under.
        assert!(cycles < 20, "overlapped execution took {cycles} cycles");
    }
}
