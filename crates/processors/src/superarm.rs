//! SuperARM: a seven-stage superpipelined in-order StrongARM variant —
//! the scenario-diversity model that exists *because* the spec API makes
//! a new pipeline a page of description rather than a day of closure
//! wiring.
//!
//! ```text
//! F1 ─ F2 ─ D ─ E ─ M1 ─ M2 ─ WB(end)
//! ```
//!
//! The fetch and memory stages of the SA-110 are each split in two (the
//! classic path to higher clock rates), keeping the predict-not-taken
//! front end. The stretch is visible in the timing: redirects resolved at
//! execute now squash *two* fetch latches (a two-cycle branch bubble
//! instead of StrongARM's one), loads into the PC squash three, and the
//! forwarding window spans three latches (E, M1, M2) so results stay
//! bypassable until writeback. Operation-class semantics are shared with
//! the other ARM cores — the only thing this file says is the pipeline's
//! *shape*, which is exactly the paper's modeling claim.

use arm_isa::program::Program;
use rcpn::compiled::CompiledModel;
use rcpn::engine::Engine;
use rcpn::spec::{Forward, PipelineSpec, SquashOrder};

use crate::armtok::{ArmClass, ArmTok};
use crate::registry::keys;
use crate::res::{ArmRes, SimConfig};
use crate::semantics::*;

/// Builds a SuperARM cycle-accurate engine for `program`.
///
/// Convenience over [`compile`] + [`ArmRes::machine`]; build the compiled
/// model once and instantiate it per program when running many programs.
///
/// # Panics
///
/// Panics if the internal model fails validation (a bug, not a user
/// error).
pub fn build(program: &Program, config: &SimConfig) -> Engine<ArmTok, ArmRes> {
    compile(config).instantiate(ArmRes::machine(program, config))
}

/// The SuperARM pipeline description: six single-capacity latches plus
/// writeback, forwarding from E/M1/M2, redirects resolved leaving D
/// (`exec`) and leaving E (`mem`), one path per [`ArmClass`].
pub fn spec() -> PipelineSpec<ArmTok, ArmRes> {
    let mut s = PipelineSpec::new("SuperARM");
    for stage in ["F1", "F2", "D", "E", "M1", "M2"] {
        s.pipe(stage, 1);
    }
    s.forwards(&["E", "M1", "M2"]);
    s.hazard_policy(SquashOrder::FrontFirst);
    s.operand_policy(ArmOperandPolicy);
    s.redirect("exec", "D"); // resolved leaving D: squash F1, F2
    s.redirect("mem", "E"); // resolved leaving E: squash F1, F2, D

    s.class(ArmClass::DataProc.name())
        .step("F2")
        .step("D")
        .read(Forward::All)
        .step("E")
        .flushes("exec")
        .act_ctx_named(keys::EXEC_DATAPROC, |m, t, fx, cx| exec_dataproc(m, t, fx, &cx.flush))
        .step("M1")
        .step("M2")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::Mul.name())
        .step("F2")
        .step("D")
        .read(Forward::All)
        .step("E")
        .act_named(keys::EXEC_MUL, exec_mul)
        .step("M1")
        .step("M2")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::LdSt.name())
        .step("F2")
        .step("D")
        .read(Forward::All)
        .step("E")
        .act_named(keys::EXEC_ADDR, exec_addr)
        .step("M1")
        .flushes("mem")
        .act_ctx_named(keys::EXEC_MEM, |m, t, fx, cx| exec_mem(m, t, fx, &cx.flush))
        .step("M2")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::LdStM.name())
        .step("F2")
        .step("D")
        .read_then_named(Forward::All, keys::EXEC_BLOCK_ADDR, exec_block_addr)
        .alt("end")
        .priority(0)
        .guard_named(keys::COND_FAIL, |m, t| !cond_passes(m, t))
        .annuls()
        .act_named(keys::LDM_SKIP, |m, t, _fx| {
            clear_serialize(m, t);
            m.res.instr_done += 1;
        })
        .step("E")
        .priority(1)
        .reads_forward()
        .guard_ctx_named(keys::LDM_UOP_READY, |m, t, cx| ldm_uop_ready(m, t, &cx.fwd))
        .act_ctx_named(keys::LDM_UOP_ISSUE, |m, t, fx, cx| {
            ldm_uop_issue(m, t, fx, &cx.fwd, cx.from)
        })
        .step("M1")
        .flushes("mem")
        .act_ctx_named(keys::EXEC_MEM, |m, t, fx, cx| exec_mem(m, t, fx, &cx.flush))
        .step("M2")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::Branch.name())
        .step("F2")
        .step("D")
        .read(Forward::None)
        .step("E")
        .flushes("exec")
        .act_ctx_named(keys::EXEC_BRANCH, |m, t, fx, cx| exec_branch(m, t, fx, &cx.flush))
        .step("M1")
        .step("M2")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::System.name())
        .step("F2")
        .step("D")
        .read(Forward::All)
        .step("E")
        .flushes("exec")
        .act_ctx_named(keys::EXEC_SYSTEM, |m, t, fx, cx| exec_system(m, t, fx, &cx.flush))
        .step("M1")
        .step("M2")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.source("fetch")
        .to("F1")
        .guard_named(keys::FETCH_READY, fetch_ready)
        .produce_named(keys::FETCH_PRODUCE, fetch_produce);
    s.on_squash_named(keys::CLEAR_SERIALIZE, clear_serialize);
    s
}

/// Compiles the SuperARM model into its generated-simulator artifact.
///
/// # Panics
///
/// Panics if the spec fails to lower or the model fails validation (a
/// bug, not a user error).
pub fn compile(config: &SimConfig) -> CompiledModel<ArmTok, ArmRes> {
    let mut s = spec();
    s.lowering(config.lowering);
    let model = s.lower().expect("SuperARM spec lowers");
    CompiledModel::compile_with(model, config.engine.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_isa::asm::assemble;

    #[test]
    fn superarm_model_shape() {
        let p = assemble("mov r0, #1\nswi #0\n").unwrap();
        let engine = build(&p, &SimConfig::superarm());
        let model = engine.model();
        assert_eq!(model.subnet_count(), 6);
        // Six pipeline places + end: a seven-stage pipe counting writeback.
        assert_eq!(model.place_count(), 7);
        let a = model.analysis();
        for name in ["E", "M1", "M2"] {
            assert!(a.is_two_list(model.find_place(name).unwrap()), "{name} must be two-list");
        }
        for name in ["F1", "F2", "D"] {
            assert!(!a.is_two_list(model.find_place(name).unwrap()), "{name} single-list");
        }
    }

    #[test]
    fn deeper_pipe_pays_a_larger_branch_penalty_than_strongarm() {
        // A branchy loop: same architectural work, more squashed fetches.
        let p = assemble(
            "    mov r0, #0
                 mov r1, #40
            lp:  add r0, r0, #2
                 subs r1, r1, #1
                 bne lp
                 swi #0",
        )
        .unwrap();
        let mut sup = build(&p, &SimConfig::superarm());
        let mut sa = crate::strongarm::build(&p, &SimConfig::strongarm());
        for e in [&mut sup, &mut sa] {
            while !e.halted() && e.cycle() < 100_000 {
                e.step();
                if e.machine().res.exit.is_some() && e.live_tokens() == 0 {
                    break;
                }
            }
            assert_eq!(e.machine().res.exit, Some(80));
        }
        assert!(
            sup.stats().cycles > sa.stats().cycles,
            "superpipeline must take more cycles on branchy code: {} vs {}",
            sup.stats().cycles,
            sa.stats().cycles
        );
        assert!(sup.machine().res.squashes >= sa.machine().res.squashes);
    }
}
