//! Shared stage semantics for the ARM pipeline models.
//!
//! Each RCPN transition's guard/action is assembled from these helpers, so
//! the StrongARM and XScale models differ only in *structure* (places,
//! stages, forwarding sources, flush sets) — exactly the paper's claim that
//! models mirror the pipeline block diagram while behavior comes from the
//! operation classes.
//!
//! The paper's hazard-interface pairing rule is kept throughout: guards use
//! only the Boolean interfaces (`can_read`, `can_read_in`, `can_write`),
//! actions use the corresponding effectful ones (`read`, `read_fwd`,
//! `reserve_write`, `set`, `writeback`).

use arm_isa::exec::{alu, block_bounds, extend};
use arm_isa::syscall::{dispatch, SysAction, SysEnv};
use arm_isa::types::{shift_imm, shift_reg, Reg};
use memsys::Memory;
use rcpn::ids::PlaceId;
use rcpn::model::{Fx, Machine};
use rcpn::reg::{Operand, RegisterFile};
use rcpn::spec::OperandPolicy;

use crate::armtok::{reg_id, ArmClass, ArmTok, MulSpec, OffSpec, Op2Spec, Width};
use crate::res::ArmRes;

/// The ARM operand policy for [`rcpn::spec::PipelineSpec`] read steps:
/// sources obtainable from the register file or a forwarding latch,
/// destinations reservable ([`ready`]); latch everything and reserve the
/// destinations on issue ([`acquire`]).
#[derive(Debug, Clone, Copy)]
pub struct ArmOperandPolicy;

impl OperandPolicy<ArmTok, ArmRes> for ArmOperandPolicy {
    fn ready(&self, m: &Machine<ArmRes>, t: &ArmTok, fwd: &[PlaceId]) -> bool {
        ready(m, t, fwd)
    }
    fn acquire(
        &self,
        m: &mut Machine<ArmRes>,
        t: &mut ArmTok,
        fx: &mut Fx<ArmTok>,
        fwd: &[PlaceId],
    ) {
        acquire(m, t, fx, fwd);
    }
    /// [`ready`]/[`acquire`] are exactly the standard scoreboard
    /// discipline over [`ArmTok`]'s operand views (`srcs` obtainable +
    /// `dst`/`dst2` reservable; latch from the best source, reserve on
    /// issue), so read steps compile to `CheckReady`/`AcquireOperands`
    /// micro-ops. The `spec_oracle` tests pin the IR and closure
    /// representations bit-identical.
    fn lowers_to_ir(&self) -> bool {
        true
    }
}

/// True if `op` can be supplied now: from the register file, or forwarded
/// from a writer residing in one of the `fwd` states (paper: `canRead() ||
/// canRead(s1) || canRead(s2) …` in the guard).
#[inline]
pub fn obtainable(op: &Operand, rf: &RegisterFile, fwd: &[PlaceId]) -> bool {
    op.can_read(rf) || fwd.iter().any(|&p| op.can_read_in(rf, p))
}

/// Latches `op`'s value from the best available source. Must be guarded by
/// [`obtainable`].
#[inline]
pub fn obtain(op: &mut Operand, rf: &RegisterFile, fwd: &[PlaceId]) {
    if op.can_read(rf) {
        op.read(rf);
        return;
    }
    for &p in fwd {
        if op.can_read_in(rf, p) {
            op.read_fwd(rf);
            return;
        }
    }
    debug_assert!(false, "obtain() without obtainable() guard");
}

/// Issue guard: all sources obtainable and all destinations reservable.
#[inline]
pub fn ready(m: &Machine<ArmRes>, t: &ArmTok, fwd: &[PlaceId]) -> bool {
    t.srcs.iter().all(|s| obtainable(s, &m.regs, fwd))
        && t.dst.can_write(&m.regs)
        && t.dst2.can_write(&m.regs)
}

/// Issue action: latch all sources, reserve all destinations.
#[inline]
pub fn acquire(m: &mut Machine<ArmRes>, t: &mut ArmTok, fx: &mut Fx<ArmTok>, fwd: &[PlaceId]) {
    for s in &mut t.srcs {
        obtain(s, &m.regs, fwd);
    }
    let tok = fx.token();
    // The engine re-points the writer state to the destination place right
    // after this action; the initial place is a placeholder.
    let here = PlaceId::from_index(0);
    t.dst.reserve_write(&mut m.regs, tok, here);
    t.dst2.reserve_write(&mut m.regs, tok, here);
}

/// Evaluates the token's condition against the current flags.
#[inline]
pub fn cond_passes(m: &Machine<ArmRes>, t: &ArmTok) -> bool {
    t.dec.cond.passes(m.res.cpsr)
}

/// Annuls a condition-failed instruction: releases its reservations and
/// lets the token flow through the remaining stages as a bubble.
pub fn annul(m: &mut Machine<ArmRes>, t: &mut ArmTok, fx: &mut Fx<ArmTok>) {
    t.annulled = true;
    let tok = fx.token();
    m.regs.release(tok);
    clear_serialize(m, t);
}

/// Releases the front-end serialization held by this token, exactly once.
/// Called on resolve (redirect/writeback), annul, and squash.
#[inline]
pub fn clear_serialize(m: &mut Machine<ArmRes>, t: &mut ArmTok) {
    if t.serialize_pending {
        t.serialize_pending = false;
        m.res.pending_serialize = m.res.pending_serialize.saturating_sub(1);
    }
}

/// Redirects the front end to `target` and squashes the given places.
pub fn redirect(m: &mut Machine<ArmRes>, fx: &mut Fx<ArmTok>, target: u32, flush: &[PlaceId]) {
    m.res.pc = target & !3;
    m.res.redirects += 1;
    for &p in flush {
        fx.flush(p);
    }
}

/// Execute stage of the DataProc class: shifter + ALU + flags, then either
/// publish the result or redirect the PC (`mov pc, lr` style writers).
pub fn exec_dataproc(
    m: &mut Machine<ArmRes>,
    t: &mut ArmTok,
    fx: &mut Fx<ArmTok>,
    flush: &[PlaceId],
) {
    if !cond_passes(m, t) {
        annul(m, t, fx);
        return;
    }
    let c_in = m.res.cpsr.c();
    let (b, shifter_c) = match t.dec.op2 {
        Op2Spec::Imm { value, carry } => (value, carry.unwrap_or(c_in)),
        Op2Spec::RegImm { ty, amount } => shift_imm(ty, t.srcs[1].value(), u32::from(amount), c_in),
        Op2Spec::RegReg { ty } => shift_reg(ty, t.srcs[1].value(), t.srcs[2].value(), c_in),
    };
    let a = t.srcs[0].value();
    let (result, arith) = alu(t.dec.dp_op, a, b, c_in);
    if t.dec.sets_flags {
        match arith {
            Some((c, v)) => m.res.cpsr.set_nzcv(result >> 31 != 0, result == 0, c, v),
            None => m.res.cpsr.set_nzc(result, shifter_c),
        }
    }
    t.value = result;
    if t.dec.writes_pc {
        redirect(m, fx, result, flush);
    } else if !t.dec.dp_op.is_test() {
        let tok = fx.token();
        t.dst.set(&mut m.regs, tok, result);
    }
}

/// Execute stage of the Branch class: resolve, train the predictor, squash
/// on a front-end mismatch.
pub fn exec_branch(
    m: &mut Machine<ArmRes>,
    t: &mut ArmTok,
    fx: &mut Fx<ArmTok>,
    flush: &[PlaceId],
) {
    let taken = cond_passes(m, t);
    let target = t.dec.branch_target;
    if taken && t.dec.link {
        let tok = fx.token();
        t.dst.set(&mut m.regs, tok, t.pc.wrapping_add(4));
    }
    if !taken {
        annul(m, t, fx);
    }
    if let Some(btb) = &mut m.res.btb {
        btb.update(t.pc, taken, target, t.pred_target);
    }
    let actual = if taken { Some(target) } else { None };
    if actual != t.pred_target {
        m.res.squashes += 1;
        let next = actual.unwrap_or_else(|| t.pc.wrapping_add(4));
        redirect(m, fx, next, flush);
    }
}

/// Address-generation stage of the LoadStore class.
pub fn exec_addr(m: &mut Machine<ArmRes>, t: &mut ArmTok, fx: &mut Fx<ArmTok>) {
    if !cond_passes(m, t) {
        annul(m, t, fx);
        return;
    }
    let spec = t.dec.mem.expect("LoadStore token has a mem spec");
    let base = t.srcs[0].value();
    let off: i32 = match t.dec.off {
        OffSpec::Imm(v) => v,
        OffSpec::Reg { ty, amount, neg } => {
            let (v, _) = shift_imm(ty, t.srcs[1].value(), u32::from(amount), m.res.cpsr.c());
            if neg {
                -(v as i32)
            } else {
                v as i32
            }
        }
    };
    let indexed = base.wrapping_add(off as u32);
    t.addr = if spec.pre { indexed } else { base };
    t.wb_base = indexed;
    if spec.wb {
        let tok = fx.token();
        t.dst2.set(&mut m.regs, tok, indexed);
    }
}

/// Address-generation for the block-transfer parent (micro-op 0). Computes
/// the first transfer address and publishes the written-back base.
pub fn exec_block_addr(m: &mut Machine<ArmRes>, t: &mut ArmTok, fx: &mut Fx<ArmTok>) {
    let spec = t.dec.mem.expect("block token has a mem spec");
    let base = t.srcs[0].value();
    let (start, new_base) = block_bounds(spec.pre, spec.up, base, u32::from(t.dec.n_uops));
    t.addr = start;
    t.wb_base = new_base;
    if spec.wb {
        let tok = fx.token();
        t.dst2.set(&mut m.regs, tok, new_base);
    }
}

/// The `k`-th register (by ascending number) in a block-transfer list.
pub fn nth_reg(list: u16, k: u8) -> Reg {
    let mut seen = 0;
    for i in 0..16u8 {
        if (list >> i) & 1 == 1 {
            if seen == k {
                return Reg::new(i);
            }
            seen += 1;
        }
    }
    panic!("micro-op index {k} out of range for list {list:#06x}")
}

/// Issue guard of the block-transfer micro-op transition: the `uop`-th
/// transferred register must be reservable (loads) or obtainable (stores,
/// from the register file or a forwarding latch). PC transfers are always
/// issueable — the PC is not scoreboarded.
pub fn ldm_uop_ready(m: &Machine<ArmRes>, t: &ArmTok, fwd: &[PlaceId]) -> bool {
    let spec = t.dec.mem.expect("block token");
    let r = nth_reg(t.dec.reg_list, t.uop);
    if spec.load {
        r.is_pc() || m.regs.writable(reg_id(r))
    } else if r.is_pc() {
        true
    } else {
        obtainable(&Operand::reg(reg_id(r)), &m.regs, fwd)
    }
}

/// Issue action of the block-transfer micro-op transition: binds the
/// `uop`-th register (reserve for loads, latch for stores), and — while
/// micro-ops remain — emits the continuation token back into `cont`, the
/// place the parent currently occupies ("a token may stay in one stage
/// and produce multiple tokens").
pub fn ldm_uop_issue(
    m: &mut Machine<ArmRes>,
    t: &mut ArmTok,
    fx: &mut Fx<ArmTok>,
    fwd: &[PlaceId],
    cont: PlaceId,
) {
    let spec = t.dec.mem.expect("block token");
    let r = nth_reg(t.dec.reg_list, t.uop);
    let tok = fx.token();
    if spec.load {
        if r.is_pc() {
            t.writes_pc = true;
        } else {
            t.dst = Operand::reg(reg_id(r));
            t.dst.reserve_write(&mut m.regs, tok, PlaceId::from_index(0));
        }
    } else {
        let mut op =
            if r.is_pc() { Operand::imm(t.pc.wrapping_add(8)) } else { Operand::reg(reg_id(r)) };
        obtain(&mut op, &m.regs, fwd);
        t.srcs[2] = op;
    }
    if t.uop + 1 < t.dec.n_uops {
        let mut next = t.clone();
        // The serialization travels with the last micro-op.
        t.serialize_pending = false;
        next.uop = t.uop + 1;
        next.addr = t.addr.wrapping_add(4);
        next.dst = Operand::Absent;
        next.dst2 = Operand::Absent;
        next.srcs = [Operand::Absent; 4];
        next.writes_pc = false;
        fx.emit(next, cont, 1);
    }
}

/// Fetch-source guard shared by the ARM front ends: fetch while the
/// program has not exited or faulted and no serializing instruction is
/// pending.
pub fn fetch_ready(m: &Machine<ArmRes>) -> bool {
    m.res.exit.is_none() && m.res.fault.is_none() && m.res.pending_serialize == 0
}

/// Fetch-source producer shared by the ARM front ends: read the word at
/// the PC through the I-cache, decode through the token cache, predict
/// branch targets through the BTB when one is configured, and advance the
/// PC. The token's fetch delay is the I-cache latency.
pub fn fetch_produce(m: &mut Machine<ArmRes>, fx: &mut Fx<ArmTok>) -> Option<ArmTok> {
    let pc = m.res.pc;
    let lat = m.res.icache.access(pc);
    let word = m.res.mem.read32(pc);
    let dec = m.res.dec_cache.lookup(pc, word);
    let mut tok = dec.instantiate(pc);
    let mut next = pc.wrapping_add(4);
    if dec.class == ArmClass::Branch {
        if let Some(btb) = &mut m.res.btb {
            if let Some(target) = btb.predict_target(pc) {
                next = target;
                tok.pred_target = Some(target);
            }
        }
    }
    m.res.pc = next;
    if dec.serialize {
        m.res.pending_serialize += 1;
        tok.serialize_pending = true;
    }
    fx.set_token_delay(lat);
    Some(tok)
}

/// Memory stage: performs the access against memory + D-cache, records the
/// loaded value in the token, and assigns the data-dependent token delay
/// (`t.delay = mem.delay(addr)`, paper Fig. 5). Returns `true` if this
/// access redirects the PC (load into PC), in which case the caller's flush
/// set applies.
pub fn exec_mem(m: &mut Machine<ArmRes>, t: &mut ArmTok, fx: &mut Fx<ArmTok>, flush: &[PlaceId]) {
    if t.annulled {
        return;
    }
    let spec = t.dec.mem.expect("memory token has a mem spec");
    let lat = m.res.dcache.access(t.addr);
    fx.set_token_delay(lat);
    if spec.load {
        let raw = match spec.width {
            Width::Word => m.res.mem.read32(t.addr),
            Width::Byte => u32::from(m.res.mem.read8(t.addr)),
            Width::Half(kind) => {
                let raw = match kind {
                    arm_isa::instr::HKind::S8 => u32::from(m.res.mem.read8(t.addr)),
                    _ => u32::from(m.res.mem.read16(t.addr)),
                };
                extend(kind, raw)
            }
        };
        t.value = raw;
        if t.writes_pc {
            redirect(m, fx, raw, flush);
            clear_serialize(m, t);
        }
    } else {
        let v = t.srcs[2].value();
        match spec.width {
            Width::Word => m.res.mem.write32(t.addr, v),
            Width::Byte => m.res.mem.write8(t.addr, v as u8),
            Width::Half(_) => m.res.mem.write16(t.addr, v as u16),
        }
    }
}

/// Execute stage of the Mul class: product, optional accumulate, flags, and
/// an operand-dependent iteration delay (early-termination multiplier).
pub fn exec_mul(m: &mut Machine<ArmRes>, t: &mut ArmTok, fx: &mut Fx<ArmTok>) {
    if !cond_passes(m, t) {
        annul(m, t, fx);
        return;
    }
    let spec: MulSpec = t.dec.mul.expect("mul token has a mul spec");
    let a = t.srcs[0].value();
    let b = t.srcs[1].value();
    let tok = fx.token();
    if spec.long {
        let mut product = if spec.signed {
            (i64::from(a as i32) * i64::from(b as i32)) as u64
        } else {
            u64::from(a) * u64::from(b)
        };
        if spec.acc {
            let acc = (u64::from(t.srcs[3].value()) << 32) | u64::from(t.srcs[2].value());
            product = product.wrapping_add(acc);
        }
        t.value = product as u32;
        t.value2 = (product >> 32) as u32;
        t.dst.set(&mut m.regs, tok, t.value);
        t.dst2.set(&mut m.regs, tok, t.value2);
        if t.dec.sets_flags {
            m.res.cpsr.set_nzcv(product >> 63 != 0, product == 0, m.res.cpsr.c(), m.res.cpsr.v());
        }
    } else {
        let mut result = a.wrapping_mul(b);
        if spec.acc {
            result = result.wrapping_add(t.srcs[2].value());
        }
        t.value = result;
        t.dst.set(&mut m.regs, tok, result);
        if t.dec.sets_flags {
            m.res.cpsr.set_nz(result);
        }
    }
    // Early-terminating multiplier: latency depends on the magnitude of the
    // multiplier operand (SA-110 1-3 cycles; +1 for long forms).
    let lat = if b < 0x100 {
        1
    } else if b < 0x1_0000 {
        2
    } else {
        3
    } + u32::from(spec.long);
    fx.set_token_delay(lat);
}

/// Execute stage of the System class: SWI dispatch or undefined-instruction
/// fault.
///
/// A program exit does **not** halt the engine abruptly: it records the
/// exit code, squashes the (younger) instructions in `flush`, and lets the
/// fetch guard starve the front end, so older in-flight instructions drain
/// and commit — the architectural state converges to the gold model's.
/// Faults halt immediately for diagnosis.
pub fn exec_system(
    m: &mut Machine<ArmRes>,
    t: &mut ArmTok,
    fx: &mut Fx<ArmTok>,
    flush: &[PlaceId],
) {
    if t.dec.undefined {
        m.res.fault = Some(format!("undefined instruction at pc {:#x}: {}", t.pc, t.dec.instr));
        fx.halt();
        return;
    }
    if !cond_passes(m, t) {
        annul(m, t, fx);
        return;
    }
    // Cycle-accurate clock: the engine cycle mirrored into the machine.
    let clock = m.cycle;
    let mut env = SysEnv {
        out: &mut m.res.output,
        input: &mut m.res.input,
        clock,
        brk: &mut m.res.brk,
        unknown_swis: &mut m.res.unknown_swis,
    };
    match dispatch(t.dec.swi_imm, t.srcs[0].value(), &mut env) {
        SysAction::Exit(code) => {
            m.res.exit = Some(code);
            for &p in flush {
                fx.flush(p);
            }
        }
        SysAction::SetR0(v) => {
            // Value-returning SWIs (GETC/CLOCK/BRK) carry a decode-time
            // destination (r0); publish at execute like a data-processing
            // result — the generic writeback commits it.
            t.value = v;
            let tok = fx.token();
            t.dst.set(&mut m.regs, tok, v);
        }
        SysAction::Continue => {}
    }
}

/// Final (writeback) stage shared by all classes: publish load results,
/// commit destinations, count the instruction, release serialization.
pub fn exec_writeback(m: &mut Machine<ArmRes>, t: &mut ArmTok, fx: &mut Fx<ArmTok>) {
    if t.uop == 0 {
        m.res.instr_done += 1;
    }
    if t.annulled {
        return;
    }
    let tok = fx.token();
    let is_load = t.dec.mem.is_some_and(|s| s.load);
    if is_load && !t.writes_pc {
        // Loads publish at writeback: the value is architecturally (and
        // timing-wise) available only once the memory residency elapsed.
        t.dst.set(&mut m.regs, tok, t.value);
    }
    // Base writeback first, destination last, so a load into the base
    // register keeps the loaded value (ARM "load wins" rule).
    t.dst2.writeback(&mut m.regs, tok);
    t.dst.writeback(&mut m.regs, tok);
    clear_serialize(m, t);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_reg_walks_set_bits() {
        let list = 0b1000_0000_0010_0110; // r1, r2, r5, r15
        assert_eq!(nth_reg(list, 0), Reg::new(1));
        assert_eq!(nth_reg(list, 1), Reg::new(2));
        assert_eq!(nth_reg(list, 2), Reg::new(5));
        assert_eq!(nth_reg(list, 3), Reg::new(15));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nth_reg_panics_past_the_end() {
        let _ = nth_reg(0b1, 1);
    }
}
