//! The ARM named-hook registry: stable string keys for every escape-hatch
//! closure the ARM pipeline specs attach, so compiled models serialize to
//! [`rcpn::artifact`] artifacts and reload without recompiling any Rust.
//!
//! The three ARM models ([`crate::strongarm`], [`crate::xscale`],
//! [`crate::superarm`]) share one semantics library ([`crate::semantics`]);
//! this module gives each semantic function one key (the [`keys`]
//! constants) and one factory that rebuilds the exact closure the spec
//! lowering wires, from the [`HookArgs`] captured at lowering time (the
//! step's resolved forwarding window, flush list and own places). The keys
//! are a **stability contract**: an `arm.*` key must always rebuild
//! behaviorally identical semantics, or reloaded artifacts silently
//! diverge from fresh compiles — the artifact round-trip tests pin this
//! bit-for-bit.

use rcpn::artifact::HookRegistry;
use rcpn::model::HookArgs;

use crate::armtok::ArmTok;
use crate::res::ArmRes;
use crate::semantics::*;

/// The stable hook keys the ARM specs reference. One constant per
/// escape-hatch closure; renaming one is a format-compatibility break for
/// existing artifacts (old keys may be kept as aliases instead).
pub mod keys {
    /// Transition guard: the token's condition field fails against CPSR.
    pub const COND_FAIL: &str = "arm.cond_fail";
    /// Transition guard: the next load/store-multiple micro-op is ready
    /// (uses the step's forwarding window).
    pub const LDM_UOP_READY: &str = "arm.ldm_uop_ready";
    /// Action: issue one load/store-multiple micro-op and re-enter the
    /// issue latch (uses the forwarding window and the step's `from`
    /// place).
    pub const LDM_UOP_ISSUE: &str = "arm.ldm_uop_issue";
    /// Action: retire a condition-failed block transfer as a bubble.
    pub const LDM_SKIP: &str = "arm.ldm_skip";
    /// Read-then hook: compute the block-transfer address range.
    pub const EXEC_BLOCK_ADDR: &str = "arm.exec_block_addr";
    /// Action: execute a data-processing op (flushes on PC writes).
    pub const EXEC_DATAPROC: &str = "arm.exec_dataproc";
    /// Action: resolve a branch (flushes on mispredict/taken).
    pub const EXEC_BRANCH: &str = "arm.exec_branch";
    /// Action: compute a load/store address.
    pub const EXEC_ADDR: &str = "arm.exec_addr";
    /// Action: perform the memory access (flushes on loads into the PC).
    pub const EXEC_MEM: &str = "arm.exec_mem";
    /// Action: execute a multiply/MAC op.
    pub const EXEC_MUL: &str = "arm.exec_mul";
    /// Action: execute a system op (swi/mrs/msr; flushes on PC writes).
    pub const EXEC_SYSTEM: &str = "arm.exec_system";
    /// Action: retire an instruction and publish its results.
    pub const EXEC_WRITEBACK: &str = "arm.exec_writeback";
    /// Source guard: the fetch unit may produce a token this cycle.
    pub const FETCH_READY: &str = "arm.fetch_ready";
    /// Source producer: fetch and decode the next instruction token.
    pub const FETCH_PRODUCE: &str = "arm.fetch_produce";
    /// Squash handler: drop a squashed token's pending serialize fence.
    pub const CLEAR_SERIALIZE: &str = "arm.clear_serialize";
}

fn from_place(args: &HookArgs) -> rcpn::ids::PlaceId {
    args.from.expect("this arm.* hook is step-scoped and needs a `from` place in its args")
}

/// Builds the hook registry every ARM artifact decodes against.
///
/// Factories close over the per-use [`HookArgs`] (forwarding window,
/// flush list, `from` place), so one key serves every model and every
/// step that references it.
pub fn arm_hooks() -> HookRegistry<ArmTok, ArmRes> {
    let mut r = HookRegistry::new();
    r.guard(keys::COND_FAIL, |_args| Box::new(|m, t| !cond_passes(m, t)));
    r.guard(keys::LDM_UOP_READY, |args| {
        let fwd = args.fwd.clone();
        Box::new(move |m, t| ldm_uop_ready(m, t, &fwd))
    });
    r.action(keys::LDM_UOP_ISSUE, |args| {
        let fwd = args.fwd.clone();
        let from = from_place(args);
        Box::new(move |m, t, fx| ldm_uop_issue(m, t, fx, &fwd, from))
    });
    r.action(keys::LDM_SKIP, |_args| {
        Box::new(|m, t, _fx| {
            clear_serialize(m, t);
            m.res.instr_done += 1;
        })
    });
    r.action(keys::EXEC_BLOCK_ADDR, |_args| Box::new(exec_block_addr));
    r.action(keys::EXEC_DATAPROC, |args| {
        let flush = args.flush.clone();
        Box::new(move |m, t, fx| exec_dataproc(m, t, fx, &flush))
    });
    r.action(keys::EXEC_BRANCH, |args| {
        let flush = args.flush.clone();
        Box::new(move |m, t, fx| exec_branch(m, t, fx, &flush))
    });
    r.action(keys::EXEC_ADDR, |_args| Box::new(exec_addr));
    r.action(keys::EXEC_MEM, |args| {
        let flush = args.flush.clone();
        Box::new(move |m, t, fx| exec_mem(m, t, fx, &flush))
    });
    r.action(keys::EXEC_MUL, |_args| Box::new(exec_mul));
    r.action(keys::EXEC_SYSTEM, |args| {
        let flush = args.flush.clone();
        Box::new(move |m, t, fx| exec_system(m, t, fx, &flush))
    });
    r.action(keys::EXEC_WRITEBACK, |_args| Box::new(exec_writeback));
    r.source_guard(keys::FETCH_READY, |_args| Box::new(fetch_ready));
    r.source_action(keys::FETCH_PRODUCE, |_args| Box::new(fetch_produce));
    r.squash(keys::CLEAR_SERIALIZE, |_args| Box::new(clear_serialize));
    r
}
