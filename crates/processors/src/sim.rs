//! A convenience wrapper around the generated cycle-accurate engines.

use arm_isa::program::Program;
use rcpn::engine::{Engine, RunOutcome};
use rcpn::ids::RegId;

use crate::armtok::ArmTok;
use crate::res::{ArmRes, SimConfig};

/// Which processor model a [`CaSim`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcModel {
    /// The five-stage StrongARM SA-110.
    StrongArm,
    /// The superpipelined Intel XScale.
    XScale,
}

/// Result of driving a simulation to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Cycles simulated.
    pub cycles: u64,
    /// Architectural instructions completed.
    pub instrs: u64,
    /// Exit code, if the program called `swi #0`.
    pub exit: Option<u32>,
    /// Fault message, if the simulation faulted.
    pub fault: Option<String>,
}

impl SimResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instrs == 0 {
            f64::NAN
        } else {
            self.cycles as f64 / self.instrs as f64
        }
    }
}

/// A generated ARM cycle-accurate simulator (the paper's deliverable).
pub struct CaSim {
    /// The underlying RCPN engine (public for stats and inspection).
    pub engine: Engine<ArmTok, ArmRes>,
    model: ProcModel,
}

impl CaSim {
    /// Builds a StrongARM simulator with default configuration.
    pub fn strongarm(program: &Program) -> Self {
        Self::with_config(ProcModel::StrongArm, program, &SimConfig::strongarm())
    }

    /// Builds an XScale simulator with default configuration.
    pub fn xscale(program: &Program) -> Self {
        Self::with_config(ProcModel::XScale, program, &SimConfig::xscale())
    }

    /// Builds a simulator for an explicit model/configuration pair.
    pub fn with_config(model: ProcModel, program: &Program, config: &SimConfig) -> Self {
        let engine = match model {
            ProcModel::StrongArm => crate::strongarm::build(program, config),
            ProcModel::XScale => crate::xscale::build(program, config),
        };
        CaSim { engine, model }
    }

    /// The processor model.
    pub fn model(&self) -> ProcModel {
        self.model
    }

    /// Runs until program exit (with the pipeline fully drained so the
    /// architectural state is final), fault, or the cycle budget is
    /// exhausted.
    pub fn run(&mut self, max_cycles: u64) -> SimResult {
        let limit = self.engine.cycle().saturating_add(max_cycles);
        while !self.engine.halted() && self.engine.cycle() < limit {
            self.engine.step();
            if self.engine.machine().res.exit.is_some() && self.engine.live_tokens() == 0 {
                break;
            }
        }
        self.result()
    }

    /// Steps one cycle.
    pub fn step(&mut self) {
        self.engine.step();
    }

    /// The current result snapshot.
    pub fn result(&self) -> SimResult {
        let res = &self.engine.machine().res;
        SimResult {
            cycles: self.engine.stats().cycles,
            instrs: res.instr_done,
            exit: res.exit,
            fault: res.fault.clone(),
        }
    }

    /// Whether the simulation has halted.
    pub fn halted(&self) -> bool {
        self.engine.halted()
    }

    /// Outcome helper mirroring [`Engine::run`]'s result.
    pub fn run_outcome(&mut self, max_cycles: u64) -> RunOutcome {
        self.engine.run(max_cycles)
    }

    /// Architectural value of register `n` (0–14).
    ///
    /// # Panics
    ///
    /// Panics if `n > 14` (the PC is not an architectural register here;
    /// read [`ArmRes::pc`] instead).
    pub fn reg(&self, n: usize) -> u32 {
        assert!(n < 15, "r{n} is not scoreboarded");
        self.engine.machine().regs.value_of(RegId::from_index(n))
    }

    /// The machine resources (memory, caches, predictor, PC, output, ...).
    pub fn res(&self) -> &ArmRes {
        &self.engine.machine().res
    }

    /// Bytes written via the semihosting interface.
    pub fn output(&self) -> &[u8] {
        &self.engine.machine().res.output
    }
}

impl std::fmt::Debug for CaSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaSim")
            .field("model", &self.model)
            .field("cycles", &self.engine.stats().cycles)
            .finish()
    }
}
