//! A convenience wrapper around the generated cycle-accurate engines.
//!
//! Follows the paper's model → compile → run pipeline: [`CompiledSim`] is
//! the compiled (generated) simulator for a processor/configuration pair,
//! and [`CaSim`] is one runnable instance of it bound to a program.

use std::path::Path;

use arm_isa::program::{MemLayout, Program};
use rcpn::artifact::{ArtifactCache, ArtifactError};
use rcpn::batch::BatchRunner;
use rcpn::compiled::CompiledModel;
use rcpn::engine::{Engine, RunOutcome};
use rcpn::ids::RegId;
use rcpn::spec::PipelineSpec;
use rcpn::stats::{SchedStats, Stats};

use crate::armtok::ArmTok;
use crate::registry::arm_hooks;
use crate::res::{ArmRes, SimConfig};

/// Which processor model a [`CaSim`] runs.
///
/// This enum is the processor *registry*: every harness in the workspace
/// — the sweep matrix, the fig10 figure/bench/gate rows, the batch
/// determinism suite, the cosim tests — enumerates [`ProcModel::ALL`] and
/// reads the per-variant facts from the methods below, so a new processor
/// added here flows into every harness (and the registry-guard tests fail
/// if one is bypassed with a hardcoded list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcModel {
    /// The five-stage StrongARM SA-110.
    StrongArm,
    /// The superpipelined Intel XScale.
    XScale,
    /// The seven-stage superpipelined in-order StrongARM variant
    /// (spec-defined; see [`crate::superarm`]).
    SuperArm,
}

impl ProcModel {
    /// Every processor model, in registry order. Harnesses iterate this —
    /// never a hand-maintained list.
    pub const ALL: [ProcModel; 3] = [ProcModel::StrongArm, ProcModel::XScale, ProcModel::SuperArm];

    /// The lowercase label used in sweep-variant rows and CLI output
    /// (e.g. `"strongarm"` in `"strongarm/tables:full-scan"`).
    pub fn label(self) -> &'static str {
        match self {
            ProcModel::StrongArm => "strongarm",
            ProcModel::XScale => "xscale",
            ProcModel::SuperArm => "superarm",
        }
    }

    /// The paper-figure legend name (e.g. `"RCPN-StrongArm"` in
    /// `BENCH_fig10.json` rows).
    pub fn figure_name(self) -> &'static str {
        match self {
            ProcModel::StrongArm => "RCPN-StrongArm",
            ProcModel::XScale => "RCPN-XScale",
            ProcModel::SuperArm => "RCPN-SuperArm",
        }
    }

    /// The model's default simulator configuration.
    pub fn default_config(self) -> SimConfig {
        match self {
            ProcModel::StrongArm => SimConfig::strongarm(),
            ProcModel::XScale => SimConfig::xscale(),
            ProcModel::SuperArm => SimConfig::superarm(),
        }
    }

    /// Compiles the model under `config` (the single model→compiler
    /// dispatch point; everything else goes through [`CompiledSim`]).
    pub fn compile(self, config: &SimConfig) -> CompiledModel<ArmTok, ArmRes> {
        match self {
            ProcModel::StrongArm => crate::strongarm::compile(config),
            ProcModel::XScale => crate::xscale::compile(config),
            ProcModel::SuperArm => crate::superarm::compile(config),
        }
    }

    /// The model's pipeline description (the input to [`ProcModel::compile`]
    /// and to [`ProcModel::spec_hash`]).
    pub fn spec(self) -> PipelineSpec<ArmTok, ArmRes> {
        match self {
            ProcModel::StrongArm => crate::strongarm::spec(),
            ProcModel::XScale => crate::xscale::spec(),
            ProcModel::SuperArm => crate::superarm::spec(),
        }
    }

    /// The content hash identifying this model's description under
    /// `config` — the spec-hash half of the artifact cache key (see
    /// [`rcpn::spec::PipelineSpec::content_hash`]; the lowering choice is
    /// part of the hash, the engine config is the key's other half).
    pub fn spec_hash(self, config: &SimConfig) -> u64 {
        let mut s = self.spec();
        s.lowering(config.lowering);
        s.content_hash()
    }
}

/// A compiled ARM cycle-accurate simulator: the processor model analyzed
/// and partially evaluated, ready to be bound to programs.
///
/// Compile once, [`CompiledSim::instantiate`] per program — instantiation
/// is cheap (the model and its hot tables are shared), which is what makes
/// batched multi-program simulation affordable.
///
/// ```
/// use arm_isa::asm::assemble;
/// use processors::sim::{CompiledSim, ProcModel};
/// use processors::res::SimConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let compiled = CompiledSim::new(ProcModel::StrongArm, &SimConfig::strongarm());
/// let p1 = assemble("mov r0, #6\nswi #0\n")?;
/// let p2 = assemble("mov r0, #7\nswi #0\n")?;
/// assert_eq!(compiled.instantiate(&p1).run(10_000).exit, Some(6));
/// assert_eq!(compiled.instantiate(&p2).run(10_000).exit, Some(7));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct CompiledSim {
    compiled: CompiledModel<ArmTok, ArmRes>,
    model: ProcModel,
    config: SimConfig,
}

impl CompiledSim {
    /// Compiles `model` under `config`.
    pub fn new(model: ProcModel, config: &SimConfig) -> Self {
        CompiledSim { compiled: model.compile(config), model, config: config.clone() }
    }

    /// Compiles `model` with its default configuration.
    pub fn of(model: ProcModel) -> Self {
        Self::new(model, &model.default_config())
    }

    /// Reloads the compiled simulator for `(model, config)` from `cache`,
    /// or compiles (and stores) it on a cache miss. Configurations whose
    /// models cannot be serialized — closure lowering — are compiled and
    /// returned without touching the cache (counted as a bypass).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when a freshly compiled artifact cannot be
    /// stored. Invalid or stale cache entries are not errors; they are
    /// recompiled over.
    pub fn load_or_compile(
        model: ProcModel,
        config: &SimConfig,
        cache: &ArtifactCache,
    ) -> Result<Self, ArtifactError> {
        let hash = model.spec_hash(config);
        let compiled =
            cache.load_or_compile(hash, &config.engine, &arm_hooks(), || model.compile(config))?;
        Ok(CompiledSim { compiled, model, config: config.clone() })
    }

    /// Serializes the compiled simulator to `path` as a versioned
    /// [`rcpn::artifact`] file, stamped with this model/config's spec
    /// hash.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::UnnamedClosure`] when the configuration lowers
    /// with closures (unserializable), [`ArtifactError::Io`] on write
    /// failure.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        self.compiled.save_artifact(path, self.model.spec_hash(&self.config))
    }

    /// Decodes a [`CompiledSim`] from an artifact file previously written
    /// by [`CompiledSim::save`] (or the cache), for `(model, config)`.
    /// Nothing is recompiled; the artifact's spec hash must match the
    /// model description this build would produce.
    ///
    /// # Errors
    ///
    /// Any decode-side [`ArtifactError`]: I/O, bad magic, version or
    /// spec-hash mismatch, checksum failure, corruption, unknown hooks.
    pub fn load(model: ProcModel, config: &SimConfig, path: &Path) -> Result<Self, ArtifactError> {
        let hash = model.spec_hash(config);
        let compiled = CompiledModel::load_artifact(path, Some(hash), &arm_hooks())?;
        Ok(CompiledSim { compiled, model, config: config.clone() })
    }

    /// Compiled StrongARM with default configuration.
    pub fn strongarm() -> Self {
        Self::of(ProcModel::StrongArm)
    }

    /// Compiled XScale with default configuration.
    pub fn xscale() -> Self {
        Self::of(ProcModel::XScale)
    }

    /// The processor model.
    pub fn model(&self) -> ProcModel {
        self.model
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The underlying compiled RCPN artifact.
    pub fn compiled_model(&self) -> &CompiledModel<ArmTok, ArmRes> {
        &self.compiled
    }

    /// Binds the compiled simulator to a program: fresh machine state
    /// (memory image, caches, scoreboard) over the shared tables.
    pub fn instantiate(&self, program: &Program) -> CaSim {
        self.instantiate_with(program, MemLayout::default())
    }

    /// [`CompiledSim::instantiate`] under an explicit memory layout
    /// (memory size and stack top derived by a loader instead of the
    /// [`arm_isa::program`] defaults).
    pub fn instantiate_with(&self, program: &Program, layout: MemLayout) -> CaSim {
        let machine = ArmRes::machine_with(program, &self.config, layout);
        CaSim { engine: self.compiled.instantiate(machine), model: self.model }
    }

    /// Binds the compiled simulator to a loaded ELF image: the image's
    /// program under the image's derived memory layout.
    pub fn instantiate_image(&self, image: &rcpn_loader::LoadedImage) -> CaSim {
        self.instantiate_with(&image.program, image.layout)
    }

    /// Runs one program batch through this compiled simulator, fanned
    /// across `runner`'s workers.
    ///
    /// Each worker instantiates its own engine from the shared compiled
    /// artifact (per-run state — memory image, caches, decode cache —
    /// never crosses threads), runs it to completion or `max_cycles`, and
    /// reports the [`SimResult`] plus the engine's [`Stats`]. Results come
    /// back in program order regardless of worker count, and since each
    /// simulation is deterministic, the whole batch is bit-identical to a
    /// serial run (`BatchRunner::new(1)`).
    pub fn run_batch(
        &self,
        programs: &[Program],
        max_cycles: u64,
        runner: &BatchRunner,
    ) -> Vec<BatchOutcome> {
        runner.run(programs, |_idx, program| {
            let mut sim = self.instantiate(program);
            let result = sim.run(max_cycles);
            BatchOutcome {
                result,
                stats: sim.engine.stats().clone(),
                sched: sim.engine.sched().clone(),
            }
        })
    }
}

/// One per-program result of [`CompiledSim::run_batch`]: the architectural
/// outcome plus the engine's microarchitectural statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Architectural outcome (cycles, instructions, exit code, fault).
    pub result: SimResult,
    /// Engine statistics of the run (fires, stalls, occupancy, ...).
    pub stats: Stats,
    /// Host-side scheduler counters (visited vs skipped work; depends on
    /// the configured [`rcpn::engine::SchedulerMode`], but deterministic
    /// for a fixed configuration, so it participates in the batch
    /// determinism contract).
    pub sched: SchedStats,
}

impl std::fmt::Debug for CompiledSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledSim").field("model", &self.model).finish()
    }
}

/// Result of driving a simulation to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Cycles simulated.
    pub cycles: u64,
    /// Architectural instructions completed.
    pub instrs: u64,
    /// Exit code, if the program called `swi #0`.
    pub exit: Option<u32>,
    /// Fault message, if the simulation faulted.
    pub fault: Option<String>,
}

impl SimResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instrs == 0 {
            f64::NAN
        } else {
            self.cycles as f64 / self.instrs as f64
        }
    }
}

/// A generated ARM cycle-accurate simulator (the paper's deliverable).
pub struct CaSim {
    /// The underlying RCPN engine (public for stats and inspection).
    pub engine: Engine<ArmTok, ArmRes>,
    model: ProcModel,
}

impl CaSim {
    /// Builds a StrongARM simulator with default configuration.
    pub fn strongarm(program: &Program) -> Self {
        Self::with_config(ProcModel::StrongArm, program, &SimConfig::strongarm())
    }

    /// Builds an XScale simulator with default configuration.
    pub fn xscale(program: &Program) -> Self {
        Self::with_config(ProcModel::XScale, program, &SimConfig::xscale())
    }

    /// Builds a SuperARM simulator with default configuration.
    pub fn superarm(program: &Program) -> Self {
        Self::with_config(ProcModel::SuperArm, program, &SimConfig::superarm())
    }

    /// Builds a simulator for an explicit model/configuration pair
    /// (compiles the model and instantiates it in one step; use
    /// [`CompiledSim`] to amortize compilation over many programs).
    pub fn with_config(model: ProcModel, program: &Program, config: &SimConfig) -> Self {
        CompiledSim::new(model, config).instantiate(program)
    }

    /// The processor model.
    pub fn model(&self) -> ProcModel {
        self.model
    }

    /// Runs until program exit (with the pipeline fully drained so the
    /// architectural state is final), fault, or the cycle budget is
    /// exhausted.
    pub fn run(&mut self, max_cycles: u64) -> SimResult {
        let limit = self.engine.cycle().saturating_add(max_cycles);
        while !self.engine.halted() && self.engine.cycle() < limit {
            self.engine.step();
            if self.engine.machine().res.exit.is_some() && self.engine.live_tokens() == 0 {
                break;
            }
        }
        self.result()
    }

    /// Steps one cycle.
    pub fn step(&mut self) {
        self.engine.step();
    }

    /// The current result snapshot.
    pub fn result(&self) -> SimResult {
        let res = &self.engine.machine().res;
        SimResult {
            cycles: self.engine.stats().cycles,
            instrs: res.instr_done,
            exit: res.exit,
            fault: res.fault.clone(),
        }
    }

    /// Whether the simulation has halted.
    pub fn halted(&self) -> bool {
        self.engine.halted()
    }

    /// Host-side scheduler counters of the underlying engine (evaluated
    /// vs skipped places/tokens/transitions — the activity scheduler's
    /// observability block).
    pub fn sched(&self) -> &SchedStats {
        self.engine.sched()
    }

    /// Outcome helper mirroring [`Engine::run`]'s result.
    pub fn run_outcome(&mut self, max_cycles: u64) -> RunOutcome {
        self.engine.run(max_cycles)
    }

    /// Architectural value of register `n` (0–14).
    ///
    /// # Panics
    ///
    /// Panics if `n > 14` (the PC is not an architectural register here;
    /// read [`ArmRes::pc`] instead).
    pub fn reg(&self, n: usize) -> u32 {
        assert!(n < 15, "r{n} is not scoreboarded");
        self.engine.machine().regs.value_of(RegId::from_index(n))
    }

    /// The machine resources (memory, caches, predictor, PC, output, ...).
    pub fn res(&self) -> &ArmRes {
        &self.engine.machine().res
    }

    /// Bytes written via the semihosting interface.
    pub fn output(&self) -> &[u8] {
        &self.engine.machine().res.output
    }

    /// Provides the byte stream consumed by `swi #4`
    /// ([`arm_isa::syscall::SWI_GETC`]).
    pub fn set_input(&mut self, bytes: Vec<u8>) {
        self.engine.machine_mut().res.input = arm_isa::syscall::SysInput::new(bytes);
    }

    /// System calls executed with no implementation behind them (an
    /// unimplemented call is diagnosable instead of wrong-but-quiet).
    pub fn unknown_swis(&self) -> u64 {
        self.engine.machine().res.unknown_swis
    }
}

impl std::fmt::Debug for CaSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaSim")
            .field("model", &self.model)
            .field("cycles", &self.engine.stats().cycles)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_isa::asm::assemble;

    /// The compiled artifact is the thing batch workers share by
    /// reference; this is the compile-time proof that sharing is legal.
    #[test]
    fn compiled_sim_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledSim>();
    }

    /// The activity-driven scheduler must (a) skip real work on a real
    /// kernel — otherwise the tentpole is dead code — and (b) be
    /// bit-identical to the exhaustive oracle in everything simulated.
    #[test]
    fn activity_scheduler_skips_work_and_matches_exhaustive_oracle() {
        use rcpn::engine::SchedulerMode;
        let program = assemble(
            "mov r0, #0\nmov r1, #200\nloop:\nadd r0, r0, #3\nsubs r1, r1, #1\nbne loop\nswi #0\n",
        )
        .unwrap();
        let mut outcomes = Vec::new();
        for scheduler in [SchedulerMode::ActivityDriven, SchedulerMode::Exhaustive] {
            let config = SimConfig {
                engine: rcpn::engine::EngineConfig { scheduler, ..Default::default() },
                ..SimConfig::strongarm()
            };
            let mut sim = CompiledSim::new(ProcModel::StrongArm, &config).instantiate(&program);
            let result = sim.run(100_000);
            assert_eq!(result.exit, Some(600), "{scheduler:?}");
            outcomes.push((result, sim.engine.stats().clone(), sim.sched().clone()));
        }
        let (act, exh) = (&outcomes[0], &outcomes[1]);
        assert_eq!(act.0, exh.0, "SimResult must not depend on the scheduler");
        assert_eq!(act.1, exh.1, "Stats must not depend on the scheduler");
        assert!(act.2.place_skips > 0, "no sparsity on a real kernel: {:?}", act.2);
        assert!(act.2.trans_visits_skipped > 0);
        assert_eq!(exh.2.place_skips, 0, "the oracle never skips");
        assert!(
            act.2.place_visits + act.2.place_skips <= exh.2.place_visits,
            "activity scheduling must not visit more than the oracle sweeps"
        );
        assert_eq!(act.1.retired, exh.1.retired);
    }

    #[test]
    fn run_batch_matches_serial_in_order() {
        let compiled = CompiledSim::strongarm();
        let programs: Vec<Program> =
            (0u32..6).map(|i| assemble(&format!("mov r0, #{i}\nswi #0\n")).unwrap()).collect();
        let serial = compiled.run_batch(&programs, 10_000, &BatchRunner::new(1));
        for (i, out) in serial.iter().enumerate() {
            assert_eq!(out.result.exit, Some(i as u32), "results stay in program order");
            assert_eq!(out.stats.cycles, out.result.cycles);
        }
        let parallel = compiled.run_batch(&programs, 10_000, &BatchRunner::new(4));
        assert_eq!(parallel, serial, "parallel batch must be bit-identical to serial");
    }
}
