//! Machine resources for the ARM cycle-accurate models.
//!
//! [`ArmRes`] is the `R` parameter of the RCPN [`rcpn::model::Machine`]:
//! the non-pipeline units transitions may reference directly (paper,
//! Section 3) — memory, caches, branch predictor — plus the architectural
//! front-end state (PC, CPSR) and simulation bookkeeping.

use arm_isa::program::{MemLayout, Program};
use arm_isa::syscall::SysInput;
use arm_isa::types::Psr;
use memsys::bpred::Btb;
use memsys::cache::{Cache, CacheConfig};
use memsys::FlatMem;

use crate::armtok::DecodeCache;

/// Configuration of an ARM cycle-accurate simulator.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Instruction-cache geometry.
    pub icache: CacheConfig,
    /// Data-cache geometry.
    pub dcache: CacheConfig,
    /// Use a BTB front end (XScale) instead of predict-not-taken
    /// (StrongARM).
    pub btb: bool,
    /// Enable the decode/token cache (ablation toggle; on by default).
    pub decode_cache: bool,
    /// How spec-synthesized read steps are represented:
    /// [`rcpn::spec::Lowering::Auto`] (micro-op IR, the default) or
    /// [`rcpn::spec::Lowering::Closures`] (the pre-IR dispatch, kept as
    /// the differential oracle and the dispatch-ablation row).
    pub lowering: rcpn::spec::Lowering,
    /// Engine configuration (table mode, two-list policy — ablations).
    pub engine: rcpn::engine::EngineConfig,
}

impl SimConfig {
    /// StrongARM SA-110 defaults: 16 KB caches, no dynamic prediction.
    pub fn strongarm() -> Self {
        SimConfig {
            icache: CacheConfig::strongarm_16k(),
            dcache: CacheConfig::strongarm_16k(),
            btb: false,
            decode_cache: true,
            lowering: rcpn::spec::Lowering::Auto,
            engine: rcpn::engine::EngineConfig::default(),
        }
    }

    /// XScale defaults: 32 KB caches, 128-entry BTB.
    pub fn xscale() -> Self {
        SimConfig {
            icache: CacheConfig::xscale_32k(),
            dcache: CacheConfig::xscale_32k(),
            btb: true,
            decode_cache: true,
            lowering: rcpn::spec::Lowering::Auto,
            engine: rcpn::engine::EngineConfig::default(),
        }
    }

    /// SuperARM defaults: the SA-110 memory system (16 KB caches,
    /// predict-not-taken) under the seven-stage superpipeline — the knob
    /// that differs is pipeline depth, not the cache hierarchy.
    pub fn superarm() -> Self {
        SimConfig::strongarm()
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::strongarm()
    }
}

/// The non-pipeline units and architectural front-end state.
#[derive(Debug)]
pub struct ArmRes {
    /// Main memory.
    pub mem: FlatMem,
    /// Instruction cache (timing).
    pub icache: Cache,
    /// Data cache (timing).
    pub dcache: Cache,
    /// Branch target buffer (XScale-style front ends).
    pub btb: Option<Btb>,
    /// Fetch program counter.
    pub pc: u32,
    /// Status flags (updated in program order at execute).
    pub cpsr: Psr,
    /// The decode/token cache.
    pub dec_cache: DecodeCache,
    /// Output stream of the semihosting interface.
    pub output: Vec<u8>,
    /// Input stream of the semihosting interface (`swi #4`).
    pub input: SysInput,
    /// Program break reported/moved by `swi #6` (starts at the image end).
    pub brk: u32,
    /// System calls executed with no implementation behind them.
    pub unknown_swis: u64,
    /// Initial stack pointer (from the memory layout the resources were
    /// built under).
    pub stack_top: u32,
    /// Exit code once the program has terminated.
    pub exit: Option<u32>,
    /// Fault description (undefined instruction, ...).
    pub fault: Option<String>,
    /// Fetch is stalled until this many serializing instructions resolve
    /// (loads into PC, flag-setting multiplies).
    pub pending_serialize: u32,
    /// Taken redirects performed (branches, PC writes).
    pub redirects: u64,
    /// Front-end mispredictions that caused a squash.
    pub squashes: u64,
    /// Architectural instructions completed (micro-ops count once, through
    /// their parent).
    pub instr_done: u64,
}

impl ArmRes {
    /// Builds the resources for `program` under `config`, with the image
    /// loaded, PC at the entry point and the stack pointer convention of
    /// [`arm_isa::program`].
    pub fn new(program: &Program, config: &SimConfig) -> Self {
        ArmRes::with_layout(program, config, MemLayout::default())
    }

    /// Builds the resources under an explicit memory layout (loaders
    /// derive one from the image; [`ArmRes::new`] uses the default).
    pub fn with_layout(program: &Program, config: &SimConfig, layout: MemLayout) -> Self {
        let mem = program.to_memory_sized(layout.mem_bytes);
        let text_limit = program.base + program.size_bytes() + 4096;
        ArmRes {
            mem,
            icache: Cache::new(config.icache),
            dcache: Cache::new(config.dcache),
            btb: if config.btb { Some(Btb::xscale()) } else { None },
            pc: program.entry,
            cpsr: Psr::new(),
            dec_cache: if config.decode_cache {
                DecodeCache::new(text_limit)
            } else {
                DecodeCache::disabled()
            },
            output: Vec::new(),
            input: SysInput::default(),
            brk: program.image_end(),
            unknown_swis: 0,
            stack_top: layout.stack_top,
            exit: None,
            fault: None,
            pending_serialize: 0,
            redirects: 0,
            squashes: 0,
            instr_done: 0,
        }
    }

    /// The initial stack-pointer value simulators must poke into `r13`.
    pub fn initial_sp(&self) -> u32 {
        self.stack_top
    }

    /// Builds a complete initial [`rcpn::model::Machine`] for `program`:
    /// the 15-register scoreboarded bank, loaded memory image, and the
    /// stack pointer poked into `r13`. This is the per-program state a
    /// compiled processor model is instantiated over.
    pub fn machine(program: &Program, config: &SimConfig) -> rcpn::model::Machine<ArmRes> {
        ArmRes::machine_with(program, config, MemLayout::default())
    }

    /// [`ArmRes::machine`] under an explicit memory layout.
    pub fn machine_with(
        program: &Program,
        config: &SimConfig,
        layout: MemLayout,
    ) -> rcpn::model::Machine<ArmRes> {
        use rcpn::ids::RegId;
        use rcpn::reg::RegisterFile;
        let mut rf = RegisterFile::new();
        rf.add_bank("r", 15);
        let res = ArmRes::with_layout(program, config, layout);
        let sp = res.initial_sp();
        let mut machine = rcpn::model::Machine::new(rf, res);
        machine.regs.poke(RegId::from_index(13), sp);
        machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_isa::asm::assemble;

    #[test]
    fn presets_differ_as_documented() {
        let sa = SimConfig::strongarm();
        let xs = SimConfig::xscale();
        assert!(!sa.btb && xs.btb);
        assert!(xs.icache.capacity() > sa.icache.capacity());
    }

    #[test]
    fn res_loads_program() {
        use memsys::Memory;
        let p = assemble("mov r0, #1\nswi #0\n").unwrap();
        let cfg = SimConfig::strongarm();
        let mut res = ArmRes::new(&p, &cfg);
        assert_eq!(res.pc, 0);
        assert_eq!(res.mem.read32(0), p.words[0]);
        assert!(res.btb.is_none());
        assert_eq!(res.initial_sp() % 8, 0);
    }
}
