//! Differential oracle for the spec-generated processor models.
//!
//! `strongarm::compile` and `xscale::compile` now *lower* a
//! [`rcpn::spec::PipelineSpec`]; the original closure-wired builders are
//! kept (test-only) as `strongarm::legacy` / `xscale::legacy`. This module
//! pins the lowering's bit-identity contract: for every candidate-table
//! mode (plus the two-list-everywhere fixpoint scheme and the exhaustive
//! scheduler oracle), a spec-generated model must simulate **exactly** like
//! its hand-wired twin — full trace (transition/place/token ids, in
//! order), the complete [`Stats`] block, the [`SchedStats`] counters, and
//! the final architectural state. Anything the lowering registers in a
//! different order or wires differently shows up here as a first-divergence
//! assertion.
//!
//! Since the micro-op IR refactor the same harness also pins the
//! **dispatch** axis: the default models lower their synthesized read
//! steps to IR ([`rcpn::spec::Lowering::Auto`]) and are compared against
//! their [`rcpn::spec::Lowering::Closures`] twins — the pre-IR
//! representation kept as the compile-time fallback oracle. [`SchedStats`]
//! is compared through [`SchedStats::dispatch_normalized`]: the
//! `guard_ir_evals` / `guard_hook_evals` / `actions_fused` counters are
//! *supposed* to differ between representations (that is their purpose);
//! everything else, including their sum, must not.

use arm_isa::asm::assemble;
use arm_isa::program::Program;
use rcpn::compiled::CompiledModel;
use rcpn::engine::{EngineConfig, SchedulerMode, TableMode, TraceEvent};
use rcpn::ids::RegId;
use rcpn::stats::{SchedStats, Stats};
use workloads::{Kernel, Workload};

use crate::armtok::ArmTok;
use crate::res::{ArmRes, SimConfig};
use crate::{strongarm, xscale};

/// Everything a run produces: the trace, both stats blocks, and the
/// architectural outcome.
#[derive(Debug, PartialEq)]
struct Outcome {
    trace: Vec<TraceEvent>,
    stats: Stats,
    sched: SchedStats,
    regs: Vec<u32>,
    exit: Option<u32>,
    instrs: u64,
}

/// Runs one compiled model over `program` with the `CaSim::run` drain
/// semantics and collects the full outcome.
fn run(compiled: &CompiledModel<ArmTok, ArmRes>, program: &Program, config: &SimConfig) -> Outcome {
    let mut e = compiled.instantiate(ArmRes::machine(program, config));
    let limit = 50_000_000u64;
    while !e.halted() && e.cycle() < limit {
        e.step();
        if e.machine().res.exit.is_some() && e.live_tokens() == 0 {
            break;
        }
    }
    let regs = (0..15).map(|i| e.machine().regs.value_of(RegId::from_index(i))).collect();
    let (exit, instrs) = (e.machine().res.exit, e.machine().res.instr_done);
    Outcome {
        trace: e.take_trace(),
        stats: e.stats().clone(),
        sched: e.sched().clone(),
        regs,
        exit,
        instrs,
    }
}

/// The engine configurations the identity is pinned under: every
/// candidate-table mode, the two-list-everywhere fixpoint scheme, and the
/// exhaustive scheduler oracle — all with tracing on.
fn configs() -> Vec<(&'static str, EngineConfig)> {
    let mut cfgs: Vec<(&'static str, EngineConfig)> = vec![
        ("tables:per-place-class", EngineConfig::default()),
        (
            "tables:per-place",
            EngineConfig { table_mode: TableMode::PerPlace, ..Default::default() },
        ),
        (
            "tables:full-scan",
            EngineConfig { table_mode: TableMode::FullScan, ..Default::default() },
        ),
        ("two-list-everywhere", EngineConfig { two_list_everywhere: true, ..Default::default() }),
        (
            "sched:exhaustive",
            EngineConfig { scheduler: SchedulerMode::Exhaustive, ..Default::default() },
        ),
        ("dispatch:per-op", EngineConfig { superblocks: false, ..Default::default() }),
        ("dispatch:chains-off", EngineConfig { chains: false, ..Default::default() }),
    ];
    for (_, c) in &mut cfgs {
        c.trace = true;
    }
    cfgs
}

/// Programs chosen to fire every sub-net and hazard path: a real kernel
/// (loops, loads, flags), block transfers with calls (LdStM micro-ops,
/// condition-failed skips), and a PC-write + multiply + serialization mix.
fn programs() -> Vec<Program> {
    let mut ps = vec![Workload::build(Kernel::Crc, 48).program];
    ps.push(
        assemble(
            "    mov r0, #7
                 bl f
                 ldmeqia r4, {r1, r2}   ; condition-failed block transfer
                 swi #0
            f:   push {r4, lr}
                 ldr r4, =tbl
                 ldmia r4, {r1, r2, r3}
                 mla r0, r1, r2, r3
                 umull r5, r6, r0, r3
                 add r0, r0, r5
                 pop {r4, pc}           ; load into PC (serializing)
            tbl: .word 3, 5, 11",
        )
        .expect("assembles"),
    );
    ps.push(
        assemble(
            "    mov r0, #3
                 bl double              ; ALU PC write (mov pc, lr) at execute
                 bl double
                 ldr r1, =buf
                 str r0, [r1]
                 ldrb r2, [r1]
                 cmp r2, r0
                 addeq r0, r0, #1
                 swi #0
            double:
                 add r0, r0, r0
                 mov pc, lr
            buf: .space 8",
        )
        .expect("assembles"),
    );
    ps
}

fn assert_identical(
    name: &str,
    spec: impl Fn(&SimConfig) -> CompiledModel<ArmTok, ArmRes>,
    legacy: impl Fn(&SimConfig) -> CompiledModel<ArmTok, ArmRes>,
    base: SimConfig,
) {
    for (mode, engine) in configs() {
        let config = SimConfig { engine, ..base.clone() };
        let s = spec(&config);
        let l = legacy(&config);
        for (pi, program) in programs().iter().enumerate() {
            let a = run(&s, program, &config);
            let b = run(&l, program, &config);
            assert!(a.exit.is_some(), "{name}/{mode}/p{pi}: program must exit");
            if let Some(k) = a.trace.iter().zip(&b.trace).position(|(x, y)| x != y) {
                panic!(
                    "{name}/{mode}/p{pi}: trace diverges at event {k}: spec {:?} vs legacy {:?}",
                    a.trace[k], b.trace[k]
                );
            }
            assert_eq!(a.trace.len(), b.trace.len(), "{name}/{mode}/p{pi}: trace length");
            assert_eq!(a.stats, b.stats, "{name}/{mode}/p{pi}: Stats");
            assert_eq!(
                a.sched.dispatch_normalized(),
                b.sched.dispatch_normalized(),
                "{name}/{mode}/p{pi}: SchedStats (dispatch-normalized)"
            );
            assert_eq!(
                (a.regs, a.exit, a.instrs),
                (b.regs, b.exit, b.instrs),
                "{name}/{mode}/p{pi}: architectural state"
            );
        }
    }
}

#[test]
fn strongarm_spec_is_bit_identical_to_handwritten_oracle() {
    assert_identical(
        "strongarm",
        strongarm::compile,
        strongarm::legacy::compile,
        SimConfig::strongarm(),
    );
}

#[test]
fn xscale_spec_is_bit_identical_to_handwritten_oracle() {
    assert_identical("xscale", xscale::compile, xscale::legacy::compile, SimConfig::xscale());
}

/// Forces the closure representation of spec-synthesized read steps (the
/// compile-time fallback oracle for the IR dispatch path).
fn closure_lowered(
    compile: fn(&SimConfig) -> CompiledModel<ArmTok, ArmRes>,
) -> impl Fn(&SimConfig) -> CompiledModel<ArmTok, ArmRes> {
    move |config| {
        let config = SimConfig { lowering: rcpn::spec::Lowering::Closures, ..config.clone() };
        compile(&config)
    }
}

#[test]
fn strongarm_ir_dispatch_is_bit_identical_to_closure_dispatch() {
    assert_identical(
        "strongarm-ir",
        strongarm::compile,
        closure_lowered(strongarm::compile),
        SimConfig::strongarm(),
    );
}

#[test]
fn xscale_ir_dispatch_is_bit_identical_to_closure_dispatch() {
    assert_identical(
        "xscale-ir",
        xscale::compile,
        closure_lowered(xscale::compile),
        SimConfig::xscale(),
    );
}

#[test]
fn superarm_ir_dispatch_is_bit_identical_to_closure_dispatch() {
    assert_identical(
        "superarm-ir",
        crate::superarm::compile,
        closure_lowered(crate::superarm::compile),
        SimConfig::superarm(),
    );
}

/// Forces per-op dispatch ([`EngineConfig::superblocks`] off) — the
/// differential oracle for the superblock fast path.
fn per_op(
    compile: impl Fn(&SimConfig) -> CompiledModel<ArmTok, ArmRes>,
) -> impl Fn(&SimConfig) -> CompiledModel<ArmTok, ArmRes> {
    move |config| {
        let mut config = config.clone();
        config.engine.superblocks = false;
        compile(&config)
    }
}

/// Superblock dispatch is bit-identical to per-op dispatch for every ARM
/// model under every engine configuration of [`configs`] (both
/// schedulers, every table mode, the fixpoint scheme): same trace, same
/// [`Stats`], same dispatch-normalized [`SchedStats`], same architectural
/// state.
#[test]
fn superblock_dispatch_is_bit_identical_to_per_op_dispatch() {
    for proc in crate::sim::ProcModel::ALL {
        assert_identical(
            proc.label(),
            move |config| proc.compile(config),
            per_op(move |config| proc.compile(config)),
            proc.default_config(),
        );
    }
}

/// Forces superblock-only dispatch ([`EngineConfig::chains`] off) — the
/// differential oracle for the cross-place chain fast path.
fn chains_off(
    compile: impl Fn(&SimConfig) -> CompiledModel<ArmTok, ArmRes>,
) -> impl Fn(&SimConfig) -> CompiledModel<ArmTok, ArmRes> {
    move |config| {
        let mut config = config.clone();
        config.engine.chains = false;
        compile(&config)
    }
}

/// Chain dispatch is bit-identical to the superblock oracle for every ARM
/// model under every engine configuration of [`configs`] (both schedulers,
/// every table mode, the fixpoint scheme): same trace, same [`Stats`],
/// same dispatch-normalized [`SchedStats`], same architectural state. The
/// parked-cursor path may only *elide* bookkeeping, never change what
/// fires.
#[test]
fn chain_dispatch_is_bit_identical_to_superblock_oracle() {
    for proc in crate::sim::ProcModel::ALL {
        assert_identical(
            proc.label(),
            move |config| proc.compile(config),
            chains_off(move |config| proc.compile(config)),
            proc.default_config(),
        );
    }
}

/// The dispatch refactor must actually engage: every default ARM model
/// compiles its read steps to IR (with the CheckReady+AcquireOperands
/// pairs fused), runs them through the IR interpreter — `guard_ir_evals`
/// and `actions_fused` prove it — while its `Lowering::Closures` twin
/// shows zero IR activity, and both still route custom guards through the
/// hook path.
#[test]
fn ir_path_is_exercised_and_closure_twin_is_not() {
    let program = &programs()[0];
    for proc in crate::sim::ProcModel::ALL {
        let config = proc.default_config();
        let ir = proc.compile(&config);
        assert!(ir.ir_transitions() > 0, "{proc:?}: no IR transitions compiled");
        assert!(ir.fused_transitions() > 0, "{proc:?}: no fused read steps");
        assert!(ir.superblocks() > 0, "{proc:?}: no superblocks formed");
        let a = run(&ir, program, &config);
        assert!(a.exit.is_some());
        assert!(a.sched.guard_ir_evals > 0, "{proc:?}: IR guards never evaluated");
        assert!(a.sched.actions_fused > 0, "{proc:?}: fused acquires never fired");
        assert!(a.sched.superblocks_entered > 0, "{proc:?}: superblocks never dispatched");
        assert!(a.sched.ops_inlined > 0, "{proc:?}: no ops interpreted inside superblocks");
        assert!(ir.chains() > 0, "{proc:?}: no chain entry points formed");
        assert!(a.sched.chains_entered > 0, "{proc:?}: chain cursors never parked");
        assert!(a.sched.chain_links_fired > 0, "{proc:?}: chain cursors never dispatched");

        let closure_config =
            SimConfig { lowering: rcpn::spec::Lowering::Closures, ..config.clone() };
        let cl = proc.compile(&closure_config);
        assert_eq!(cl.ir_transitions(), 0, "{proc:?}: closure twin compiled IR");
        let b = run(&cl, program, &closure_config);
        assert_eq!(b.sched.guard_ir_evals, 0, "{proc:?}: closure twin ran IR guards");
        assert_eq!(b.sched.actions_fused, 0);
        assert!(b.sched.guard_hook_evals >= a.sched.guard_hook_evals);
        assert_eq!(a.sched.guard_evals(), b.sched.guard_evals(), "{proc:?}: total guard evals");

        // The per-op twin compiles no superblock tables and never enters
        // the fast path.
        let mut per_op_config = config.clone();
        per_op_config.engine.superblocks = false;
        let po = proc.compile(&per_op_config);
        assert_eq!(po.superblocks(), 0, "{proc:?}: per-op twin formed superblocks");
        let c = run(&po, program, &per_op_config);
        assert_eq!(c.sched.superblocks_entered, 0, "{proc:?}: per-op twin entered superblocks");
        assert_eq!(c.sched.ops_inlined, 0);
        assert_eq!(c.sched.chain_links_fired, 0, "{proc:?}: per-op twin fired chain links");
        assert_eq!(a.stats, c.stats, "{proc:?}: superblocks changed simulation");

        // The chains-off twin keeps superblocks but compiles no chain
        // tables and never parks a cursor.
        let mut chains_off_config = config.clone();
        chains_off_config.engine.chains = false;
        let co = proc.compile(&chains_off_config);
        assert_eq!(co.chains(), 0, "{proc:?}: chains-off twin formed chain entries");
        assert_eq!(co.chain_links(), 0, "{proc:?}: chains-off twin linked superblocks");
        assert!(co.superblocks() > 0, "{proc:?}: chains-off twin lost its superblocks");
        let d = run(&co, program, &chains_off_config);
        assert_eq!(d.sched.chains_entered, 0, "{proc:?}: chains-off twin parked cursors");
        assert_eq!(d.sched.chain_links_fired, 0);
        assert!(
            d.sched.superblocks_entered > a.sched.superblocks_entered,
            "{proc:?}: cursors elide direct superblock entries, so the chains-off \
             twin must record more of them"
        );
        assert_eq!(a.stats, d.stats, "{proc:?}: chains changed simulation");
    }
}

/// The generated structure matches the hand-wired one entity for entity —
/// a cheap shape check that localizes ordering bugs faster than a trace
/// diff when lowering changes.
#[test]
fn spec_models_mirror_oracle_structure() {
    for (name, spec, legacy) in [
        (
            "strongarm",
            strongarm::compile as fn(&SimConfig) -> CompiledModel<ArmTok, ArmRes>,
            strongarm::legacy::compile as fn(&SimConfig) -> CompiledModel<ArmTok, ArmRes>,
        ),
        ("xscale", xscale::compile, xscale::legacy::compile),
    ] {
        let config = SimConfig::default();
        let (s, l) = (spec(&config), legacy(&config));
        let (sm, lm) = (s.model(), l.model());
        assert_eq!(sm.stage_count(), lm.stage_count(), "{name}: stages");
        assert_eq!(sm.place_count(), lm.place_count(), "{name}: places");
        assert_eq!(sm.transition_count(), lm.transition_count(), "{name}: transitions");
        assert_eq!(sm.source_count(), lm.source_count(), "{name}: sources");
        assert_eq!(sm.subnet_count(), lm.subnet_count(), "{name}: sub-nets");
        for p in sm.place_ids() {
            assert_eq!(sm.place(p).name(), lm.place(p).name(), "{name}: place {p} name");
            assert_eq!(sm.place(p).stage(), lm.place(p).stage(), "{name}: place {p} stage");
            assert_eq!(
                sm.analysis().is_two_list(p),
                lm.analysis().is_two_list(p),
                "{name}: place {p} two-list"
            );
        }
        for t in sm.transition_ids() {
            let (st, lt) = (sm.transition(t), lm.transition(t));
            assert_eq!(st.input(), lt.input(), "{name}: transition {t} input");
            assert_eq!(st.dest(), lt.dest(), "{name}: transition {t} dest");
            assert_eq!(st.subnet(), lt.subnet(), "{name}: transition {t} sub-net");
            assert_eq!(st.priority(), lt.priority(), "{name}: transition {t} priority");
        }
        assert_eq!(
            sm.analysis().order(),
            lm.analysis().order(),
            "{name}: evaluation order must match"
        );
    }
}
