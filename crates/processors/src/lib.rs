//! # processors — RCPN processor models and generated simulators
//!
//! The paper's case studies, rebuilt on the [`rcpn`] engine:
//!
//! * [`strongarm`] — the StrongARM SA-110 five-stage pipeline (six class
//!   sub-nets, forwarding from the E/M latches, predict-not-taken).
//! * [`xscale`] — the Intel XScale superpipeline (Figure 9: X/D/MAC pipes,
//!   BTB front end, out-of-order completion).
//! * [`superarm`] — a seven-stage superpipelined in-order StrongARM
//!   variant, defined entirely through the [`rcpn::spec`] API.
//! * [`example`] — the representative out-of-order-completion processor of
//!   Figures 4–5, on a miniature ISA.
//! * [`tomasulo`] — a reservation-station (Tomasulo-style) model, the
//!   extension mentioned in Section 3.2.
//!
//! The ARM models share one token payload ([`armtok::ArmTok`]) with
//! decode-once templates and per-PC token caching, one resource block
//! ([`res::ArmRes`]) and one library of stage semantics ([`semantics`]),
//! so the *only* difference between processors is the net structure — the
//! paper's core modeling claim.
//!
//! Use [`sim::CaSim`] for a ready-to-run simulator:
//!
//! ```
//! use arm_isa::asm::assemble;
//! use processors::sim::CaSim;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("mov r0, #6\nmov r1, #7\nmul r0, r1, r0\nswi #0\n")?;
//! let mut sim = CaSim::strongarm(&program);
//! let result = sim.run(100_000);
//! assert_eq!(result.exit, Some(42));
//! assert!(result.cycles > result.instrs as u64, "CPI > 1 on a scalar pipeline");
//! # Ok(())
//! # }
//! ```

pub mod armtok;
pub mod example;
pub mod registry;
pub mod res;
pub mod semantics;
pub mod sim;
#[cfg(test)]
mod spec_oracle;
pub mod strongarm;
pub mod superarm;
pub mod tomasulo;
pub mod xscale;

pub use armtok::{ArmClass, ArmTok, DecInstr};
pub use registry::arm_hooks;
pub use res::{ArmRes, SimConfig};
pub use sim::{BatchOutcome, CaSim, CompiledSim, ProcModel, SimResult};
