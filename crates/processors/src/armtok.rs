//! ARM instruction tokens: the payload carried through the RCPN pipelines.
//!
//! This module implements two of the paper's three performance pillars:
//!
//! * **Decode-once tokens** — "when an instruction token is generated, the
//!   corresponding instruction is decoded and stored in the token. Since
//!   the token carries this information, we do not need to re-decode the
//!   instruction in different pipeline stages." [`DecInstr`] is that stored
//!   decode result; it is produced at fetch time and shared via `Rc`.
//! * **Partial evaluation / token caching** — "the tokens are cached for
//!   later reuse": [`DecodeCache`] memoizes [`DecInstr`] per word address,
//!   and [`DecInstr::instantiate`] customizes the operation-class template
//!   for an instruction *instance* by resolving its symbols to concrete
//!   [`Operand`]s (registers become `RegRef`s, constants and PC-relative
//!   values become `Const`s — Section 3's symbol substitution).

use std::rc::Rc;

use arm_isa::decode::decode;
use arm_isa::instr::{DpOp, HKind, HOff, Instr, MemOff, Op2, Shift};
use arm_isa::types::{expand_imm, Cond, Reg, ShiftTy};
use rcpn::ids::{OpClassId, RegId};
use rcpn::reg::Operand;
use rcpn::token::InstrData;

/// The six ARM operation classes, exactly as many as the paper reports
/// ("The ARM instruction set was implemented using six operation-classes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ArmClass {
    /// Data processing (ALU), including PC writes like `mov pc, lr`.
    DataProc = 0,
    /// Multiply and multiply-long.
    Mul = 1,
    /// Single loads/stores (word/byte/halfword/signed).
    LdSt = 2,
    /// Load/store multiple (micro-op generating).
    LdStM = 3,
    /// Branches (`b`/`bl`).
    Branch = 4,
    /// Software interrupts and faults.
    System = 5,
}

impl ArmClass {
    /// All classes in id order.
    pub const ALL: [ArmClass; 6] = [
        ArmClass::DataProc,
        ArmClass::Mul,
        ArmClass::LdSt,
        ArmClass::LdStM,
        ArmClass::Branch,
        ArmClass::System,
    ];

    /// The class name (used for sub-net names).
    pub fn name(self) -> &'static str {
        match self {
            ArmClass::DataProc => "DataProc",
            ArmClass::Mul => "Mul",
            ArmClass::LdSt => "LoadStore",
            ArmClass::LdStM => "LoadStoreMultiple",
            ArmClass::Branch => "Branch",
            ArmClass::System => "System",
        }
    }

    /// The RCPN operation-class id (classes are registered in `ALL` order).
    pub fn id(self) -> OpClassId {
        OpClassId::from_index(self as usize)
    }
}

/// How the second operand of a data-processing instruction is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op2Spec {
    /// Immediate with precomputed value; `carry` is `None` when the shifter
    /// carry is just the incoming C flag (rotation 0).
    Imm {
        /// The expanded immediate.
        value: u32,
        /// Shifter carry-out, if the rotation defines one.
        carry: Option<bool>,
    },
    /// Register `srcs[1]` shifted by a constant.
    RegImm {
        /// Shift type.
        ty: ShiftTy,
        /// Shift amount (0 has the architectural special meanings).
        amount: u8,
    },
    /// Register `srcs[1]` shifted by register `srcs[2]`.
    RegReg {
        /// Shift type.
        ty: ShiftTy,
    },
}

/// How a load/store offset is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffSpec {
    /// Constant offset (already signed).
    Imm(i32),
    /// Register `srcs[1]`, shifted, possibly subtracted.
    Reg {
        /// Shift type.
        ty: ShiftTy,
        /// Shift amount.
        amount: u8,
        /// Subtract instead of add.
        neg: bool,
    },
}

/// Transfer width of a memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// 32-bit word.
    Word,
    /// 8-bit unsigned byte.
    Byte,
    /// Halfword/signed transfer of the given kind.
    Half(HKind),
}

/// Memory-instruction fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSpec {
    /// Load (vs. store).
    pub load: bool,
    /// Transfer width.
    pub width: Width,
    /// Pre-indexed addressing.
    pub pre: bool,
    /// Offset added (for immediate offsets the sign is folded into
    /// [`OffSpec::Imm`]).
    pub up: bool,
    /// Base register is written back.
    pub wb: bool,
}

/// Multiply-instruction fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulSpec {
    /// Accumulate.
    pub acc: bool,
    /// 64-bit variant.
    pub long: bool,
    /// Signed 64-bit variant.
    pub signed: bool,
}

/// The decode-once template of one machine word (shared via `Rc`).
#[derive(Debug, Clone, PartialEq)]
pub struct DecInstr {
    /// The symbolic instruction (kept for disassembly and fault reporting).
    pub instr: Instr,
    /// Condition code.
    pub cond: Cond,
    /// Operation class.
    pub class: ArmClass,
    /// Scoreboarded source registers (`None` entries are unused slots).
    /// Slot meaning per class: DataProc `[rn, rm, rs, -]`; Mul
    /// `[rm, rs, rn/rdlo, rdhi]`; LdSt `[rn, rm, rd(store), -]`; LdStM
    /// `[rn, -, -, -]`; Branch/System: none.
    pub src_regs: [Option<Reg>; 4],
    /// Scoreboarded destination (rd / rdlo).
    pub dst_reg: Option<Reg>,
    /// Second destination (rdhi, or the written-back base register).
    pub dst2_reg: Option<Reg>,
    /// Data-processing opcode.
    pub dp_op: DpOp,
    /// Second-operand production rule.
    pub op2: Op2Spec,
    /// Offset production rule.
    pub off: OffSpec,
    /// Memory fields.
    pub mem: Option<MemSpec>,
    /// Multiply fields.
    pub mul: Option<MulSpec>,
    /// Flags are written.
    pub sets_flags: bool,
    /// The token redirects the PC (branch, `mov pc`, load-to-pc, ...).
    pub writes_pc: bool,
    /// Precomputed branch target (B/BL — partial evaluation).
    pub branch_target: u32,
    /// Branch-and-link.
    pub link: bool,
    /// SWI comment field.
    pub swi_imm: u32,
    /// Block-transfer register list.
    pub reg_list: u16,
    /// Number of micro-ops (block transfers; 0 otherwise).
    pub n_uops: u8,
    /// Issue must serialize the pipeline (loads into PC, flag-setting
    /// multiplies on split pipes).
    pub serialize: bool,
    /// Decodes to an undefined instruction (System-class fault).
    pub undefined: bool,
}

/// One in-flight instruction token (the colored-token payload).
#[derive(Debug, Clone)]
pub struct ArmTok {
    /// Shared decode template.
    pub dec: Rc<DecInstr>,
    /// Address of this instruction.
    pub pc: u32,
    /// Operation class (mirrors `dec.class` except for micro-ops, which
    /// stay in the LdStM class).
    pub class: OpClassId,
    /// Resolved source operands (the class template's symbols replaced by
    /// RegRefs/Consts for this instance).
    pub srcs: [Operand; 4],
    /// Destination operand.
    pub dst: Operand,
    /// Second destination operand (rdhi / written-back base).
    pub dst2: Operand,
    /// Effective address (computed at execute).
    pub addr: u32,
    /// Written-back base value.
    pub wb_base: u32,
    /// Primary result / loaded value.
    pub value: u32,
    /// Secondary result (rdhi).
    pub value2: u32,
    /// Condition failed; the instruction flows through as a bubble.
    pub annulled: bool,
    /// Fetch-time predicted target (None = fall-through).
    pub pred_target: Option<u32>,
    /// Micro-op index for block transfers.
    pub uop: u8,
    /// This token redirects the PC when it resolves.
    pub writes_pc: bool,
    /// This token currently holds a front-end serialization (fetch is
    /// stalled until it resolves); must be released exactly once.
    pub serialize_pending: bool,
}

impl InstrData for ArmTok {
    #[inline]
    fn op_class(&self) -> OpClassId {
        self.class
    }

    // Operand views for the micro-op IR: the sources the synthesized
    // CheckReady/AcquireOperands ops probe and latch, and the two
    // destinations (primary result, rdhi / written-back base) they
    // reserve. Index order matters: WriteBack commits highest index
    // first, so dst2 (the base) commits before dst — the ARM "load
    // wins" rule, same as `semantics::exec_writeback`.
    #[inline]
    fn src_operands(&self) -> &[Operand] {
        &self.srcs
    }

    #[inline]
    fn src_operands_mut(&mut self) -> &mut [Operand] {
        &mut self.srcs
    }

    #[inline]
    fn dst_count(&self) -> usize {
        2
    }

    #[inline]
    fn dst_operand(&self, i: usize) -> &Operand {
        match i {
            0 => &self.dst,
            1 => &self.dst2,
            _ => panic!("ArmTok has two destination operands (index {i})"),
        }
    }

    #[inline]
    fn dst_operand_mut(&mut self, i: usize) -> &mut Operand {
        match i {
            0 => &mut self.dst,
            1 => &mut self.dst2,
            _ => panic!("ArmTok has two destination operands (index {i})"),
        }
    }

    // Annul view for the synthesized `Annul` op (the `.annuls()` step
    // capability). `cond_passes` keeps its default: the ARM condition
    // reads the CPSR, which lives in machine state, so condition checks
    // stay closure guards (the hook boundary, DESIGN.md §2d) and the
    // default is never consulted.
    #[inline]
    fn annulled(&self) -> bool {
        self.annulled
    }

    #[inline]
    fn set_annulled(&mut self) {
        self.annulled = true;
    }
}

/// Maps an architectural register to its scoreboard id (r0–r14). The PC is
/// not scoreboarded — PC reads become constants at instantiation.
#[inline]
pub fn reg_id(r: Reg) -> RegId {
    debug_assert!(!r.is_pc());
    RegId::from_index(r.index())
}

fn operand_for(r: Option<Reg>, pc: u32) -> Operand {
    match r {
        None => Operand::Absent,
        Some(r) if r.is_pc() => Operand::imm(pc.wrapping_add(8)),
        Some(r) => Operand::reg(reg_id(r)),
    }
}

/// Decodes a machine word into a [`DecInstr`] template.
pub fn decode_word(word: u32, pc: u32) -> DecInstr {
    let instr = decode(word);
    let mut d = DecInstr {
        instr,
        cond: instr.cond(),
        class: ArmClass::System,
        src_regs: [None; 4],
        dst_reg: None,
        dst2_reg: None,
        dp_op: DpOp::Mov,
        op2: Op2Spec::Imm { value: 0, carry: None },
        off: OffSpec::Imm(0),
        mem: None,
        mul: None,
        sets_flags: false,
        writes_pc: false,
        branch_target: 0,
        link: false,
        swi_imm: 0,
        reg_list: 0,
        n_uops: 0,
        serialize: false,
        undefined: false,
    };
    match instr {
        Instr::Dp { op, s, rn, rd, op2, .. } => {
            d.class = ArmClass::DataProc;
            d.dp_op = op;
            d.sets_flags = s;
            if !op.is_unary() {
                d.src_regs[0] = Some(rn);
            }
            match op2 {
                Op2::Imm { imm8, rot4 } => {
                    // Partial evaluation: expand at decode. Rotation 0
                    // leaves the carry as the incoming C flag.
                    let (value, _) = expand_imm(imm8, rot4, false);
                    let carry = if rot4 == 0 { None } else { Some(value >> 31 != 0) };
                    d.op2 = Op2Spec::Imm { value, carry };
                }
                Op2::Reg { rm, shift } => {
                    d.src_regs[1] = Some(rm);
                    match shift {
                        Shift::Imm { ty, amount } => d.op2 = Op2Spec::RegImm { ty, amount },
                        Shift::Reg { ty, rs } => {
                            d.src_regs[2] = Some(rs);
                            d.op2 = Op2Spec::RegReg { ty };
                        }
                    }
                }
            }
            if !op.is_test() {
                if rd.is_pc() {
                    d.writes_pc = true;
                } else {
                    d.dst_reg = Some(rd);
                }
            }
        }
        Instr::Mul { acc, s, rd, rn, rs, rm, .. } => {
            d.class = ArmClass::Mul;
            d.sets_flags = s;
            d.mul = Some(MulSpec { acc, long: false, signed: false });
            d.src_regs[0] = Some(rm);
            d.src_regs[1] = Some(rs);
            if acc {
                d.src_regs[2] = Some(rn);
            }
            d.dst_reg = Some(rd);
            d.serialize = s;
        }
        Instr::MulLong { signed, acc, s, rdhi, rdlo, rs, rm, .. } => {
            d.class = ArmClass::Mul;
            d.sets_flags = s;
            d.mul = Some(MulSpec { acc, long: true, signed });
            d.src_regs[0] = Some(rm);
            d.src_regs[1] = Some(rs);
            if acc {
                d.src_regs[2] = Some(rdlo);
                d.src_regs[3] = Some(rdhi);
            }
            d.dst_reg = Some(rdlo);
            d.dst2_reg = Some(rdhi);
            d.serialize = s;
        }
        Instr::Mem { load, byte, pre, up, wb, rn, rd, off, .. } => {
            d.class = ArmClass::LdSt;
            let width = if byte { Width::Byte } else { Width::Word };
            d.mem = Some(MemSpec { load, width, pre, up, wb: wb || !pre });
            d.src_regs[0] = Some(rn);
            match off {
                MemOff::Imm(v) => {
                    d.off = OffSpec::Imm(if up { i32::from(v) } else { -i32::from(v) });
                }
                MemOff::Reg { rm, ty, amount } => {
                    d.src_regs[1] = Some(rm);
                    d.off = OffSpec::Reg { ty, amount, neg: !up };
                }
            }
            if load {
                if rd.is_pc() {
                    d.writes_pc = true;
                    d.serialize = true;
                } else {
                    d.dst_reg = Some(rd);
                }
            } else {
                d.src_regs[2] = Some(rd);
            }
            if wb || !pre {
                d.dst2_reg = Some(rn);
            }
        }
        Instr::MemH { load, kind, pre, up, wb, rn, rd, off, .. } => {
            d.class = ArmClass::LdSt;
            d.mem = Some(MemSpec { load, width: Width::Half(kind), pre, up, wb: wb || !pre });
            d.src_regs[0] = Some(rn);
            match off {
                HOff::Imm(v) => {
                    d.off = OffSpec::Imm(if up { i32::from(v) } else { -i32::from(v) });
                }
                HOff::Reg(rm) => {
                    d.src_regs[1] = Some(rm);
                    d.off = OffSpec::Reg { ty: ShiftTy::Lsl, amount: 0, neg: !up };
                }
            }
            if load {
                d.dst_reg = Some(rd);
            } else {
                d.src_regs[2] = Some(rd);
            }
            if wb || !pre {
                d.dst2_reg = Some(rn);
            }
        }
        Instr::Block { load, pre, up, wb, rn, list, .. } => {
            d.class = ArmClass::LdStM;
            d.mem = Some(MemSpec { load, width: Width::Word, pre, up, wb });
            d.src_regs[0] = Some(rn);
            d.reg_list = list;
            d.n_uops = list.count_ones() as u8;
            if wb {
                d.dst2_reg = Some(rn);
            }
            if load && (list >> 15) & 1 == 1 {
                d.writes_pc = true;
                d.serialize = true;
            }
        }
        Instr::Branch { link, offset, .. } => {
            d.class = ArmClass::Branch;
            d.link = link;
            d.branch_target = pc.wrapping_add(8).wrapping_add(offset as u32);
            d.writes_pc = true;
            if link {
                d.dst_reg = Some(Reg::LR);
            }
        }
        Instr::Swi { imm, .. } => {
            d.class = ArmClass::System;
            d.swi_imm = imm;
            // System calls read their argument register architecturally;
            // making r0 a source operand gives the data hazard for free.
            d.src_regs[0] = Some(Reg::new(0));
            // Readback calls (GETC/CLOCK/BRK) also write r0; the immediate
            // is decode-time static, so the destination hazard is too.
            if arm_isa::syscall::returns_value(imm) {
                d.dst_reg = Some(Reg::new(0));
            }
        }
        Instr::Undefined(_) => {
            d.class = ArmClass::System;
            d.undefined = true;
        }
    }
    d
}

impl DecInstr {
    /// Creates a token for one dynamic instance of this instruction:
    /// the template's register symbols become [`Operand`]s bound to the
    /// scoreboard, constants (including PC reads) become `Const` operands.
    pub fn instantiate(self: &Rc<Self>, pc: u32) -> ArmTok {
        let srcs = [
            operand_for(self.src_regs[0], pc),
            operand_for(self.src_regs[1], pc),
            operand_for(self.src_regs[2], pc),
            operand_for(self.src_regs[3], pc),
        ];
        ArmTok {
            dec: Rc::clone(self),
            pc,
            class: self.class.id(),
            srcs,
            dst: operand_for(self.dst_reg, pc),
            dst2: operand_for(self.dst2_reg, pc),
            addr: 0,
            wb_base: 0,
            value: 0,
            value2: 0,
            annulled: false,
            pred_target: None,
            uop: 0,
            writes_pc: self.writes_pc && self.class != ArmClass::LdStM,
            serialize_pending: false,
        }
    }
}

/// Per-address decode cache (the paper's token cache).
#[derive(Debug, Default)]
pub struct DecodeCache {
    entries: Vec<Option<Rc<DecInstr>>>,
    /// Cache hits (reused templates).
    pub hits: u64,
    /// Cache misses (fresh decodes).
    pub misses: u64,
    enabled: bool,
}

impl DecodeCache {
    /// A cache covering addresses below `text_limit`.
    pub fn new(text_limit: u32) -> Self {
        DecodeCache {
            entries: vec![None; (text_limit as usize).div_ceil(4)],
            hits: 0,
            misses: 0,
            enabled: true,
        }
    }

    /// A disabled cache: every lookup decodes afresh (ablation mode).
    pub fn disabled() -> Self {
        DecodeCache { entries: Vec::new(), hits: 0, misses: 0, enabled: false }
    }

    /// Returns the decode template for `word` at `pc`.
    pub fn lookup(&mut self, pc: u32, word: u32) -> Rc<DecInstr> {
        if !self.enabled {
            self.misses += 1;
            return Rc::new(decode_word(word, pc));
        }
        let idx = (pc >> 2) as usize;
        if idx < self.entries.len() {
            if let Some(d) = &self.entries[idx] {
                self.hits += 1;
                return Rc::clone(d);
            }
            self.misses += 1;
            let d = Rc::new(decode_word(word, pc));
            self.entries[idx] = Some(Rc::clone(&d));
            d
        } else {
            self.misses += 1;
            Rc::new(decode_word(word, pc))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_isa::asm::assemble;

    fn dec(src: &str) -> DecInstr {
        let p = assemble(src).expect("assembles");
        decode_word(p.words[0], 0)
    }

    #[test]
    fn classes_cover_the_isa() {
        assert_eq!(dec("add r0, r1, r2\n").class, ArmClass::DataProc);
        assert_eq!(dec("mul r0, r1, r2\n").class, ArmClass::Mul);
        assert_eq!(dec("umull r0, r1, r2, r3\n").class, ArmClass::Mul);
        assert_eq!(dec("ldr r0, [r1]\n").class, ArmClass::LdSt);
        assert_eq!(dec("ldrh r0, [r1]\n").class, ArmClass::LdSt);
        assert_eq!(dec("ldmia r0, {r1, r2}\n").class, ArmClass::LdStM);
        assert_eq!(dec("b t\nt: swi #0\n").class, ArmClass::Branch);
        assert_eq!(dec("swi #0\n").class, ArmClass::System);
        assert_eq!(ArmClass::ALL.len(), 6, "paper: six operation classes");
    }

    #[test]
    fn dp_operands_and_flags() {
        let d = dec("adds r0, r1, r2, lsl #3\n");
        assert_eq!(d.src_regs[0], Some(Reg::new(1)));
        assert_eq!(d.src_regs[1], Some(Reg::new(2)));
        assert_eq!(d.dst_reg, Some(Reg::new(0)));
        assert!(d.sets_flags);
        assert_eq!(d.op2, Op2Spec::RegImm { ty: ShiftTy::Lsl, amount: 3 });

        let d = dec("mov r0, #4\n");
        assert_eq!(d.src_regs, [None; 4], "unary op reads nothing");
        assert_eq!(d.op2, Op2Spec::Imm { value: 4, carry: None });

        let d = dec("cmp r1, r2\n");
        assert_eq!(d.dst_reg, None, "tests write no register");
        assert!(d.sets_flags);
    }

    #[test]
    fn mov_pc_is_a_pc_writer() {
        let d = dec("mov pc, lr\n");
        assert!(d.writes_pc);
        assert_eq!(d.dst_reg, None, "pc is not scoreboarded");
        assert_eq!(d.src_regs[1], Some(Reg::LR));
    }

    #[test]
    fn branch_target_is_precomputed() {
        let d = dec("b t\nt: swi #0\n");
        assert_eq!(d.branch_target, 4);
        assert!(d.writes_pc);
        let d = dec("bl t\nt: swi #0\n");
        assert_eq!(d.dst_reg, Some(Reg::LR), "bl reserves lr");
    }

    #[test]
    fn load_store_fields() {
        let d = dec("ldr r0, [r1, #4]!\n");
        let m = d.mem.unwrap();
        assert!(m.load && m.pre && m.wb);
        assert_eq!(d.off, OffSpec::Imm(4));
        assert_eq!(d.dst2_reg, Some(Reg::new(1)), "writeback base is a second dest");

        let d = dec("str r2, [r3], #-8\n");
        let m = d.mem.unwrap();
        assert!(!m.load && !m.pre && m.wb, "post-index always writes back");
        assert_eq!(d.off, OffSpec::Imm(-8));
        assert_eq!(d.src_regs[2], Some(Reg::new(2)), "store data is a source");

        let d = dec("ldr r0, [r1, r2, lsl #2]\n");
        assert_eq!(d.off, OffSpec::Reg { ty: ShiftTy::Lsl, amount: 2, neg: false });
    }

    #[test]
    fn block_transfer_uops() {
        let d = dec("ldmia r0!, {r1, r2, r5}\n");
        assert_eq!(d.n_uops, 3);
        assert_eq!(d.reg_list, 0b100110);
        assert_eq!(d.dst2_reg, Some(Reg::new(0)));
        let d = dec("pop {r4, pc}\n");
        assert!(d.writes_pc && d.serialize);
    }

    #[test]
    fn instantiation_resolves_symbols() {
        let p = assemble("add r0, pc, #4\n").unwrap();
        let d = Rc::new(decode_word(p.words[0], 0x100));
        let tok = d.instantiate(0x100);
        // rn = pc resolves to the constant pc+8.
        assert_eq!(tok.srcs[0], Operand::imm(0x108));
        assert_eq!(tok.dst.reg_id(), Some(RegId::from_index(0)));
        assert_eq!(tok.class, ArmClass::DataProc.id());
    }

    #[test]
    fn decode_cache_reuses_templates() {
        let p = assemble("add r0, r0, #1\n").unwrap();
        let mut cache = DecodeCache::new(1024);
        let a = cache.lookup(0, p.words[0]);
        let b = cache.lookup(0, p.words[0]);
        assert!(Rc::ptr_eq(&a, &b), "second lookup reuses the template");
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 1);

        let mut off = DecodeCache::disabled();
        let a = off.lookup(0, p.words[0]);
        let b = off.lookup(0, p.words[0]);
        assert!(!Rc::ptr_eq(&a, &b));
        assert_eq!(off.misses, 2);
    }

    #[test]
    fn undefined_decodes_to_system_fault() {
        let d = decode_word(0xE12F_FF1E, 0); // bx lr
        assert_eq!(d.class, ArmClass::System);
        assert!(d.undefined);
    }
}
