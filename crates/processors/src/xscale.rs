//! The Intel XScale RCPN model (paper, Figure 9): a superpipelined,
//! in-order-issue / out-of-order-completion core with three back-end pipes:
//!
//! ```text
//!                      ┌─ X1 ─ X2 ─────────── XWB   (main/ALU)
//! F1 ─ F2 ─ ID ─ RF ───┼─ D1 ─ D2 ─────────── DWB   (memory)
//!                      └─ M1 ─ M2 ─ Mx ────── MWB   (MAC/multiply)
//! ```
//!
//! A BTB front end predicts branch targets; branches resolve in X1.
//! Independent ALU instructions complete in XWB while older loads are
//! still in the memory pipe — the out-of-order completion the paper calls
//! out — with WAW hazards fenced by the register scoreboard.
//!
//! Like [`crate::strongarm`], the model is a [`PipelineSpec`]: eleven
//! latches, a six-latch forwarding set, one `front` redirect rule
//! (nearest-first squash of ID/F2/F1), and one path per class; only the
//! *paths* differ from StrongARM — the paper's generic-modeling claim.
//! The closure-wired original survives as the `legacy` test oracle.

use arm_isa::program::Program;
use rcpn::compiled::CompiledModel;
use rcpn::engine::Engine;
use rcpn::spec::{Forward, PipelineSpec, SquashOrder};

use crate::armtok::{ArmClass, ArmTok};
use crate::registry::keys;
use crate::res::{ArmRes, SimConfig};
use crate::semantics::*;

/// Builds an XScale cycle-accurate engine for `program`.
///
/// Convenience over [`compile`] + [`ArmRes::machine`]; build the compiled
/// model once and instantiate it per program when running many programs.
///
/// # Panics
///
/// Panics if the internal model fails validation (a bug, not a user
/// error).
pub fn build(program: &Program, config: &SimConfig) -> Engine<ArmTok, ArmRes> {
    compile(config).instantiate(ArmRes::machine(program, config))
}

/// The XScale pipeline description: the shared F1–F2–ID–RF front end,
/// three back-end pipes (X, D, MAC), forwarding from all six back-end
/// latches, and redirects resolved leaving RF (branches, ALU PC writes)
/// or D1 (loads into PC) — both squashing the front end nearest-first.
pub fn spec() -> PipelineSpec<ArmTok, ArmRes> {
    let mut s = PipelineSpec::new("XScale");
    for stage in ["F1", "F2", "ID", "RF", "X1", "X2", "D1", "D2", "M1", "M2", "Mx"] {
        s.pipe(stage, 1);
    }
    s.forwards(&["X1", "X2", "D1", "D2", "M2", "Mx"]);
    s.hazard_policy(SquashOrder::NearestFirst);
    s.operand_policy(ArmOperandPolicy);
    s.redirect("front", "RF"); // squash ID, F2, F1

    s.class(ArmClass::DataProc.name())
        .step("F2")
        .step("ID")
        .step("RF")
        .read(Forward::All)
        .step("X1")
        .flushes("front")
        .act_ctx_named(keys::EXEC_DATAPROC, |m, t, fx, cx| exec_dataproc(m, t, fx, &cx.flush))
        .step("X2")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::Mul.name())
        .step("F2")
        .step("ID")
        .step("RF")
        .read(Forward::All)
        .step("M1")
        .step("M2")
        .act_named(keys::EXEC_MUL, exec_mul)
        .step("Mx")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::LdSt.name())
        .step("F2")
        .step("ID")
        .step("RF")
        .read(Forward::All)
        .step("D1")
        .act_named(keys::EXEC_ADDR, exec_addr)
        .step("D2")
        .flushes("front")
        .act_ctx_named(keys::EXEC_MEM, |m, t, fx, cx| exec_mem(m, t, fx, &cx.flush))
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::LdStM.name())
        .step("F2")
        .step("ID")
        .step("RF")
        .read_then_named(Forward::All, keys::EXEC_BLOCK_ADDR, exec_block_addr)
        .alt("end")
        .priority(0)
        .guard_named(keys::COND_FAIL, |m, t| !cond_passes(m, t))
        .annuls()
        .act_named(keys::LDM_SKIP, |m, t, _fx| {
            clear_serialize(m, t);
            m.res.instr_done += 1;
        })
        .step("D1")
        .priority(1)
        .reads_forward()
        .guard_ctx_named(keys::LDM_UOP_READY, |m, t, cx| ldm_uop_ready(m, t, &cx.fwd))
        .act_ctx_named(keys::LDM_UOP_ISSUE, |m, t, fx, cx| {
            ldm_uop_issue(m, t, fx, &cx.fwd, cx.from)
        })
        .step("D2")
        .flushes("front")
        .act_ctx_named(keys::EXEC_MEM, |m, t, fx, cx| exec_mem(m, t, fx, &cx.flush))
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::Branch.name())
        .step("F2")
        .step("ID")
        .step("RF")
        .read(Forward::None)
        .step("X1")
        .flushes("front")
        .act_ctx_named(keys::EXEC_BRANCH, |m, t, fx, cx| exec_branch(m, t, fx, &cx.flush))
        .step("X2")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.class(ArmClass::System.name())
        .step("F2")
        .step("ID")
        .step("RF")
        .read(Forward::All)
        .step("X1")
        .flushes("front")
        .act_ctx_named(keys::EXEC_SYSTEM, |m, t, fx, cx| exec_system(m, t, fx, &cx.flush))
        .step("X2")
        .step("end")
        .act_named(keys::EXEC_WRITEBACK, exec_writeback);

    s.source("fetch")
        .to("F1")
        .guard_named(keys::FETCH_READY, fetch_ready)
        .produce_named(keys::FETCH_PRODUCE, fetch_produce);
    s.on_squash_named(keys::CLEAR_SERIALIZE, clear_serialize);
    s
}

/// Compiles the XScale model into its generated-simulator artifact.
///
/// The model structure is program-independent (the program image lives in
/// the machine resources), so one compiled model can instantiate engines
/// for any number of programs.
///
/// # Panics
///
/// Panics if the spec fails to lower or the model fails validation (a
/// bug, not a user error).
pub fn compile(config: &SimConfig) -> CompiledModel<ArmTok, ArmRes> {
    let mut s = spec();
    s.lowering(config.lowering);
    let model = s.lower().expect("XScale spec lowers");
    CompiledModel::compile_with(model, config.engine.clone())
}

/// The original closure-wired XScale model, kept verbatim as the
/// differential oracle for the spec lowering (`crate::spec_oracle`).
#[cfg(test)]
pub(crate) mod legacy {
    use rcpn::builder::ModelBuilder;
    use rcpn::compiled::CompiledModel;
    use rcpn::ids::{OpClassId, PlaceId};

    use crate::armtok::{ArmClass, ArmTok};
    use crate::res::{ArmRes, SimConfig};
    use crate::semantics::*;

    /// Compiles the hand-wired XScale model.
    pub fn compile(config: &SimConfig) -> CompiledModel<ArmTok, ArmRes> {
        let mut b = ModelBuilder::<ArmTok, ArmRes>::new();

        // Stages.
        let s_f1 = b.stage("F1", 1);
        let s_f2 = b.stage("F2", 1);
        let s_id = b.stage("ID", 1);
        let s_rf = b.stage("RF", 1);
        let s_x1 = b.stage("X1", 1);
        let s_x2 = b.stage("X2", 1);
        let s_d1 = b.stage("D1", 1);
        let s_d2 = b.stage("D2", 1);
        let s_m1 = b.stage("M1", 1);
        let s_m2 = b.stage("M2", 1);
        let s_mx = b.stage("Mx", 1);

        // Places.
        let p_f1 = b.place("F1", s_f1);
        let p_f2 = b.place("F2", s_f2);
        let p_id = b.place("ID", s_id);
        let p_rf = b.place("RF", s_rf);
        let p_x1 = b.place("X1", s_x1);
        let p_x2 = b.place("X2", s_x2);
        let p_d1 = b.place("D1", s_d1);
        let p_d2 = b.place("D2", s_d2);
        let p_m1 = b.place("M1", s_m1);
        let p_m2 = b.place("M2", s_m2);
        let p_mx = b.place("Mx", s_mx);
        let end = b.end_place();

        let classes: Vec<OpClassId> =
            ArmClass::ALL.iter().map(|c| b.class_net(c.name()).0).collect();
        for (i, c) in classes.iter().enumerate() {
            assert_eq!(c.index(), i, "class ids must follow ArmClass order");
        }

        // Forwarding sources: ALU latches, address/memory latches, MAC
        // latches.
        let fwd: [PlaceId; 6] = [p_x1, p_x2, p_d1, p_d2, p_m2, p_mx];
        let flush_front: [PlaceId; 3] = [p_id, p_f2, p_f1];

        // Shared front-end shape per class: F1 -> F2 -> ID -> RF(read).
        let front = |b: &mut ModelBuilder<ArmTok, ArmRes>, c: OpClassId, tag: &str| {
            b.transition(c, &format!("{tag}_f2")).from(p_f1).to(p_f2).done();
            b.transition(c, &format!("{tag}_id")).from(p_f2).to(p_id).done();
        };
        // --- DataProc -----------------------------------------------------
        {
            let c = classes[ArmClass::DataProc as usize];
            front(&mut b, c, "dp");
            b.transition(c, "dp_rf")
                .from(p_id)
                .to(p_rf)
                .reads_state(p_x1)
                .reads_state(p_x2)
                .reads_state(p_d1)
                .reads_state(p_d2)
                .reads_state(p_m2)
                .reads_state(p_mx)
                .guard(move |m, t| ready(m, t, &fwd))
                .action(move |m, t, fx| acquire(m, t, fx, &fwd))
                .done();
            b.transition(c, "dp_x1")
                .from(p_rf)
                .to(p_x1)
                .action(move |m, t, fx| exec_dataproc(m, t, fx, &flush_front))
                .done();
            b.transition(c, "dp_x2").from(p_x1).to(p_x2).done();
            b.transition(c, "dp_xwb").from(p_x2).to(end).action(exec_writeback).done();
        }

        // --- Mul (MAC pipe) -----------------------------------------------
        {
            let c = classes[ArmClass::Mul as usize];
            front(&mut b, c, "mul");
            b.transition(c, "mul_rf")
                .from(p_id)
                .to(p_rf)
                .reads_state(p_x1)
                .reads_state(p_x2)
                .reads_state(p_d1)
                .reads_state(p_d2)
                .reads_state(p_m2)
                .reads_state(p_mx)
                .guard(move |m, t| ready(m, t, &fwd))
                .action(move |m, t, fx| acquire(m, t, fx, &fwd))
                .done();
            b.transition(c, "mul_m1").from(p_rf).to(p_m1).done();
            b.transition(c, "mul_m2").from(p_m1).to(p_m2).action(exec_mul).done();
            b.transition(c, "mul_mx").from(p_m2).to(p_mx).done();
            b.transition(c, "mul_mwb").from(p_mx).to(end).action(exec_writeback).done();
        }

        // --- LoadStore (memory pipe) --------------------------------------
        {
            let c = classes[ArmClass::LdSt as usize];
            front(&mut b, c, "ld");
            b.transition(c, "ld_rf")
                .from(p_id)
                .to(p_rf)
                .reads_state(p_x1)
                .reads_state(p_x2)
                .reads_state(p_d1)
                .reads_state(p_d2)
                .reads_state(p_m2)
                .reads_state(p_mx)
                .guard(move |m, t| ready(m, t, &fwd))
                .action(move |m, t, fx| acquire(m, t, fx, &fwd))
                .done();
            b.transition(c, "ld_d1").from(p_rf).to(p_d1).action(exec_addr).done();
            b.transition(c, "ld_d2")
                .from(p_d1)
                .to(p_d2)
                .action(move |m, t, fx| exec_mem(m, t, fx, &flush_front))
                .done();
            b.transition(c, "ld_dwb").from(p_d2).to(end).action(exec_writeback).done();
        }

        // --- LoadStoreMultiple --------------------------------------------
        {
            let c = classes[ArmClass::LdStM as usize];
            front(&mut b, c, "ldm");
            b.transition(c, "ldm_rf")
                .from(p_id)
                .to(p_rf)
                .reads_state(p_x1)
                .reads_state(p_x2)
                .reads_state(p_d1)
                .reads_state(p_d2)
                .reads_state(p_m2)
                .reads_state(p_mx)
                .guard(move |m, t| ready(m, t, &fwd))
                .action(move |m, t, fx| {
                    acquire(m, t, fx, &fwd);
                    exec_block_addr(m, t, fx);
                })
                .done();
            b.transition(c, "ldm_skip")
                .from(p_rf)
                .to(end)
                .priority(0)
                .guard(|m, t| !cond_passes(m, t))
                .action(|m, t, fx| {
                    annul(m, t, fx);
                    m.res.instr_done += 1;
                })
                .done();
            let p_rf_cont = p_rf;
            b.transition(c, "ldm_uop")
                .from(p_rf)
                .to(p_d1)
                .priority(1)
                .reads_state(p_x1)
                .reads_state(p_x2)
                .reads_state(p_d1)
                .reads_state(p_d2)
                .reads_state(p_m2)
                .reads_state(p_mx)
                .guard(move |m, t| ldm_uop_ready(m, t, &fwd))
                .action(move |m, t, fx| ldm_uop_issue(m, t, fx, &fwd, p_rf_cont))
                .done();
            b.transition(c, "ldm_d2")
                .from(p_d1)
                .to(p_d2)
                .action(move |m, t, fx| exec_mem(m, t, fx, &flush_front))
                .done();
            b.transition(c, "ldm_dwb").from(p_d2).to(end).action(exec_writeback).done();
        }

        // --- Branch -------------------------------------------------------
        {
            let c = classes[ArmClass::Branch as usize];
            front(&mut b, c, "br");
            b.transition(c, "br_rf")
                .from(p_id)
                .to(p_rf)
                .guard(|m, t| ready(m, t, &[]))
                .action(|m, t, fx| acquire(m, t, fx, &[]))
                .done();
            b.transition(c, "br_x1")
                .from(p_rf)
                .to(p_x1)
                .action(move |m, t, fx| exec_branch(m, t, fx, &flush_front))
                .done();
            b.transition(c, "br_x2").from(p_x1).to(p_x2).done();
            b.transition(c, "br_xwb").from(p_x2).to(end).action(exec_writeback).done();
        }

        // --- System -------------------------------------------------------
        {
            let c = classes[ArmClass::System as usize];
            front(&mut b, c, "sys");
            b.transition(c, "sys_rf")
                .from(p_id)
                .to(p_rf)
                .reads_state(p_x1)
                .reads_state(p_x2)
                .reads_state(p_d1)
                .reads_state(p_d2)
                .reads_state(p_m2)
                .reads_state(p_mx)
                .guard(move |m, t| ready(m, t, &fwd))
                .action(move |m, t, fx| acquire(m, t, fx, &fwd))
                .done();
            b.transition(c, "sys_x1")
                .from(p_rf)
                .to(p_x1)
                .action(move |m, t, fx| exec_system(m, t, fx, &flush_front))
                .done();
            b.transition(c, "sys_x2").from(p_x1).to(p_x2).done();
            b.transition(c, "sys_xwb").from(p_x2).to(end).action(exec_writeback).done();
        }

        // --- Instruction-independent sub-net (fetch, BTB-predicted) -------
        b.source("fetch").to(p_f1).guard(fetch_ready).produce(fetch_produce).done();

        b.on_squash(clear_serialize);

        let model = b.build().expect("XScale model validates");
        CompiledModel::compile_with(model, config.engine.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xscale_model_shape() {
        let p = arm_isa::asm::assemble("mov r0, #1\nswi #0\n").unwrap();
        let engine = build(&p, &SimConfig::xscale());
        let model = engine.model();
        assert_eq!(model.subnet_count(), 6);
        // Deeper pipeline than StrongARM: 11 pipeline places + end.
        assert_eq!(model.place_count(), 12);
        // All six forwarding latches are two-list; the front end is not.
        let a = model.analysis();
        for name in ["X1", "X2", "D1", "D2", "M2", "Mx"] {
            assert!(a.is_two_list(model.find_place(name).unwrap()), "{name} must be two-list");
        }
        for name in ["F1", "F2", "ID"] {
            assert!(!a.is_two_list(model.find_place(name).unwrap()), "{name} single-list");
        }
    }
}
