//! The representative out-of-order-completion processor of the paper's
//! Figures 4 and 5 on a miniature ISA — **the canonical
//! [`rcpn::spec::PipelineSpec`] example**: the entire processor is a page
//! of declarative description ([`build`]), where the original closure-wired
//! version of this file spent ~200 lines on `ModelBuilder` plumbing.
//!
//! Block diagram (Figure 4a): fetch `F` feeds latch `L1`; decode moves
//! instructions to `L2`; from there ALU instructions execute in `E` and
//! write back from latch `L3` (`We`), loads/stores access memory in `M`
//! and write back from `L4` (`Wm`), and branches resolve in `B`. A
//! feedback path forwards `L3` results — used, exactly as the paper
//! assumes, *only for the first source operand `s1` of ALU instructions*
//! (the priority-1 `D_alu_fwd` alternative). Branches stall fetch by
//! depositing a **reservation token** into `L1` (Figure 5's dotted arcs).
//!
//! The three operation classes mirror Figure 4(b):
//!
//! ```text
//! Branch    { offset: Register | Constant }
//! ALU       { op: Add | Sub | Mul | ...; d, s1: Register; s2: Register | Constant }
//! LoadStore { L: true | false; r: Register; addr: Register | Constant }
//! ```

use rcpn::engine::Engine;
use rcpn::ids::{OpClassId, PlaceId, RegId};
use rcpn::model::{Fx, Machine};
use rcpn::reg::{Operand, RegisterFile};
use rcpn::spec::PipelineSpec;
use rcpn::token::InstrData;

/// ALU operation of the toy ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Bitwise exclusive or.
    Xor,
}

impl AluOp {
    fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Xor => a ^ b,
        }
    }
}

/// A register-or-constant symbol (Figure 4b's `{Register | Constant}`).
#[derive(Debug, Clone, Copy)]
pub enum ToySrc {
    /// Register number.
    Reg(u8),
    /// Immediate constant.
    Const(u32),
}

/// One instruction of the toy ISA.
#[derive(Debug, Clone)]
pub enum ToyInstr {
    /// `d = op(s1, s2)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        d: u8,
        /// First source register (the forwarded operand).
        s1: u8,
        /// Second source: register or constant.
        s2: ToySrc,
    },
    /// Load (`l = true`) or store of register `r` at `addr`.
    LoadStore {
        /// True for loads.
        l: bool,
        /// Data register.
        r: u8,
        /// Address operand.
        addr: ToySrc,
    },
    /// Relative branch by `offset` instructions (always taken).
    Branch {
        /// Displacement, in instructions, applied after the fall-through
        /// fetch advance.
        offset: i32,
    },
}

/// Token payload: the decoded instruction with resolved operand symbols.
#[derive(Debug, Clone)]
pub struct ToyTok {
    class: OpClassId,
    op: AluOp,
    load: bool,
    offset: i32,
    d: Operand,
    s1: Operand,
    s2: Operand,
    addr: Operand,
}

impl InstrData for ToyTok {
    fn op_class(&self) -> OpClassId {
        self.class
    }
}

/// Machine resources: a small word-addressed memory with data-dependent
/// latency, the fetch index and the program.
#[derive(Debug)]
pub struct ToyRes {
    /// Data memory (word addressed).
    pub mem: Vec<u32>,
    /// Fetch index into the program.
    pub pc: i64,
    /// The program.
    pub program: Vec<ToyInstr>,
    /// Memory accesses that paid the slow latency.
    pub slow_accesses: u64,
}

impl ToyRes {
    /// The paper's `mem.delay(addr)`: low addresses are fast (cache-like),
    /// the rest pay a miss-like latency.
    pub fn delay(&self, addr: u32) -> u32 {
        if addr < 16 {
            1
        } else {
            5
        }
    }
}

fn operand(src: ToySrc, n_regs: usize) -> Operand {
    match src {
        ToySrc::Reg(r) => {
            assert!((r as usize) < n_regs, "register r{r} out of range");
            Operand::reg(RegId::from_index(r as usize))
        }
        ToySrc::Const(c) => Operand::imm(c),
    }
}

/// Issue action shared by the two ALU decode arcs: latch both sources
/// (`s1` from the L3 feedback path when `fwd`), reserve the destination.
fn alu_issue(m: &mut Machine<ToyRes>, t: &mut ToyTok, fx: &mut Fx<ToyTok>, fwd: bool) {
    if fwd {
        t.s1.read_fwd(&m.regs);
    } else {
        t.s1.read(&m.regs);
    }
    t.s2.read(&m.regs);
    let tok = fx.token();
    t.d.reserve_write(&mut m.regs, tok, PlaceId::from_index(0));
}

/// Builds the Figure 4/5 processor over `program` with `n_regs` registers
/// and `mem` as the initial data memory.
///
/// The whole processor is one [`PipelineSpec`]: four stages (L2 holding
/// three per-class states), the L3 feedback path as the forwarding set,
/// and one path per class — with the paper's two prioritized ALU decode
/// arcs as an `alt`/`step` pair and the branch's fetch-stalling
/// reservation token as a `reserve` arc.
///
/// # Panics
///
/// Panics if the model fails validation or an instruction names a register
/// `>= n_regs`.
pub fn build(program: Vec<ToyInstr>, n_regs: usize, mem: Vec<u32>) -> Engine<ToyTok, ToyRes> {
    let mut s = PipelineSpec::<ToyTok, ToyRes>::new("figure4-5");
    s.stage("L1", 1).stage("L2", 1).stage("L3", 1).stage("L4", 1);
    // The writeback port drains the E-output buffer after two cycles; the
    // feedback path exists to cover exactly that window.
    s.latch("L1", "L1").latch("L2a", "L2").latch("L2b", "L2").latch("L2m", "L2");
    s.latch_with_delay("L3", "L3", 2).latch("L4", "L4");
    s.forwards(&["L3"]);

    // ALU: the two prioritized decode arcs of Figure 5 — read from the
    // register file, or (priority 1) "verify that the writer instruction
    // of operand s1 is in the state L3 and then read it".
    s.class("ALU")
        .alt("L2a")
        .name("D_alu")
        .priority(0)
        .guard(|m, t| t.s1.can_read(&m.regs) && t.s2.can_read(&m.regs) && t.d.can_write(&m.regs))
        .act(|m, t, fx| alu_issue(m, t, fx, false))
        .step("L2a")
        .name("D_alu_fwd")
        .priority(1)
        .reads_forward()
        .guard_ctx(|m, t, cx| {
            t.s1.can_read_in(&m.regs, cx.fwd[0]) && t.s2.can_read(&m.regs) && t.d.can_write(&m.regs)
        })
        .act(|m, t, fx| alu_issue(m, t, fx, true))
        .step("L3")
        .name("E")
        .act(|m, t, fx| {
            let v = t.op.apply(t.s1.value(), t.s2.value());
            let tok = fx.token();
            t.d.set(&mut m.regs, tok, v);
        })
        .step("end")
        .name("We")
        .act(|m, t, fx| {
            let tok = fx.token();
            t.d.writeback(&mut m.regs, tok);
        });

    // LoadStore: Figure 5's M with the data-dependent token delay.
    s.class("LoadStore")
        .step("L2m")
        .name("D_ls")
        .guard(|m, t| {
            t.addr.can_read(&m.regs)
                && if t.load { t.d.can_write(&m.regs) } else { t.d.can_read(&m.regs) }
        })
        .act(|m, t, fx| {
            t.addr.read(&m.regs);
            let tok = fx.token();
            if t.load {
                t.d.reserve_write(&mut m.regs, tok, PlaceId::from_index(0));
            } else {
                t.d.read(&m.regs);
            }
        })
        .step("L4")
        .name("M")
        .act(|m, t, fx| {
            let addr = t.addr.value();
            let delay = m.res.delay(addr);
            if delay > 1 {
                m.res.slow_accesses += 1;
            }
            // "t.delay = mem.delay(addr)" — the data-dependent token delay.
            fx.set_token_delay(delay);
            let len = m.res.mem.len();
            let idx = addr as usize % len;
            if t.load {
                let v = m.res.mem[idx];
                let tok = fx.token();
                t.d.set(&mut m.regs, tok, v);
            } else {
                m.res.mem[idx] = t.d.value();
            }
        })
        .step("end")
        .name("Wm")
        .act(|m, t, fx| {
            if t.load {
                let tok = fx.token();
                t.d.writeback(&mut m.regs, tok);
            }
        });

    // Branch: "when a branch instruction is issued, it stalls the fetch
    // unit by occupying latch L1 with a reservation token ... in the next
    // cycle, this token is consumed and the fetch unit is un-stalled."
    s.class("Branch")
        .step("L2b")
        .name("D_br")
        .reserve("L1", 1)
        .guard(|m, t| t.addr.can_read(&m.regs))
        .act(|m, t, _fx| t.addr.read(&m.regs))
        .step("end")
        .name("B")
        .act(|m, t, _fx| m.res.pc += i64::from(t.offset));

    s.source("F").to("L1").produce(move |m, _fx| {
        let pc = m.res.pc;
        if pc < 0 || pc as usize >= m.res.program.len() {
            return None;
        }
        let instr = m.res.program[pc as usize].clone();
        m.res.pc = pc + 1;
        Some(match instr {
            ToyInstr::Alu { op, d, s1, s2 } => ToyTok {
                class: OpClassId::from_index(0),
                op,
                load: false,
                offset: 0,
                d: operand(ToySrc::Reg(d), n_regs),
                s1: operand(ToySrc::Reg(s1), n_regs),
                s2: operand(s2, n_regs),
                addr: Operand::Absent,
            },
            ToyInstr::LoadStore { l, r, addr } => ToyTok {
                class: OpClassId::from_index(1),
                op: AluOp::Add,
                load: l,
                offset: 0,
                d: operand(ToySrc::Reg(r), n_regs),
                s1: Operand::Absent,
                s2: Operand::Absent,
                addr: operand(addr, n_regs),
            },
            ToyInstr::Branch { offset } => ToyTok {
                class: OpClassId::from_index(2),
                op: AluOp::Add,
                load: false,
                offset,
                d: Operand::Absent,
                s1: Operand::Absent,
                s2: Operand::Absent,
                addr: Operand::imm(0),
            },
        })
    });

    let model = s.lower().expect("figure 4/5 model validates");
    let mut rf = RegisterFile::new();
    rf.add_bank("r", n_regs);
    let machine = Machine::new(rf, ToyRes { mem, pc: 0, program, slow_accesses: 0 });
    Engine::new(model, machine)
}

/// Runs a toy program until the pipeline drains (or `max_cycles`); returns
/// (cycles, final registers, final memory).
pub fn run_program(
    program: Vec<ToyInstr>,
    n_regs: usize,
    mem: Vec<u32>,
    max_cycles: u64,
) -> (u64, Vec<u32>, Vec<u32>) {
    let mut engine = build(program, n_regs, mem);
    let mut idle = 0;
    while engine.cycle() < max_cycles && idle < 3 {
        engine.step();
        if engine.live_tokens() == 0 {
            idle += 1;
        } else {
            idle = 0;
        }
    }
    let regs: Vec<u32> =
        (0..n_regs).map(|i| engine.machine().regs.value_of(RegId::from_index(i))).collect();
    let mem = engine.machine().res.mem.clone();
    (engine.cycle(), regs, mem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straightline_alu_program_computes() {
        // r1 = r0 + 5; r2 = r1 * 3; r3 = r2 - 2
        let program = vec![
            ToyInstr::Alu { op: AluOp::Add, d: 1, s1: 0, s2: ToySrc::Const(5) },
            ToyInstr::Alu { op: AluOp::Mul, d: 2, s1: 1, s2: ToySrc::Const(3) },
            ToyInstr::Alu { op: AluOp::Sub, d: 3, s1: 2, s2: ToySrc::Const(2) },
        ];
        let (_cycles, regs, _) = run_program(program, 4, vec![0; 32], 100);
        assert_eq!(regs[1], 5);
        assert_eq!(regs[2], 15);
        assert_eq!(regs[3], 13);
    }

    #[test]
    fn forwarding_path_is_used_for_s1() {
        let program = vec![
            ToyInstr::Alu { op: AluOp::Add, d: 1, s1: 0, s2: ToySrc::Const(7) },
            ToyInstr::Alu { op: AluOp::Add, d: 2, s1: 1, s2: ToySrc::Const(1) },
        ];
        let mut engine = build(program, 4, vec![0; 32]);
        for _ in 0..50 {
            engine.step();
        }
        let fwd = engine.model().find_transition("D_alu_fwd").unwrap();
        assert!(engine.stats().fires_of(fwd) > 0, "forwarding transition fired");
        assert_eq!(engine.machine().regs.value_of(RegId::from_index(2)), 8);
    }

    #[test]
    fn load_store_roundtrip_with_variable_delay() {
        let program = vec![
            ToyInstr::Alu { op: AluOp::Add, d: 0, s1: 0, s2: ToySrc::Const(42) },
            ToyInstr::LoadStore { l: false, r: 0, addr: ToySrc::Const(20) },
            ToyInstr::LoadStore { l: true, r: 2, addr: ToySrc::Const(20) },
        ];
        let (_c, regs, mem) = run_program(program, 4, vec![0; 32], 200);
        assert_eq!(mem[20], 42);
        assert_eq!(regs[2], 42);
    }

    #[test]
    fn branch_skips_and_stalls_fetch() {
        let program = vec![
            ToyInstr::Branch { offset: 1 },
            ToyInstr::Alu { op: AluOp::Add, d: 1, s1: 0, s2: ToySrc::Const(99) }, // skipped
            ToyInstr::Alu { op: AluOp::Add, d: 2, s1: 0, s2: ToySrc::Const(1) },
        ];
        let mut engine = build(program, 4, vec![0; 32]);
        for _ in 0..60 {
            engine.step();
        }
        assert_eq!(engine.machine().regs.value_of(RegId::from_index(1)), 0, "skipped");
        assert_eq!(engine.machine().regs.value_of(RegId::from_index(2)), 1);
        assert!(engine.stats().reservations >= 1, "branch reserved L1");
    }

    #[test]
    fn out_of_order_completion_alu_passes_slow_load() {
        // A slow load followed by an independent ALU op: the ALU result
        // retires first (out-of-order completion, Figure 4's headline).
        let program = vec![
            ToyInstr::LoadStore { l: true, r: 1, addr: ToySrc::Const(20) }, // slow
            ToyInstr::Alu { op: AluOp::Add, d: 2, s1: 0, s2: ToySrc::Const(3) },
        ];
        let mut engine = build(program, 4, vec![7; 32]);
        let mut alu_done_at = 0u64;
        let mut load_done_at = 0u64;
        for _ in 0..60 {
            engine.step();
            let m = engine.machine();
            if alu_done_at == 0 && m.regs.value_of(RegId::from_index(2)) == 3 {
                alu_done_at = engine.cycle();
            }
            if load_done_at == 0 && m.regs.value_of(RegId::from_index(1)) == 7 {
                load_done_at = engine.cycle();
            }
        }
        assert!(alu_done_at > 0 && load_done_at > 0, "both must complete");
        assert!(
            alu_done_at < load_done_at,
            "ALU (cycle {alu_done_at}) must complete before the slow load ({load_done_at})"
        );
        assert!(engine.machine().res.slow_accesses >= 1);
    }

    #[test]
    fn model_mirrors_figure_five_structure() {
        let engine = build(vec![], 4, vec![0; 32]);
        let m = engine.model();
        assert_eq!(m.subnet_count(), 3, "three instruction sub-nets");
        assert_eq!(m.source_count(), 1, "one instruction-independent source");
        // L3 is the only two-list place — the paper's exact claim for this
        // pipeline ("only very few places ... like state L3").
        let a = m.analysis();
        assert!(a.is_two_list(m.find_place("L3").unwrap()));
        assert_eq!(a.two_list_count(), 1, "exactly L3");
    }
}
