//! Adversarial wire-protocol coverage against a live server: malformed
//! frames must come back as typed [`Reply::ProtoError`]s (or a silent
//! close where no frame boundary survives), never a panic — and a bad
//! client must never take the server down for everyone else.

use std::io::Write;
use std::net::{Shutdown, TcpStream};

use rcpn_serve::client::Client;
use rcpn_serve::protocol::{
    encode_request, read_reply, write_frame, Reply, Request, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use rcpn_serve::server::{ServeConfig, Server};
use workloads::Workload;

/// One shared server for the whole test binary: robustness tests only
/// need *a* live endpoint, and compiling the registry once keeps the
/// suite fast. The OS reclaims the thread at process exit; clean
/// shutdown itself is covered by the loopback tests.
fn server_addr() -> std::net::SocketAddr {
    static ADDR: std::sync::OnceLock<std::net::SocketAddr> = std::sync::OnceLock::new();
    *ADDR.get_or_init(|| {
        let server =
            Server::bind(ServeConfig { workers: 1, ..ServeConfig::default() }).expect("bind");
        let addr = server.local_addr();
        std::thread::spawn(move || server.run().expect("server runs"));
        addr
    })
}

/// After an adversarial connection, the server must still serve: a fresh
/// client runs one real job end to end.
fn assert_still_serving() {
    let mut client = Client::connect(server_addr()).expect("fresh client connects");
    let workload = &Workload::suite(0.0)[0];
    let (job_id, _) = client.submit("strongarm", &workload.program, 4_000_000_000).expect("submit");
    let outcome = client.collect(job_id).expect("collect");
    assert_eq!(outcome.result.exit, Some(workload.expected));
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let mut stream = TcpStream::connect(server_addr()).expect("connect");
    // A length prefix past MAX_FRAME_LEN: the server must refuse it
    // without ever allocating the claimed buffer.
    stream.write_all(&(MAX_FRAME_LEN + 1).to_le_bytes()).expect("write prefix");
    stream.flush().expect("flush");
    let reply = read_reply(&mut stream).expect("typed reply, not a dropped connection");
    assert!(
        matches!(reply, Reply::ProtoError { ref message } if message.contains("exceeds")),
        "expected oversize ProtoError, got {reply:?}"
    );
    assert_still_serving();
}

#[test]
fn wrong_version_byte_gets_a_typed_error() {
    let mut stream = TcpStream::connect(server_addr()).expect("connect");
    let mut frame = encode_request(&Request::Hello);
    frame[0] = PROTOCOL_VERSION + 1;
    write_frame(&mut stream, &frame).expect("write");
    stream.flush().expect("flush");
    let reply = read_reply(&mut stream).expect("typed reply");
    assert!(
        matches!(reply, Reply::ProtoError { ref message } if message.contains("version")),
        "expected version ProtoError, got {reply:?}"
    );
    assert_still_serving();
}

#[test]
fn unknown_tag_gets_a_typed_error() {
    let mut stream = TcpStream::connect(server_addr()).expect("connect");
    write_frame(&mut stream, &[PROTOCOL_VERSION, 0x7f]).expect("write");
    stream.flush().expect("flush");
    let reply = read_reply(&mut stream).expect("typed reply");
    assert!(
        matches!(reply, Reply::ProtoError { ref message } if message.contains("tag")),
        "expected tag ProtoError, got {reply:?}"
    );
    assert_still_serving();
}

#[test]
fn corrupt_body_gets_a_typed_error() {
    let mut stream = TcpStream::connect(server_addr()).expect("connect");
    let frame = encode_request(&Request::Hello);
    // Valid header, trailing garbage after the body: the decoder must
    // reject the excess, not ignore it.
    let mut corrupt = frame.clone();
    corrupt.extend_from_slice(&[0xde, 0xad]);
    write_frame(&mut stream, &corrupt).expect("write");
    stream.flush().expect("flush");
    let reply = read_reply(&mut stream).expect("typed reply");
    assert!(matches!(reply, Reply::ProtoError { .. }), "expected ProtoError, got {reply:?}");
    assert_still_serving();
}

#[test]
fn truncated_frame_closes_quietly_and_server_survives() {
    let mut stream = TcpStream::connect(server_addr()).expect("connect");
    // Claim 100 bytes, deliver 10, hang up: no frame boundary survives,
    // so there is nothing to reply to — the server just drops us.
    stream.write_all(&100u32.to_le_bytes()).expect("write prefix");
    stream.write_all(&[PROTOCOL_VERSION; 10]).expect("write partial body");
    stream.flush().expect("flush");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let err = read_reply(&mut stream).expect_err("connection closes without a reply");
    drop(err); // Closed or Io depending on timing; either way, no panic upstream.
    assert_still_serving();
}

#[test]
fn mid_stream_disconnect_leaves_server_healthy() {
    let workload = &Workload::suite(0.0)[0];
    {
        let mut client = Client::connect(server_addr()).expect("connect");
        let (_job_id, _) =
            client.submit("strongarm", &workload.program, 4_000_000_000).expect("submit");
        // Vanish with the job in flight: the worker's completed result
        // hits a dead socket, which the server must shrug off.
    }
    assert_still_serving();
}
