//! End-to-end loopback acceptance for the simulation service.
//!
//! The load-bearing assertion is the **determinism guarantee** from
//! `DESIGN.md` §3b: for every `ProcModel::ALL` registry variant, a job
//! served over the wire returns `SimResult`/`Stats`/`SchedStats`
//! bit-identical to an in-process `CompiledSim::run_batch` of the same
//! program — and the server compiles each model exactly once, at bind
//! time (cache counters stay frozen while jobs run; a warm restart
//! reloads instead of recompiling).

use std::path::PathBuf;

use processors::sim::{CompiledSim, ProcModel};
use rcpn::batch::BatchRunner;
use rcpn_bench::record::SweepRecord;
use rcpn_serve::client::{Admission, Client};
use rcpn_serve::server::{ServeConfig, Server};
use workloads::Workload;

const MAX_CYCLES: u64 = 4_000_000_000;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcpn-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Binds a server, runs it on a background thread, and returns the
/// address plus the join handle (joined after `Client::shutdown`).
fn spawn_server(config: ServeConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("server binds");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle)
}

#[test]
fn served_results_bit_identical_to_run_batch_for_every_registry_model() {
    let dir = scratch_dir("loopback");
    let (addr, handle) = spawn_server(ServeConfig {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("client connects");

    // Cold cache: every registry model was compiled (a miss) at bind
    // time, none bypassed (default configs are serializable).
    let info = client.hello().expect("hello");
    let models: Vec<&str> = ProcModel::ALL.iter().map(|m| m.label()).collect();
    assert_eq!(info.models, models, "server warms the whole registry, in order");
    assert_eq!(
        (info.cache_hits, info.cache_misses, info.cache_bypasses),
        (0, ProcModel::ALL.len() as u64, 0),
        "cold bind compiles each registry model exactly once"
    );

    // Submit all models × all six kernels up front, collect later: the
    // inbox must pair streamed completions back up regardless of order.
    let workloads = Workload::suite(0.0);
    let mut jobs = Vec::new();
    for &model in &ProcModel::ALL {
        for (w, workload) in workloads.iter().enumerate() {
            let (job_id, admission) =
                client.submit(model.label(), &workload.program, MAX_CYCLES).expect("submit");
            assert_eq!(admission, Admission::Accepted, "queue capacity covers the suite");
            jobs.push((job_id, model, w));
        }
    }

    for (job_id, model, w) in jobs {
        let workload = &workloads[w];
        let served = client.collect(job_id).expect("collect");
        // The in-process gold run: same compiled model, same program,
        // through the run_batch seam the guarantee is anchored to.
        let local = CompiledSim::of(model)
            .run_batch(std::slice::from_ref(&workload.program), MAX_CYCLES, &BatchRunner::new(1))
            .remove(0);
        assert_eq!(
            served.result.exit,
            Some(workload.expected),
            "{}/{}",
            model.label(),
            workload.kernel
        );
        assert_eq!(served.result, local.result, "{}/{} result", model.label(), workload.kernel);
        assert_eq!(served.stats, local.stats, "{}/{} Stats", model.label(), workload.kernel);
        assert_eq!(served.sched, local.sched, "{}/{} SchedStats", model.label(), workload.kernel);
    }

    // Serving 18 jobs performed zero compilations: the warm-up counters
    // are frozen after bind.
    let after = client.hello().expect("hello after jobs");
    assert_eq!(
        (after.cache_hits, after.cache_misses, after.cache_bypasses),
        (0, ProcModel::ALL.len() as u64, 0),
        "jobs instantiate from warmed artifacts — 0 recompiles per job"
    );

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("server thread joins cleanly");

    // Warm restart over the same cache directory: every model reloads.
    let restarted =
        Server::bind(ServeConfig { cache_dir: Some(dir.clone()), ..ServeConfig::default() })
            .expect("warm rebind");
    assert_eq!(
        restarted.cache_counters(),
        (ProcModel::ALL.len() as u64, 0, 0),
        "warm restart hits the cache for every model, recompiling none"
    );
    drop(restarted);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_admission_queue_answers_busy_not_buffering() {
    // workers: 0 makes backpressure deterministic — nothing drains the
    // queue, so exactly `queue_capacity` submissions are accepted.
    let (addr, handle) =
        spawn_server(ServeConfig { workers: 0, queue_capacity: 2, ..ServeConfig::default() });
    let mut client = Client::connect(addr).expect("client connects");
    let program = &Workload::suite(0.0)[0].program;

    let (_, first) = client.submit("strongarm", program, MAX_CYCLES).expect("submit 1");
    let (_, second) = client.submit("strongarm", program, MAX_CYCLES).expect("submit 2");
    let (_, third) = client.submit("strongarm", program, MAX_CYCLES).expect("submit 3");
    assert_eq!(first, Admission::Accepted);
    assert_eq!(second, Admission::Accepted);
    assert_eq!(third, Admission::Busy, "a full queue is a typed reply, not a buffer");

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("server drains queued-but-unrun jobs and exits");
}

#[test]
fn unknown_model_fails_the_job_not_the_connection() {
    let (addr, handle) = spawn_server(ServeConfig { workers: 1, ..ServeConfig::default() });
    let mut client = Client::connect(addr).expect("client connects");
    let workload = &Workload::suite(0.0)[0];

    let err = client.submit("pentium4", &workload.program, MAX_CYCLES).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("pentium4") && msg.contains("strongarm"),
        "diagnostic lists models: {msg}"
    );

    // The connection survives a failed job.
    let (job_id, admission) =
        client.submit("strongarm", &workload.program, MAX_CYCLES).expect("submit after failure");
    assert_eq!(admission, Admission::Accepted);
    let outcome = client.collect(job_id).expect("collect");
    assert_eq!(outcome.result.exit, Some(workload.expected));

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("server joins");
}

#[test]
fn live_sweep_record_parses_and_is_internally_consistent() {
    let (addr, handle) = spawn_server(ServeConfig { workers: 1, ..ServeConfig::default() });
    let mut client = Client::connect(addr).expect("client connects");

    let json = client.run_sweep(0.0).expect("server records a sweep");
    let record = SweepRecord::parse(&json).expect("house format parses");
    let expected_rows = ProcModel::ALL.len() * Workload::suite(0.0).len();
    assert_eq!(record.rows.len(), expected_rows, "models × kernels rows");
    assert_eq!(record.summary.jobs as usize, expected_rows);
    assert!(record.summary.identical, "a single run is identical to itself");
    // Rows carry the default-variant labels, so a served record diffs
    // directly against a committed sweep baseline.
    assert!(
        record.rows.iter().all(|r| r.variant.ends_with("/tables:per-place-class")),
        "default variant labels"
    );

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("server joins");
}
