//! Simulation-as-a-service over pre-compiled RCPN simulator artifacts.
//!
//! The paper's pitch is that generated cycle-accurate simulators are
//! fast enough for *interactive* design-space exploration. This crate is
//! the serving half of that story: a long-running TCP job server
//! ([`server::Server`], the `rcpn-serve` bin) that warms one compiled
//! simulator per [`processors::sim::ProcModel`] registry variant through
//! the artifact cache at bind time, then accepts program + model
//! simulation jobs over a small length-prefixed binary protocol
//! ([`protocol`]), runs them on a scoped-thread worker pool, and streams
//! per-job results back as they complete. A bounded admission queue
//! turns overload into a typed [`protocol::Reply::Busy`] instead of
//! unbounded buffering, and the matching [`client::Client`] (the
//! `rcpn-client` bin) hides reply interleaving behind a blocking
//! submit/collect API.
//!
//! **Determinism guarantee:** a served job instantiates an engine from
//! the same shared compiled artifact and runs the same
//! instantiate-and-run body as `CompiledSim::run_batch`, so served
//! `SimResult`/`Stats`/`SchedStats` are bit-identical to an in-process
//! batch — the loopback tests pin this across every registry model.
//!
//! The wire protocol is self-contained and documented frame-by-frame in
//! [`protocol`] (and prose-form in `DESIGN.md` §3b). Encoding is plain
//! functions over byte vectors, so it can be exercised without a socket:
//!
//! ```
//! use rcpn_serve::protocol::{decode_request, encode_request, JobSpec, Request};
//!
//! // A submission: job 7, StrongARM, a two-word program image.
//! let spec = JobSpec {
//!     job_id: 7,
//!     model: "strongarm".to_string(),
//!     max_cycles: 1_000_000,
//!     base: 0x0,
//!     entry: 0x0,
//!     words: vec![0xe3a0_0000, 0xef00_0000],
//! };
//! let frame = encode_request(&Request::Submit(spec.clone()));
//!
//! // The frame is versioned and tagged...
//! assert_eq!(frame[0], rcpn_serve::protocol::PROTOCOL_VERSION);
//!
//! // ...and decodes back to exactly what was sent.
//! assert_eq!(decode_request(&frame).unwrap(), Request::Submit(spec));
//!
//! // Malformed input comes back as a typed error, never a panic.
//! let err = decode_request(&frame[..frame.len() - 1]).unwrap_err();
//! assert!(matches!(err, rcpn_serve::protocol::WireError::Truncated { .. }));
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
