//! A blocking client for the `rcpn-serve` protocol: connect, submit
//! jobs, collect streamed results.
//!
//! The server streams [`Reply::JobDone`] frames as jobs finish, which is
//! not necessarily submission order — and they can arrive interleaved
//! with the acknowledgement of a *later* submission. [`Client`] therefore
//! keeps a small inbox of replies read off the socket while waiting for
//! a specific one, so callers get a simple call-and-return API
//! ([`Client::submit`], [`Client::collect`]) over the asynchronous wire.

use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};

use arm_isa::program::Program;

use crate::protocol::{read_reply, write_request, JobOutcome, JobSpec, Reply, Request, WireError};

/// Server facts returned by [`Client::hello`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// Labels of the models the server warmed at bind time.
    pub models: Vec<String>,
    /// Worker-pool size.
    pub workers: u32,
    /// Bounded admission-queue capacity.
    pub queue_capacity: u32,
    /// Artifact-cache hits during model warm-up.
    pub cache_hits: u64,
    /// Artifact-cache misses (fresh compiles) during model warm-up.
    pub cache_misses: u64,
    /// Artifact-cache bypasses during model warm-up.
    pub cache_bypasses: u64,
}

/// Admission verdict for one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The job is queued; a [`Client::collect`] call will return its
    /// outcome.
    Accepted,
    /// The bounded admission queue was full — the job was *not* queued.
    /// Resubmit later; this is the protocol's backpressure signal.
    Busy,
}

/// Client-side errors: wire faults plus server-reported conditions.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec failure.
    Wire(WireError),
    /// The server reported the job failed (e.g. unknown model).
    JobFailed {
        /// The failed job's id.
        job_id: u64,
        /// Server-provided diagnostic.
        error: String,
    },
    /// The server rejected a frame as malformed and closed the
    /// connection.
    Protocol(String),
    /// The server is shutting down and will not take new work.
    ShuttingDown,
    /// The server answered with a reply that makes no sense for the
    /// request (a server bug or version skew beyond the version byte).
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::JobFailed { job_id, error } => {
                write!(f, "job {job_id} failed: {error}")
            }
            ClientError::Protocol(msg) => write!(f, "server rejected frame: {msg}"),
            ClientError::ShuttingDown => write!(f, "server is shutting down"),
            ClientError::Unexpected(msg) => write!(f, "unexpected reply: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A connected `rcpn-serve` client.
pub struct Client {
    stream: TcpStream,
    inbox: VecDeque<Reply>,
    next_job_id: u64,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(WireError::from)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, inbox: VecDeque::new(), next_job_id: 1 })
    }

    /// Asks the server who it is: warmed models, pool geometry, and the
    /// artifact-cache counters from warm-up.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on transport failure,
    /// [`ClientError::Unexpected`] if the server answers with something
    /// other than its info.
    pub fn hello(&mut self) -> Result<ServerInfo, ClientError> {
        write_request(&mut self.stream, &Request::Hello)?;
        match self.next_reply_matching(|r| matches!(r, Reply::ServerInfo { .. }))? {
            Reply::ServerInfo {
                models,
                workers,
                queue_capacity,
                cache_hits,
                cache_misses,
                cache_bypasses,
            } => Ok(ServerInfo {
                models,
                workers,
                queue_capacity,
                cache_hits,
                cache_misses,
                cache_bypasses,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits one simulation job and waits for the admission verdict.
    /// Returns the job id (for pairing with [`Client::collect`]) and
    /// whether the server accepted it or answered [`Admission::Busy`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on transport failure,
    /// [`ClientError::JobFailed`] if the server rejected the job outright
    /// (unknown model), [`ClientError::ShuttingDown`] if the server is
    /// draining.
    pub fn submit(
        &mut self,
        model: &str,
        program: &Program,
        max_cycles: u64,
    ) -> Result<(u64, Admission), ClientError> {
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        let spec = JobSpec::for_program(job_id, model, program, max_cycles);
        write_request(&mut self.stream, &Request::Submit(spec))?;
        let reply = self.next_reply_matching(|r| {
            matches!(
                r,
                Reply::Accepted { job_id: id }
                | Reply::Busy { job_id: id }
                | Reply::JobFailed { job_id: id, .. } if *id == job_id
            ) || matches!(r, Reply::ShuttingDown)
        })?;
        match reply {
            Reply::Accepted { .. } => Ok((job_id, Admission::Accepted)),
            Reply::Busy { .. } => Ok((job_id, Admission::Busy)),
            Reply::JobFailed { job_id, error } => Err(ClientError::JobFailed { job_id, error }),
            Reply::ShuttingDown => Err(ClientError::ShuttingDown),
            other => Err(unexpected(&other)),
        }
    }

    /// Waits for the completion of a specific accepted job and returns
    /// its outcome. Results for *other* jobs arriving first are kept in
    /// the inbox, so collection order is the caller's choice.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on transport failure,
    /// [`ClientError::JobFailed`] if the server reports the job failed.
    pub fn collect(&mut self, job_id: u64) -> Result<JobOutcome, ClientError> {
        let reply = self.next_reply_matching(|r| {
            matches!(
                r,
                Reply::JobDone { job_id: id, .. }
                | Reply::JobFailed { job_id: id, .. } if *id == job_id
            )
        })?;
        match reply {
            Reply::JobDone { outcome, .. } => Ok(*outcome),
            Reply::JobFailed { job_id, error } => Err(ClientError::JobFailed { job_id, error }),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to run its warmed models over the kernel suite at
    /// `scale` and return the sweep record (the `BENCH_sweep.json` house
    /// format) — the input `rcpn-serve sweep-diff --live` feeds to the
    /// differ. Blocks until the sweep completes.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on transport failure.
    pub fn run_sweep(&mut self, scale: f64) -> Result<String, ClientError> {
        write_request(&mut self.stream, &Request::RunSweep { scale })?;
        match self.next_reply_matching(|r| matches!(r, Reply::SweepRecord { .. }))? {
            Reply::SweepRecord { json } => Ok(json),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down cleanly. Returns once the server has
    /// acknowledged.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on transport failure.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        write_request(&mut self.stream, &Request::Shutdown)?;
        match self.next_reply_matching(|r| matches!(r, Reply::ShuttingDown))? {
            Reply::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Reads replies off the socket until one matches `want`, buffering
    /// the rest in arrival order. [`Reply::ProtoError`] is terminal and
    /// surfaces immediately regardless of the predicate.
    fn next_reply_matching(&mut self, want: impl Fn(&Reply) -> bool) -> Result<Reply, ClientError> {
        if let Some(pos) = self.inbox.iter().position(&want) {
            return Ok(self.inbox.remove(pos).expect("position is in range"));
        }
        loop {
            let reply = read_reply(&mut self.stream)?;
            if let Reply::ProtoError { message } = reply {
                return Err(ClientError::Protocol(message));
            }
            if want(&reply) {
                return Ok(reply);
            }
            self.inbox.push_back(reply);
        }
    }
}

fn unexpected(reply: &Reply) -> ClientError {
    ClientError::Unexpected(format!("{reply:?}"))
}
