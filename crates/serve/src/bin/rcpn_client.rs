//! Command-line client for a running `rcpn-serve` instance.
//!
//! ```text
//! rcpn-client ping ADDR [--retry N]
//!     Connect (retrying up to N times while the server starts), print
//!     the server's models, pool geometry and warm-up cache counters.
//!
//! rcpn-client drive ADDR [--check]
//!     Submit the six fig10 kernels against every served model, stream
//!     the results back, and — with --check — verify each against an
//!     in-process run of the same compiled model (bit-identical Stats
//!     and SchedStats, the service determinism guarantee).
//!
//! rcpn-client sweep ADDR [--scale S] [--out FILE]
//!     Ask the server to record a sweep over its warmed models; write
//!     the JSON-lines record to FILE (or stdout).
//!
//! rcpn-client shutdown ADDR
//!     Ask the server to shut down cleanly.
//! ```

use std::process::ExitCode;
use std::time::Duration;

use processors::sim::{CompiledSim, ProcModel};
use rcpn::batch::BatchRunner;
use rcpn_bench::MAX_CYCLES;
use rcpn_serve::client::{Admission, Client};
use workloads::Workload;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let Some((addr, flags)) = rest.split_first() else {
        return usage();
    };
    let run = match cmd.as_str() {
        "ping" => ping(addr, flags),
        "drive" => drive(addr, flags),
        "sweep" => sweep(addr, flags),
        "shutdown" => shutdown(addr, flags),
        _ => return usage(),
    };
    match run {
        Ok(code) => code,
        Err(e) => {
            eprintln!("rcpn-client: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rcpn-client ping ADDR [--retry N]\n\
         \x20      rcpn-client drive ADDR [--check]\n\
         \x20      rcpn-client sweep ADDR [--scale S] [--out FILE]\n\
         \x20      rcpn-client shutdown ADDR"
    );
    ExitCode::from(2)
}

fn ping(addr: &str, flags: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut retries = 0u32;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--retry" => {
                retries = it
                    .next()
                    .ok_or("--retry needs a value")?
                    .parse()
                    .map_err(|e| format!("--retry: {e}"))?;
            }
            other => return Err(format!("unknown flag {other:?}").into()),
        }
    }
    let mut client = connect_with_retry(addr, retries)?;
    let info = client.hello()?;
    println!(
        "rcpn-serve at {addr}: models [{}], {} workers, queue {}, \
         cache_hits={} cache_misses={} cache_bypasses={}",
        info.models.join(", "),
        info.workers,
        info.queue_capacity,
        info.cache_hits,
        info.cache_misses,
        info.cache_bypasses,
    );
    Ok(ExitCode::SUCCESS)
}

fn connect_with_retry(addr: &str, retries: u32) -> Result<Client, Box<dyn std::error::Error>> {
    let mut attempt = 0;
    loop {
        match Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) if attempt < retries => {
                eprintln!("rcpn-client: connect attempt {}: {e}; retrying", attempt + 1);
                attempt += 1;
                std::thread::sleep(Duration::from_millis(500));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

fn drive(addr: &str, flags: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let check = match flags {
        [] => false,
        [f] if f == "--check" => true,
        _ => return Err("drive takes only --check".into()),
    };
    let mut client = Client::connect(addr)?;
    let info = client.hello()?;
    let workloads = Workload::suite(0.0);

    // Submit everything up front (resubmitting on Busy), then collect in
    // submission order — the inbox pairs results back up even though the
    // server streams completions as they happen.
    let mut pending: Vec<(u64, String, usize)> = Vec::new();
    for model in &info.models {
        for (w, workload) in workloads.iter().enumerate() {
            loop {
                let (job_id, admission) = client.submit(model, &workload.program, MAX_CYCLES)?;
                match admission {
                    Admission::Accepted => {
                        pending.push((job_id, model.clone(), w));
                        break;
                    }
                    Admission::Busy => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        }
    }

    let mut failures = 0usize;
    for (job_id, model, w) in pending {
        let workload = &workloads[w];
        let outcome = client.collect(job_id)?;
        let ok = outcome.result.exit == Some(workload.expected);
        if !ok {
            failures += 1;
        }
        let verdict = if check {
            // The determinism guarantee, verified end to end: an
            // in-process run of the same compiled model must produce
            // bit-identical results and statistics.
            let proc = ProcModel::ALL
                .iter()
                .copied()
                .find(|m| m.label() == model)
                .ok_or_else(|| format!("server model {model:?} not in local registry"))?;
            let sim = CompiledSim::of(proc);
            let local = sim
                .run_batch(
                    std::slice::from_ref(&workload.program),
                    MAX_CYCLES,
                    &BatchRunner::new(1),
                )
                .remove(0);
            let identical = local.result == outcome.result
                && local.stats == outcome.stats
                && local.sched == outcome.sched;
            if !identical {
                failures += 1;
            }
            if identical {
                "  identical"
            } else {
                "  MISMATCH vs in-process"
            }
        } else {
            ""
        };
        println!(
            "{model}/{}: {} cycles, {} instrs, exit {:?}{verdict}",
            workload.kernel, outcome.result.cycles, outcome.result.instrs, outcome.result.exit,
        );
    }
    if failures == 0 {
        println!("drive: all jobs completed with expected checksums");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("drive: {failures} job(s) failed");
        Ok(ExitCode::FAILURE)
    }
}

fn sweep(addr: &str, flags: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut scale = 0.0f64;
    let mut out = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            other => return Err(format!("unknown flag {other:?}").into()),
        }
    }
    let mut client = Client::connect(addr)?;
    let record = client.run_sweep(scale)?;
    match out {
        Some(path) => {
            std::fs::write(&path, &record)?;
            eprintln!("rcpn-client: sweep record written to {path}");
        }
        None => print!("{record}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn shutdown(addr: &str, flags: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    if !flags.is_empty() {
        return Err("shutdown takes no flags".into());
    }
    let mut client = Client::connect(addr)?;
    client.shutdown()?;
    println!("rcpn-client: server acknowledged shutdown");
    Ok(ExitCode::SUCCESS)
}
